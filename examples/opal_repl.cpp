// An OPAL read-eval-print loop over the Executor — the closest thing to
// the paper's host-terminal experience. Each line (or block ended by an
// empty line) is one §6 "block of OPAL source code".
//
// Usage:
//   ./opal_repl                     # interactive
//   echo "3 + 4" | ./opal_repl     # scripted
//   ./opal_repl --image db.img     # (not implemented: in-memory only)
//
// A few REPL conveniences:
//   :quit        leave
//   :time        show the commit clock and SafeTime
//   :stats       interpreter counters for this session

#include <unistd.h>

#include <iostream>
#include <string>

#include "executor/executor.h"

using gemstone::SessionId;
using gemstone::executor::Executor;

int main() {
  Executor server;
  SessionId session = server.Login().ValueOrDie();
  const bool interactive = false || isatty(0);

  if (interactive) {
    std::cout << "GemStone/84 OPAL — one statement per line, :quit to "
                 "leave.\n";
  }
  std::string line;
  while ((interactive && (std::cout << "opal> " << std::flush)),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ":quit") break;
    if (line == ":time") {
      std::cout << "commit clock " << server.transactions().Now()
                << ", SafeTime " << server.transactions().SafeTime()
                << "\n";
      continue;
    }
    if (line == ":stats") {
      const auto& stats = server.interpreter(session)->stats();
      std::cout << stats.message_sends << " sends, "
                << stats.primitive_calls << " primitives, "
                << stats.block_invocations << " block calls, "
                << stats.bytecodes << " bytecodes\n";
      continue;
    }
    auto result = server.ExecuteToString(session, line);
    if (result.ok()) {
      std::cout << "==> " << result.value() << "\n";
    } else {
      std::cout << "!! " << result.status().ToString() << "\n";
    }
  }
  (void)server.Logout(session);
  return 0;
}
