// An OPAL read-eval-print loop over the Executor — the closest thing to
// the paper's host-terminal experience. Each line (or block ended by an
// empty line) is one §6 "block of OPAL source code".
//
// Usage:
//   ./opal_repl                     # interactive
//   echo "3 + 4" | ./opal_repl     # scripted
//   ./opal_repl --image db.img     # (not implemented: in-memory only)
//
// A few REPL conveniences:
//   :quit        leave
//   :time        show the commit clock and SafeTime
//   :stats       process-wide telemetry report (all subsystems)
//   :stats json  the same snapshot as JSON
//   :stats prom  the same snapshot in Prometheus text format
//   :spans       recent trace spans (most recent last)

#include <unistd.h>

#include <iostream>
#include <string>

#include "executor/executor.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

using gemstone::SessionId;
using gemstone::executor::Executor;

int main() {
  Executor server;
  SessionId session = server.Login().ValueOrDie();
  const bool interactive = false || isatty(0);

  if (interactive) {
    std::cout << "GemStone/84 OPAL — one statement per line, :quit to "
                 "leave.\n";
  }
  std::string line;
  while ((interactive && (std::cout << "opal> " << std::flush)),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ":quit") break;
    if (line == ":time") {
      std::cout << "commit clock " << server.transactions().Now()
                << ", SafeTime " << server.transactions().SafeTime()
                << "\n";
      continue;
    }
    if (line == ":stats" || line == ":stats json" || line == ":stats prom") {
      const auto snapshot =
          gemstone::telemetry::MetricsRegistry::Global().Snapshot();
      if (line == ":stats json") {
        std::cout << gemstone::telemetry::ToJson(snapshot) << "\n";
      } else if (line == ":stats prom") {
        std::cout << gemstone::telemetry::ToPrometheus(snapshot);
      } else {
        std::cout << gemstone::telemetry::ToText(snapshot);
      }
      continue;
    }
    if (line == ":spans") {
      for (const auto& span :
           gemstone::telemetry::TraceBuffer::Global().Snapshot()) {
        std::cout << std::string(span.depth * 2, ' ') << span.name << " "
                  << span.duration_ns / 1000 << "us\n";
      }
      continue;
    }
    auto result = server.ExecuteToString(session, line);
    if (result.ok()) {
      std::cout << "==> " << result.value() << "\n";
    } else {
      std::cout << "!! " << result.status().ToString() << "\n";
    }
  }
  (void)server.Logout(session);
  return 0;
}
