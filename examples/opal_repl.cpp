// An OPAL read-eval-print loop over the Executor — the closest thing to
// the paper's host-terminal experience. Each line (or block ended by an
// empty line) is one §6 "block of OPAL source code".
//
// Usage:
//   ./opal_repl                     # interactive
//   echo "3 + 4" | ./opal_repl     # scripted
//   ./opal_repl --image db.img     # (not implemented: in-memory only)
//
// A few REPL conveniences:
//   :quit        leave
//   :time        show the commit clock and SafeTime
//   :stats       process-wide telemetry report (all subsystems)
//   :stats json  the same snapshot as JSON
//   :stats prom  the same snapshot in Prometheus text format
//   :spans       recent trace spans (most recent last) + drop count
//   :trace             index of request traces in the span ring
//   :trace <id>        one request as Chrome trace-event JSON (Perfetto)
//   :trace all         the whole span ring in the same format
//   :profile on|off|reset      toggle / clear the execution profiler
//   :profile [json]            hot selectors and call edges
//   :explain <query>           set-algebra plan for a §5.1 calculus query
//   :explain analyze <query>   the plan, executed and annotated
//   :flightrec [json]          dump the flight recorder ring
//   :flightrec arm <path>      auto-dump to <path> on abort/conflict/fault
//   :slowlog                   slow-request events only (JSON)
//   :admin <port>              serve /metrics /flightrec /slowlog /healthz
//                              over HTTP on 127.0.0.1:<port> (0 = pick)

#include <unistd.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "admin/http_endpoint.h"
#include "executor/error_format.h"
#include "executor/executor.h"
#include "telemetry/export.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/trace.h"
#include "telemetry/trace_export.h"

using gemstone::SessionId;
using gemstone::executor::Executor;

int main() {
  Executor server;
  SessionId session = server.Login().ValueOrDie();
  gemstone::admin::HttpEndpoint admin;  // idle until :admin starts it
  const bool interactive = false || isatty(0);

  if (interactive) {
    std::cout << "GemStone/84 OPAL — one statement per line, :quit to "
                 "leave.\n";
  }
  std::string line;
  while ((interactive && (std::cout << "opal> " << std::flush)),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ":quit") break;
    if (line == ":time") {
      std::cout << "commit clock " << server.transactions().Now()
                << ", SafeTime " << server.transactions().SafeTime()
                << "\n";
      continue;
    }
    if (line == ":stats" || line == ":stats json" || line == ":stats prom") {
      const auto snapshot =
          gemstone::telemetry::MetricsRegistry::Global().Snapshot();
      if (line == ":stats json") {
        std::cout << gemstone::telemetry::ToJson(snapshot) << "\n";
      } else if (line == ":stats prom") {
        std::cout << gemstone::telemetry::ToPrometheus(snapshot);
      } else {
        std::cout << gemstone::telemetry::ToText(snapshot);
      }
      continue;
    }
    if (line == ":spans") {
      auto& buffer = gemstone::telemetry::TraceBuffer::Global();
      for (const auto& span : buffer.Snapshot()) {
        std::cout << std::string(span.depth * 2, ' ') << span.name << " "
                  << span.duration_ns / 1000 << "us\n";
      }
      std::cout << "(" << buffer.total_recorded() << " recorded, "
                << buffer.dropped() << " dropped by ring wrap)\n";
      continue;
    }
    if (line.rfind(":trace", 0) == 0) {
      const auto spans = gemstone::telemetry::TraceBuffer::Global().Snapshot();
      std::string arg = line.size() > 6 ? line.substr(7) : "";
      while (!arg.empty() && arg.front() == ' ') arg.erase(0, 1);
      if (arg.empty()) {
        std::cout << gemstone::telemetry::TraceIndexJson(spans, 64) << "\n";
      } else if (arg == "all") {
        std::cout << gemstone::telemetry::TraceEventsJson(spans, 0) << "\n";
      } else {
        const std::uint64_t id = std::strtoull(arg.c_str(), nullptr, 10);
        std::cout << gemstone::telemetry::TraceEventsJson(spans, id) << "\n";
      }
      continue;
    }
    if (line.rfind(":profile", 0) == 0) {
      auto& profiler = gemstone::telemetry::Profiler::Global();
      const std::string arg = line.size() > 8 ? line.substr(9) : "";
      if (arg == "on") {
        profiler.Enable();
        std::cout << "profiler on\n";
      } else if (arg == "off") {
        profiler.Disable();
        std::cout << "profiler off\n";
      } else if (arg == "reset") {
        profiler.Reset();
        std::cout << "profiler reset\n";
      } else if (arg == "json") {
        std::cout << profiler.ReportJson() << "\n";
      } else {
        std::cout << profiler.ReportText();
      }
      continue;
    }
    if (line.rfind(":explain", 0) == 0) {
      std::string query = line.substr(8);
      bool analyze = false;
      while (!query.empty() && query.front() == ' ') query.erase(0, 1);
      if (query.rfind("analyze", 0) == 0) {
        analyze = true;
        query.erase(0, 7);
        while (!query.empty() && query.front() == ' ') query.erase(0, 1);
      }
      if (query.empty()) {
        std::cout << "usage: :explain [analyze] {{L: v} where (v in X!S)}\n";
        continue;
      }
      auto explained = server.ExplainStdm(session, query, analyze);
      if (explained.ok()) {
        std::cout << explained.value();
      } else {
        std::cout << "!! "
                  << gemstone::executor::FormatErrorText(explained.status())
                  << "\n";
      }
      continue;
    }
    if (line.rfind(":flightrec", 0) == 0) {
      auto& recorder = gemstone::telemetry::FlightRecorder::Global();
      const std::string arg = line.size() > 10 ? line.substr(11) : "";
      if (arg.rfind("arm ", 0) == 0) {
        recorder.SetAutoDumpPath(arg.substr(4));
        std::cout << "flight recorder armed: " << recorder.auto_dump_path()
                  << "\n";
      } else if (arg == "json") {
        std::cout << recorder.DumpJson() << "\n";
      } else {
        for (const auto& event : recorder.Snapshot()) {
          std::cout << "#" << event.seq << " "
                    << gemstone::telemetry::FlightEventKindName(event.kind)
                    << " session=" << event.session << " a=" << event.a
                    << " b=" << event.b
                    << (event.detail.empty() ? "" : " " + event.detail)
                    << "\n";
        }
        std::cout << "(" << recorder.total_recorded() << " recorded, ring "
                  << recorder.capacity() << ")\n";
      }
      continue;
    }
    if (line == ":slowlog") {
      std::cout << gemstone::telemetry::FlightRecorder::Global()
                       .DumpJsonOfKind(
                           gemstone::telemetry::FlightEventKind::kSlowRequest)
                << "\n";
      continue;
    }
    if (line.rfind(":admin", 0) == 0) {
      if (admin.running()) {
        std::cout << "admin endpoint already on http://127.0.0.1:"
                  << admin.port() << "\n";
        continue;
      }
      gemstone::admin::HttpEndpointOptions options;
      options.port = static_cast<std::uint16_t>(
          line.size() > 6 ? std::strtoul(line.c_str() + 7, nullptr, 10) : 0);
      admin.AddRoute("/metrics", "text/plain; version=0.0.4", [] {
        return gemstone::telemetry::ToPrometheus(
            gemstone::telemetry::MetricsRegistry::Global().Snapshot());
      });
      admin.AddRoute("/flightrec", "application/json", [] {
        return gemstone::telemetry::FlightRecorder::Global().DumpJson();
      });
      admin.AddRoute("/slowlog", "application/json", [] {
        return gemstone::telemetry::FlightRecorder::Global().DumpJsonOfKind(
            gemstone::telemetry::FlightEventKind::kSlowRequest);
      });
      admin.AddRoute("/healthz", "text/plain", [] { return "ok\n"; });
      const gemstone::Status started = admin.Start();
      if (started.ok()) {
        std::cout << "admin endpoint on http://127.0.0.1:" << admin.port()
                  << "\n";
      } else {
        std::cout << "!! " << started.ToString() << "\n";
      }
      continue;
    }
    auto result = server.ExecuteToString(session, line);
    if (result.ok()) {
      std::cout << "==> " << result.value() << "\n";
    } else {
      std::cout << "!! "
                << gemstone::executor::FormatErrorText(result.status())
                << "\n";
    }
  }
  (void)server.Logout(session);
  return 0;
}
