// Quickstart: the GemStone/84 system in one page.
//
// Boot an Executor (the paper's §6 session controller), send it blocks of
// OPAL source — a Smalltalk-80-derived data language — and watch schema,
// objects, transactions and history work together.

#include <cstdlib>
#include <iostream>

#include "executor/executor.h"

using gemstone::SessionId;
using gemstone::executor::Executor;

namespace {

void Run(Executor& gemstone, SessionId session, const std::string& source) {
  auto result = gemstone.ExecuteToString(session, source);
  if (!result.ok()) {
    std::cerr << "ERROR: " << result.status().ToString() << "\n  in: "
              << source << "\n";
    std::exit(1);
  }
  std::cout << "opal> " << source << "\n  ==> " << result.value() << "\n";
}

}  // namespace

int main() {
  std::cout << "== GemStone/84 quickstart ==\n\n";

  Executor gemstone;
  SessionId session = gemstone.Login().ValueOrDie();

  // 1. Type definition is separate from instantiation (§2A): define an
  //    Employee class with named instance variables and methods.
  Run(gemstone, session,
      "Object subclass: 'Employee' instVarNames: #('name' 'salary' 'depts')");
  Run(gemstone, session, "Employee compileMethod: 'name ^name'");
  Run(gemstone, session, "Employee compileMethod: 'name: aName name := aName'");
  Run(gemstone, session, "Employee compileMethod: 'salary ^salary'");
  Run(gemstone, session,
      "Employee compileMethod: 'salary: aNumber salary := aNumber'");
  Run(gemstone, session,
      "Employee compileMethod: 'raise: pct "
      "salary := salary + ((salary * pct / 100) asInteger)'");

  // 2. A subclass shares structure and operations (§4.1).
  Run(gemstone, session,
      "Employee subclass: 'Manager' instVarNames: #('managedDept')");

  // 3. Create objects, put them in a set, commit.
  Run(gemstone, session, "Employees := Set new");
  Run(gemstone, session,
      "Ellen := Employee new. Ellen name: 'Ellen Burns'. "
      "Ellen salary: 24650. Employees add: Ellen");
  Run(gemstone, session,
      "Robert := Manager new. Robert name: 'Robert Peters'. "
      "Robert salary: 24000. Employees add: Robert");
  Run(gemstone, session, "System commitTransaction");

  // 4. Message sends compute; path expressions navigate (§4.3).
  Run(gemstone, session, "Ellen raise: 10. Ellen salary");
  Run(gemstone, session, "Robert!salary");
  Run(gemstone, session, "Employees size");

  // 5. Declarative selection — the set-calculus subset (§5.2).
  Run(gemstone, session,
      "(Employees selectWhere: [:e | e!salary > 24500]) size");

  // 6. History: commit the raise, then read both states (§5.3).
  Run(gemstone, session, "System commitTransaction");
  Run(gemstone, session, "Ellen salary");
  Run(gemstone, session, "Ellen elementAt: 'salary' atTime: 1");

  // 7. The time dial replays the whole session at a past state (§5.4).
  Run(gemstone, session, "System timeDial: 1");
  Run(gemstone, session, "Ellen salary");
  Run(gemstone, session, "System clearTimeDial");
  Run(gemstone, session, "Ellen salary");

  std::cout << "\nquickstart finished; "
            << gemstone.memory().NumObjects() << " objects in the image, "
            << "commit clock at " << gemstone.transactions().Now() << "\n";
  return 0;
}
