// Concurrent sessions under optimistic concurrency control (§6), with
// durability: a bank of accounts, many threads transferring money, every
// commit validated and persisted through the track-based storage engine —
// then a crash and a full recovery that checks the books still balance.

#include <iostream>
#include <random>
#include <thread>
#include <vector>

#include "object/object_memory.h"
#include "storage/simulated_disk.h"
#include "storage/storage_engine.h"
#include "txn/session.h"
#include "txn/transaction_manager.h"

using namespace gemstone;  // NOLINT

namespace {
constexpr int kAccounts = 16;
constexpr int kThreads = 4;
constexpr int kTransfersPerThread = 200;
constexpr std::int64_t kInitialBalance = 1000;
}  // namespace

int main() {
  std::cout << "== Optimistic concurrency over durable accounts ==\n\n";

  storage::SimulatedDisk disk(8192, 8192);
  storage::StorageEngine engine(&disk);
  if (!engine.Format().ok()) return 1;

  ObjectMemory memory;
  txn::TransactionManager manager(&memory, &engine);
  const SymbolId balance_sym = memory.symbols().Intern("balance");

  // Seed the accounts in one transaction.
  std::vector<Oid> accounts;
  {
    txn::Session setup(&manager, 0);
    (void)setup.Begin();
    for (int i = 0; i < kAccounts; ++i) {
      Oid account = setup.Create(memory.kernel().object).ValueOrDie();
      (void)setup.WriteNamed(account, balance_sym,
                             Value::Integer(kInitialBalance));
      accounts.push_back(account);
    }
    if (!setup.Commit().ok()) return 1;
  }

  // Threads transfer random amounts between random accounts, retrying on
  // validation conflicts — the OCC discipline of §6.
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      std::mt19937 rng(static_cast<unsigned>(w) * 7919 + 17);
      std::uniform_int_distribution<int> pick(0, kAccounts - 1);
      std::uniform_int_distribution<std::int64_t> amount(1, 50);
      txn::Session session(&manager, static_cast<SessionId>(w + 1));
      for (int t = 0; t < kTransfersPerThread; ++t) {
        const Oid from = accounts[static_cast<std::size_t>(pick(rng))];
        Oid to = accounts[static_cast<std::size_t>(pick(rng))];
        if (to == from) {
          to = accounts[static_cast<std::size_t>((pick(rng) + 1) % kAccounts)];
          if (to == from) continue;
        }
        const std::int64_t delta = amount(rng);
        for (;;) {
          (void)session.Begin();
          auto from_balance = session.ReadNamed(from, balance_sym);
          auto to_balance = session.ReadNamed(to, balance_sym);
          if (!from_balance.ok() || !to_balance.ok()) {
            (void)session.Abort();
            continue;
          }
          if (from_balance->integer() < delta) {
            (void)session.Abort();
            break;  // insufficient funds: give up this transfer
          }
          (void)session.WriteNamed(
              from, balance_sym,
              Value::Integer(from_balance->integer() - delta));
          (void)session.WriteNamed(
              to, balance_sym, Value::Integer(to_balance->integer() + delta));
          Status commit = session.Commit();
          if (commit.ok()) break;
          if (!commit.IsTransactionConflict()) {
            std::cerr << "unexpected: " << commit.ToString() << "\n";
            break;
          }
          // Conflict: somebody else touched an account; retry.
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  const txn::TxnStats stats = manager.stats();
  std::cout << "transactions begun:     " << stats.begun << "\n"
            << "committed:              " << stats.committed << "\n"
            << "aborted (conflicts):    " << stats.conflicts << "\n"
            << "commit clock:           " << manager.Now() << "\n"
            << "storage commits:        " << engine.stats().commits << "\n"
            << "tracks written:         " << disk.stats().tracks_written
            << "\n\n";

  // The invariant: no money created or destroyed.
  {
    txn::Session audit(&manager, 99);
    (void)audit.Begin();
    std::int64_t total = 0;
    for (Oid account : accounts) {
      total += audit.ReadNamed(account, balance_sym).ValueOrDie().integer();
    }
    std::cout << "sum of balances (live):      " << total << " (expected "
              << kAccounts * kInitialBalance << ")\n";
    if (total != kAccounts * kInitialBalance) return 1;
  }

  // Crash: drop all in-memory state, recover from the platters, re-audit.
  storage::StorageEngine recovered_engine(&disk);
  if (!recovered_engine.Open().ok()) return 1;
  ObjectMemory recovered_memory;
  for (Oid oid : recovered_engine.CatalogOids()) {
    auto object =
        recovered_engine.LoadObject(oid, &recovered_memory.symbols());
    if (!object.ok() ||
        !recovered_memory.Insert(std::move(object).value()).ok()) {
      // The System singleton recovers as a merge; skip duplicates.
      continue;
    }
  }
  std::int64_t recovered_total = 0;
  const SymbolId recovered_balance =
      recovered_memory.symbols().Intern("balance");
  for (Oid account : accounts) {
    auto v = recovered_memory.ReadNamed(account, recovered_balance, kTimeNow);
    if (v.ok()) recovered_total += v.value().integer();
  }
  std::cout << "sum of balances (recovered): " << recovered_total << "\n";
  if (recovered_total != kAccounts * kInitialBalance) return 1;

  std::cout << "\nbooks balance before and after the crash.\n";
  return 0;
}
