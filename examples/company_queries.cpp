// The §5.1 set-calculus query, three ways.
//
// Query: employees and managers such that the employee is in the
// manager's department and the employee's salary is more than 10% of the
// department's budget:
//
//   {{Emp: e, Mgr: m} where (e ∈ X!Employees) and (d ∈ X!Departments)
//     [(m ∈ d!Managers) and (d!Name ∈ e!Depts)
//      and (e!Salary > 0.10 * d!Budget)]}
//
// 1. STDM reference semantics (naive nested-loop calculus evaluation)
// 2. The calculus→algebra translation with selection pushdown
// 3. The OPAL/GSDM object database with a declarative selectWhere:

#include <iostream>

#include "executor/executor.h"
#include "stdm/calculus.h"
#include "stdm/calculus_parser.h"
#include "stdm/path.h"
#include "stdm/translate.h"

using namespace gemstone;         // NOLINT
using namespace gemstone::stdm;   // NOLINT

namespace {

StdmValue BuildAcme() {
  StdmValue acme = StdmValue::Set();
  StdmValue departments = StdmValue::Set();
  StdmValue a12 = StdmValue::Set();
  (void)a12.Put("Name", StdmValue::String("Sales"));
  (void)a12.Put("Managers", StdmValue::SetOf({StdmValue::String("Nathen"),
                                              StdmValue::String("Roberts")}));
  (void)a12.Put("Budget", StdmValue::Integer(142000));
  (void)departments.Put("A12", std::move(a12));
  StdmValue a16 = StdmValue::Set();
  (void)a16.Put("Name", StdmValue::String("Research"));
  (void)a16.Put("Managers", StdmValue::SetOf({StdmValue::String("Carter")}));
  (void)a16.Put("Budget", StdmValue::Integer(256500));
  (void)departments.Put("A16", std::move(a16));
  (void)acme.Put("Departments", std::move(departments));

  StdmValue employees = StdmValue::Set();
  StdmValue e62 = StdmValue::Set();
  StdmValue name62 = StdmValue::Set();
  (void)name62.Put("First", StdmValue::String("Ellen"));
  (void)name62.Put("Last", StdmValue::String("Burns"));
  (void)e62.Put("Name", std::move(name62));
  (void)e62.Put("Salary", StdmValue::Integer(24650));
  (void)e62.Put("Depts", StdmValue::SetOf({StdmValue::String("Marketing")}));
  (void)employees.Put("E62", std::move(e62));
  StdmValue e83 = StdmValue::Set();
  StdmValue name83 = StdmValue::Set();
  (void)name83.Put("First", StdmValue::String("Robert"));
  (void)name83.Put("Last", StdmValue::String("Peters"));
  (void)e83.Put("Name", std::move(name83));
  (void)e83.Put("Salary", StdmValue::Integer(24000));
  (void)e83.Put("Depts", StdmValue::SetOf({StdmValue::String("Sales"),
                                           StdmValue::String("Planning")}));
  (void)employees.Put("E83", std::move(e83));
  (void)acme.Put("Employees", std::move(employees));
  return acme;
}

CalculusQuery PaperQuery() {
  CalculusQuery q;
  q.target = {{"Emp", Term::VarPath("e", {"Name", "Last"})},
              {"Mgr", Term::Var("m")}};
  q.ranges = {{"e", Term::VarPath("X", {"Employees"})},
              {"d", Term::VarPath("X", {"Departments"})},
              {"m", Term::VarPath("d", {"Managers"})}};
  q.condition = Predicate::And(
      {Predicate::Member(Term::VarPath("d", {"Name"}),
                         Term::VarPath("e", {"Depts"})),
       Predicate::Gt(Term::VarPath("e", {"Salary"}),
                     Term::Mul(Term::Const(StdmValue::Float(0.10)),
                               Term::VarPath("d", {"Budget"})))});
  return q;
}

}  // namespace

int main() {
  std::cout << "== The paper's set-calculus query, three ways ==\n\n";
  StdmValue acme = BuildAcme();
  std::cout << "Database (STDM notation, §5.1):\n  " << acme.ToString()
            << "\n\n";

  // Path expressions from the paper.
  Path managers = ParsePath("X!Departments!A16!Managers").ValueOrDie();
  std::cout << "X!Departments!A16!Managers = "
            << EvalPath(acme, managers).ValueOrDie().ToString() << "\n\n";

  // Parse the query from the paper's own textual notation — the hand
  // built AST is only used to confirm the parse.
  const char* kQueryText =
      "{{Emp: e!Name!Last, Mgr: m} where "
      "(e in X!Employees) and "
      "(d in X!Departments) [(m in d!Managers) and "
      "(d!Name in e!Depts) and (e!Salary > 0.10 * d!Budget)]}";
  CalculusQuery query = ParseCalculus(kQueryText).ValueOrDie();
  std::cout << "Calculus (parsed from the paper's text):\n  "
            << query.ToString() << "\n";
  std::cout << "  matches the hand-built query: "
            << (query.ToString() == PaperQuery().ToString() ? "yes" : "NO")
            << "\n\n";

  Bindings free;
  free.Push("X", &acme);

  // 1. Reference semantics.
  EvalStats naive_stats;
  StdmValue naive = EvaluateCalculus(query, free, &naive_stats).ValueOrDie();
  std::cout << "1. Naive calculus evaluation:\n   " << naive.ToString()
            << "\n   (" << naive_stats.tuples_examined
            << " range combinations examined)\n\n";

  // 2. Translated algebra plan.
  AlgebraPlan plan = TranslateToAlgebra(query).ValueOrDie();
  std::cout << "2. Translated set-algebra plan:\n" << plan.ToString();
  AlgebraStats algebra_stats;
  StdmValue planned = plan.Execute(free, &algebra_stats).ValueOrDie();
  std::cout << "   " << planned.ToString() << "\n   ("
            << algebra_stats.rows_scanned << " rows scanned, "
            << algebra_stats.rows_examined << " examined)\n\n";
  std::cout << "   results agree: " << (naive == planned ? "yes" : "NO")
            << "\n\n";

  // 3. The same data as GemStone objects, queried from OPAL.
  executor::Executor gemstone;
  SessionId session = gemstone.Login().ValueOrDie();
  auto opal = [&](const std::string& src) {
    auto r = gemstone.Execute(session, src);
    if (!r.ok()) {
      std::cerr << "OPAL error: " << r.status().ToString() << "\n";
      std::exit(1);
    }
    return std::move(r).value();
  };
  opal("Object subclass: 'Employee' "
       "instVarNames: #('last' 'salary' 'depts')");
  opal("Employees := Set new");
  opal("| e | e := Employee new. e instVarNamed: 'last' put: 'Burns'. "
       "e instVarNamed: 'salary' put: 24650. Employees add: e");
  opal("| e | e := Employee new. e instVarNamed: 'last' put: 'Peters'. "
       "e instVarNamed: 'salary' put: 24000. Employees add: e");
  opal("System commitTransaction");

  auto winners = gemstone.ExecuteToString(
      session,
      "(Employees selectWhere: [:e | e!salary > 14200]) "
      "collect: [:e | e!last]");
  std::cout << "3. OPAL declarative selection over GSDM objects "
               "(employees above A12's 10% line):\n   "
            << "(Employees selectWhere: [:e | e!salary > 14200])\n   size = "
            << opal("(Employees selectWhere: [:e | e!salary > 14200]) size")
                   .integer()
            << ", procedural equivalent = "
            << opal("(Employees select: [:e | e!salary > 14200]) size")
                   .integer()
            << "\n";
  (void)winners;
  return 0;
}
