// Figure 1, executable: "A Database with History".
//
// Reconstructs the paper's example — Acme Corp's president changes from
// Ayn Rand to Milton Friedman at time 8, Ayn leaves the employees set and
// later moves to San Diego — then evaluates the paper's three path
// expressions:
//
//   World!'Acme Corp'!'president'          (current: Milton Friedman)
//   World!'Acme Corp'!'president'@10       (Milton Friedman)
//   World!'Acme Corp'!'president'@7        (Ayn Rand)
//   World!'Acme Corp'!'president'@7!city   (her *current* city: San Diego)

#include <cstdlib>
#include <iostream>

#include "executor/executor.h"

using gemstone::SessionId;
using gemstone::TxnTime;
using gemstone::executor::Executor;

namespace {

Executor server;
SessionId session;

void Opal(const std::string& source) {
  auto result = server.Execute(session, source);
  if (!result.ok()) {
    std::cerr << "ERROR: " << result.status().ToString() << "\n  in: "
              << source << "\n";
    std::exit(1);
  }
}

void Show(const std::string& source) {
  auto result = server.ExecuteToString(session, source);
  if (!result.ok()) {
    std::cerr << "ERROR: " << result.status().ToString() << "\n  in: "
              << source << "\n";
    std::exit(1);
  }
  std::cout << "  " << source << "  ==>  " << result.value() << "\n";
}

// Commits empty transactions until the logical clock reaches `t`, so the
// example's transaction times line up with the figure's.
void AdvanceClockTo(TxnTime t) {
  while (server.transactions().Now() < t) {
    Opal("Object new. System commitTransaction");
  }
}

}  // namespace

int main() {
  std::cout << "== Figure 1: A Database with History ==\n\n";
  session = server.Login().ValueOrDie();

  // The world and the company.
  Opal("Object subclass: 'Company' instVarNames: #('president' 'employees')");
  Opal("Object subclass: 'Person' instVarNames: #('name' 'city')");
  Opal("World := Dictionary new. "
       "Acme := Company new. "
       "World at: 'Acme Corp' put: Acme. "
       "Employees := Set new. "
       "Acme!employees := Employees. "
       "Ayn := Person new. Ayn!name := 'Ayn Rand'. "
       "Milton := Person new. Milton!name := 'Milton Friedman'. "
       "Milton!city := 'Seattle'. "
       "System commitTransaction");  // t=1

  // t=2: Ayn hired as employee number 1821, living in Portland.
  Opal("Employees instVarNamed: '1821' put: Ayn. "
       "Ayn!city := 'Portland'. System commitTransaction");

  AdvanceClockTo(4);
  // t=5: Ayn becomes president.
  Opal("Acme!president := Ayn. System commitTransaction");

  AdvanceClockTo(7);
  // t=8: Milton replaces Ayn (moving to Portland); Ayn leaves the company.
  Opal("Acme!president := Milton. "
       "Milton!city := 'Portland'. "
       "Employees instVarNamed: '1821' put: nil. "
       "System commitTransaction");

  AdvanceClockTo(10);
  // t=11: Ayn moves to San Diego.
  Opal("Ayn!city := 'San Diego'. System commitTransaction");

  std::cout << "transaction clock now at " << server.transactions().Now()
            << "\n\n";

  std::cout << "The paper's path expressions:\n";
  Show("World at: 'Acme Corp'");
  Show("Acme!president!name");
  Show("Acme!president@10!name");
  Show("Acme!president@7!name");
  Show("Acme!president@7!city");  // @7 names Ayn; city is her CURRENT city

  std::cout << "\nHer city at the time she was president:\n";
  Show("Acme!president@7!city@7");

  std::cout << "\nEmployee 1821 across time:\n";
  Show("(Employees elementAt: '1821' atTime: 7) printString");
  Show("(Employees elementAt: '1821' atTime: 9) printString");

  std::cout << "\nReplaying the whole database at time 7 (time dial, §5.4):\n";
  Opal("System timeDial: 7");
  Show("Acme!president!name");
  Show("Acme!president!city");
  Opal("System clearTimeDial");

  std::cout << "\nNothing was deleted: Milton's full city history:\n";
  auto* interp = server.interpreter(session);
  auto milton = server.Execute(session, "Milton").ValueOrDie();
  auto history = server.session(session)
                     ->History(milton.ref(),
                               server.memory().symbols().Intern("city"))
                     .ValueOrDie();
  for (const auto& association : history) {
    std::cout << "  t=" << association.time << "  "
              << interp->DefaultPrintString(association.value) << "\n";
  }
  return 0;
}
