// E2 — the §5.1 calculus query at scale: naive nested-loop calculus
// evaluation vs. the translated set-algebra plan (selection pushdown +
// hash join). The paper's claim: a declarative syntax "allows much more
// access planning by the database system than with an equivalent query
// specified procedurally." Expected shape: the translated plan wins by a
// growing factor as |Employees| x |Departments| grows.

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include "stdm/calculus.h"
#include "stdm/translate.h"

using namespace gemstone::stdm;  // NOLINT

namespace {

// Employees with scalar Dept ids joinable against departments.
StdmValue BuildDatabase(int employees, int departments) {
  StdmValue db = StdmValue::Set();
  StdmValue emps = StdmValue::Set();
  for (int i = 0; i < employees; ++i) {
    StdmValue e = StdmValue::Set();
    (void)e.Put("Id", StdmValue::Integer(i));
    (void)e.Put("Dept", StdmValue::Integer(i % departments));
    (void)e.Put("Salary", StdmValue::Integer(1000 * (i % 40)));
    emps.Add(std::move(e));
  }
  (void)db.Put("Employees", std::move(emps));
  StdmValue depts = StdmValue::Set();
  for (int i = 0; i < departments; ++i) {
    StdmValue d = StdmValue::Set();
    (void)d.Put("Id", StdmValue::Integer(i));
    (void)d.Put("Budget", StdmValue::Integer(150000 + 1000 * i));
    StdmValue managers = StdmValue::Set();
    managers.Add(StdmValue::String("mgr" + std::to_string(i)));
    (void)d.Put("Managers", std::move(managers));
    depts.Add(std::move(d));
  }
  (void)db.Put("Departments", std::move(depts));
  return db;
}

CalculusQuery Query() {
  CalculusQuery q;
  q.target = {{"Emp", Term::VarPath("e", {"Id"})}, {"Mgr", Term::Var("m")}};
  q.ranges = {{"e", Term::VarPath("X", {"Employees"})},
              {"d", Term::VarPath("X", {"Departments"})},
              {"m", Term::VarPath("d", {"Managers"})}};
  q.condition = Predicate::And(
      {Predicate::Eq(Term::VarPath("e", {"Dept"}),
                     Term::VarPath("d", {"Id"})),
       Predicate::Gt(Term::VarPath("e", {"Salary"}),
                     Term::Mul(Term::Const(StdmValue::Float(0.10)),
                               Term::VarPath("d", {"Budget"})))});
  return q;
}

void BM_NaiveCalculus(benchmark::State& state) {
  StdmValue db = BuildDatabase(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  Bindings free;
  free.Push("X", &db);
  CalculusQuery q = Query();
  EvalStats stats;
  for (auto _ : state) {
    auto r = EvaluateCalculus(q, free, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["tuples_examined"] = static_cast<double>(
      stats.tuples_examined / state.iterations());
}

void BM_TranslatedAlgebra(benchmark::State& state) {
  StdmValue db = BuildDatabase(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  Bindings free;
  free.Push("X", &db);
  AlgebraPlan plan = TranslateToAlgebra(Query()).ValueOrDie();
  AlgebraStats stats;
  for (auto _ : state) {
    auto r = plan.Execute(free, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_examined"] = static_cast<double>(
      stats.rows_examined / state.iterations());
}

void BM_TranslationItself(benchmark::State& state) {
  CalculusQuery q = Query();
  for (auto _ : state) {
    auto plan = TranslateToAlgebra(q);
    benchmark::DoNotOptimize(plan);
  }
}

}  // namespace

BENCHMARK(BM_NaiveCalculus)
    ->Args({50, 5})
    ->Args({200, 10})
    ->Args({800, 20})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TranslatedAlgebra)
    ->Args({50, 5})
    ->Args({200, 10})
    ->Args({800, 20})
    ->Args({3200, 40})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TranslationItself);

GS_BENCH_MAIN("query_translation");
