// C7 — impedance mismatch (§2F): "we can access a relational database
// using SQL from COBOL, but when the time comes to do some computation,
// COBOL can only operate at the tuple level."
//
// Three ways to compute "employees with salary above a threshold whose
// department is Sales":
//   1. OPAL in-engine, declarative (selectWhere:) — single language,
//      no boundary crossed.
//   2. OPAL in-engine, procedural (select: with message dispatch).
//   3. The two-language style: the "database" answers flat tuples which
//      an application loop copies into host structs, re-parses, and
//      filters — structure reflected back at the interface.
//
// Expected shape: (1) beats (2) (no per-element dispatch), and both
// in-engine forms beat the extract-then-filter loop as data grows, since
// (3) pays materialization for every tuple whether or not it qualifies.

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include "executor/executor.h"
#include "relational/relational.h"

using namespace gemstone;  // NOLINT

namespace {

constexpr const char* kSchema =
    "Object subclass: 'Emp' instVarNames: #('name' 'salary' 'dept')";

executor::Executor* BuildImage(int employees, SessionId* session) {
  auto* server = new executor::Executor();
  *session = server->Login().ValueOrDie();
  auto run = [&](const std::string& src) {
    auto r = server->Execute(*session, src);
    if (!r.ok()) std::abort();
  };
  run(kSchema);
  run("Emps := Set new");
  run("1 to: " + std::to_string(employees) +
      " do: [:i | | e | e := Emp new. "
      "e instVarNamed: 'name' put: 'emp' , i printString. "
      "e instVarNamed: 'salary' put: i. "
      "e instVarNamed: 'dept' put: (i \\\\ 2 = 0 "
      "ifTrue: ['Sales'] ifFalse: ['Research']). "
      "Emps add: e]");
  run("System commitTransaction");
  return server;
}

void BM_InEngineDeclarative(benchmark::State& state) {
  SessionId session;
  std::unique_ptr<executor::Executor> server(
      BuildImage(static_cast<int>(state.range(0)), &session));
  opal::Compiler compiler(&server->memory());
  auto body = compiler
                  .CompileBody("(Emps selectWhere: [:e | (e!salary > " +
                               std::to_string(state.range(0) / 2) +
                               ") & (e!dept = 'Sales')]) size")
                  .ValueOrDie();
  auto* interp = server->interpreter(session);
  interp->ResetStats();
  for (auto _ : state) {
    auto r = interp->Run(body);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["message_sends_per_query"] =
      static_cast<double>(interp->stats().message_sends) /
      static_cast<double>(state.iterations());
}

void BM_InEngineProcedural(benchmark::State& state) {
  SessionId session;
  std::unique_ptr<executor::Executor> server(
      BuildImage(static_cast<int>(state.range(0)), &session));
  opal::Compiler compiler(&server->memory());
  auto body = compiler
                  .CompileBody("(Emps select: [:e | (e!salary > " +
                               std::to_string(state.range(0) / 2) +
                               ") & (e!dept = 'Sales')]) size")
                  .ValueOrDie();
  auto* interp = server->interpreter(session);
  interp->ResetStats();
  for (auto _ : state) {
    auto r = interp->Run(body);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["message_sends_per_query"] =
      static_cast<double>(interp->stats().message_sends) /
      static_cast<double>(state.iterations());
}

// The application-side struct the tuple must be reflected into.
struct HostEmployee {
  std::string name;
  std::int64_t salary;
  std::string dept;
};

void BM_TupleAtATimeExtraction(benchmark::State& state) {
  const int employees = static_cast<int>(state.range(0));
  relational::Table table({"Name", "Salary", "Dept"});
  for (int i = 1; i <= employees; ++i) {
    (void)table.Insert({std::string("emp" + std::to_string(i)),
                        std::int64_t{i},
                        std::string(i % 2 == 0 ? "Sales" : "Research")});
  }
  const std::int64_t threshold = employees / 2;
  for (auto _ : state) {
    // The cursor loop: every tuple crosses the language boundary and is
    // copied into a host structure before the host can compute on it.
    std::vector<HostEmployee> extracted;
    extracted.reserve(table.size());
    for (const relational::Tuple& row : table.rows()) {
      HostEmployee host;
      host.name = std::get<std::string>(row[0]);
      host.salary = std::get<std::int64_t>(row[1]);
      host.dept = std::get<std::string>(row[2]);
      extracted.push_back(std::move(host));
    }
    int hits = 0;
    for (const HostEmployee& e : extracted) {
      if (e.salary > threshold && e.dept == "Sales") ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}

}  // namespace

BENCHMARK(BM_InEngineDeclarative)->Arg(200)->Arg(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InEngineProcedural)->Arg(200)->Arg(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TupleAtATimeExtraction)->Arg(200)->Arg(2000)
    ->Unit(benchmark::kMicrosecond);

GS_BENCH_MAIN("impedance");
