// C4 — associative access through directories (§6). Expected shape:
// sequential scan cost grows linearly with collection size while a
// directory probe stays near-constant, so the crossover arrives early;
// temporal lookups pay only for the postings under the probed key.

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include "index/directory.h"
#include "txn/session.h"
#include "txn/transaction_manager.h"

using namespace gemstone;  // NOLINT

namespace {

struct Fixture {
  ObjectMemory memory;
  txn::TransactionManager manager{&memory};
  txn::Session session{&manager, 1};
  index::DirectoryManager directories{&memory};
  Oid collection;
  SymbolId dept_sym;

  explicit Fixture(int members, int distinct_depts) {
    dept_sym = memory.symbols().Intern("dept");
    (void)session.Begin();
    collection = session.Create(memory.kernel().set).ValueOrDie();
    for (int i = 0; i < members; ++i) {
      Oid member = session.Create(memory.kernel().object).ValueOrDie();
      (void)session.WriteNamed(
          member, dept_sym,
          Value::String("dept" + std::to_string(i % distinct_depts)));
      (void)session.WriteNamed(collection,
                               memory.symbols().GenerateAlias(),
                               Value::Ref(member));
    }
    (void)session.Commit();
    (void)session.Begin();
  }
};

void BM_SequentialScan(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  Fixture fixture(members, 50);
  const Value target = Value::String("dept7");
  for (auto _ : state) {
    auto listed =
        fixture.session.ListNamed(fixture.collection).ValueOrDie();
    int hits = 0;
    for (const auto& [name, member] : listed) {
      auto dept =
          fixture.session.ReadNamed(member.ref(), fixture.dept_sym);
      if (dept.ok() && dept.value() == target) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetLabel("members=" + std::to_string(members));
}

void BM_DirectoryProbe(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  Fixture fixture(members, 50);
  if (!fixture.directories
           .CreateDirectory(&fixture.session, fixture.collection,
                            {fixture.dept_sym})
           .ok()) {
    state.SkipWithError("directory creation failed");
    return;
  }
  index::Directory* directory =
      fixture.directories.Find(fixture.collection, {fixture.dept_sym});
  const Value target = Value::String("dept7");
  for (auto _ : state) {
    auto hits = directory->Lookup(target, kTimeNow);
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetLabel("members=" + std::to_string(members));
}

void BM_DirectoryRangeProbe(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  ObjectMemory memory;
  index::Directory directory(Oid(1), {memory.symbols().Intern("salary")});
  for (int i = 0; i < members; ++i) {
    directory.Add(Value::Integer(i % 10000),
                  Oid(static_cast<unsigned>(100 + i)), 1);
  }
  for (auto _ : state) {
    auto hits = directory.LookupRange(Value::Integer(4000),
                                      Value::Integer(4100), kTimeNow);
    benchmark::DoNotOptimize(hits.size());
  }
}

// Temporal probe over a member whose discriminator changed many times:
// the "two branches" situation of §6.
void BM_TemporalProbeAfterChurn(benchmark::State& state) {
  const int versions = static_cast<int>(state.range(0));
  ObjectMemory memory;
  index::Directory directory(Oid(1), {memory.symbols().Intern("dept")});
  for (int v = 0; v < versions; ++v) {
    directory.Add(Value::String("dept" + std::to_string(v % 3)), Oid(100),
                  static_cast<TxnTime>(v + 1));
  }
  const TxnTime mid = static_cast<TxnTime>(versions / 2 + 1);
  const Value key = Value::String("dept" + std::to_string(versions / 2 % 3));
  for (auto _ : state) {
    auto hits = directory.Lookup(key, mid);
    benchmark::DoNotOptimize(hits.size());
  }
  state.counters["postings"] =
      static_cast<double>(directory.posting_count());
}

}  // namespace

BENCHMARK(BM_SequentialScan)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DirectoryProbe)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_DirectoryRangeProbe)->Arg(100000);
BENCHMARK(BM_TemporalProbeAfterChurn)->Arg(10)->Arg(1000);

GS_BENCH_MAIN("directory");
