// C3 — the Commit Manager's safe group writes (§6): commit cost vs. group
// size. Expected shape: per-commit overhead (catalog rewrite + root flip)
// is amortized as the group grows — committing N objects in one group is
// far cheaper than N single-object commits.

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include "object/object_memory.h"
#include "storage/storage_engine.h"

using namespace gemstone;  // NOLINT

namespace {

std::vector<GsObject> MakeBatch(ObjectMemory& memory, std::uint64_t base,
                                int n) {
  std::vector<GsObject> batch;
  for (int i = 0; i < n; ++i) {
    GsObject object{Oid(base + static_cast<unsigned>(i)),
                    memory.kernel().object};
    object.WriteNamed(memory.symbols().Intern("payload"), 1,
                      Value::String(std::string(64, 'x')));
    batch.push_back(std::move(object));
  }
  return batch;
}

void BM_GroupCommit(benchmark::State& state) {
  const int group = static_cast<int>(state.range(0));
  storage::SimulatedDisk disk(65536, 8192);
  storage::StorageEngine engine(&disk);
  if (!engine.Format().ok()) return;
  ObjectMemory memory;

  std::uint64_t base = 1000;
  for (auto _ : state) {
    std::vector<GsObject> batch = MakeBatch(memory, base, group);
    base += static_cast<unsigned>(group);
    std::vector<const GsObject*> ptrs;
    for (const auto& o : batch) ptrs.push_back(&o);
    if (!engine.CommitObjects(ptrs, memory.symbols()).ok()) {
      state.SkipWithError("commit failed (device full?)");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * group);
  state.counters["tracks_written_per_object"] =
      static_cast<double>(disk.stats().tracks_written) /
      static_cast<double>(state.iterations() * group);
}

// One object per commit: the degenerate group, maximal overhead.
void BM_SingleObjectCommits(benchmark::State& state) {
  storage::SimulatedDisk disk(65536, 8192);
  storage::StorageEngine engine(&disk);
  if (!engine.Format().ok()) return;
  ObjectMemory memory;

  std::uint64_t oid = 1000;
  for (auto _ : state) {
    GsObject object{Oid(oid++), memory.kernel().object};
    object.WriteNamed(memory.symbols().Intern("payload"), 1,
                      Value::String(std::string(64, 'x')));
    if (!engine.CommitObjects({&object}, memory.symbols()).ok()) {
      state.SkipWithError("commit failed (device full?)");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["tracks_written_per_object"] =
      static_cast<double>(disk.stats().tracks_written) /
      static_cast<double>(state.iterations());
}

// The atomicity machinery itself: root flips are one track write.
void BM_RootFlip(benchmark::State& state) {
  storage::SimulatedDisk disk(64, 8192);
  storage::CommitManager commit_manager(&disk);
  if (!commit_manager.Format().ok()) return;
  std::uint64_t epoch = 2;
  for (auto _ : state) {
    Status s = commit_manager.CommitGroup({}, {}, {}, epoch++);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
}

// Work-shape gauges for the CI bench gate: a FIXED workload (64 groups
// of 8 objects on a fresh device) whose I/O counts are pure SimulatedDisk
// arithmetic — identical on every host and measuring budget, unlike the
// wall-clock span percentiles. bench_diff fails the run when a gated
// dump's `*.bench.*` metric drifts past tolerance.
void BM_CommitWorkShape(benchmark::State& state) {
  for (auto _ : state) {
    storage::SimulatedDisk disk(65536, 8192);
    storage::StorageEngine engine(&disk);
    if (!engine.Format().ok()) return;
    ObjectMemory memory;
    constexpr int kGroups = 64;
    constexpr int kGroupSize = 8;
    std::uint64_t base = 1000;
    for (int g = 0; g < kGroups; ++g) {
      std::vector<GsObject> batch = MakeBatch(memory, base, kGroupSize);
      base += kGroupSize;
      std::vector<const GsObject*> ptrs;
      for (const auto& o : batch) ptrs.push_back(&o);
      if (!engine.CommitObjects(ptrs, memory.symbols()).ok()) return;
    }
    const storage::DiskStats stats = disk.stats();
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.GetGauge("commit.bench.tracks_per_commit_x1000")
        ->Set(static_cast<std::int64_t>(stats.tracks_written * 1000 /
                                        kGroups));
    registry.GetGauge("commit.bench.seek_distance_per_commit")
        ->Set(static_cast<std::int64_t>(stats.seek_distance / kGroups));
  }
}

}  // namespace

BENCHMARK(BM_GroupCommit)->Arg(1)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_SingleObjectCommits);
BENCHMARK(BM_RootFlip);
BENCHMARK(BM_CommitWorkShape)->Iterations(1);

GS_BENCH_MAIN("commit");
