// Recovery-path cost: StorageEngine::Open over a device with N committed
// epochs (root scan + catalog reassembly + free-map rebuild), and the
// same with the newest catalog corrupted so Open takes the root-slot
// fallback. Expected shape: Open is O(catalog size), and the fallback
// adds one failed catalog read — not a full device scan.

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include "object/object_memory.h"
#include "storage/commit_manager.h"
#include "storage/storage_engine.h"

using namespace gemstone;  // NOLINT

namespace {

// Populates `disk` with `commits` single-object-batch epochs.
void Populate(storage::SimulatedDisk* disk, int commits, int batch) {
  storage::StorageEngine engine(disk);
  if (!engine.Format().ok()) return;
  ObjectMemory memory;
  std::uint64_t base = 1000;
  for (int c = 0; c < commits; ++c) {
    std::vector<GsObject> objects;
    for (int i = 0; i < batch; ++i) {
      GsObject object{Oid(base++), memory.kernel().object};
      object.WriteNamed(memory.symbols().Intern("payload"),
                        static_cast<TxnTime>(c + 1),
                        Value::String(std::string(64, 'x')));
      objects.push_back(std::move(object));
    }
    std::vector<const GsObject*> ptrs;
    for (const auto& o : objects) ptrs.push_back(&o);
    if (!engine.CommitObjects(ptrs, memory.symbols()).ok()) return;
  }
}

void BM_Open(benchmark::State& state) {
  const int commits = static_cast<int>(state.range(0));
  storage::SimulatedDisk disk(65536, 8192);
  Populate(&disk, commits, 16);
  for (auto _ : state) {
    storage::StorageEngine engine(&disk);
    if (!engine.Open().ok()) {
      state.SkipWithError("open failed");
      break;
    }
    benchmark::DoNotOptimize(engine.catalog().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Open)->Arg(1)->Arg(16)->Arg(64);

void BM_OpenWithRootFallback(benchmark::State& state) {
  const int commits = static_cast<int>(state.range(0));
  storage::SimulatedDisk disk(65536, 8192);
  Populate(&disk, commits, 16);
  // Bit rot in the newest epoch's catalog: every Open falls back to the
  // older root slot.
  storage::CommitManager manager(&disk);
  auto newest = manager.RecoverRoot();
  if (!newest.ok() || newest->catalog_tracks.empty() ||
      !disk.CorruptTrack(newest->catalog_tracks[0], 0, 0xFF).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    storage::StorageEngine engine(&disk);
    if (!engine.Open().ok()) {
      state.SkipWithError("fallback open failed");
      break;
    }
    benchmark::DoNotOptimize(engine.epoch());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenWithRootFallback)->Arg(16)->Arg(64);

}  // namespace

GS_BENCH_MAIN("recovery");
