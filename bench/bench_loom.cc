// §7 — the LOOM baseline measured: a two-level object memory faults
// whole objects in as the working set exceeds the cache, one object and
// one-or-more tracks per fault (no clustering), while GemStone's batched
// track-wise load brings a co-committed working set in with far fewer
// track reads. Expected shape: LOOM degrades sharply past its cache
// capacity; the batched load is flat.

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include "object/object_memory.h"
#include "storage/loom_cache.h"
#include "storage/storage_engine.h"

using namespace gemstone;  // NOLINT

namespace {

constexpr int kObjects = 512;

struct Store {
  SymbolTable symbols;
  storage::SimulatedDisk disk{16384, 8192};
  storage::StorageEngine engine{&disk};

  Store() {
    if (!engine.Format().ok()) std::abort();
    std::vector<GsObject> objects;
    std::vector<const GsObject*> ptrs;
    for (int i = 0; i < kObjects; ++i) {
      GsObject object{Oid(100 + static_cast<unsigned>(i)), Oid(7)};
      object.WriteNamed(symbols.Intern("v"), 1, Value::Integer(i));
      objects.push_back(std::move(object));
    }
    for (const auto& o : objects) ptrs.push_back(&o);
    if (!engine.CommitObjects(ptrs, symbols).ok()) std::abort();
  }
};

void BM_LoomWorkingSetSweep(benchmark::State& state) {
  Store store;
  const std::size_t cache = static_cast<std::size_t>(state.range(0));
  storage::LoomObjectMemory loom(&store.engine, &store.symbols, cache);
  store.disk.ResetStats();
  unsigned rng = 12345;
  for (auto _ : state) {
    rng = rng * 1664525u + 1013904223u;
    const Oid oid(100 + (rng >> 16) % kObjects);
    auto fetched = loom.Fetch(oid);
    if (!fetched.ok()) state.SkipWithError(fetched.status().ToString().c_str());
    benchmark::DoNotOptimize(fetched);
  }
  const auto& stats = loom.stats();
  state.counters["fault_rate_pct"] =
      100.0 * static_cast<double>(stats.faults) /
      static_cast<double>(stats.faults + stats.hits);
  state.counters["tracks_read"] =
      static_cast<double>(store.disk.stats().tracks_read);
  state.SetLabel("cache=" + std::to_string(cache) + "/" +
                 std::to_string(kObjects));
}

void BM_GemstoneBatchedWorkingSet(benchmark::State& state) {
  Store store;
  std::vector<Oid> all;
  for (int i = 0; i < kObjects; ++i) {
    all.push_back(Oid(100 + static_cast<unsigned>(i)));
  }
  store.disk.ResetStats();
  for (auto _ : state) {
    auto loaded = store.engine.LoadObjects(all, &store.symbols);
    if (!loaded.ok()) state.SkipWithError(loaded.status().ToString().c_str());
    benchmark::DoNotOptimize(loaded);
  }
  state.counters["tracks_read_per_sweep"] =
      static_cast<double>(store.disk.stats().tracks_read) /
      static_cast<double>(state.iterations());
}

}  // namespace

BENCHMARK(BM_LoomWorkingSetSweep)
    ->Arg(kObjects)       // everything fits: faults only on first touch
    ->Arg(kObjects / 2)   // half fits
    ->Arg(kObjects / 8);  // thrash
BENCHMARK(BM_GemstoneBatchedWorkingSet);

GS_BENCH_MAIN("loom");
