// C2 — track-granular storage and Boxer clustering (§6): "Disk access
// will always be by entire tracks" and objects committed together land on
// adjacent tracks, so "physical access paths parallel logical access".
//
// Expected shape: reading a logically-related batch that was committed
// together touches ~batch_bytes/track_capacity tracks with few seeks;
// the same objects committed one-per-transaction scatter, costing one or
// more tracks (and a seek) per object.

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include "object/object_memory.h"
#include "storage/storage_engine.h"

using namespace gemstone;  // NOLINT

namespace {

GsObject MakeRecord(ObjectMemory& memory, std::uint64_t oid, int payload) {
  GsObject object{Oid(oid), memory.kernel().object};
  object.WriteNamed(memory.symbols().Intern("name"), 1,
                    Value::String("record-" + std::to_string(oid)));
  object.WriteNamed(memory.symbols().Intern("payload"), 1,
                    Value::Integer(payload));
  return object;
}

void BM_ClusteredBatchRead(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  storage::SimulatedDisk disk(16384, 8192);
  storage::StorageEngine engine(&disk);
  if (!engine.Format().ok()) return;
  ObjectMemory memory;

  // One commit: the Boxer packs the whole batch onto adjacent tracks.
  std::vector<GsObject> objects;
  std::vector<const GsObject*> ptrs;
  for (int i = 0; i < batch; ++i) {
    objects.push_back(MakeRecord(memory, 100 + static_cast<unsigned>(i), i));
  }
  for (const auto& o : objects) ptrs.push_back(&o);
  if (!engine.CommitObjects(ptrs, memory.symbols()).ok()) return;

  std::vector<Oid> wanted;
  for (int i = 0; i < batch; ++i) {
    wanted.push_back(Oid(100 + static_cast<unsigned>(i)));
  }
  disk.ResetStats();
  for (auto _ : state) {
    auto loaded = engine.LoadObjects(wanted, &memory.symbols());
    if (!loaded.ok()) state.SkipWithError(loaded.status().ToString().c_str());
    benchmark::DoNotOptimize(loaded);
  }
  const storage::DiskStats stats = disk.stats();
  state.counters["tracks_read_per_object"] =
      static_cast<double>(stats.tracks_read) /
      static_cast<double>(state.iterations() * batch);
  state.counters["seeks_per_object"] =
      static_cast<double>(stats.seeks) /
      static_cast<double>(state.iterations() * batch);
}

void BM_ScatteredBatchRead(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  storage::SimulatedDisk disk(16384, 8192);
  storage::StorageEngine engine(&disk);
  if (!engine.Format().ok()) return;
  ObjectMemory memory;

  // One commit per object, interleaved with unrelated churn so related
  // records land far apart.
  std::vector<GsObject> churn_keepalive;
  for (int i = 0; i < batch; ++i) {
    GsObject object = MakeRecord(memory, 100 + static_cast<unsigned>(i), i);
    if (!engine.CommitObjects({&object}, memory.symbols()).ok()) return;
    churn_keepalive.push_back(
        MakeRecord(memory, 100000 + static_cast<unsigned>(i), i));
    GsObject* churn = &churn_keepalive.back();
    if (!engine.CommitObjects({churn}, memory.symbols()).ok()) return;
  }

  std::vector<Oid> wanted;
  for (int i = 0; i < batch; ++i) {
    wanted.push_back(Oid(100 + static_cast<unsigned>(i)));
  }
  disk.ResetStats();
  for (auto _ : state) {
    auto loaded = engine.LoadObjects(wanted, &memory.symbols());
    if (!loaded.ok()) state.SkipWithError(loaded.status().ToString().c_str());
    benchmark::DoNotOptimize(loaded);
  }
  const storage::DiskStats stats = disk.stats();
  state.counters["tracks_read_per_object"] =
      static_cast<double>(stats.tracks_read) /
      static_cast<double>(state.iterations() * batch);
  state.counters["seeks_per_object"] =
      static_cast<double>(stats.seeks) /
      static_cast<double>(state.iterations() * batch);
}

// Work-shape gauges for the CI bench gate (see bench_commit.cc): fixed
// 256-record workloads, clustered vs scattered, whose track/seek counts
// are deterministic SimulatedDisk arithmetic on every host.
void BM_TracksWorkShape(benchmark::State& state) {
  for (auto _ : state) {
    constexpr int kBatch = 256;
    auto& registry = telemetry::MetricsRegistry::Global();
    {
      storage::SimulatedDisk disk(16384, 8192);
      storage::StorageEngine engine(&disk);
      if (!engine.Format().ok()) return;
      ObjectMemory memory;
      std::vector<GsObject> objects;
      std::vector<const GsObject*> ptrs;
      for (int i = 0; i < kBatch; ++i) {
        objects.push_back(
            MakeRecord(memory, 100 + static_cast<unsigned>(i), i));
      }
      for (const auto& o : objects) ptrs.push_back(&o);
      if (!engine.CommitObjects(ptrs, memory.symbols()).ok()) return;
      std::vector<Oid> wanted;
      for (int i = 0; i < kBatch; ++i) {
        wanted.push_back(Oid(100 + static_cast<unsigned>(i)));
      }
      disk.ResetStats();
      if (!engine.LoadObjects(wanted, &memory.symbols()).ok()) return;
      registry.GetGauge("tracks.bench.clustered_reads_per_object_x1000")
          ->Set(static_cast<std::int64_t>(disk.stats().tracks_read * 1000 /
                                          kBatch));
      registry.GetGauge("tracks.bench.clustered_seeks_per_object_x1000")
          ->Set(static_cast<std::int64_t>(disk.stats().seeks * 1000 /
                                          kBatch));
    }
    {
      storage::SimulatedDisk disk(16384, 8192);
      storage::StorageEngine engine(&disk);
      if (!engine.Format().ok()) return;
      ObjectMemory memory;
      std::vector<GsObject> churn_keepalive;
      for (int i = 0; i < kBatch; ++i) {
        GsObject object =
            MakeRecord(memory, 100 + static_cast<unsigned>(i), i);
        if (!engine.CommitObjects({&object}, memory.symbols()).ok()) return;
        churn_keepalive.push_back(
            MakeRecord(memory, 100000 + static_cast<unsigned>(i), i));
        GsObject* churn = &churn_keepalive.back();
        if (!engine.CommitObjects({churn}, memory.symbols()).ok()) return;
      }
      std::vector<Oid> wanted;
      for (int i = 0; i < kBatch; ++i) {
        wanted.push_back(Oid(100 + static_cast<unsigned>(i)));
      }
      disk.ResetStats();
      if (!engine.LoadObjects(wanted, &memory.symbols()).ok()) return;
      registry.GetGauge("tracks.bench.scattered_reads_per_object_x1000")
          ->Set(static_cast<std::int64_t>(disk.stats().tracks_read * 1000 /
                                          kBatch));
      registry.GetGauge("tracks.bench.scattered_seeks_per_object_x1000")
          ->Set(static_cast<std::int64_t>(disk.stats().seeks * 1000 /
                                          kBatch));
    }
  }
}

}  // namespace

BENCHMARK(BM_ClusteredBatchRead)->Arg(64)->Arg(512);
BENCHMARK(BM_ScatteredBatchRead)->Arg(64)->Arg(512);
BENCHMARK(BM_TracksWorkShape)->Iterations(1);

GS_BENCH_MAIN("tracks");
