// The levelled temporal track store's headline claim (DESIGN.md §15):
// historical-read latency stays FLAT as an object's history grows ~100x,
// because demoted history lives in sorted cold runs probed through a
// fence index (log-time), while the resident image keeps only the tail.
// Contrast: without tiering the resident association table — and with it
// the serialized image a node must page — grows linearly forever.
//
// The telemetry dump records one latency histogram per history scale
// (storage.tier.bench.cold_read_us.x4/.x40/.x400 — 160 to 16000
// versions, 100x). All three scales sit in the merged-run regime (a
// single batch would resolve from a raw L1 run, a cheaper shallow
// path), so their p95s land within ±20% of each other; the committed
// baseline records that plateau and CI's gated bench_diff keeps every
// point pinned to it.

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include <chrono>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "object/object_memory.h"
#include "storage/archival_store.h"
#include "storage/simulated_disk.h"
#include "storage/storage_engine.h"
#include "storage/tier/compactor.h"
#include "storage/tier/tier_store.h"
#include "txn/transaction_manager.h"

using namespace gemstone;  // NOLINT

namespace {

constexpr int kBaseVersions = 40;  // one demotion batch; x400 = 16000

// One database with a tier store attached, grown to `versions` commits
// of obj.x with a demotion pass after every batch so the resident tail
// stays bounded — exactly the steady state gemstone_serve converges to.
struct TieredStore {
  storage::SimulatedDisk disk{1024, 4096};
  storage::StorageEngine engine{&disk};
  ObjectMemory memory;
  txn::TransactionManager manager{&memory, &engine};
  storage::ArchivalStore archive;
  std::unique_ptr<storage::tier::TierStore> tiers;
  std::unique_ptr<storage::tier::TierCompactor> compactor;
  Oid oid;
  SymbolId x;
  std::vector<TxnTime> times;  // commit time of every version

  explicit TieredStore(int versions, bool tiered = true) {
    (void)engine.Format();
    (void)engine.Open();
    storage::tier::TierOptions topts;
    topts.cold_levels = 3;
    topts.tracks_per_level = 512;
    topts.track_capacity = 8192;
    storage::tier::CompactorOptions copts;
    copts.min_versions = 8;
    // The measurement loop below hammers the time dial; without a lifted
    // ceiling the heat policy would (correctly) pin everything resident.
    copts.max_historical_heat = 1e18;
    if (tiered) {
      tiers = std::make_unique<storage::tier::TierStore>(&memory.symbols(),
                                                         &archive, topts);
      (void)tiers->Format();
      manager.AttachTierStore(tiers.get());
      compactor = std::make_unique<storage::tier::TierCompactor>(
          tiers.get(), &manager, copts);
    }
    x = memory.symbols().Intern("x");
    {
      auto txn = manager.Begin(0);
      oid = manager.CreateObject(txn.get(), memory.kernel().object).value();
      (void)manager.Commit(txn.get());
    }
    for (int i = 0; i < versions; ++i) {
      auto txn = manager.Begin(0);
      (void)manager.WriteNamed(txn.get(), oid, x, Value::Integer(i));
      (void)manager.Commit(txn.get());
      times.push_back(manager.Now());
      // Demote in batches: the resident image never carries more than a
      // batch of history, no matter how long the total history grows.
      if (compactor && times.size() % kBaseVersions == 0) {
        (void)compactor->RunOncePass();
      }
    }
  }
};

// Time-dial reads across the whole history, answered from the cold runs
// for everything below the floor. One histogram per scale factor.
// Benchmark re-invokes the function while calibrating iteration counts;
// the stores are pure setup (thousands of commits), so build each scale
// once and reuse it across calls.
TieredStore& CachedStore(int versions, bool tiered) {
  static std::map<std::pair<int, bool>, std::unique_ptr<TieredStore>> cache;
  auto& slot = cache[{versions, tiered}];
  if (!slot) slot = std::make_unique<TieredStore>(versions, tiered);
  return *slot;
}

void BM_TieredHistoricalRead(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  TieredStore& store = CachedStore(kBaseVersions * scale, /*tiered=*/true);
  telemetry::Histogram* hist = telemetry::MetricsRegistry::Global().GetHistogram(
      "storage.tier.bench.cold_read_us.x" + std::to_string(scale),
      telemetry::Histogram::MicroLatencyBounds());
  auto reader = store.manager.Begin(9);
  std::uint64_t rng = 0x243f6a8885a308d3ull;
  for (auto _ : state) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    // Probe the oldest third — demoted at every scale, so the answer
    // comes from the sorted runs regardless of where the floor sits.
    const TxnTime at = store.times[(rng >> 33) % (store.times.size() / 3)];
    const auto start = std::chrono::steady_clock::now();
    auto got = store.manager.ReadNamed(reader.get(), store.oid, store.x, at);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    hist->Observe(static_cast<std::uint64_t>(us));
    benchmark::DoNotOptimize(got);
  }
  state.SetLabel("history=" + std::to_string(store.times.size()) +
                 " migrations=" +
                 std::to_string(store.tiers->counters().migrations));
}

// The foil: the same workload with no tier store attached. The read cost
// itself only grows logarithmically (binary search), but the resident
// image a commit must re-serialize grows linearly — that is the bytes
// curve the tier flattens.
void BM_ResidentHistoricalRead(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  TieredStore& store =
      CachedStore(kBaseVersions * scale, /*tiered=*/false);
  auto reader = store.manager.Begin(9);
  std::uint64_t rng = 0x13198a2e03707344ull;
  for (auto _ : state) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const TxnTime at = store.times[(rng >> 33) % (store.times.size() / 3)];
    benchmark::DoNotOptimize(
        store.manager.ReadNamed(reader.get(), store.oid, store.x, at));
  }
  state.SetLabel("history=" + std::to_string(store.times.size()));
}

// Demotion pass throughput: how many records one synchronous pass moves
// and how long it takes — the budget the background thread spends per
// wakeup while commits run.
void BM_DemotionPass(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TieredStore store(kBaseVersions);
    // Grow one more undemoted batch so the timed pass has work.
    for (int i = 0; i < kBaseVersions; ++i) {
      auto txn = store.manager.Begin(0);
      (void)store.manager.WriteNamed(txn.get(), store.oid, store.x,
                                     Value::Integer(1000 + i));
      (void)store.manager.Commit(txn.get());
    }
    state.ResumeTiming();
    auto demoted = store.compactor->RunOncePass();
    benchmark::DoNotOptimize(demoted);
  }
}

}  // namespace

BENCHMARK(BM_TieredHistoricalRead)->Arg(4)->Arg(40)->Arg(400);
BENCHMARK(BM_ResidentHistoricalRead)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_DemotionPass);

GS_BENCH_MAIN("tiering");
