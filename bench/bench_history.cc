// C5 — the cost of keeping history (§5.3/§6): association tables grow
// forever ("no garbage collection need be done on database objects");
// reads at any time are a binary search over the element's history.
// Expected shape: read cost grows logarithmically with history length,
// storage bytes linearly — the design bets both are acceptable, which is
// what falling storage prices were about (§2E).

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include "object/gs_object.h"
#include "object/object_memory.h"
#include "storage/serializer.h"

using namespace gemstone;  // NOLINT

namespace {

GsObject BuildHistory(ObjectMemory& memory, int versions) {
  GsObject object{Oid(100), memory.kernel().object};
  const SymbolId salary = memory.symbols().Intern("salary");
  for (int v = 1; v <= versions; ++v) {
    object.WriteNamed(salary, static_cast<TxnTime>(v),
                      Value::Integer(24000 + v));
  }
  return object;
}

void BM_ReadCurrent(benchmark::State& state) {
  ObjectMemory memory;
  GsObject object = BuildHistory(memory, static_cast<int>(state.range(0)));
  const SymbolId salary = memory.symbols().Intern("salary");
  for (auto _ : state) {
    benchmark::DoNotOptimize(object.ReadNamed(salary, kTimeNow));
  }
  state.SetLabel("history=" + std::to_string(state.range(0)));
}

void BM_ReadPast(benchmark::State& state) {
  ObjectMemory memory;
  const int versions = static_cast<int>(state.range(0));
  GsObject object = BuildHistory(memory, versions);
  const SymbolId salary = memory.symbols().Intern("salary");
  const TxnTime probe = static_cast<TxnTime>(versions / 3 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(object.ReadNamed(salary, probe));
  }
  state.SetLabel("history=" + std::to_string(state.range(0)));
}

void BM_WriteNewVersion(benchmark::State& state) {
  ObjectMemory memory;
  const int versions = static_cast<int>(state.range(0));
  GsObject object = BuildHistory(memory, versions);
  const SymbolId salary = memory.symbols().Intern("salary");
  TxnTime t = static_cast<TxnTime>(versions);
  for (auto _ : state) {
    object.WriteNamed(salary, ++t, Value::Integer(1));
  }
}

// Storage growth: serialized image size vs history length ("Database
// objects in the past never go away").
void BM_ImageBytesPerVersion(benchmark::State& state) {
  ObjectMemory memory;
  const int versions = static_cast<int>(state.range(0));
  GsObject object = BuildHistory(memory, versions);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto image = storage::SerializeObject(object, memory.symbols());
    bytes = image.size();
    benchmark::DoNotOptimize(image);
  }
  state.counters["image_bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_version"] =
      static_cast<double>(bytes) / static_cast<double>(versions);
}

// Work-shape gauges for the CI bench gate (see bench_commit.cc): the
// serialized image size of a fixed 1000-version history is a pure
// function of the codec — any drift is a format regression.
void BM_HistoryWorkShape(benchmark::State& state) {
  for (auto _ : state) {
    ObjectMemory memory;
    constexpr int kVersions = 1000;
    GsObject object = BuildHistory(memory, kVersions);
    const auto image = storage::SerializeObject(object, memory.symbols());
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.GetGauge("history.bench.image_bytes_v1000")
        ->Set(static_cast<std::int64_t>(image.size()));
    registry.GetGauge("history.bench.bytes_per_version_x1000")
        ->Set(static_cast<std::int64_t>(image.size() * 1000 / kVersions));
  }
}

}  // namespace

BENCHMARK(BM_ReadCurrent)->Arg(1)->Arg(100)->Arg(10000)->Arg(1000000);
BENCHMARK(BM_ReadPast)->Arg(1)->Arg(100)->Arg(10000)->Arg(1000000);
BENCHMARK(BM_WriteNewVersion)->Arg(1000);
BENCHMARK(BM_ImageBytesPerVersion)->Arg(10)->Arg(1000)->Arg(100000);
BENCHMARK(BM_HistoryWorkShape)->Iterations(1);

GS_BENCH_MAIN("history");
