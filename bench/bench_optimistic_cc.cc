// C1 — optimistic transaction control (§6): throughput and abort rate as
// contention varies. Expected shape: with disjoint working sets the
// optimistic scheme commits everything with no coordination cost; as the
// hot-set shrinks, aborts climb but committed throughput degrades
// gracefully (each abort wastes only one workspace, no locks held).

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include <atomic>
#include <thread>

#include "txn/session.h"
#include "txn/transaction_manager.h"

using namespace gemstone;  // NOLINT

namespace {

void BM_ConcurrentCommits(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int hot_objects = static_cast<int>(state.range(1));
  constexpr int kTxnsPerThread = 200;

  for (auto _ : state) {
    state.PauseTiming();
    ObjectMemory memory;
    txn::TransactionManager manager(&memory);
    const SymbolId value_sym = memory.symbols().Intern("v");
    std::vector<Oid> objects;
    {
      txn::Session setup(&manager, 0);
      (void)setup.Begin();
      for (int i = 0; i < hot_objects; ++i) {
        Oid oid = setup.Create(memory.kernel().object).ValueOrDie();
        (void)setup.WriteNamed(oid, value_sym, Value::Integer(0));
        objects.push_back(oid);
      }
      (void)setup.Commit();
    }
    state.ResumeTiming();

    std::vector<std::thread> workers;
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        txn::Session session(&manager, static_cast<SessionId>(w + 1));
        unsigned rng = static_cast<unsigned>(w) * 2654435761u + 1;
        for (int t = 0; t < kTxnsPerThread; ++t) {
          for (;;) {
            rng = rng * 1664525u + 1013904223u;
            const Oid oid = objects[rng % objects.size()];
            (void)session.Begin();
            auto v = session.ReadNamed(oid, value_sym);
            if (!v.ok()) {
              (void)session.Abort();
              continue;
            }
            // Widen the read-to-commit window so transactions actually
            // overlap even on few cores.
            std::this_thread::yield();
            (void)session.WriteNamed(oid, value_sym,
                                     Value::Integer(v->integer() + 1));
            if (session.Commit().ok()) break;
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();

    const txn::TxnStats stats = manager.stats();
    state.counters["commits"] = static_cast<double>(stats.committed);
    state.counters["conflicts"] = static_cast<double>(stats.conflicts);
    state.counters["abort_rate_pct"] =
        100.0 * static_cast<double>(stats.conflicts) /
        static_cast<double>(stats.begun);
  }
  state.SetLabel("threads=" + std::to_string(threads) +
                 " hot_set=" + std::to_string(hot_objects));
  state.SetItemsProcessed(state.iterations() * threads * kTxnsPerThread);
}

// Read-only transactions validate trivially regardless of writer load.
void BM_ReadOnlyUnderWriters(benchmark::State& state) {
  ObjectMemory memory;
  txn::TransactionManager manager(&memory);
  const SymbolId value_sym = memory.symbols().Intern("v");
  Oid hot;
  {
    txn::Session setup(&manager, 0);
    (void)setup.Begin();
    hot = setup.Create(memory.kernel().object).ValueOrDie();
    (void)setup.WriteNamed(hot, value_sym, Value::Integer(0));
    (void)setup.Commit();
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    txn::Session session(&manager, 1);
    while (!stop.load()) {
      (void)session.Begin();
      (void)session.WriteNamed(hot, value_sym, Value::Integer(1));
      (void)session.Commit();
    }
  });

  txn::Session reader(&manager, 2);
  std::uint64_t aborts = 0;
  for (auto _ : state) {
    (void)reader.Begin();
    reader.SetTimeDialToSafeTime();
    benchmark::DoNotOptimize(reader.ReadNamed(hot, value_sym));
    if (!reader.Commit().ok()) ++aborts;
    reader.ClearTimeDial();
  }
  stop.store(true);
  writer.join();
  state.counters["reader_aborts"] = static_cast<double>(aborts);
}

}  // namespace

BENCHMARK(BM_ConcurrentCommits)
    ->Args({1, 1024})
    ->Args({4, 1024})
    ->Args({4, 16})
    ->Args({4, 2})
    ->Args({8, 16})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3)
    ->UseRealTime();
BENCHMARK(BM_ReadOnlyUnderWriters);

GS_BENCH_MAIN("optimistic_cc");
