// F1 — Figure 1 ("A Database with History") as a benchmark: the cost of
// reading the current state vs. a past state through the full OPAL stack,
// as the president's history grows.

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include "executor/executor.h"

using namespace gemstone;  // NOLINT

namespace {

struct Figure1Fixture {
  executor::Executor server;
  SessionId session;
  TxnTime mid_time = 0;

  explicit Figure1Fixture(int history_length) {
    session = server.Login().ValueOrDie();
    auto run = [&](const std::string& src) {
      auto r = server.Execute(session, src);
      if (!r.ok()) std::abort();
    };
    run("Object subclass: 'Company' instVarNames: #('president')");
    run("Acme := Company new. System commitTransaction");
    for (int i = 0; i < history_length; ++i) {
      run("Acme!president := 'president-" + std::to_string(i) +
          "'. System commitTransaction");
      if (i == history_length / 2) mid_time = server.transactions().Now();
    }
  }
};

void BM_ReadCurrentPresident(benchmark::State& state) {
  Figure1Fixture fixture(static_cast<int>(state.range(0)));
  auto* interp = fixture.server.interpreter(fixture.session);
  auto* memory = &fixture.server.memory();
  opal::Compiler compiler(memory);
  auto body = compiler.CompileBody("Acme!president").ValueOrDie();
  for (auto _ : state) {
    auto r = interp->Run(body);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("history=" + std::to_string(state.range(0)));
}

void BM_ReadPastPresident(benchmark::State& state) {
  Figure1Fixture fixture(static_cast<int>(state.range(0)));
  auto* interp = fixture.server.interpreter(fixture.session);
  opal::Compiler compiler(&fixture.server.memory());
  auto body = compiler
                  .CompileBody("Acme!president@" +
                               std::to_string(fixture.mid_time))
                  .ValueOrDie();
  for (auto _ : state) {
    auto r = interp->Run(body);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("history=" + std::to_string(state.range(0)) + " @t=" +
                 std::to_string(fixture.mid_time));
}

void BM_TimeDialReplay(benchmark::State& state) {
  Figure1Fixture fixture(static_cast<int>(state.range(0)));
  fixture.server.session(fixture.session)->SetTimeDial(fixture.mid_time);
  auto* interp = fixture.server.interpreter(fixture.session);
  opal::Compiler compiler(&fixture.server.memory());
  auto body = compiler.CompileBody("Acme!president").ValueOrDie();
  for (auto _ : state) {
    auto r = interp->Run(body);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}

}  // namespace

BENCHMARK(BM_ReadCurrentPresident)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_ReadPastPresident)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_TimeDialReplay)->Arg(256);

GS_BENCH_MAIN("figure1");
