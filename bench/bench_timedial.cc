// C8 — SafeTime read-only transactions (§5.4): "A read-only transaction
// can set its time dial to SafeTime to get the most recent state for
// which no currently running transaction can make changes."
//
// Expected shape: under a steady writer, current-time readers abort with
// some probability (their read sets are invalidated), while SafeTime
// readers never abort and never block the writer.

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include <atomic>
#include <thread>

#include "txn/session.h"
#include "txn/transaction_manager.h"

using namespace gemstone;  // NOLINT

namespace {

struct HotStore {
  ObjectMemory memory;
  txn::TransactionManager manager{&memory};
  std::vector<Oid> objects;
  SymbolId value_sym;

  explicit HotStore(int n) {
    value_sym = memory.symbols().Intern("v");
    txn::Session setup(&manager, 0);
    (void)setup.Begin();
    for (int i = 0; i < n; ++i) {
      Oid oid = setup.Create(memory.kernel().object).ValueOrDie();
      (void)setup.WriteNamed(oid, value_sym, Value::Integer(0));
      objects.push_back(oid);
    }
    (void)setup.Commit();
  }
};

void RunReaders(benchmark::State& state, bool pin_safe_time) {
  HotStore store(8);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    txn::Session session(&store.manager, 1);
    unsigned rng = 12345;
    while (!stop.load()) {
      rng = rng * 1664525u + 1013904223u;
      (void)session.Begin();
      (void)session.WriteNamed(store.objects[rng % store.objects.size()],
                               store.value_sym, Value::Integer(1));
      (void)session.Commit();
    }
  });

  txn::Session reader(&store.manager, 2);
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  for (auto _ : state) {
    (void)reader.Begin();
    if (pin_safe_time) reader.SetTimeDialToSafeTime();
    std::int64_t sum = 0;
    for (Oid oid : store.objects) {
      auto v = reader.ReadNamed(oid, store.value_sym);
      if (v.ok()) sum += v->integer();
    }
    benchmark::DoNotOptimize(sum);
    if (reader.Commit().ok()) {
      ++commits;
    } else {
      ++aborts;
    }
    reader.ClearTimeDial();
  }
  stop.store(true);
  writer.join();
  state.counters["reader_commits"] = static_cast<double>(commits);
  state.counters["reader_aborts"] = static_cast<double>(aborts);
  state.counters["abort_rate_pct"] =
      100.0 * static_cast<double>(aborts) /
      static_cast<double>(commits + aborts);
}

void BM_CurrentTimeReaderUnderWriter(benchmark::State& state) {
  RunReaders(state, /*pin_safe_time=*/false);
}

void BM_SafeTimeReaderUnderWriter(benchmark::State& state) {
  RunReaders(state, /*pin_safe_time=*/true);
}

// Cost of the dial itself: reading at a pinned past time vs now.
void BM_DialedReadCost(benchmark::State& state) {
  HotStore store(1);
  txn::Session session(&store.manager, 3);
  // Build a little history first.
  for (int i = 0; i < 100; ++i) {
    (void)session.Begin();
    (void)session.WriteNamed(store.objects[0], store.value_sym,
                             Value::Integer(i));
    (void)session.Commit();
  }
  (void)session.Begin();
  session.SetTimeDial(static_cast<TxnTime>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.ReadNamed(store.objects[0], store.value_sym));
  }
}

}  // namespace

BENCHMARK(BM_CurrentTimeReaderUnderWriter)->UseRealTime();
BENCHMARK(BM_SafeTimeReaderUnderWriter)->UseRealTime();
BENCHMARK(BM_DialedReadCost)->Arg(5)->Arg(50);

GS_BENCH_MAIN("timedial");
