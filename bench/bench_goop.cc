// C6 — GOOP resolution vs. the primary physical path (§6): "Where an
// object is an element of more than one set, one logical path is chosen
// as the basis for the physical access path, and other references to the
// object use a global object-oriented pointer (GOOP). The GOOP is
// resolved through a global object table."
//
// Expected shape: the primary path (a held pointer within the chosen
// physical layout) is a dereference; the GOOP route pays a hash probe of
// the global object table per hop. Both are O(1) — the design's point is
// that the *common* case (strict tree paths) avoids even that probe.

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include "object/object_memory.h"

using namespace gemstone;  // NOLINT

namespace {

struct Chain {
  ObjectMemory memory;
  std::vector<Oid> oids;
  std::vector<const GsObject*> primary;  // primary-path pointers
  SymbolId next_sym;

  explicit Chain(int length) {
    next_sym = memory.symbols().Intern("next");
    Oid previous = kNilOid;
    for (int i = 0; i < length; ++i) {
      Oid oid = memory.AllocateOid();
      GsObject object(oid, memory.kernel().object);
      if (!previous.IsNil()) {
        object.WriteNamed(next_sym, 1, Value::Ref(previous));
      }
      (void)memory.Insert(std::move(object));
      oids.push_back(oid);
      previous = oid;
    }
    for (Oid oid : oids) primary.push_back(memory.Find(oid));
  }
};

// Traversal where every hop resolves through the global object table.
void BM_GoopResolutionChain(benchmark::State& state) {
  Chain chain(static_cast<int>(state.range(0)));
  const Oid head = chain.oids.back();
  for (auto _ : state) {
    Oid current = head;
    int hops = 0;
    while (!current.IsNil()) {
      const GsObject* object = chain.memory.Find(current);  // GOOP table
      const Value* next = object->ReadNamed(chain.next_sym, kTimeNow);
      current = (next != nullptr && next->IsRef()) ? next->ref() : kNilOid;
      ++hops;
    }
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// Traversal along the primary physical path: pointers already resolved
// (objects stored along their chosen access path).
void BM_PrimaryPathChain(benchmark::State& state) {
  Chain chain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    int hops = 0;
    // Walk the held pointers in reverse order — the physical layout of
    // the primary path.
    for (auto it = chain.primary.rbegin(); it != chain.primary.rend(); ++it) {
      const Value* next = (*it)->ReadNamed(chain.next_sym, kTimeNow);
      benchmark::DoNotOptimize(next);
      ++hops;
    }
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// One GOOP resolution in isolation, across table sizes (hash behavior).
void BM_SingleGoopResolve(benchmark::State& state) {
  Chain chain(static_cast<int>(state.range(0)));
  const Oid target = chain.oids[chain.oids.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.memory.Find(target));
  }
  state.SetLabel("table_size=" + std::to_string(state.range(0)));
}

}  // namespace

BENCHMARK(BM_GoopResolutionChain)->Arg(1000)->Arg(100000);
BENCHMARK(BM_PrimaryPathChain)->Arg(1000)->Arg(100000);
BENCHMARK(BM_SingleGoopResolve)->Arg(1000)->Arg(1000000);

GS_BENCH_MAIN("goop");
