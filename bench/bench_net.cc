// Gateway throughput and latency over real loopback sockets: a Server
// with an in-memory Executor behind it, driven by blocking net::Clients.
// Emits BENCH_net.json with requests/sec (net.bench_rps_* gauges) and the
// gateway's own net.request_latency_us histogram (p50/p99), so CI's
// bench-smoke artifact tracks the network link alongside the engine.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "admin/authorization.h"
#include "bench_telemetry.h"
#include "executor/executor.h"
#include "net/client.h"
#include "net/server.h"
#include "telemetry/metrics.h"
#include "telemetry/observatory.h"

namespace {

using gemstone::admin::AuthorizationManager;
using gemstone::executor::Executor;
using gemstone::net::Client;
using gemstone::net::Server;
using gemstone::net::ServerOptions;

/// One gateway shared by every benchmark in the binary; tearing a server
/// up and down per iteration would measure thread spawn, not the wire.
struct Gateway {
  Gateway() {
    ServerOptions options;
    options.workers = 4;
    options.max_connections = 128;
    server = std::make_unique<Server>(&executor, &auth, options);
    if (!server->Start().ok()) std::abort();
  }

  Executor executor;
  AuthorizationManager auth;
  std::unique_ptr<Server> server;
};

Gateway& SharedGateway() {
  static Gateway* gateway = new Gateway();  // lives for the process
  return *gateway;
}

/// Round-trips of a trivial OPAL block: the floor for wire + framing +
/// dispatch + compile-execute-return latency.
void BM_NetExecuteRoundTrip(benchmark::State& state) {
  Gateway& gateway = SharedGateway();
  Client client;
  if (!client.Connect(gateway.server->port()).ok() || !client.Login().ok()) {
    state.SkipWithError("connect/login failed");
    return;
  }
  for (auto _ : state) {
    auto result = client.Execute("3 + 4");
    if (!result.ok()) {
      state.SkipWithError("execute failed");
      break;
    }
    benchmark::DoNotOptimize(result.value());
  }
  (void)client.Logout();
  state.counters["rps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetExecuteRoundTrip);

/// Full transaction over the wire: write + commit + begin.
void BM_NetCommitRoundTrip(benchmark::State& state) {
  Gateway& gateway = SharedGateway();
  Client client;
  if (!client.Connect(gateway.server->port()).ok() || !client.Login().ok()) {
    state.SkipWithError("connect/login failed");
    return;
  }
  if (!client.Execute("BenchBox := Object new").ok() ||
      !client.Commit().ok() || !client.Begin().ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    if (!client.Execute("BenchBox instVarNamed: 'v' put: 1").ok() ||
        !client.Commit().ok() || !client.Begin().ok()) {
      state.SkipWithError("txn failed");
      break;
    }
  }
  (void)client.Logout();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetCommitRoundTrip);

/// Concurrent clients hammering disjoint globals: gateway-level
/// parallelism (framing, queueing, socket I/O overlap execution).
void BM_NetConcurrentClients(benchmark::State& state) {
  Gateway& gateway = SharedGateway();
  const int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int i = 0; i < clients; ++i) {
      threads.emplace_back([&gateway] {
        Client client;
        if (!client.Connect(gateway.server->port()).ok() ||
            !client.Login().ok()) {
          return;
        }
        for (int r = 0; r < 8; ++r) {
          (void)client.Execute("2 * 21");
        }
        (void)client.Logout();
      });
    }
    for (std::thread& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() * clients * 8);
}
BENCHMARK(BM_NetConcurrentClients)->Arg(2)->Arg(8);

/// The read-path scaling evidence (DESIGN.md §12): four client threads on
/// a 90/10 read/write mix against a gateway with Arg(0) workers. Reads
/// are execute-heavy OPAL (so the old coarse lock, not the socket, was
/// the wall) on a shared committed object; each client writes a disjoint
/// global, so OCC conflicts stay ~0 and the measurement isolates lock
/// contention. CI's bench-smoke gate requires 4-worker throughput ≥ 2x
/// 1-worker (net.bench_read_mix_rps_{1,4}w in BENCH_net.json).
void BM_NetReadHeavyMix(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 50;

  // Own gateway per run: the variable under test is the worker count.
  Executor executor;
  AuthorizationManager auth;
  ServerOptions options;
  options.workers = workers;
  options.max_connections = 32;
  Server server(&executor, &auth, options);
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }

  const char* write_targets[kClients] = {"Wa", "Wb", "Wc", "Wd"};
  {
    Client setup;
    if (!setup.Connect(server.port()).ok() || !setup.Login().ok()) {
      state.SkipWithError("setup connect failed");
      return;
    }
    bool ok = setup.Execute("MixBox := Object new. "
                            "MixBox instVarNamed: 'v' put: 1")
                  .ok();
    for (const char* target : write_targets) {
      ok = ok && setup.Execute(std::string(target) + " := Object new").ok();
    }
    if (!ok || !setup.Commit().ok()) {
      state.SkipWithError("seed failed");
      return;
    }
    (void)setup.Logout();
  }

  // Execution-dominated read: ~2000 interpreted instVar reads per request.
  const std::string read_block =
      "| s | s := 0. 1 to: 2000 do: [:i | "
      "s := s + (MixBox instVarNamed: 'v')]. s";

  double total_ops = 0;
  double total_secs = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        Client client;
        if (!client.Connect(server.port()).ok() || !client.Login().ok()) {
          return;
        }
        const std::string write_block =
            std::string(write_targets[c]) + " instVarNamed: 'v' put: 2";
        for (int op = 0; op < kOpsPerClient; ++op) {
          if (op % 10 == 9) {
            // The write dirties the session, so it (and its commit) runs
            // on the exclusive path; Begin restores read-path
            // eligibility.
            (void)client.Execute(write_block);
            (void)client.Commit();
            (void)client.Begin();
          } else {
            (void)client.Execute(read_block);
          }
        }
        (void)client.Logout();
      });
    }
    for (std::thread& t : threads) t.join();
    total_secs +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    total_ops += kClients * kOpsPerClient;
  }
  state.SetItemsProcessed(state.iterations() * kClients * kOpsPerClient);
  if (total_secs > 0) {
    const double rps = total_ops / total_secs;
    state.counters["rps"] = benchmark::Counter(rps);
    gemstone::telemetry::MetricsRegistry::Global()
        .GetGauge(workers == 1 ? "net.bench_read_mix_rps_1w"
                               : "net.bench_read_mix_rps_4w")
        ->Set(static_cast<std::int64_t>(rps));
  }
}
BENCHMARK(BM_NetReadHeavyMix)->Arg(1)->Arg(4)->UseRealTime();

}  // namespace

// After the run, fold requests/sec into a gauge so EmitTelemetryReport's
// BENCH_net.json carries it next to net.request_latency_us p50/p99.
int main(int argc, char** argv) {
  char arg0_default[] = "benchmark";
  char* args_default = arg0_default;
  if (!argv) {
    argc = 1;
    argv = &args_default;
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  // Bench with the Observatory sampler live at its production cadence:
  // the read-path scaling gate in CI then doubles as the "sampling costs
  // under 1% of throughput" acceptance check — a sampler that stalls the
  // gateway shows up as a scaling regression, not as a silent tax.
  gemstone::telemetry::Observatory observatory(300);
  observatory.Start(std::chrono::seconds(1));
  ::benchmark::RunSpecifiedBenchmarks();
  observatory.Stop();

  // requests/sec observed by the gateway itself over the whole run.
  auto& registry = gemstone::telemetry::MetricsRegistry::Global();
  const auto snapshot = registry.Snapshot();
  const auto requests = snapshot.counters.find("net.requests");
  const auto latency = snapshot.histograms.find("net.request_latency_us");
  if (requests != snapshot.counters.end() &&
      latency != snapshot.histograms.end() && latency->second.sum > 0) {
    const double rps = static_cast<double>(requests->second) /
                       (static_cast<double>(latency->second.sum) / 1e6);
    registry.GetGauge("net.bench_rps")
        ->Set(static_cast<std::int64_t>(rps));
  }

  // Per-stage attribution: where did the wall-clock go? The stage deltas
  // telescope (queue + lock_wait + execute + serialize + flush = total),
  // so the stage sums must re-add to net.request_latency_us.sum within
  // per-stage truncation error — bench_lock_wait_share_pct is then the
  // coarse-lock contention share, and stage_sum_vs_total_pct ~ 100 is the
  // accounting's own self-check.
  std::uint64_t stage_sum = 0;
  std::uint64_t lock_wait_sum = 0;
  for (const char* stage :
       {"net.stage.queue_us", "net.stage.lock_wait_us",
        "net.stage.execute_us", "net.stage.serialize_us",
        "net.stage.flush_us"}) {
    const auto it = snapshot.histograms.find(stage);
    if (it == snapshot.histograms.end()) continue;
    stage_sum += it->second.sum;
    if (it->first == "net.stage.lock_wait_us") {
      lock_wait_sum = it->second.sum;
    }
  }
  if (latency != snapshot.histograms.end() && latency->second.sum > 0) {
    registry.GetGauge("net.bench_lock_wait_share_pct")
        ->Set(static_cast<std::int64_t>(
            100.0 * static_cast<double>(lock_wait_sum) /
            static_cast<double>(latency->second.sum)));
    registry.GetGauge("net.bench_stage_sum_vs_total_pct")
        ->Set(static_cast<std::int64_t>(
            100.0 * static_cast<double>(stage_sum) /
            static_cast<double>(latency->second.sum)));
  }
  SharedGateway().server->Stop();
  gemstone::bench::EmitTelemetryReport("net");
  return 0;
}
