// Machine-readable benchmark output: GS_BENCH_MAIN(name) replaces
// BENCHMARK_MAIN() and, after the Google Benchmark run, dumps the
// process-wide telemetry snapshot as JSON lines — one object per metric
// — into BENCH_<name>.json in the working directory (and echoes each
// line to stdout prefixed with "BENCH_JSON "). Downstream tooling can
// diff runs without scraping the human-oriented benchmark table.
#ifndef GEMSTONE_BENCH_BENCH_TELEMETRY_H_
#define GEMSTONE_BENCH_BENCH_TELEMETRY_H_

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>

#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace gemstone::bench {

inline void EmitJsonLine(std::ostream& file, const std::string& bench,
                         const std::string& metric, double value,
                         const std::string& unit) {
  std::string line = "{\"bench\":\"" + telemetry::JsonEscape(bench) +
                     "\",\"metric\":\"" + telemetry::JsonEscape(metric) +
                     "\",\"value\":";
  // Counters and gauges are integral; render them without a fraction.
  if (value == static_cast<double>(static_cast<long long>(value))) {
    line += std::to_string(static_cast<long long>(value));
  } else {
    line += std::to_string(value);
  }
  line += ",\"unit\":\"" + telemetry::JsonEscape(unit) + "\"}";
  file << line << "\n";
  std::cout << "BENCH_JSON " << line << "\n";
}

/// Writes BENCH_<name>.json from the live telemetry registry: every
/// counter and gauge, plus count/sum/p50/p95/p99 per histogram.
inline void EmitTelemetryReport(const std::string& name) {
  const telemetry::Snapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  std::ofstream file("BENCH_" + name + ".json");
  for (const auto& [metric, value] : snapshot.counters) {
    EmitJsonLine(file, name, metric, static_cast<double>(value), "count");
  }
  for (const auto& [metric, value] : snapshot.gauges) {
    EmitJsonLine(file, name, metric, static_cast<double>(value), "value");
  }
  for (const auto& [metric, histogram] : snapshot.histograms) {
    EmitJsonLine(file, name, metric + ".count",
                 static_cast<double>(histogram.count), "count");
    EmitJsonLine(file, name, metric + ".sum",
                 static_cast<double>(histogram.sum), "us");
    EmitJsonLine(file, name, metric + ".p50", histogram.Percentile(50), "us");
    EmitJsonLine(file, name, metric + ".p95", histogram.Percentile(95), "us");
    EmitJsonLine(file, name, metric + ".p99", histogram.Percentile(99), "us");
  }
}

}  // namespace gemstone::bench

#define GS_BENCH_MAIN(name)                                                 \
  int main(int argc, char** argv) {                                        \
    char arg0_default[] = "benchmark";                                     \
    char* args_default = arg0_default;                                     \
    if (!argv) {                                                           \
      argc = 1;                                                            \
      argv = &args_default;                                                \
    }                                                                      \
    ::benchmark::Initialize(&argc, argv);                                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;    \
    ::benchmark::RunSpecifiedBenchmarks();                                 \
    ::gemstone::bench::EmitTelemetryReport(name);                          \
    return 0;                                                              \
  }

#endif  // GEMSTONE_BENCH_BENCH_TELEMETRY_H_
