// E4 — §5.2's flattening argument, measured. The set-valued Children
// attribute lives as ONE object in STDM/GSDM; the relational encoding
// flattens it into one tuple per child, so reassembling a family costs a
// selection over the whole relation (or an index probe plus per-tuple
// work), and the subset test needs explicit set reconstruction.
//
// Expected shape: STDM wins on direct access by a large factor vs. the
// unindexed relation; an index narrows but does not close the gap
// (probe + projection + materialization per child remains).

#include <benchmark/benchmark.h>

#include "bench_telemetry.h"

#include "relational/relational.h"
#include "stdm/stdm_value.h"

using namespace gemstone;  // NOLINT

namespace {

constexpr int kChildrenPerFamily = 3;

// STDM: {P0: {Name: ..., Children: {...}}, P1: ...}
stdm::StdmValue BuildStdmFamilies(int families) {
  stdm::StdmValue people = stdm::StdmValue::Set();
  for (int f = 0; f < families; ++f) {
    stdm::StdmValue person = stdm::StdmValue::Set();
    (void)person.Put("Name",
                     stdm::StdmValue::String("family" + std::to_string(f)));
    stdm::StdmValue children = stdm::StdmValue::Set();
    for (int c = 0; c < kChildrenPerFamily; ++c) {
      children.Add(stdm::StdmValue::String("child" + std::to_string(f) +
                                           "-" + std::to_string(c)));
    }
    (void)person.Put("Children", std::move(children));
    (void)people.Put("P" + std::to_string(f), std::move(person));
  }
  return people;
}

// Relational: Children(Parent, Child) — one tuple per child.
relational::Table BuildFlattened(int families) {
  relational::Table table({"Parent", "Child"});
  for (int f = 0; f < families; ++f) {
    for (int c = 0; c < kChildrenPerFamily; ++c) {
      (void)table.Insert({std::string("family" + std::to_string(f)),
                          std::string("child" + std::to_string(f) + "-" +
                                      std::to_string(c))});
    }
  }
  return table;
}

void BM_StdmChildrenAccess(benchmark::State& state) {
  const int families = static_cast<int>(state.range(0));
  stdm::StdmValue people = BuildStdmFamilies(families);
  // Entity identity: the application already holds the person; the
  // question is the cost of reaching the children from it.
  const stdm::StdmValue* person =
      people.Get("P" + std::to_string(families / 2));
  for (auto _ : state) {
    // The set of children is one element: direct access, no reassembly.
    const stdm::StdmValue* children = person->Get("Children");
    benchmark::DoNotOptimize(children->size());
  }
  state.SetLabel("families=" + std::to_string(families));
}

void BM_RelationalChildrenScan(benchmark::State& state) {
  const int families = static_cast<int>(state.range(0));
  relational::Table table = BuildFlattened(families);
  const std::string target = "family" + std::to_string(families / 2);
  for (auto _ : state) {
    relational::Table result = relational::Select(
        table, [&](const relational::Tuple& row) {
          return std::get<std::string>(row[0]) == target;
        });
    benchmark::DoNotOptimize(result.size());
  }
}

void BM_RelationalChildrenIndexed(benchmark::State& state) {
  const int families = static_cast<int>(state.range(0));
  relational::Table table = BuildFlattened(families);
  (void)table.CreateIndex("Parent");
  const relational::Field target =
      std::string("family" + std::to_string(families / 2));
  for (auto _ : state) {
    auto result = relational::SelectEq(table, "Parent", target);
    benchmark::DoNotOptimize(result->size());
  }
}

// "stipulating one set is the subset of another set requires two
// quantifiers in relational calculus" — subset as a primitive vs.
// reassemble-then-compare.
void BM_StdmSubsetTest(benchmark::State& state) {
  const int families = static_cast<int>(state.range(0));
  stdm::StdmValue people = BuildStdmFamilies(families);
  const std::string a = "P" + std::to_string(families / 2);
  const stdm::StdmValue* children = people.Get(a)->Get("Children");
  stdm::StdmValue probe = stdm::StdmValue::SetOf(
      {stdm::StdmValue::String("child" + std::to_string(families / 2) +
                               "-1")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(probe.SubsetOf(*children));
  }
}

void BM_RelationalSubsetTest(benchmark::State& state) {
  const int families = static_cast<int>(state.range(0));
  relational::Table table = BuildFlattened(families);
  (void)table.CreateIndex("Parent");
  const relational::Field parent =
      std::string("family" + std::to_string(families / 2));
  const std::string probe_child =
      "child" + std::to_string(families / 2) + "-1";
  for (auto _ : state) {
    // Reassemble the target family's children, then test containment.
    auto family = relational::SelectEq(table, "Parent", parent);
    bool contained = false;
    for (const relational::Tuple& row : family->rows()) {
      contained = contained || std::get<std::string>(row[1]) == probe_child;
    }
    benchmark::DoNotOptimize(contained);
  }
}

}  // namespace

BENCHMARK(BM_StdmChildrenAccess)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_RelationalChildrenScan)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_RelationalChildrenIndexed)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_StdmSubsetTest)->Arg(1000);
BENCHMARK(BM_RelationalSubsetTest)->Arg(1000);

GS_BENCH_MAIN("encoding");
