#ifndef GEMSTONE_INDEX_DIRECTORY_H_
#define GEMSTONE_INDEX_DIRECTORY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/annotations.h"
#include "core/result.h"
#include "core/sync.h"
#include "object/object_memory.h"
#include "telemetry/metrics.h"
#include "txn/session.h"

namespace gemstone::index {

/// One temporal posting: `member` carried discriminator value `key`
/// during [since, until). Directories never erase postings — "Directories
/// use standard techniques modified to handle object histories" (§6) —
/// so a lookup at any past time scans the same structure.
struct Posting {
  Oid member;
  TxnTime since = kTimeOrigin;
  TxnTime until = kTimeNow;  // kTimeNow = still current
};

/// Thin snapshot of one directory's telemetry counters. The registry
/// view (`directory.*`) sums every live directory plus retired ones.
/// Relaxed-atomic reads without the directory lock: individually
/// monotonic, no cross-field consistency under concurrent lookups.
struct DirectoryStats {
  std::uint64_t lookups = 0;
  std::uint64_t postings_scanned = 0;
  std::uint64_t updates = 0;
};

/// An associative directory over one collection: discriminator is a path
/// of element names evaluated against each member (§6's "nested element
/// as a discriminator" — the path may be several steps deep; a member
/// whose nested discriminator differs across database states appears in
/// several postings, the paper's "two branches" problem).
///
/// Keys are ordered by the canonical rendering of the discriminator
/// value, so the directory answers equality probes and ordered ranges.
class Directory {
 public:
  Directory(Oid collection, std::vector<SymbolId> path);

  Oid collection() const { return collection_; }
  const std::vector<SymbolId>& path() const { return path_; }

  /// Members whose discriminator equals `key` at time `at`.
  std::vector<Oid> Lookup(const Value& key, TxnTime at) const;

  /// Members whose discriminator lies in [lo, hi] at time `at`. Only
  /// meaningful for homogeneous (all-numeric or all-string) keys.
  std::vector<Oid> LookupRange(const Value& lo, const Value& hi,
                               TxnTime at) const;

  /// Records that `member` acquired discriminator `key` at `at` (closing
  /// any posting that was current).
  void Add(const Value& key, Oid member, TxnTime at);

  /// Closes `member`'s current posting at `at` (member removed from the
  /// collection or discriminator about to change).
  void Remove(Oid member, TxnTime at);

  std::size_t posting_count() const;
  DirectoryStats stats() const;

 private:
  static std::string KeyOf(const Value& value);

  Oid collection_;
  std::vector<SymbolId> path_;

  mutable Mutex mu_{LockRank::kDirectory, "index.directory_mu"};
  // Ordered so range probes walk a contiguous key span.
  std::map<std::string, std::vector<Posting>> postings_ GS_GUARDED_BY(mu_);
  // member -> key of its currently-open posting (for Remove/Re-Add).
  std::unordered_map<std::uint64_t, std::string> open_ GS_GUARDED_BY(mu_);

  mutable telemetry::Counter lookups_;
  mutable telemetry::Counter postings_scanned_;
  mutable telemetry::Counter updates_;
  telemetry::Registration telemetry_;  // after the counters it samples
};

/// The Directory Manager (§6): "creates and maintains directories."
/// Directories are created from OPAL "storage hints" (a createDirectory
/// request naming a collection and a discriminator path) and maintained
/// by the collection primitives on add/remove/update.
class DirectoryManager {
 public:
  explicit DirectoryManager(ObjectMemory* memory) : memory_(memory) {}

  /// Builds a directory over `collection` discriminating on `path`,
  /// populated from the members visible through `session` now.
  Status CreateDirectory(txn::Session* session, Oid collection,
                         const std::vector<SymbolId>& path);

  /// The directory on (collection, path), or nullptr.
  Directory* Find(Oid collection, const std::vector<SymbolId>& path);

  /// Any directory on `collection` whose path starts with `first`
  /// (used by selectWhere: planning), or nullptr.
  Directory* FindByFirstStep(Oid collection, SymbolId first);

  /// Maintenance hook: `member` was added to `collection` at current
  /// time. Reads the discriminator through `session` and posts it.
  Status NoteAdd(txn::Session* session, Oid collection, const Value& member);

  /// Maintenance hook: `member` left `collection`.
  Status NoteRemove(txn::Session* session, Oid collection,
                    const Value& member);

  std::size_t directory_count() const {
    MutexLock lock(mu_);
    return directories_.size();
  }

  /// Evaluates a discriminator path against one member value.
  static Result<Value> ReadPath(txn::Session* session, const Value& member,
                                const std::vector<SymbolId>& path);

 private:
  ObjectMemory* memory_;
  mutable Mutex mu_{LockRank::kDirectoryManager,
                    "index.directory_manager_mu"};
  // Directories are never destroyed once registered, so the raw pointers
  // Find hands out stay valid without holding mu_; Directory itself is
  // internally synchronized.
  std::vector<std::unique_ptr<Directory>> directories_ GS_GUARDED_BY(mu_);
};

}  // namespace gemstone::index

#endif  // GEMSTONE_INDEX_DIRECTORY_H_
