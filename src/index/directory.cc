#include "index/directory.h"

#include <bit>

namespace gemstone::index {

namespace {

// Order-preserving encoding of a double into 16 hex chars.
std::string EncodeNumber(double d) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(d);
  if (bits & (1ull << 63)) {
    bits = ~bits;  // negative: flip everything
  } else {
    bits |= (1ull << 63);  // positive: set sign so it sorts above
  }
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[bits & 0xF];
    bits >>= 4;
  }
  return out;
}

// A posting is visible at `at` from its open (inclusive) to its close
// (exclusive); an open posting (until == kTimeNow) is visible at kTimeNow.
bool Visible(const Posting& p, TxnTime at) {
  if (p.since > at) return false;
  return p.until == kTimeNow || at < p.until;
}

}  // namespace

Directory::Directory(Oid collection, std::vector<SymbolId> path)
    : collection_(collection),
      path_(std::move(path)),
      telemetry_(telemetry::MetricsRegistry::Global().Register(
          [this](telemetry::SampleSink* sink) {
            sink->Counter("directory.lookups", lookups_.value());
            sink->Counter("directory.postings_scanned",
                          postings_scanned_.value());
            sink->Counter("directory.updates", updates_.value());
          })) {}

std::string Directory::KeyOf(const Value& value) {
  if (value.IsNumber()) return "n" + EncodeNumber(value.AsDouble());
  if (value.IsString()) return "s" + value.string();
  if (value.IsSymbol()) return "y" + std::to_string(value.symbol());
  if (value.IsBoolean()) return value.boolean() ? "b1" : "b0";
  if (value.IsRef()) return "r" + std::to_string(value.ref().raw);
  return "0nil";
}

std::vector<Oid> Directory::Lookup(const Value& key, TxnTime at) const {
  MutexLock lock(mu_);
  lookups_.Increment();
  std::vector<Oid> out;
  auto it = postings_.find(KeyOf(key));
  if (it == postings_.end()) return out;
  for (const Posting& p : it->second) {
    postings_scanned_.Increment();
    if (Visible(p, at)) out.push_back(p.member);
  }
  return out;
}

std::vector<Oid> Directory::LookupRange(const Value& lo, const Value& hi,
                                        TxnTime at) const {
  MutexLock lock(mu_);
  lookups_.Increment();
  std::vector<Oid> out;
  auto begin = postings_.lower_bound(KeyOf(lo));
  auto end = postings_.upper_bound(KeyOf(hi));
  for (auto it = begin; it != end; ++it) {
    for (const Posting& p : it->second) {
      postings_scanned_.Increment();
      if (Visible(p, at)) out.push_back(p.member);
    }
  }
  return out;
}

void Directory::Add(const Value& key, Oid member, TxnTime at) {
  MutexLock lock(mu_);
  updates_.Increment();
  // Close a currently-open posting first (discriminator change).
  auto open_it = open_.find(member.raw);
  if (open_it != open_.end()) {
    for (Posting& p : postings_[open_it->second]) {
      if (p.member == member && p.until == kTimeNow) p.until = at;
    }
  }
  const std::string k = KeyOf(key);
  postings_[k].push_back(Posting{member, at, kTimeNow});
  open_[member.raw] = k;
}

void Directory::Remove(Oid member, TxnTime at) {
  MutexLock lock(mu_);
  updates_.Increment();
  auto open_it = open_.find(member.raw);
  if (open_it == open_.end()) return;
  for (Posting& p : postings_[open_it->second]) {
    if (p.member == member && p.until == kTimeNow) p.until = at;
  }
  open_.erase(open_it);
}

std::size_t Directory::posting_count() const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, postings] : postings_) n += postings.size();
  return n;
}

DirectoryStats Directory::stats() const {
  DirectoryStats stats;
  stats.lookups = lookups_.value();
  stats.postings_scanned = postings_scanned_.value();
  stats.updates = updates_.value();
  return stats;
}

Result<Value> DirectoryManager::ReadPath(txn::Session* session,
                                         const Value& member,
                                         const std::vector<SymbolId>& path) {
  Value current = member;
  for (SymbolId step : path) {
    if (!current.IsRef()) {
      return Status::TypeMismatch(
          "directory discriminator path hits a simple value");
    }
    GS_ASSIGN_OR_RETURN(current, session->ReadNamed(current.ref(), step));
  }
  return current;
}

Status DirectoryManager::CreateDirectory(txn::Session* session,
                                         Oid collection,
                                         const std::vector<SymbolId>& path) {
  if (path.empty()) {
    return Status::InvalidArgument("directory path must be non-empty");
  }
  if (Find(collection, path) != nullptr) {
    return Status::AlreadyExists("directory already exists on that path");
  }
  auto directory = std::make_unique<Directory>(collection, path);
  // Populate from the collection's current members.
  GS_ASSIGN_OR_RETURN(auto members, session->ListNamed(collection));
  const TxnTime now = session->manager().Now();
  for (const auto& [name, member] : members) {
    GS_ASSIGN_OR_RETURN(Value key, ReadPath(session, member, path));
    if (!member.IsRef()) {
      return Status::TypeMismatch("directory members must be objects");
    }
    directory->Add(key, member.ref(), now);
  }
  MutexLock lock(mu_);
  directories_.push_back(std::move(directory));
  return Status::OK();
}

Directory* DirectoryManager::Find(Oid collection,
                                  const std::vector<SymbolId>& path) {
  MutexLock lock(mu_);
  for (const auto& d : directories_) {
    if (d->collection() == collection && d->path() == path) return d.get();
  }
  return nullptr;
}

Directory* DirectoryManager::FindByFirstStep(Oid collection, SymbolId first) {
  MutexLock lock(mu_);
  for (const auto& d : directories_) {
    if (d->collection() == collection && !d->path().empty() &&
        d->path().front() == first) {
      return d.get();
    }
  }
  return nullptr;
}

Status DirectoryManager::NoteAdd(txn::Session* session, Oid collection,
                                 const Value& member) {
  if (!member.IsRef()) return Status::OK();  // simple values are not indexed
  std::vector<Directory*> affected;
  {
    MutexLock lock(mu_);
    for (const auto& d : directories_) {
      if (d->collection() == collection) affected.push_back(d.get());
    }
  }
  const TxnTime now = session->manager().Now() + 1;  // effective at commit
  for (Directory* d : affected) {
    GS_ASSIGN_OR_RETURN(Value key, ReadPath(session, member, d->path()));
    d->Add(key, member.ref(), now);
  }
  return Status::OK();
}

Status DirectoryManager::NoteRemove(txn::Session* session, Oid collection,
                                    const Value& member) {
  if (!member.IsRef()) return Status::OK();
  std::vector<Directory*> affected;
  {
    MutexLock lock(mu_);
    for (const auto& d : directories_) {
      if (d->collection() == collection) affected.push_back(d.get());
    }
  }
  const TxnTime now = session->manager().Now() + 1;
  for (Directory* d : affected) {
    d->Remove(member.ref(), now);
  }
  return Status::OK();
}

}  // namespace gemstone::index
