#include "executor/error_format.h"

namespace gemstone::executor {

std::string FormatErrorText(const Status& status) {
  // Status::ToString already renders "<CodeName>: <message>"; the helper
  // pins that spelling as the REPL/wire contract so the two surfaces
  // cannot drift apart even if Status grows richer renderings.
  return status.ToString();
}

}  // namespace gemstone::executor
