#include "executor/executor.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <set>
#include <sstream>

#include "stdm/calculus_parser.h"
#include "stdm/gsdm_bridge.h"
#include "stdm/translate.h"
#include "storage/serializer.h"
#include "telemetry/io_attribution.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gemstone::executor {

namespace {
// The system object's element holding the serialized schema and clock.
constexpr const char* kSchemaElement = "schemaImage";
// Kernel classes occupy oids below this; only user classes export.
constexpr std::uint64_t kFirstUserOid = 64;

// Process-wide session traffic counters (registry-owned: stable pointers).
telemetry::Counter* LoginCounter() {
  static telemetry::Counter* counter =
      telemetry::MetricsRegistry::Global().GetCounter("executor.logins");
  return counter;
}
telemetry::Counter* ExecuteCounter() {
  static telemetry::Counter* counter =
      telemetry::MetricsRegistry::Global().GetCounter("executor.executes");
  return counter;
}
telemetry::Gauge* ActiveSessionsGauge() {
  static telemetry::Gauge* gauge =
      telemetry::MetricsRegistry::Global().GetGauge(
          "executor.active_sessions");
  return gauge;
}
}  // namespace

Executor::Executor()
    : directories_(&memory_), transactions_(&memory_, nullptr) {
  Bootstrap();
}

Executor::Executor(storage::StorageEngine* engine)
    : directories_(&memory_), transactions_(&memory_, engine) {
  Bootstrap();
}

void Executor::Bootstrap() {
  opal::InstallKernelPrimitives(&memory_);
  // The System singleton is reachable as the global `System`.
  globals_.Set(memory_.symbols().Intern("System"),
               Value::Ref(memory_.kernel().system_object));
}

Result<SessionId> Executor::Login(UserId user) {
  const SessionId id = next_session_.fetch_add(1, std::memory_order_relaxed);
  SessionEntry entry;
  entry.session = std::make_unique<txn::Session>(&transactions_, id, user);
  entry.interpreter = std::make_unique<opal::Interpreter>(
      &memory_, entry.session.get(), &globals_);
  entry.interpreter->set_directories(&directories_);
  GS_RETURN_IF_ERROR(entry.session->Begin());
  {
    WriterMutexLock lock(sessions_mu_);
    sessions_.emplace(id, std::move(entry));
  }
  session_count_.fetch_add(1, std::memory_order_release);
  LoginCounter()->Increment();
  ActiveSessionsGauge()->Add(1);
  return id;
}

Status Executor::Logout(SessionId session) {
  // Move the entry out under the lock; abort and destroy outside it so a
  // slow abort never stalls unrelated logins or read-path lookups.
  SessionEntry entry;
  {
    WriterMutexLock lock(sessions_mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      return Status::NotFound("no such session: " + std::to_string(session));
    }
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  if (entry.session->InTransaction()) {
    (void)entry.session->Abort();
  }
  session_count_.fetch_sub(1, std::memory_order_release);
  ActiveSessionsGauge()->Add(-1);
  return Status::OK();
}

txn::Session* Executor::session(SessionId id) {
  ReaderMutexLock lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.session.get();
}

opal::Interpreter* Executor::interpreter(SessionId id) {
  ReaderMutexLock lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.interpreter.get();
}

bool Executor::SessionIsReadPathEligible(SessionId id) {
  ReaderMutexLock lock(sessions_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return true;
  return it->second.session->SnapshotReadEligible();
}

Result<Value> Executor::Execute(SessionId session, std::string_view source) {
  opal::Interpreter* interp = interpreter(session);
  if (interp == nullptr) {
    return Status::NotFound("no such session: " + std::to_string(session));
  }
  ExecuteCounter()->Increment();
  TELEM_SPAN("executor.execute");
  opal::Compiler compiler(&memory_);
  GS_ASSIGN_OR_RETURN(auto body, compiler.CompileBody(source));
  return interp->Run(std::move(body));
}

Result<std::string> Executor::ExecuteToString(SessionId session,
                                              std::string_view source) {
  GS_ASSIGN_OR_RETURN(Value result, Execute(session, source));
  return interpreter(session)->DefaultPrintString(result);
}

namespace {

/// Free variables of a calculus query: everything it mentions minus its
/// range variables, in first-mention order.
std::vector<std::string> FreeVariableNames(const stdm::CalculusQuery& query) {
  std::vector<std::string> mentioned;
  for (const auto& [label, term] : query.target) term.CollectVars(&mentioned);
  for (const stdm::Range& r : query.ranges) {
    r.source.CollectVars(&mentioned);
  }
  query.condition.CollectVars(&mentioned);
  std::set<std::string> range_vars;
  for (const stdm::Range& r : query.ranges) range_vars.insert(r.var);
  std::vector<std::string> free_names;
  std::set<std::string> seen;
  for (const std::string& v : mentioned) {
    if (range_vars.count(v) == 0 && seen.insert(v).second) {
      free_names.push_back(v);
    }
  }
  return free_names;
}

std::string MsString(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string IoLine(std::uint64_t ns, const telemetry::IoTally& io) {
  return "time=" + MsString(ns) + "ms reads=" +
         std::to_string(io.tracks_read) + " writes=" +
         std::to_string(io.tracks_written) + " seeks=" +
         std::to_string(io.seeks);
}

}  // namespace

Result<std::string> Executor::ExplainStdm(SessionId session,
                                          std::string_view query_text,
                                          bool analyze) {
  txn::Session* s = this->session(session);
  if (s == nullptr) {
    return Status::NotFound("no such session: " + std::to_string(session));
  }

  GS_ASSIGN_OR_RETURN(stdm::CalculusQuery query,
                      stdm::ParseCalculus(query_text));
  GS_ASSIGN_OR_RETURN(stdm::AlgebraPlan plan, stdm::TranslateToAlgebra(query));
  const std::vector<std::string> free_names = FreeVariableNames(query);

  std::ostringstream out;
  out << (analyze ? "EXPLAIN ANALYZE " : "EXPLAIN ") << query.ToString()
      << "\n";
  if (s->DialSet()) {
    out << "time dial: " << s->EffectiveTime()
        << " (free variables export at the dialed time)\n";
  } else {
    out << "time dial: now\n";
  }

  // Bind phase: resolve free variables from the globals and export each
  // object graph at the session's effective time. The deque keeps the
  // exported values' addresses stable for the Bindings.
  const std::uint64_t bind_start = telemetry::TraceNowNs();
  const telemetry::IoTally bind_before = telemetry::ThreadIoTally();
  std::deque<stdm::StdmValue> exported;
  stdm::Bindings free;
  GS_RETURN_IF_ERROR(BindFreeVariables(s, free_names, &exported, &free));
  const telemetry::IoTally bind_io =
      telemetry::IoDelta(bind_before, telemetry::ThreadIoTally());
  const std::uint64_t bind_ns = telemetry::TraceNowNs() - bind_start;

  if (!analyze) {
    out << plan.ToString();
    return out.str();
  }

  stdm::ExplainContext ctx;
  stdm::AlgebraStats stats;
  const std::uint64_t exec_start = telemetry::TraceNowNs();
  const telemetry::IoTally exec_before = telemetry::ThreadIoTally();
  GS_ASSIGN_OR_RETURN(stdm::StdmValue result,
                      plan.Execute(free, &stats, &ctx));
  const telemetry::IoTally exec_io =
      telemetry::IoDelta(exec_before, telemetry::ThreadIoTally());
  const std::uint64_t exec_ns = telemetry::TraceNowNs() - exec_start;

  out << plan.ToString(&ctx);
  out << "bind (" << free_names.size() << " free vars): "
      << IoLine(bind_ns, bind_io) << "\n";
  telemetry::IoTally total_io = bind_io;
  total_io.tracks_read += exec_io.tracks_read;
  total_io.tracks_written += exec_io.tracks_written;
  total_io.seeks += exec_io.seeks;
  out << "totals: rows=" << result.size() << " scanned=" << stats.rows_scanned
      << " examined=" << stats.rows_examined << " "
      << IoLine(bind_ns + exec_ns, total_io) << "\n";
  return out.str();
}

Status Executor::BindFreeVariables(txn::Session* s,
                                   const std::vector<std::string>& names,
                                   std::deque<stdm::StdmValue>* exported,
                                   stdm::Bindings* free) {
  for (const std::string& name : names) {
    Value value;
    if (!globals_.Get(memory_.symbols().Intern(name), &value)) {
      return Status::NotFound("free variable '" + name +
                              "' is not bound to a global");
    }
    GS_ASSIGN_OR_RETURN(stdm::StdmValue v, stdm::ExportStdm(s, &memory_, value));
    exported->push_back(std::move(v));
    free->Push(name, &exported->back());
  }
  return Status::OK();
}

Result<std::string> Executor::ExecuteStdm(SessionId session,
                                          std::string_view query_text) {
  txn::Session* s = this->session(session);
  if (s == nullptr) {
    return Status::NotFound("no such session: " + std::to_string(session));
  }

  TELEM_SPAN("executor.stdm_query");
  GS_ASSIGN_OR_RETURN(stdm::CalculusQuery query,
                      stdm::ParseCalculus(query_text));
  GS_ASSIGN_OR_RETURN(stdm::AlgebraPlan plan, stdm::TranslateToAlgebra(query));

  std::deque<stdm::StdmValue> exported;
  stdm::Bindings free;
  GS_RETURN_IF_ERROR(
      BindFreeVariables(s, FreeVariableNames(query), &exported, &free));

  stdm::AlgebraStats stats;
  GS_ASSIGN_OR_RETURN(stdm::StdmValue result,
                      plan.Execute(free, &stats, nullptr));
  return result.ToString();
}

// --- Schema persistence --------------------------------------------------------

std::string Executor::EncodeSchema() const {
  using storage::ByteWriter;
  ByteWriter out;
  // Commit clock and oid high-water mark first.
  out.PutU64(transactions_.Now());

  // User classes in oid order (supers defined before subclasses because
  // superclass oids are always smaller — DefineClass requires an existing
  // superclass).
  std::vector<const GsClass*> user_classes;
  for (const std::string& name : memory_.classes().ClassNames()) {
    const GsClass* cls = memory_.classes().FindByName(name);
    if (cls->oid().raw >= kFirstUserOid) user_classes.push_back(cls);
  }
  std::sort(user_classes.begin(), user_classes.end(),
            [](const GsClass* a, const GsClass* b) {
              return a->oid() < b->oid();
            });
  out.PutU32(static_cast<std::uint32_t>(user_classes.size()));
  for (const GsClass* cls : user_classes) {
    out.PutU64(cls->oid().raw);
    out.PutString(cls->name());
    out.PutU64(cls->superclass().raw);
    out.PutU8(static_cast<std::uint8_t>(cls->format()));
    out.PutU32(static_cast<std::uint32_t>(cls->own_inst_vars().size()));
    for (SymbolId var : cls->own_inst_vars()) {
      out.PutString(memory_.symbols().Name(var));
    }
    out.PutU32(static_cast<std::uint32_t>(cls->method_sources().size()));
    for (const auto& [selector, source] : cls->method_sources()) {
      out.PutString(source);
    }
  }
  const auto bytes = out.bytes();
  return std::string(bytes.begin(), bytes.end());
}

Status Executor::DecodeSchema(const std::string& blob) {
  using storage::ByteReader;
  const auto* data = reinterpret_cast<const std::uint8_t*>(blob.data());
  ByteReader in(std::span<const std::uint8_t>(data, blob.size()));
  GS_ASSIGN_OR_RETURN(std::uint64_t clock, in.GetU64());
  // Commits after the schema snapshot may have advanced the clock further;
  // never move it backwards.
  transactions_.RestoreClock(std::max<TxnTime>(clock, transactions_.Now()));

  GS_ASSIGN_OR_RETURN(std::uint32_t count, in.GetU32());
  struct PendingMethods {
    Oid class_oid;
    std::vector<std::string> sources;
  };
  std::vector<PendingMethods> pending;
  for (std::uint32_t i = 0; i < count; ++i) {
    GS_ASSIGN_OR_RETURN(std::uint64_t oid, in.GetU64());
    GS_ASSIGN_OR_RETURN(std::string name, in.GetString());
    GS_ASSIGN_OR_RETURN(std::uint64_t super, in.GetU64());
    GS_ASSIGN_OR_RETURN(std::uint8_t format, in.GetU8());
    GS_ASSIGN_OR_RETURN(std::uint32_t num_vars, in.GetU32());
    std::vector<std::string> vars;
    for (std::uint32_t v = 0; v < num_vars; ++v) {
      GS_ASSIGN_OR_RETURN(std::string var, in.GetString());
      vars.push_back(std::move(var));
    }
    GS_RETURN_IF_ERROR(memory_.classes()
                           .DefineClass(Oid(oid), name, Oid(super),
                                        static_cast<ObjectFormat>(format),
                                        vars)
                           .status());
    memory_.EnsureOidAbove(oid);
    GS_ASSIGN_OR_RETURN(std::uint32_t num_methods, in.GetU32());
    PendingMethods methods;
    methods.class_oid = Oid(oid);
    for (std::uint32_t m = 0; m < num_methods; ++m) {
      GS_ASSIGN_OR_RETURN(std::string source, in.GetString());
      methods.sources.push_back(std::move(source));
    }
    pending.push_back(std::move(methods));
  }
  // Compile methods after every class exists (methods may reference any).
  opal::Compiler compiler(&memory_);
  for (const PendingMethods& methods : pending) {
    GsClass* cls = memory_.classes().Get(methods.class_oid);
    for (const std::string& source : methods.sources) {
      GS_ASSIGN_OR_RETURN(
          auto method, compiler.CompileMethodSource(source, cls->oid()));
      const SymbolId selector =
          memory_.symbols().Intern(method->selector);
      GS_RETURN_IF_ERROR(memory_.classes().InstallMethod(
          cls->oid(), selector, method, source));
    }
  }
  return Status::OK();
}

Status Executor::SaveSchema(SessionId session) {
  txn::Session* s = this->session(session);
  if (s == nullptr) {
    return Status::NotFound("no such session: " + std::to_string(session));
  }
  const SymbolId element = memory_.symbols().Intern(kSchemaElement);
  GS_RETURN_IF_ERROR(s->WriteNamed(memory_.kernel().system_object, element,
                                   Value::String(EncodeSchema())));
  GS_RETURN_IF_ERROR(s->Commit());
  return s->Begin();
}

Result<std::unique_ptr<Executor>> Executor::Recover(
    storage::StorageEngine* engine) {
  auto executor = std::unique_ptr<Executor>(new Executor(engine));
  // Load every cataloged object; track the largest oid and commit time.
  std::uint64_t max_oid = 0;
  TxnTime max_time = 0;
  std::string schema_blob;
  const SymbolId schema_element =
      executor->memory_.symbols().Intern(kSchemaElement);
  for (Oid oid : engine->CatalogOids()) {
    GS_ASSIGN_OR_RETURN(GsObject object,
                        engine->LoadObject(oid, &executor->memory_.symbols()));
    max_oid = std::max(max_oid, oid.raw);
    for (const NamedElement& element : object.named_elements()) {
      max_time = std::max(max_time, element.table.LastBoundAt());
      if (oid == executor->memory_.kernel().system_object &&
          element.name == schema_element) {
        const Value* v = element.table.CurrentValue();
        if (v != nullptr && v->IsString()) schema_blob = v->string();
      }
    }
    for (std::size_t i = 0; i < object.indexed_capacity(); ++i) {
      max_time = std::max(max_time, object.IndexedHistory(i)->LastBoundAt());
    }
    if (oid == executor->memory_.kernel().system_object) {
      // The bootstrapped singleton already exists; merge the recovered
      // history over it.
      GsObject* system =
          executor->memory_.FindMutable(executor->memory_.kernel()
                                            .system_object);
      for (const NamedElement& element : object.named_elements()) {
        for (const Association& a : element.table.entries()) {
          system->WriteNamed(element.name, a.time, a.value);
        }
      }
      continue;
    }
    GS_RETURN_IF_ERROR(executor->memory_.Insert(std::move(object)));
  }
  executor->memory_.EnsureOidAbove(max_oid);
  executor->transactions_.RestoreClock(max_time);
  if (!schema_blob.empty()) {
    GS_RETURN_IF_ERROR(executor->DecodeSchema(schema_blob));
  }
  return executor;
}

}  // namespace gemstone::executor
