#ifndef GEMSTONE_EXECUTOR_ERROR_FORMAT_H_
#define GEMSTONE_EXECUTOR_ERROR_FORMAT_H_

#include <string>

#include "core/status.h"

namespace gemstone::executor {

/// The canonical user-facing rendering of a failed OPAL/STDM request:
/// "<CodeName>: <message>" (e.g. "CompileError: unexpected token ')'").
///
/// This is the single source of the error text a user sees — the local
/// REPL prints it after "!! ", and the network gateway ships it verbatim
/// inside kError frames — so a remote session reports exactly the same
/// diagnostics as a local one for the same failure. OK statuses render
/// as "OK" (callers on error paths never pass one).
std::string FormatErrorText(const Status& status);

}  // namespace gemstone::executor

#endif  // GEMSTONE_EXECUTOR_ERROR_FORMAT_H_
