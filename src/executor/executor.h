#ifndef GEMSTONE_EXECUTOR_EXECUTOR_H_
#define GEMSTONE_EXECUTOR_EXECUTOR_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/annotations.h"
#include "core/result.h"
#include "core/sync.h"
#include "index/directory.h"
#include "object/object_memory.h"
#include "opal/compiler.h"
#include "opal/interpreter.h"
#include "stdm/calculus.h"
#include "stdm/stdm_value.h"
#include "storage/storage_engine.h"
#include "txn/session.h"
#include "txn/transaction_manager.h"

namespace gemstone::executor {

/// The Executor (§6): "responsible for controlling sessions in the
/// GemStone system on behalf of users on host machines ... receiving
/// blocks of code, returning results and error messages. It maintains a
/// Compiler and Interpreter for each active user."
///
/// The network link of the paper's deployment is replaced by an
/// in-process API with the same unit of communication: a block of OPAL
/// source in, a result (or error Status) out.
///
/// When constructed over a StorageEngine, commits persist through the
/// Boxer/Linker/CommitManager pipeline, and `Recover` rebuilds the full
/// image — objects, logical clock, user classes and their recompiled
/// methods — from the platters.
///
/// Threading: the session table is internally synchronized, so
/// Login/Logout and per-session calls may arrive from different threads
/// concurrently. Calls *within* one session are not — the caller (the
/// gateway's per-connection FIFO, or a single-threaded embedder) must
/// never run two operations on the same SessionId at once, and must not
/// Logout a session with an operation in flight. Raw Session/Interpreter
/// pointers stay valid until that session's Logout: the map guarantees
/// element stability across inserts, and entries are only destroyed by
/// Logout.
class Executor {
 public:
  /// Purely in-memory system.
  Executor();

  /// Durable system over an opened engine (Format/Open already done).
  explicit Executor(storage::StorageEngine* engine);

  /// Rebuilds an Executor from a recovered engine: loads every cataloged
  /// object, replays the schema (class definitions and method sources)
  /// and restores the commit clock.
  static Result<std::unique_ptr<Executor>> Recover(
      storage::StorageEngine* engine);

  // --- Sessions ---------------------------------------------------------------

  /// Opens a session (its own Interpreter and transaction workspace, §6)
  /// and begins its first transaction. `user` is the identity every
  /// authorization check runs against when an AccessController is set on
  /// the TransactionManager.
  Result<SessionId> Login(UserId user = kDbaUser);

  /// Ends a session, aborting any open transaction.
  Status Logout(SessionId session);

  /// Compiles and runs one block of OPAL source in the session, answering
  /// the block's value.
  Result<Value> Execute(SessionId session, std::string_view source);

  /// As Execute, but renders the result with printString semantics —
  /// what a host terminal would display.
  Result<std::string> ExecuteToString(SessionId session,
                                      std::string_view source);

  /// Runs a §5.1 set-calculus query: parses `query_text`, translates it
  /// to set algebra, binds free variables from the globals at the
  /// session's effective time (a time-dialed session queries the past
  /// state), executes the plan, and renders the result set.
  Result<std::string> ExecuteStdm(SessionId session,
                                  std::string_view query_text);

  /// EXPLAIN (and with `analyze`, EXPLAIN ANALYZE) for a §5.1 set-calculus
  /// query: parses `query_text`, translates it to set algebra, and renders
  /// the operator tree. Free variables resolve from the globals and export
  /// at the session's effective time, so a time-dialed session explains
  /// the plan over the past state it would query. With `analyze` the plan
  /// runs and every operator line carries measured in/out cardinalities,
  /// exclusive time, and attributed disk track reads/writes/seeks.
  Result<std::string> ExplainStdm(SessionId session,
                                  std::string_view query_text, bool analyze);

  // --- Schema persistence -----------------------------------------------------

  /// Persists user class definitions + method sources into the system
  /// object (they ride the ordinary commit pipeline). Call after schema
  /// changes when durability matters.
  Status SaveSchema(SessionId session);

  // --- Introspection ----------------------------------------------------------

  ObjectMemory& memory() { return memory_; }
  txn::TransactionManager& transactions() { return transactions_; }
  index::DirectoryManager& directories() { return directories_; }
  opal::GlobalEnv& globals() { return globals_; }
  txn::Session* session(SessionId id);
  opal::Interpreter* interpreter(SessionId id);
  /// Whether `id` may run on the gateway's snapshot read path: true when
  /// the session has a time dial set or its transaction has not yet
  /// recorded any access (see txn::Session::SnapshotReadEligible).
  /// Unknown sessions answer true — the dispatch itself reports NotFound.
  bool SessionIsReadPathEligible(SessionId id);
  /// Safe to call from any thread: monitors observe the gateway tearing
  /// sessions down concurrently, so the count is a release/acquire atomic
  /// rather than a read of the (unsynchronized) session table.
  std::size_t active_sessions() const {
    return session_count_.load(std::memory_order_acquire);
  }

 private:
  struct SessionEntry {
    std::unique_ptr<txn::Session> session;
    std::unique_ptr<opal::Interpreter> interpreter;
  };

  void Bootstrap();

  /// Resolves each named free variable from the globals and exports its
  /// object graph at the session's effective time; `exported` keeps the
  /// values' addresses stable for the Bindings.
  Status BindFreeVariables(txn::Session* s,
                           const std::vector<std::string>& names,
                           std::deque<stdm::StdmValue>* exported,
                           stdm::Bindings* free);

  /// Serializes user classes (names, superclasses, formats, instance
  /// variables, method sources) for schema recovery.
  std::string EncodeSchema() const;
  Status DecodeSchema(const std::string& blob);

  ObjectMemory memory_;
  opal::GlobalEnv globals_;
  index::DirectoryManager directories_;
  txn::TransactionManager transactions_;

  std::atomic<SessionId> next_session_{1};
  mutable SharedMutex sessions_mu_{LockRank::kExecutorSessions,
                                   "executor.sessions_mu"};
  std::unordered_map<SessionId, SessionEntry> sessions_
      GS_GUARDED_BY(sessions_mu_);
  std::atomic<std::size_t> session_count_{0};
};

}  // namespace gemstone::executor

#endif  // GEMSTONE_EXECUTOR_EXECUTOR_H_
