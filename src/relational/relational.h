#ifndef GEMSTONE_RELATIONAL_RELATIONAL_H_
#define GEMSTONE_RELATIONAL_RELATIONAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/result.h"
#include "core/status.h"

namespace gemstone::relational {

/// A relational field: flat atomic values only — precisely the
/// restriction §2C/§5.2 argue against ("Tuples in relations are flat
/// records of atomic values, with no repetition of fields").
using Field = std::variant<std::int64_t, double, std::string>;

std::string FieldToString(const Field& field);
bool FieldLess(const Field& a, const Field& b);

/// A tuple is one row of fields in schema order.
using Tuple = std::vector<Field>;

struct RelationalStats {
  std::uint64_t rows_examined = 0;
  std::uint64_t rows_output = 0;
  std::uint64_t index_probes = 0;
};

/// A relation: named columns over a bag of tuples, with optional
/// secondary indexes. This is the comparison baseline for the paper's
/// flattening/encoding arguments (experiment E4) and the impedance
/// mismatch demonstration (C7).
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t size() const { return rows_.size(); }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Column position; -1 if absent.
  int ColumnIndex(std::string_view name) const;

  /// Appends a tuple (arity-checked); maintains indexes.
  Status Insert(Tuple row);

  /// Builds an ordered secondary index over `column`.
  Status CreateIndex(std::string_view column);
  bool HasIndex(std::string_view column) const;

  /// Row indexes whose `column` equals `key` (via index when available).
  Result<std::vector<std::size_t>> Probe(std::string_view column,
                                         const Field& key,
                                         RelationalStats* stats) const;

 private:
  std::vector<std::string> columns_;
  std::vector<Tuple> rows_;
  // column position -> ordered index (key rendering -> row ids).
  std::unordered_map<int, std::multimap<std::string, std::size_t>> indexes_;
};

/// σ: rows satisfying `predicate`.
Table Select(const Table& input,
             const std::function<bool(const Tuple&)>& predicate,
             RelationalStats* stats = nullptr);

/// σ with an indexable equality condition: uses the column index if one
/// exists, else scans.
Result<Table> SelectEq(const Table& input, std::string_view column,
                       const Field& key, RelationalStats* stats = nullptr);

/// π: the named columns, in order.
Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns,
                      RelationalStats* stats = nullptr);

/// ⋈: equi-join on left.column = right.column (hash join; right is the
/// build side). Output columns: left's then right's (right join column
/// renamed with a "r_" prefix when names collide).
Result<Table> HashJoin(const Table& left, std::string_view left_column,
                       const Table& right, std::string_view right_column,
                       RelationalStats* stats = nullptr);

/// A named-table database.
class Database {
 public:
  Table* CreateTable(std::string name, std::vector<std::string> columns);
  Table* Find(std::string_view name);
  const Table* Find(std::string_view name) const;
  std::size_t table_count() const { return tables_.size(); }

 private:
  std::map<std::string, Table, std::less<>> tables_;
};

}  // namespace gemstone::relational

#endif  // GEMSTONE_RELATIONAL_RELATIONAL_H_
