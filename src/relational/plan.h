#ifndef GEMSTONE_RELATIONAL_PLAN_H_
#define GEMSTONE_RELATIONAL_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relational/relational.h"
#include "telemetry/io_attribution.h"

namespace gemstone::relational {

class RelPlanNode;

/// Per-operator measurements from one EXPLAIN ANALYZE run of a relational
/// plan (same shape as stdm::PlanNodeStats; the relational baseline gets
/// the same observability treatment as the set algebra).
struct RelNodeStats {
  std::uint64_t calls = 0;
  std::uint64_t rows_out = 0;
  std::uint64_t elapsed_ns = 0;
  telemetry::IoTally io;
};

class RelExplainContext {
 public:
  RelNodeStats& StatsFor(const RelPlanNode* node) { return stats_[node]; }
  const RelNodeStats* Find(const RelPlanNode* node) const {
    auto it = stats_.find(node);
    return it == stats_.end() ? nullptr : &it->second;
  }

 private:
  std::map<const RelPlanNode*, RelNodeStats> stats_;
};

/// Operator tree over the relational baseline: σ/π/⋈ composed as an
/// explainable plan instead of immediate function calls. Run() with a
/// context measures each operator (EXPLAIN ANALYZE).
class RelPlanNode {
 public:
  virtual ~RelPlanNode() = default;

  Result<Table> Run(const Database& db, RelationalStats* stats,
                    RelExplainContext* ctx) const;

  virtual std::string Label() const = 0;
  virtual std::vector<const RelPlanNode*> children() const { return {}; }

  void Render(int indent, std::string* out,
              const RelExplainContext* ctx = nullptr) const;

  virtual Result<Table> Execute(const Database& db, RelationalStats* stats,
                                RelExplainContext* ctx) const = 0;
};

/// Leaf: the named base table (copied; copies carry the base indexes, so
/// an index select directly above a scan still probes).
class RelScanNode : public RelPlanNode {
 public:
  explicit RelScanNode(std::string table) : table_(std::move(table)) {}
  Result<Table> Execute(const Database& db, RelationalStats* stats,
                        RelExplainContext* ctx) const override;
  std::string Label() const override { return "Scan[" + table_ + "]"; }

 private:
  std::string table_;
};

/// σ column = key, via the column's index when the input carries one.
class RelSelectEqNode : public RelPlanNode {
 public:
  RelSelectEqNode(std::unique_ptr<RelPlanNode> child, std::string column,
                  Field key)
      : child_(std::move(child)), column_(std::move(column)),
        key_(std::move(key)) {}
  Result<Table> Execute(const Database& db, RelationalStats* stats,
                        RelExplainContext* ctx) const override;
  std::string Label() const override {
    return "SelectEq[" + column_ + " = " + FieldToString(key_) + "]";
  }
  std::vector<const RelPlanNode*> children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<RelPlanNode> child_;
  std::string column_;
  Field key_;
};

/// π of the named columns.
class RelProjectNode : public RelPlanNode {
 public:
  RelProjectNode(std::unique_ptr<RelPlanNode> child,
                 std::vector<std::string> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}
  Result<Table> Execute(const Database& db, RelationalStats* stats,
                        RelExplainContext* ctx) const override;
  std::string Label() const override;
  std::vector<const RelPlanNode*> children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<RelPlanNode> child_;
  std::vector<std::string> columns_;
};

/// ⋈ on left.column = right.column (hash join, right builds).
class RelHashJoinNode : public RelPlanNode {
 public:
  RelHashJoinNode(std::unique_ptr<RelPlanNode> left,
                  std::unique_ptr<RelPlanNode> right, std::string left_column,
                  std::string right_column)
      : left_(std::move(left)), right_(std::move(right)),
        left_column_(std::move(left_column)),
        right_column_(std::move(right_column)) {}
  Result<Table> Execute(const Database& db, RelationalStats* stats,
                        RelExplainContext* ctx) const override;
  std::string Label() const override {
    return "HashJoin[" + left_column_ + " = " + right_column_ + "]";
  }
  std::vector<const RelPlanNode*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  std::unique_ptr<RelPlanNode> left_, right_;
  std::string left_column_, right_column_;
};

/// A complete relational plan with EXPLAIN / EXPLAIN ANALYZE rendering.
class RelPlan {
 public:
  explicit RelPlan(std::unique_ptr<RelPlanNode> root)
      : root_(std::move(root)) {}

  Result<Table> Execute(const Database& db, RelationalStats* stats = nullptr,
                        RelExplainContext* ctx = nullptr) const {
    return root_->Run(db, stats, ctx);
  }

  std::string ToString(const RelExplainContext* ctx = nullptr) const {
    std::string out;
    root_->Render(0, &out, ctx);
    return out;
  }

  const RelPlanNode* root() const { return root_.get(); }

 private:
  std::unique_ptr<RelPlanNode> root_;
};

}  // namespace gemstone::relational

#endif  // GEMSTONE_RELATIONAL_PLAN_H_
