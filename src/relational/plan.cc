#include "relational/plan.h"

#include <cstdio>

#include "telemetry/trace.h"

namespace gemstone::relational {

namespace {

void Indent(int indent, std::string* out) {
  out->append(static_cast<std::size_t>(indent) * 2, ' ');
}

std::string FormatMs(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

Result<Table> RelPlanNode::Run(const Database& db, RelationalStats* stats,
                               RelExplainContext* ctx) const {
  if (ctx == nullptr) return Execute(db, stats, ctx);
  const std::uint64_t start_ns = telemetry::TraceNowNs();
  const telemetry::IoTally io_before = telemetry::ThreadIoTally();
  Result<Table> table = Execute(db, stats, ctx);
  const telemetry::IoTally io_delta =
      telemetry::IoDelta(io_before, telemetry::ThreadIoTally());
  const std::uint64_t elapsed_ns = telemetry::TraceNowNs() - start_ns;
  RelNodeStats& node = ctx->StatsFor(this);
  node.calls += 1;
  node.elapsed_ns += elapsed_ns;
  node.io.tracks_read += io_delta.tracks_read;
  node.io.tracks_written += io_delta.tracks_written;
  node.io.seeks += io_delta.seeks;
  if (table.ok()) node.rows_out += table.value().size();
  return table;
}

void RelPlanNode::Render(int indent, std::string* out,
                         const RelExplainContext* ctx) const {
  Indent(indent, out);
  out->append(Label());
  const std::vector<const RelPlanNode*> kids = children();
  const RelNodeStats* node = ctx != nullptr ? ctx->Find(this) : nullptr;
  if (node != nullptr) {
    std::uint64_t rows_in = 0;
    std::uint64_t child_ns = 0;
    telemetry::IoTally child_io;
    for (const RelPlanNode* kid : kids) {
      if (const RelNodeStats* k = ctx->Find(kid); k != nullptr) {
        rows_in += k->rows_out;
        child_ns += k->elapsed_ns;
        child_io.tracks_read += k->io.tracks_read;
        child_io.tracks_written += k->io.tracks_written;
        child_io.seeks += k->io.seeks;
      }
    }
    const std::uint64_t excl_ns =
        node->elapsed_ns > child_ns ? node->elapsed_ns - child_ns : 0;
    const telemetry::IoTally excl_io = telemetry::IoDelta(child_io, node->io);
    out->append(" (in=" + std::to_string(rows_in) +
                " out=" + std::to_string(node->rows_out) + " time=" +
                FormatMs(excl_ns) + "ms reads=" +
                std::to_string(excl_io.tracks_read) + " writes=" +
                std::to_string(excl_io.tracks_written) + " seeks=" +
                std::to_string(excl_io.seeks) + ")");
  }
  out->append("\n");
  for (const RelPlanNode* kid : kids) kid->Render(indent + 1, out, ctx);
}

Result<Table> RelScanNode::Execute(const Database& db, RelationalStats* stats,
                                   RelExplainContext*) const {
  const Table* table = db.Find(table_);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + table_);
  }
  if (stats != nullptr) stats->rows_examined += table->size();
  return *table;
}

Result<Table> RelSelectEqNode::Execute(const Database& db,
                                       RelationalStats* stats,
                                       RelExplainContext* ctx) const {
  GS_ASSIGN_OR_RETURN(Table input, child_->Run(db, stats, ctx));
  return SelectEq(input, column_, key_, stats);
}

std::string RelProjectNode::Label() const {
  std::string out = "Project[";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i != 0) out += ", ";
    out += columns_[i];
  }
  return out + "]";
}

Result<Table> RelProjectNode::Execute(const Database& db,
                                      RelationalStats* stats,
                                      RelExplainContext* ctx) const {
  GS_ASSIGN_OR_RETURN(Table input, child_->Run(db, stats, ctx));
  return Project(input, columns_, stats);
}

Result<Table> RelHashJoinNode::Execute(const Database& db,
                                       RelationalStats* stats,
                                       RelExplainContext* ctx) const {
  GS_ASSIGN_OR_RETURN(Table left, left_->Run(db, stats, ctx));
  GS_ASSIGN_OR_RETURN(Table right, right_->Run(db, stats, ctx));
  return HashJoin(left, left_column_, right, right_column_, stats);
}

}  // namespace gemstone::relational
