#include "relational/relational.h"

#include <algorithm>

#include "telemetry/metrics.h"

namespace gemstone::relational {

namespace {

/// Scoped fold of one operator invocation's stat deltas into the
/// process-wide `relational.*` counters. Operators accumulate into the
/// caller's RelationalStats (or a local one when the caller passed
/// nullptr); only the top-level operator folds, so a nested Probe is
/// counted once.
class StatsFold {
 public:
  explicit StatsFold(RelationalStats* caller)
      : stats_(caller != nullptr ? caller : &local_), before_(*stats_) {}
  ~StatsFold() {
    auto& registry = telemetry::MetricsRegistry::Global();
    static telemetry::Counter* ops = registry.GetCounter("relational.ops");
    static telemetry::Counter* examined =
        registry.GetCounter("relational.rows_examined");
    static telemetry::Counter* output =
        registry.GetCounter("relational.rows_output");
    static telemetry::Counter* probes =
        registry.GetCounter("relational.index_probes");
    ops->Increment();
    examined->Increment(stats_->rows_examined - before_.rows_examined);
    output->Increment(stats_->rows_output - before_.rows_output);
    probes->Increment(stats_->index_probes - before_.index_probes);
  }

  RelationalStats* stats() { return stats_; }

 private:
  RelationalStats local_;
  RelationalStats* stats_;
  RelationalStats before_;
};

}  // namespace

std::string FieldToString(const Field& field) {
  if (const auto* i = std::get_if<std::int64_t>(&field)) {
    return "i" + std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&field)) {
    return "d" + std::to_string(*d);
  }
  return "s" + std::get<std::string>(field);
}

bool FieldLess(const Field& a, const Field& b) {
  // Numeric kinds compare numerically across int/double; strings sort
  // after numbers.
  const bool a_num = !std::holds_alternative<std::string>(a);
  const bool b_num = !std::holds_alternative<std::string>(b);
  if (a_num != b_num) return a_num;
  if (a_num) {
    const double x = std::holds_alternative<std::int64_t>(a)
                         ? static_cast<double>(std::get<std::int64_t>(a))
                         : std::get<double>(a);
    const double y = std::holds_alternative<std::int64_t>(b)
                         ? static_cast<double>(std::get<std::int64_t>(b))
                         : std::get<double>(b);
    return x < y;
  }
  return std::get<std::string>(a) < std::get<std::string>(b);
}

int Table::ColumnIndex(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status Table::Insert(Tuple row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  const std::size_t id = rows_.size();
  for (auto& [column, index] : indexes_) {
    index.emplace(FieldToString(row[static_cast<std::size_t>(column)]), id);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::CreateIndex(std::string_view column) {
  const int c = ColumnIndex(column);
  if (c < 0) return Status::NotFound("no column " + std::string(column));
  if (indexes_.count(c) != 0) {
    return Status::AlreadyExists("index exists on " + std::string(column));
  }
  std::multimap<std::string, std::size_t> index;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    index.emplace(FieldToString(rows_[i][static_cast<std::size_t>(c)]), i);
  }
  indexes_.emplace(c, std::move(index));
  return Status::OK();
}

bool Table::HasIndex(std::string_view column) const {
  const int c = ColumnIndex(column);
  return c >= 0 && indexes_.count(c) != 0;
}

Result<std::vector<std::size_t>> Table::Probe(std::string_view column,
                                              const Field& key,
                                              RelationalStats* stats) const {
  const int c = ColumnIndex(column);
  if (c < 0) return Status::NotFound("no column " + std::string(column));
  std::vector<std::size_t> out;
  auto index_it = indexes_.find(c);
  if (index_it != indexes_.end()) {
    if (stats != nullptr) ++stats->index_probes;
    auto [begin, end] = index_it->second.equal_range(FieldToString(key));
    for (auto it = begin; it != end; ++it) out.push_back(it->second);
    return out;
  }
  const std::string target = FieldToString(key);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (stats != nullptr) ++stats->rows_examined;
    if (FieldToString(rows_[i][static_cast<std::size_t>(c)]) == target) {
      out.push_back(i);
    }
  }
  return out;
}

Table Select(const Table& input,
             const std::function<bool(const Tuple&)>& predicate,
             RelationalStats* stats) {
  StatsFold fold(stats);
  stats = fold.stats();
  Table out(input.columns());
  for (const Tuple& row : input.rows()) {
    if (stats != nullptr) ++stats->rows_examined;
    if (predicate(row)) {
      (void)out.Insert(row);
      if (stats != nullptr) ++stats->rows_output;
    }
  }
  return out;
}

Result<Table> SelectEq(const Table& input, std::string_view column,
                       const Field& key, RelationalStats* stats) {
  StatsFold fold(stats);
  stats = fold.stats();
  GS_ASSIGN_OR_RETURN(std::vector<std::size_t> ids,
                      input.Probe(column, key, stats));
  Table out(input.columns());
  for (std::size_t id : ids) {
    (void)out.Insert(input.rows()[id]);
    if (stats != nullptr) ++stats->rows_output;
  }
  return out;
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns,
                      RelationalStats* stats) {
  StatsFold fold(stats);
  stats = fold.stats();
  std::vector<int> positions;
  for (const std::string& column : columns) {
    const int c = input.ColumnIndex(column);
    if (c < 0) return Status::NotFound("no column " + column);
    positions.push_back(c);
  }
  Table out(columns);
  for (const Tuple& row : input.rows()) {
    if (stats != nullptr) ++stats->rows_examined;
    Tuple projected;
    projected.reserve(positions.size());
    for (int c : positions) {
      projected.push_back(row[static_cast<std::size_t>(c)]);
    }
    (void)out.Insert(std::move(projected));
    if (stats != nullptr) ++stats->rows_output;
  }
  return out;
}

Result<Table> HashJoin(const Table& left, std::string_view left_column,
                       const Table& right, std::string_view right_column,
                       RelationalStats* stats) {
  StatsFold fold(stats);
  stats = fold.stats();
  const int lc = left.ColumnIndex(left_column);
  const int rc = right.ColumnIndex(right_column);
  if (lc < 0 || rc < 0) return Status::NotFound("join column missing");

  std::vector<std::string> columns = left.columns();
  for (const std::string& column : right.columns()) {
    const bool collision =
        std::find(columns.begin(), columns.end(), column) != columns.end();
    columns.push_back(collision ? "r_" + column : column);
  }
  Table out(std::move(columns));

  std::unordered_map<std::string, std::vector<std::size_t>> build;
  for (std::size_t i = 0; i < right.rows().size(); ++i) {
    if (stats != nullptr) ++stats->rows_examined;
    build[FieldToString(right.rows()[i][static_cast<std::size_t>(rc)])]
        .push_back(i);
  }
  for (const Tuple& lrow : left.rows()) {
    if (stats != nullptr) ++stats->rows_examined;
    auto it = build.find(FieldToString(lrow[static_cast<std::size_t>(lc)]));
    if (it == build.end()) continue;
    for (std::size_t rid : it->second) {
      Tuple merged = lrow;
      const Tuple& rrow = right.rows()[rid];
      merged.insert(merged.end(), rrow.begin(), rrow.end());
      (void)out.Insert(std::move(merged));
      if (stats != nullptr) ++stats->rows_output;
    }
  }
  return out;
}

Table* Database::CreateTable(std::string name,
                             std::vector<std::string> columns) {
  auto [it, inserted] =
      tables_.emplace(std::move(name), Table(std::move(columns)));
  return inserted ? &it->second : nullptr;
}

Table* Database::Find(std::string_view name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const Table* Database::Find(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

}  // namespace gemstone::relational
