#ifndef GEMSTONE_OPAL_BYTECODE_H_
#define GEMSTONE_OPAL_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "object/class_registry.h"
#include "object/symbol_table.h"
#include "object/value.h"

namespace gemstone::opal {

/// The OPAL instruction set. §6: the Interpreter "is an abstract stack
/// machine that executes compiledMethods consisting of sequences of
/// bytecodes, much the same as the ST80 interpreter."
///
/// Operand widths: L = u16 literal index, T = u8 lexical level + u16 slot,
/// A = u8 argument count, F = u8 flag.
enum class Op : std::uint8_t {
  kPushLiteral,   // L: push literals[L]
  kPushSelf,      //    push the receiver
  kPushTemp,      // T: push temp slot at lexical level
  kStoreTemp,     // T: store top into temp slot (value stays on stack)
  kPushGlobal,    // L: resolve global/class name (literal is a Symbol)
  kStoreGlobal,   // L: store top into global (value stays)
  kPushInstVar,   // L: read self's instance variable (Symbol literal)
  kStoreInstVar,  // L: write self's instance variable (value stays)
  kPop,           //    discard top
  kDup,           //    duplicate top (cascade receivers)
  kSend,          // L A: send selector literals[L] with A args
  kSuperSend,     // L A: as kSend but lookup starts above defining class
  kPushBlock,     // L: close blocks[L] over the current environment
  kReturnTop,     //    method return (non-local when executed in a block)
  kLocalReturn,   //    end-of-block return to the block's caller
  kPathGet,       // L F: pop [time if F] then receiver; read element
  kPathSet,       // L: pop value, receiver; write element (push value)
  kMakeArray,     // A(u16): pop A values, build a new Array object
};

std::string_view OpToString(Op op);

/// A compiled unit: a method, a `doIt` code body, or a block body.
///
/// Derives MethodHandle so method dictionaries in the object layer can
/// hold it without knowing about bytecodes.
class CompiledMethod : public MethodHandle {
 public:
  std::string selector;
  std::uint8_t num_args = 0;
  std::uint16_t num_slots = 0;  // args + temps
  bool is_block = false;
  std::vector<std::uint8_t> code;
  std::vector<Value> literals;
  std::vector<std::shared_ptr<const CompiledMethod>> blocks;

  /// Filled by the compiler when a block body is a recognizable
  /// conjunction of path comparisons over the block argument — the
  /// declarative subset the query translator accepts (§6: "a large
  /// addition is needed [to] translate calculus expressions into
  /// procedural form"; we keep both forms). Structure:
  /// each conjunct: `arg!path <op> literal` or `arg!path <op> arg!path2`.
  struct PredicateConjunct {
    std::vector<std::string> lhs_path;  // steps on the block argument
    enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe } op;
    Value rhs_literal;                  // used when rhs_path empty
    std::vector<std::string> rhs_path;  // non-empty: path on the argument
  };
  std::vector<PredicateConjunct> declarative_conjuncts;
  bool is_declarative = false;

  /// Human-readable listing for tests and debugging.
  std::string Disassemble(const SymbolTable& symbols) const;
};

/// A primitive method: C++ code installed in a method dictionary. The
/// interpreter invokes `fn` with the receiver and evaluated arguments.
class Interpreter;
using PrimitiveFn = Result<Value> (*)(Interpreter&, const Value&,
                                      std::vector<Value>&);

class PrimitiveMethod : public MethodHandle {
 public:
  explicit PrimitiveMethod(PrimitiveFn fn) : fn(fn) {}
  PrimitiveFn fn;
};

/// Bytecode emission helper used by the compiler.
class Emitter {
 public:
  void Op8(Op op) { code_.push_back(static_cast<std::uint8_t>(op)); }
  void U8(std::uint8_t v) { code_.push_back(v); }
  void U16(std::uint16_t v) {
    code_.push_back(static_cast<std::uint8_t>(v & 0xFF));
    code_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  std::vector<std::uint8_t> Take() { return std::move(code_); }
  std::size_t size() const { return code_.size(); }

 private:
  std::vector<std::uint8_t> code_;
};

}  // namespace gemstone::opal

#endif  // GEMSTONE_OPAL_BYTECODE_H_
