#ifndef GEMSTONE_OPAL_PARSER_H_
#define GEMSTONE_OPAL_PARSER_H_

#include <string_view>
#include <vector>

#include "core/result.h"
#include "object/symbol_table.h"
#include "opal/ast.h"
#include "opal/token.h"

namespace gemstone::opal {

/// Recursive-descent parser for OPAL. Grammar is ST80's:
///
///   statements := (statement '.')* [statement]
///   statement  := '^' expression | expression
///   expression := identifier ':=' expression | cascade
///   cascade    := keywordMsg (';' cascadePart)*
///   keywordMsg := binaryMsg (keyword binaryMsg)*
///   binaryMsg  := unaryMsg (binarySelector unaryMsg)*
///   unaryMsg   := primary (unarySelector | '!' pathStep)*
///   primary    := identifier | literal | block | '(' expression ')'
///                 | '{' statements '}' | '#(' literals ')'
///
/// plus path assignment `p!a!b := e` (§4.3) and the `@time` qualifier
/// after a path step.
class Parser {
 public:
  Parser(std::vector<Token> tokens, SymbolTable* symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  /// Parses a code block (an Executor unit): optional `| temps |` then
  /// statements.
  Result<MethodAst> ParseCodeBody();

  /// Parses a full method definition: message pattern, temps, statements.
  Result<MethodAst> ParseMethod();

  /// Convenience: lex + parse a code body in one call.
  static Result<MethodAst> ParseBody(std::string_view source,
                                     SymbolTable* symbols);
  /// Convenience: lex + parse a method in one call.
  static Result<MethodAst> ParseMethodSource(std::string_view source,
                                             SymbolTable* symbols);

 private:
  const Token& Peek(std::size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind);
  Status ErrorHere(const std::string& message) const;

  Status ParseTempDecls(std::vector<std::string>* temps);
  Status ParseStatements(std::vector<ExprPtr>* body, TokenKind terminator);
  Result<ExprPtr> ParseStatement();
  Result<ExprPtr> ParseExpression();
  Result<ExprPtr> ParseCascade();
  Result<ExprPtr> ParseKeywordMessage();
  Result<ExprPtr> ParseBinaryMessage();
  Result<ExprPtr> ParseUnaryMessage();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseBlock();
  Result<Value> ParseLiteralArrayElement();

  std::vector<Token> tokens_;
  SymbolTable* symbols_;
  std::size_t pos_ = 0;
};

}  // namespace gemstone::opal

#endif  // GEMSTONE_OPAL_PARSER_H_
