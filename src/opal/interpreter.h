#ifndef GEMSTONE_OPAL_INTERPRETER_H_
#define GEMSTONE_OPAL_INTERPRETER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/annotations.h"
#include "core/result.h"
#include "core/sync.h"
#include "object/object_memory.h"
#include "opal/bytecode.h"
#include "telemetry/metrics.h"
#include "txn/session.h"

namespace gemstone::index {
class DirectoryManager;
}  // namespace gemstone::index

namespace gemstone::opal {

/// Lexically chained temporary slots: a method activation owns one, block
/// activations chain to the defining activation's environment so closures
/// read and write their home temporaries.
struct TempEnv {
  std::vector<Value> slots;
  std::shared_ptr<TempEnv> parent;
};

/// A closed-over block: compiled code plus the captured environment,
/// receiver and home-activation identity (for non-local `^` returns).
class BlockClosure : public RuntimeHandle {
 public:
  std::shared_ptr<const CompiledMethod> method;
  std::shared_ptr<TempEnv> home_env;
  Value home_receiver;
  Oid home_class;                 // class context for instVar access
  std::uint64_t home_frame_id = 0;  // method activation ^ returns from
};

/// Shared global namespace ("UserGlobals"): symbol -> value. Class names
/// resolve through the ClassRegistry before this table is consulted.
/// Thread-safe: one GlobalEnv is shared by every session's interpreter
/// (the Interpreter itself is session-confined). Reads take the shared
/// side: snapshot-path readers resolve the same globals every bytecode
/// loop, so an exclusive lock here would re-serialize the read path.
class GlobalEnv {
 public:
  void Set(SymbolId name, Value value) {
    WriterMutexLock lock(mu_);
    values_[name] = std::move(value);
  }
  bool Get(SymbolId name, Value* out) const {
    ReaderMutexLock lock(mu_);
    auto it = values_.find(name);
    if (it == values_.end()) return false;
    *out = it->second;
    return true;
  }

 private:
  mutable SharedMutex mu_{LockRank::kOpalGlobals, "opal.globals_mu"};
  std::unordered_map<SymbolId, Value> values_ GS_GUARDED_BY(mu_);
};

/// Thin snapshot of one session's telemetry counters. The registry view
/// (`opal.*`) sums every live session plus retired ones, so it reads as
/// process-lifetime totals. Relaxed-atomic reads: individually monotonic,
/// no cross-field consistency while the session executes.
struct InterpreterStats {
  std::uint64_t message_sends = 0;
  std::uint64_t primitive_calls = 0;
  std::uint64_t block_invocations = 0;
  std::uint64_t bytecodes = 0;
};

/// The OPAL abstract stack machine (§6): "It dispatches bytecodes,
/// performs stack manipulations and some primitive methods, and makes
/// calls to the Object Manager."
///
/// One interpreter per session; all persistent-object access flows
/// through the Session (so the time dial and the transaction workspace
/// apply uniformly), and message lookup walks the shared ClassRegistry.
class Interpreter {
 public:
  Interpreter(ObjectMemory* memory, txn::Session* session, GlobalEnv* globals);

  ObjectMemory& memory() { return *memory_; }
  txn::Session& session() { return *session_; }
  GlobalEnv& globals() { return *globals_; }

  /// Optional Directory Manager: when set, collection primitives maintain
  /// directories and selectWhere: consults them.
  void set_directories(index::DirectoryManager* directories) {
    directories_ = directories;
  }
  index::DirectoryManager* directories() { return directories_; }
  InterpreterStats stats() const;
  void ResetStats();

  /// Runs a compiled `doIt` body with `self` = nil; answers its value.
  Result<Value> Run(std::shared_ptr<const CompiledMethod> body);

  /// Full message send with method lookup (primitives included).
  Result<Value> Send(const Value& receiver, SymbolId selector,
                     std::vector<Value> args);

  /// Invokes a block closure value (primitives use this for value, do:,
  /// select:, whileTrue:, ...). After the call, check nlr_active(): a
  /// pending non-local return must be propagated, not swallowed.
  Result<Value> CallBlock(const Value& block, std::vector<Value> args);

  /// True while a `^` from inside a block is unwinding toward its home
  /// method activation.
  bool nlr_active() const { return nlr_active_; }

  /// The dynamic class of a value: classes answer Class; blocks answer
  /// Block; refs resolve through the session (workspace included).
  Result<Oid> ClassOfValue(const Value& value);

  /// Class-name rendering for diagnostics.
  std::string ClassNameOf(const Value& value);

  /// Resolves a global: user globals first, then class names.
  Result<Value> ResolveGlobal(SymbolId name);

  /// A short human-readable rendering (printString's default).
  std::string DefaultPrintString(const Value& value);

 private:
  struct Frame {
    const CompiledMethod* method = nullptr;
    std::shared_ptr<TempEnv> env;
    Value receiver;
    Oid defining_class;        // class whose dictionary held the method
    std::uint64_t frame_id = 0;       // this activation
    std::uint64_t home_frame_id = 0;  // enclosing method activation
    bool is_block = false;
  };

  Result<Value> Execute(Frame& frame);
  Result<Value> Activate(const CompiledMethod& method, Oid defining_class,
                         const Value& receiver, std::vector<Value> args,
                         std::shared_ptr<TempEnv> captured_env,
                         std::uint64_t home_frame_id, bool is_block);
  Result<Value> DispatchSend(const Value& receiver, SymbolId selector,
                             std::vector<Value> args, bool super_send,
                             Oid defining_class);
  Result<Value> PathRead(const Value& receiver, SymbolId name,
                         const Value* time);

  ObjectMemory* memory_;
  txn::Session* session_;
  GlobalEnv* globals_;
  index::DirectoryManager* directories_ = nullptr;

  telemetry::Counter message_sends_;
  telemetry::Counter primitive_calls_;
  telemetry::Counter block_invocations_;
  telemetry::Counter bytecodes_;
  telemetry::Registration telemetry_;  // after the counters it samples

  std::uint64_t next_frame_id_ = 1;
  bool nlr_active_ = false;
  std::uint64_t nlr_target_ = 0;
  Value nlr_value_;
  int depth_ = 0;

  /// Session-confined send cache: (lookup class, selector) -> resolved
  /// method and its defining class, valid for one ClassRegistry schema
  /// version. Sends are the hottest operation in the system, and the
  /// snapshot read path (DESIGN.md §12) runs many interpreters at once —
  /// without the cache every send takes the registry's shared lock,
  /// whose cache-line traffic alone serializes the workers. Entries
  /// cleared on a version bump still point at live methods (the registry
  /// retires replaced handles, never destroys them).
  struct SendCacheKey {
    std::uint64_t class_oid;
    SymbolId selector;
    bool operator==(const SendCacheKey& o) const {
      return class_oid == o.class_oid && selector == o.selector;
    }
  };
  struct SendCacheKeyHash {
    std::size_t operator()(const SendCacheKey& k) const {
      std::uint64_t x = k.class_oid * 0x9e3779b97f4a7c15ull + k.selector;
      x ^= x >> 32;
      return static_cast<std::size_t>(x);
    }
  };
  struct SendCacheEntry {
    const MethodHandle* method;
    Oid defining_class;
  };
  /// Drops stale entries when the registry's schema version moved.
  void RefreshSendCache();
  std::unordered_map<SendCacheKey, SendCacheEntry, SendCacheKeyHash>
      send_cache_;
  /// Oids known to name classes / known not to, same schema version.
  std::unordered_map<std::uint64_t, bool> class_oid_cache_;
  std::uint64_t send_cache_version_ = 0;
};

/// Installs the kernel primitive methods (Object, Boolean, Number,
/// String, Block, collections, Class, System) into `memory`'s class
/// registry. Call once per ObjectMemory before interpreting.
void InstallKernelPrimitives(ObjectMemory* memory);

}  // namespace gemstone::opal

#endif  // GEMSTONE_OPAL_INTERPRETER_H_
