#include "opal/interpreter.h"

#include "telemetry/profiler.h"

namespace gemstone::opal {

namespace {
constexpr int kMaxDepth = 512;
}  // namespace

Interpreter::Interpreter(ObjectMemory* memory, txn::Session* session,
                         GlobalEnv* globals)
    : memory_(memory),
      session_(session),
      globals_(globals),
      telemetry_(telemetry::MetricsRegistry::Global().Register(
          [this](telemetry::SampleSink* sink) {
            sink->Counter("opal.message_sends", message_sends_.value());
            sink->Counter("opal.primitive_calls", primitive_calls_.value());
            sink->Counter("opal.block_invocations",
                          block_invocations_.value());
            sink->Counter("opal.bytecodes", bytecodes_.value());
          })) {}

InterpreterStats Interpreter::stats() const {
  InterpreterStats stats;
  stats.message_sends = message_sends_.value();
  stats.primitive_calls = primitive_calls_.value();
  stats.block_invocations = block_invocations_.value();
  stats.bytecodes = bytecodes_.value();
  return stats;
}

void Interpreter::ResetStats() {
  message_sends_.Reset();
  primitive_calls_.Reset();
  block_invocations_.Reset();
  bytecodes_.Reset();
}

Result<Value> Interpreter::Run(std::shared_ptr<const CompiledMethod> body) {
  nlr_active_ = false;
  Result<Value> result =
      Activate(*body, kNilOid, Value::Nil(), {}, nullptr, 0,
               /*is_block=*/false);
  if (nlr_active_) {
    nlr_active_ = false;
    return Status::RuntimeError(
        "non-local return from a block whose home method already returned");
  }
  return result;
}

Result<Value> Interpreter::Send(const Value& receiver, SymbolId selector,
                                std::vector<Value> args) {
  return DispatchSend(receiver, selector, std::move(args),
                      /*super_send=*/false, kNilOid);
}

Result<Oid> Interpreter::ClassOfValue(const Value& value) {
  if (value.IsHandle()) return memory_->kernel().block;
  if (value.IsRef()) {
    // A reference to a class behaves as an instance of Class. Class-ness
    // is cached per schema version so the hot path doesn't take the
    // registry lock for every receiver.
    RefreshSendCache();
    auto it = class_oid_cache_.find(value.ref().raw);
    if (it == class_oid_cache_.end()) {
      it = class_oid_cache_
               .emplace(value.ref().raw,
                        memory_->classes().Get(value.ref()) != nullptr)
               .first;
    }
    if (it->second) return memory_->kernel().metaclass;
    return session_->ClassOfObject(value.ref());
  }
  return memory_->ClassOf(value);
}

void Interpreter::RefreshSendCache() {
  const std::uint64_t version = memory_->classes().SchemaVersion();
  if (version != send_cache_version_) {
    send_cache_.clear();
    class_oid_cache_.clear();
    send_cache_version_ = version;
  }
}

std::string Interpreter::ClassNameOf(const Value& value) {
  auto class_oid = ClassOfValue(value);
  if (!class_oid.ok()) return "<unknown>";
  const GsClass* cls = memory_->classes().Get(class_oid.value());
  return cls == nullptr ? "<unknown>" : cls->name();
}

Result<Value> Interpreter::ResolveGlobal(SymbolId name) {
  Value out;
  if (globals_->Get(name, &out)) return out;
  const GsClass* cls =
      memory_->classes().FindByName(memory_->symbols().Name(name));
  if (cls != nullptr) return Value::Ref(cls->oid());
  return Status::RuntimeError("undefined global: " +
                              memory_->symbols().Name(name));
}

std::string Interpreter::DefaultPrintString(const Value& value) {
  switch (value.tag()) {
    case ValueTag::kNil:
    case ValueTag::kBoolean:
    case ValueTag::kInteger:
    case ValueTag::kFloat:
    case ValueTag::kString:
      return value.ToString();
    case ValueTag::kSymbol:
      return "#" + memory_->symbols().Name(value.symbol());
    case ValueTag::kHandle:
      return "a Block";
    case ValueTag::kRef: {
      if (const GsClass* cls = memory_->classes().Get(value.ref())) {
        return cls->name();
      }
      const std::string name = ClassNameOf(value);
      const char article =
          !name.empty() && std::string("AEIOU").find(name[0]) !=
                               std::string::npos
              ? 'n'
              : '\0';
      return (article == 'n' ? "an " : "a ") + name;
    }
  }
  return "?";
}

Result<Value> Interpreter::DispatchSend(const Value& receiver,
                                        SymbolId selector,
                                        std::vector<Value> args,
                                        bool super_send, Oid defining_class) {
  message_sends_.Increment();
  // Selector-name lookup only when profiling (the name is an interned
  // string with process lifetime, so the scope's view stays valid).
  telemetry::ProfileScope profile_scope(
      telemetry::Profiler::Enabled()
          ? std::string_view(memory_->symbols().Name(selector))
          : std::string_view());
  Oid lookup_class;
  if (super_send) {
    const GsClass* defining = memory_->classes().Get(defining_class);
    if (defining == nullptr) {
      return Status::RuntimeError("super send outside a method");
    }
    lookup_class = defining->superclass();
  } else {
    GS_ASSIGN_OR_RETURN(lookup_class, ClassOfValue(receiver));
  }
  RefreshSendCache();
  Oid found_in;
  const MethodHandle* method = nullptr;
  const SendCacheKey key{lookup_class.raw, selector};
  if (auto cached = send_cache_.find(key); cached != send_cache_.end()) {
    method = cached->second.method;
    found_in = cached->second.defining_class;
  } else {
    method =
        memory_->classes().LookupMethodFrom(lookup_class, selector, &found_in);
    if (method != nullptr) {
      send_cache_.emplace(key, SendCacheEntry{method, found_in});
    }
  }
  if (method == nullptr) {
    return Status::DoesNotUnderstand(
        ClassNameOf(receiver) + " does not understand #" +
        memory_->symbols().Name(selector));
  }
  if (const auto* primitive = dynamic_cast<const PrimitiveMethod*>(method)) {
    primitive_calls_.Increment();
    return primitive->fn(*this, receiver, args);
  }
  const auto* compiled = static_cast<const CompiledMethod*>(method);
  if (args.size() != compiled->num_args) {
    return Status::RuntimeError(
        "wrong number of arguments to #" + memory_->symbols().Name(selector) +
        ": got " + std::to_string(args.size()) + ", want " +
        std::to_string(compiled->num_args));
  }
  return Activate(*compiled, found_in, receiver, std::move(args), nullptr, 0,
                  /*is_block=*/false);
}

Result<Value> Interpreter::CallBlock(const Value& block,
                                     std::vector<Value> args) {
  if (!block.IsHandle()) {
    return Status::TypeMismatch("value/do: target is not a block");
  }
  auto* closure = dynamic_cast<BlockClosure*>(block.handle().get());
  if (closure == nullptr) {
    return Status::TypeMismatch("handle is not a block closure");
  }
  if (args.size() != closure->method->num_args) {
    return Status::RuntimeError(
        "block expects " + std::to_string(closure->method->num_args) +
        " arguments, got " + std::to_string(args.size()));
  }
  block_invocations_.Increment();
  return Activate(*closure->method, closure->home_class,
                  closure->home_receiver, std::move(args), closure->home_env,
                  closure->home_frame_id, /*is_block=*/true);
}

Result<Value> Interpreter::Activate(const CompiledMethod& method,
                                    Oid defining_class, const Value& receiver,
                                    std::vector<Value> args,
                                    std::shared_ptr<TempEnv> captured_env,
                                    std::uint64_t home_frame_id,
                                    bool is_block) {
  if (++depth_ > kMaxDepth) {
    --depth_;
    return Status::RuntimeError("activation stack overflow (depth " +
                                std::to_string(kMaxDepth) + ")");
  }
  Frame frame;
  frame.method = &method;
  frame.env = std::make_shared<TempEnv>();
  frame.env->slots.resize(method.num_slots);
  frame.env->parent = std::move(captured_env);
  for (std::size_t i = 0; i < args.size(); ++i) {
    frame.env->slots[i] = std::move(args[i]);
  }
  frame.receiver = receiver;
  frame.defining_class = defining_class;
  frame.frame_id = next_frame_id_++;
  frame.home_frame_id = is_block ? home_frame_id : frame.frame_id;
  frame.is_block = is_block;

  Result<Value> result = Execute(frame);
  --depth_;
  if (result.ok() && nlr_active_ && !is_block &&
      nlr_target_ == frame.frame_id) {
    // A block's ^ landed back in its home activation: consume it.
    nlr_active_ = false;
    return std::move(nlr_value_);
  }
  return result;
}

Result<Value> Interpreter::Execute(Frame& frame) {
  const std::vector<std::uint8_t>& code = frame.method->code;
  const std::vector<Value>& literals = frame.method->literals;
  std::vector<Value> stack;
  std::size_t ip = 0;

  auto u8 = [&]() { return code[ip++]; };
  auto u16 = [&]() {
    std::uint16_t v = static_cast<std::uint16_t>(code[ip]) |
                      (static_cast<std::uint16_t>(code[ip + 1]) << 8);
    ip += 2;
    return v;
  };
  auto env_at = [&](std::uint8_t level) {
    TempEnv* env = frame.env.get();
    for (std::uint8_t i = 0; i < level && env != nullptr; ++i) {
      env = env->parent.get();
    }
    return env;
  };

  while (ip < code.size()) {
    bytecodes_.Increment();
    const Op op = static_cast<Op>(u8());
    switch (op) {
      case Op::kPushLiteral:
        stack.push_back(literals[u16()]);
        break;
      case Op::kPushSelf:
        stack.push_back(frame.receiver);
        break;
      case Op::kPushTemp: {
        const std::uint8_t level = u8();
        const std::uint16_t slot = u16();
        TempEnv* env = env_at(level);
        if (env == nullptr || slot >= env->slots.size()) {
          return Status::Internal("bad temp reference");
        }
        stack.push_back(env->slots[slot]);
        break;
      }
      case Op::kStoreTemp: {
        const std::uint8_t level = u8();
        const std::uint16_t slot = u16();
        TempEnv* env = env_at(level);
        if (env == nullptr || slot >= env->slots.size()) {
          return Status::Internal("bad temp reference");
        }
        env->slots[slot] = stack.back();
        break;
      }
      case Op::kPushGlobal: {
        const Value& name = literals[u16()];
        GS_ASSIGN_OR_RETURN(Value v, ResolveGlobal(name.symbol()));
        stack.push_back(std::move(v));
        break;
      }
      case Op::kStoreGlobal: {
        if (session_->SnapshotPinned()) {
          return Status::ReadOnlyRetry(
              "global assignment on the snapshot read path");
        }
        const Value& name = literals[u16()];
        globals_->Set(name.symbol(), stack.back());
        break;
      }
      case Op::kPushInstVar: {
        const Value& name = literals[u16()];
        if (!frame.receiver.IsRef()) {
          return Status::RuntimeError(
              "instance variable access on a non-object receiver");
        }
        GS_ASSIGN_OR_RETURN(
            Value v, session_->ReadNamed(frame.receiver.ref(), name.symbol()));
        stack.push_back(std::move(v));
        break;
      }
      case Op::kStoreInstVar: {
        const Value& name = literals[u16()];
        if (!frame.receiver.IsRef()) {
          return Status::RuntimeError(
              "instance variable store on a non-object receiver");
        }
        GS_RETURN_IF_ERROR(session_->WriteNamed(frame.receiver.ref(),
                                                name.symbol(), stack.back()));
        break;
      }
      case Op::kPop:
        stack.pop_back();
        break;
      case Op::kDup:
        stack.push_back(stack.back());
        break;
      case Op::kSend:
      case Op::kSuperSend: {
        const std::uint16_t selector_index = u16();
        const std::uint8_t argc = u8();
        std::vector<Value> args(argc);
        for (int i = argc - 1; i >= 0; --i) {
          args[static_cast<std::size_t>(i)] = std::move(stack.back());
          stack.pop_back();
        }
        Value receiver = std::move(stack.back());
        stack.pop_back();
        Result<Value> result = DispatchSend(
            receiver, literals[selector_index].symbol(), std::move(args),
            op == Op::kSuperSend, frame.defining_class);
        if (!result.ok()) return result;
        if (nlr_active_) {
          if (nlr_target_ == frame.frame_id && !frame.is_block) {
            nlr_active_ = false;
            return std::move(nlr_value_);
          }
          return Value::Nil();  // keep unwinding
        }
        stack.push_back(std::move(result).value());
        break;
      }
      case Op::kPushBlock: {
        const std::uint16_t index = u16();
        auto closure = std::make_shared<BlockClosure>();
        closure->method = frame.method->blocks[index];
        closure->home_env = frame.env;
        closure->home_receiver = frame.receiver;
        closure->home_class = frame.defining_class;
        closure->home_frame_id = frame.home_frame_id;
        stack.push_back(Value::Handle(std::move(closure)));
        break;
      }
      case Op::kReturnTop: {
        Value top = std::move(stack.back());
        stack.pop_back();
        if (!frame.is_block) return top;
        // Non-local return: unwind to the home method activation.
        nlr_active_ = true;
        nlr_target_ = frame.home_frame_id;
        nlr_value_ = std::move(top);
        return Value::Nil();
      }
      case Op::kLocalReturn: {
        Value top = std::move(stack.back());
        stack.pop_back();
        return top;
      }
      case Op::kPathGet: {
        const Value& name = literals[u16()];
        const bool timed = u8() != 0;
        Value time;
        if (timed) {
          time = std::move(stack.back());
          stack.pop_back();
        }
        Value receiver = std::move(stack.back());
        stack.pop_back();
        GS_ASSIGN_OR_RETURN(
            Value v,
            PathRead(receiver, name.symbol(), timed ? &time : nullptr));
        stack.push_back(std::move(v));
        break;
      }
      case Op::kPathSet: {
        Value value = std::move(stack.back());
        stack.pop_back();
        Value receiver = std::move(stack.back());
        stack.pop_back();
        const Value& name = literals[u16()];
        if (!receiver.IsRef()) {
          return Status::TypeMismatch("path assignment into a simple value");
        }
        GS_RETURN_IF_ERROR(
            session_->WriteNamed(receiver.ref(), name.symbol(), value));
        stack.push_back(std::move(value));
        break;
      }
      case Op::kMakeArray: {
        const std::uint16_t n = u16();
        GS_ASSIGN_OR_RETURN(Oid array,
                            session_->Create(memory_->kernel().array));
        // Elements sit on the stack in order; append from the bottom.
        const std::size_t base = stack.size() - n;
        for (std::size_t i = 0; i < n; ++i) {
          GS_RETURN_IF_ERROR(
              session_->AppendIndexed(array, std::move(stack[base + i]))
                  .status());
        }
        stack.resize(base);
        stack.push_back(Value::Ref(array));
        break;
      }
    }
  }
  // Code should always end in a return; reaching here is a compiler bug.
  return Status::Internal("fell off the end of compiled code");
}

Result<Value> Interpreter::PathRead(const Value& receiver, SymbolId name,
                                    const Value* time) {
  if (!receiver.IsRef()) {
    return Status::TypeMismatch("path navigation into a simple value (" +
                                DefaultPrintString(receiver) + ")");
  }
  if (time == nullptr) {
    return session_->ReadNamed(receiver.ref(), name);
  }
  if (!time->IsInteger() || time->integer() < 0) {
    return Status::TypeMismatch("@ time must be a non-negative integer");
  }
  return session_->ReadNamedAt(receiver.ref(), name,
                               static_cast<TxnTime>(time->integer()));
}

}  // namespace gemstone::opal
