#ifndef GEMSTONE_OPAL_AST_H_
#define GEMSTONE_OPAL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "object/value.h"

namespace gemstone::opal {

/// Abstract syntax for OPAL expressions. The shapes are Smalltalk-80's
/// (literals, variables, assignments, unary/binary/keyword sends,
/// cascades, blocks, ^-returns) plus OPAL's path expressions with optional
/// time qualifiers (§4.3, §5.4).
class Expr {
 public:
  enum class Kind : std::uint8_t {
    kLiteral,
    kArray,       // #(1 2 3) and { e1. e2 } both build Arrays
    kVarRef,
    kAssign,
    kSend,
    kCascade,
    kBlock,
    kPath,        // root!step!step@T...
    kPathAssign,  // root!step!...!last := value
    kReturn,      // ^value
  };

  explicit Expr(Kind kind, int line = 0) : kind(kind), line(line) {}
  virtual ~Expr() = default;

  const Kind kind;
  int line;
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value value, int line = 0)
      : Expr(Kind::kLiteral, line), value(std::move(value)) {}
  Value value;
};

struct ArrayExpr : Expr {
  explicit ArrayExpr(std::vector<ExprPtr> elements, int line = 0)
      : Expr(Kind::kArray, line), elements(std::move(elements)) {}
  std::vector<ExprPtr> elements;
};

struct VarRefExpr : Expr {
  explicit VarRefExpr(std::string name, int line = 0)
      : Expr(Kind::kVarRef, line), name(std::move(name)) {}
  std::string name;
};

struct AssignExpr : Expr {
  AssignExpr(std::string name, ExprPtr value, int line = 0)
      : Expr(Kind::kAssign, line),
        name(std::move(name)),
        value(std::move(value)) {}
  std::string name;
  ExprPtr value;
};

struct SendExpr : Expr {
  SendExpr(ExprPtr receiver, std::string selector, std::vector<ExprPtr> args,
           bool to_super, int line = 0)
      : Expr(Kind::kSend, line),
        receiver(std::move(receiver)),
        selector(std::move(selector)),
        args(std::move(args)),
        to_super(to_super) {}
  ExprPtr receiver;
  std::string selector;
  std::vector<ExprPtr> args;
  bool to_super;
};

struct CascadeExpr : Expr {
  struct Message {
    std::string selector;
    std::vector<ExprPtr> args;
  };
  CascadeExpr(ExprPtr receiver, std::vector<Message> messages, int line = 0)
      : Expr(Kind::kCascade, line),
        receiver(std::move(receiver)),
        messages(std::move(messages)) {}
  /// All messages go to this receiver; the cascade's value is the last
  /// message's result.
  ExprPtr receiver;
  std::vector<Message> messages;
};

struct BlockExpr : Expr {
  BlockExpr(std::vector<std::string> params, std::vector<std::string> temps,
            std::vector<ExprPtr> body, int line = 0)
      : Expr(Kind::kBlock, line),
        params(std::move(params)),
        temps(std::move(temps)),
        body(std::move(body)) {}
  std::vector<std::string> params;
  std::vector<std::string> temps;
  std::vector<ExprPtr> body;
};

/// One `!name` step; `time` (may be null) is the `@` qualifier expression.
struct PathStepAst {
  std::string name;
  ExprPtr time;
};

struct PathExpr : Expr {
  PathExpr(ExprPtr root, std::vector<PathStepAst> steps, int line = 0)
      : Expr(Kind::kPath, line),
        root(std::move(root)),
        steps(std::move(steps)) {}
  ExprPtr root;
  std::vector<PathStepAst> steps;
};

struct PathAssignExpr : Expr {
  PathAssignExpr(ExprPtr root, std::vector<PathStepAst> steps, ExprPtr value,
                 int line = 0)
      : Expr(Kind::kPathAssign, line),
        root(std::move(root)),
        steps(std::move(steps)),
        value(std::move(value)) {}
  ExprPtr root;
  std::vector<PathStepAst> steps;
  ExprPtr value;
};

struct ReturnExpr : Expr {
  explicit ReturnExpr(ExprPtr value, int line = 0)
      : Expr(Kind::kReturn, line), value(std::move(value)) {}
  ExprPtr value;
};

/// A parsed method: `messagePattern | temps | statements`.
struct MethodAst {
  std::string selector;
  std::vector<std::string> params;
  std::vector<std::string> temps;
  std::vector<ExprPtr> body;
};

}  // namespace gemstone::opal

#endif  // GEMSTONE_OPAL_AST_H_
