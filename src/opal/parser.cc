#include "opal/parser.h"

#include "opal/lexer.h"

namespace gemstone::opal {

const Token& Parser::Peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Match(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  return Status::CompileError(message + " near " + t.ToString() + " at line " +
                              std::to_string(t.line));
}

Result<MethodAst> Parser::ParseBody(std::string_view source,
                                    SymbolTable* symbols) {
  Lexer lexer(source);
  GS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), symbols);
  return parser.ParseCodeBody();
}

Result<MethodAst> Parser::ParseMethodSource(std::string_view source,
                                            SymbolTable* symbols) {
  Lexer lexer(source);
  GS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), symbols);
  return parser.ParseMethod();
}

Result<MethodAst> Parser::ParseCodeBody() {
  MethodAst method;
  method.selector = "doIt";
  GS_RETURN_IF_ERROR(ParseTempDecls(&method.temps));
  GS_RETURN_IF_ERROR(ParseStatements(&method.body, TokenKind::kEnd));
  if (!Check(TokenKind::kEnd)) {
    return ErrorHere("trailing tokens after statements");
  }
  return method;
}

Result<MethodAst> Parser::ParseMethod() {
  MethodAst method;
  // Message pattern.
  if (Check(TokenKind::kIdentifier)) {
    method.selector = Advance().text;
  } else if (Check(TokenKind::kBinary)) {
    method.selector = Advance().text;
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorHere("binary method needs one parameter name");
    }
    method.params.push_back(Advance().text);
  } else if (Check(TokenKind::kKeyword)) {
    while (Check(TokenKind::kKeyword)) {
      method.selector += Advance().text;
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorHere("keyword method needs a parameter name");
      }
      method.params.push_back(Advance().text);
    }
  } else {
    return ErrorHere("expected a message pattern");
  }
  GS_RETURN_IF_ERROR(ParseTempDecls(&method.temps));
  GS_RETURN_IF_ERROR(ParseStatements(&method.body, TokenKind::kEnd));
  if (!Check(TokenKind::kEnd)) {
    return ErrorHere("trailing tokens after method body");
  }
  return method;
}

Status Parser::ParseTempDecls(std::vector<std::string>* temps) {
  if (!Check(TokenKind::kPipe)) return Status::OK();
  Advance();
  while (Check(TokenKind::kIdentifier)) temps->push_back(Advance().text);
  if (!Match(TokenKind::kPipe)) {
    return ErrorHere("expected '|' to close temporaries");
  }
  return Status::OK();
}

Status Parser::ParseStatements(std::vector<ExprPtr>* body,
                               TokenKind terminator) {
  while (!Check(terminator) && !Check(TokenKind::kEnd)) {
    GS_ASSIGN_OR_RETURN(ExprPtr statement, ParseStatement());
    const bool was_return = statement->kind == Expr::Kind::kReturn;
    body->push_back(std::move(statement));
    if (!Match(TokenKind::kPeriod)) break;
    if (was_return) break;  // nothing may follow ^ in a statement list
  }
  return Status::OK();
}

Result<ExprPtr> Parser::ParseStatement() {
  if (Check(TokenKind::kCaret)) {
    const int line = Advance().line;
    GS_ASSIGN_OR_RETURN(ExprPtr value, ParseExpression());
    return ExprPtr(new ReturnExpr(std::move(value), line));
  }
  return ParseExpression();
}

Result<ExprPtr> Parser::ParseExpression() {
  // identifier ':=' expression
  if (Check(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kAssign) {
    std::string name = Advance().text;
    const int line = Advance().line;  // ':='
    GS_ASSIGN_OR_RETURN(ExprPtr value, ParseExpression());
    return ExprPtr(new AssignExpr(std::move(name), std::move(value), line));
  }
  return ParseCascade();
}

Result<ExprPtr> Parser::ParseCascade() {
  GS_ASSIGN_OR_RETURN(ExprPtr first, ParseKeywordMessage());
  if (!Check(TokenKind::kSemicolon)) return first;
  // Path assignment handled below keyword level; a cascade needs a send.
  if (first->kind != Expr::Kind::kSend) {
    return ErrorHere("cascade requires a message send before ';'");
  }
  auto* send = static_cast<SendExpr*>(first.get());
  std::vector<CascadeExpr::Message> messages;
  messages.push_back(
      CascadeExpr::Message{send->selector, std::move(send->args)});
  ExprPtr receiver = std::move(send->receiver);
  const int line = first->line;
  while (Match(TokenKind::kSemicolon)) {
    CascadeExpr::Message message;
    if (Check(TokenKind::kIdentifier)) {
      message.selector = Advance().text;
    } else if (Check(TokenKind::kBinary)) {
      message.selector = Advance().text;
      GS_ASSIGN_OR_RETURN(ExprPtr arg, ParseUnaryMessage());
      message.args.push_back(std::move(arg));
    } else if (Check(TokenKind::kKeyword)) {
      while (Check(TokenKind::kKeyword)) {
        message.selector += Advance().text;
        GS_ASSIGN_OR_RETURN(ExprPtr arg, ParseBinaryMessage());
        message.args.push_back(std::move(arg));
      }
    } else {
      return ErrorHere("expected a message after ';'");
    }
    messages.push_back(std::move(message));
  }
  return ExprPtr(
      new CascadeExpr(std::move(receiver), std::move(messages), line));
}

Result<ExprPtr> Parser::ParseKeywordMessage() {
  GS_ASSIGN_OR_RETURN(ExprPtr receiver, ParseBinaryMessage());
  if (!Check(TokenKind::kKeyword)) return receiver;
  const int line = Peek().line;
  std::string selector;
  std::vector<ExprPtr> args;
  while (Check(TokenKind::kKeyword)) {
    selector += Advance().text;
    GS_ASSIGN_OR_RETURN(ExprPtr arg, ParseBinaryMessage());
    args.push_back(std::move(arg));
  }
  const bool to_super = receiver->kind == Expr::Kind::kVarRef &&
                        static_cast<VarRefExpr*>(receiver.get())->name ==
                            "super";
  return ExprPtr(new SendExpr(std::move(receiver), std::move(selector),
                              std::move(args), to_super, line));
}

Result<ExprPtr> Parser::ParseBinaryMessage() {
  GS_ASSIGN_OR_RETURN(ExprPtr receiver, ParseUnaryMessage());
  while (Check(TokenKind::kBinary)) {
    const Token& op = Advance();
    GS_ASSIGN_OR_RETURN(ExprPtr arg, ParseUnaryMessage());
    std::vector<ExprPtr> args;
    args.push_back(std::move(arg));
    const bool to_super = receiver->kind == Expr::Kind::kVarRef &&
                          static_cast<VarRefExpr*>(receiver.get())->name ==
                              "super";
    receiver = ExprPtr(new SendExpr(std::move(receiver), op.text,
                                    std::move(args), to_super, op.line));
  }
  return receiver;
}

Result<ExprPtr> Parser::ParseUnaryMessage() {
  GS_ASSIGN_OR_RETURN(ExprPtr receiver, ParsePrimary());
  for (;;) {
    if (Check(TokenKind::kIdentifier) &&
        Peek(1).kind != TokenKind::kAssign) {
      const Token& selector = Advance();
      const bool to_super = receiver->kind == Expr::Kind::kVarRef &&
                            static_cast<VarRefExpr*>(receiver.get())->name ==
                                "super";
      receiver = ExprPtr(new SendExpr(std::move(receiver), selector.text, {},
                                      to_super, selector.line));
      continue;
    }
    if (Check(TokenKind::kBang)) {
      const int line = Peek().line;
      std::vector<PathStepAst> steps;
      while (Match(TokenKind::kBang)) {
        PathStepAst step;
        if (Check(TokenKind::kIdentifier)) {
          step.name = Advance().text;
        } else if (Check(TokenKind::kString)) {
          step.name = Advance().text;
        } else if (Check(TokenKind::kInteger)) {
          step.name = Advance().text;
        } else {
          return ErrorHere("expected an element name after '!'");
        }
        if (Match(TokenKind::kAt)) {
          GS_ASSIGN_OR_RETURN(step.time, ParsePrimary());
        }
        steps.push_back(std::move(step));
      }
      // `root!a!b := e` is a path assignment (§4.3).
      if (Check(TokenKind::kAssign)) {
        Advance();
        GS_ASSIGN_OR_RETURN(ExprPtr value, ParseExpression());
        return ExprPtr(new PathAssignExpr(std::move(receiver),
                                          std::move(steps), std::move(value),
                                          line));
      }
      receiver = ExprPtr(
          new PathExpr(std::move(receiver), std::move(steps), line));
      continue;
    }
    return receiver;
  }
}

Result<Value> Parser::ParseLiteralArrayElement() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInteger:
      Advance();
      return Value::Integer(t.int_value);
    case TokenKind::kFloat:
      Advance();
      return Value::Float(t.float_value);
    case TokenKind::kString:
      Advance();
      return Value::String(t.text);
    case TokenKind::kSymbol:
      Advance();
      return Value::Symbol(symbols_->Intern(t.text));
    case TokenKind::kCharacter:
      Advance();
      return Value::String(t.text);
    case TokenKind::kIdentifier:
      // In literal arrays, bare words are symbols; true/false/nil special.
      Advance();
      if (t.text == "true") return Value::Boolean(true);
      if (t.text == "false") return Value::Boolean(false);
      if (t.text == "nil") return Value::Nil();
      return Value::Symbol(symbols_->Intern(t.text));
    case TokenKind::kBinary:
      if (t.text == "-" &&
          (Peek(1).kind == TokenKind::kInteger ||
           Peek(1).kind == TokenKind::kFloat)) {
        Advance();
        const Token& num = Advance();
        if (num.kind == TokenKind::kInteger) {
          return Value::Integer(-num.int_value);
        }
        return Value::Float(-num.float_value);
      }
      return ErrorHere("unsupported literal array element");
    default:
      return ErrorHere("unsupported literal array element");
  }
}

Result<ExprPtr> Parser::ParseBlock() {
  const int line = Peek().line;
  Advance();  // '['
  std::vector<std::string> params;
  while (Check(TokenKind::kColon)) {
    Advance();
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorHere("expected block parameter name after ':'");
    }
    params.push_back(Advance().text);
  }
  if (!params.empty()) {
    if (!Match(TokenKind::kPipe)) {
      return ErrorHere("expected '|' after block parameters");
    }
  }
  std::vector<std::string> temps;
  GS_RETURN_IF_ERROR(ParseTempDecls(&temps));
  std::vector<ExprPtr> body;
  GS_RETURN_IF_ERROR(ParseStatements(&body, TokenKind::kRightBracket));
  if (!Match(TokenKind::kRightBracket)) {
    return ErrorHere("expected ']' to close block");
  }
  return ExprPtr(new BlockExpr(std::move(params), std::move(temps),
                               std::move(body), line));
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInteger:
      Advance();
      return ExprPtr(new LiteralExpr(Value::Integer(t.int_value), t.line));
    case TokenKind::kFloat:
      Advance();
      return ExprPtr(new LiteralExpr(Value::Float(t.float_value), t.line));
    case TokenKind::kString:
      Advance();
      return ExprPtr(new LiteralExpr(Value::String(t.text), t.line));
    case TokenKind::kSymbol:
      Advance();
      return ExprPtr(
          new LiteralExpr(Value::Symbol(symbols_->Intern(t.text)), t.line));
    case TokenKind::kCharacter:
      Advance();
      return ExprPtr(new LiteralExpr(Value::String(t.text), t.line));
    case TokenKind::kIdentifier: {
      Advance();
      if (t.text == "true") {
        return ExprPtr(new LiteralExpr(Value::Boolean(true), t.line));
      }
      if (t.text == "false") {
        return ExprPtr(new LiteralExpr(Value::Boolean(false), t.line));
      }
      if (t.text == "nil") {
        return ExprPtr(new LiteralExpr(Value::Nil(), t.line));
      }
      return ExprPtr(new VarRefExpr(t.text, t.line));
    }
    case TokenKind::kBinary:
      // Negative numeric literal: fold '-' + number.
      if (t.text == "-" &&
          (Peek(1).kind == TokenKind::kInteger ||
           Peek(1).kind == TokenKind::kFloat)) {
        Advance();
        const Token& num = Advance();
        if (num.kind == TokenKind::kInteger) {
          return ExprPtr(
              new LiteralExpr(Value::Integer(-num.int_value), num.line));
        }
        return ExprPtr(
            new LiteralExpr(Value::Float(-num.float_value), num.line));
      }
      return ErrorHere("unexpected binary selector");
    case TokenKind::kLeftParen: {
      if (t.text == "#(") {
        // Literal array: flat literal elements only.
        Advance();
        std::vector<ExprPtr> elements;
        while (!Check(TokenKind::kRightParen) && !Check(TokenKind::kEnd)) {
          GS_ASSIGN_OR_RETURN(Value v, ParseLiteralArrayElement());
          elements.push_back(ExprPtr(new LiteralExpr(std::move(v), t.line)));
        }
        if (!Match(TokenKind::kRightParen)) {
          return ErrorHere("expected ')' to close literal array");
        }
        return ExprPtr(new ArrayExpr(std::move(elements), t.line));
      }
      Advance();
      GS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpression());
      if (!Match(TokenKind::kRightParen)) {
        return ErrorHere("expected ')'");
      }
      return inner;
    }
    case TokenKind::kLeftBrace: {
      Advance();
      std::vector<ExprPtr> elements;
      while (!Check(TokenKind::kRightBrace) && !Check(TokenKind::kEnd)) {
        GS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression());
        elements.push_back(std::move(e));
        if (!Match(TokenKind::kPeriod)) break;
      }
      if (!Match(TokenKind::kRightBrace)) {
        return ErrorHere("expected '}' to close array constructor");
      }
      return ExprPtr(new ArrayExpr(std::move(elements), t.line));
    }
    case TokenKind::kLeftBracket:
      return ParseBlock();
    default:
      return ErrorHere("expected a primary expression");
  }
}

}  // namespace gemstone::opal
