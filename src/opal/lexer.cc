#include "opal/lexer.h"

#include <cctype>

namespace gemstone::opal {

std::string_view TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kBinary: return "binary";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kSymbol: return "symbol";
    case TokenKind::kCharacter: return "character";
    case TokenKind::kLeftParen: return "(";
    case TokenKind::kRightParen: return ")";
    case TokenKind::kLeftBracket: return "[";
    case TokenKind::kRightBracket: return "]";
    case TokenKind::kLeftBrace: return "{";
    case TokenKind::kRightBrace: return "}";
    case TokenKind::kPeriod: return ".";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kCaret: return "^";
    case TokenKind::kPipe: return "|";
    case TokenKind::kAssign: return ":=";
    case TokenKind::kColon: return ":";
    case TokenKind::kBang: return "!";
    case TokenKind::kAt: return "@";
  }
  return "?";
}

std::string Token::ToString() const {
  std::string out(TokenKindToString(kind));
  if (!text.empty()) out += "(" + text + ")";
  return out;
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Binary-selector characters. Unlike ST80, `!` and `@` are reserved for
// the OPAL path syntax and `|` for declarations.
bool IsBinaryChar(char c) {
  switch (c) {
    case '+': case '-': case '*': case '/': case '~': case '<': case '>':
    case '=': case '&': case ',': case '%': case '\\': case '?':
      return true;
    default:
      return false;
  }
}

}  // namespace

char Lexer::Advance() {
  char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Status Lexer::ErrorHere(const std::string& message) const {
  return Status::CompileError(message + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '"') {
      Advance();
      while (!AtEnd() && Peek() != '"') Advance();
      if (!AtEnd()) Advance();  // closing quote
    } else {
      break;
    }
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  for (;;) {
    GS_ASSIGN_OR_RETURN(Token token, Next());
    const bool done = token.kind == TokenKind::kEnd;
    tokens.push_back(std::move(token));
    if (done) return tokens;
  }
}

Result<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  Token token;
  token.line = line_;
  token.column = column_;
  if (AtEnd()) {
    token.kind = TokenKind::kEnd;
    return token;
  }
  char c = Peek();

  if (IsIdentStart(c)) {
    std::string text;
    while (!AtEnd() && IsIdentBody(Peek())) text += Advance();
    if (Peek() == ':' && Peek(1) != '=') {
      Advance();
      token.kind = TokenKind::kKeyword;
      token.text = text + ":";
    } else {
      token.kind = TokenKind::kIdentifier;
      token.text = std::move(text);
    }
    return token;
  }

  if (IsDigit(c) || (c == '-' && IsDigit(Peek(1)))) {
    // A leading '-' is part of the number only at expression positions;
    // the parser handles `3 - 4` because the lexer sees '-' followed by a
    // digit *with* preceding whitespace the same way. To keep Smalltalk
    // semantics (binary minus), only treat '-' as a sign when it directly
    // precedes a digit AND the previous character is not a digit or
    // letter or ')'. Simplest robust rule: never lex a sign here; emit
    // binary '-' and let the parser fold negative literals.
    if (c == '-') {
      token.kind = TokenKind::kBinary;
      token.text = std::string(1, Advance());
      while (!AtEnd() && IsBinaryChar(Peek())) token.text += Advance();
      return token;
    }
    std::string digits;
    while (!AtEnd() && IsDigit(Peek())) digits += Advance();
    if (Peek() == '.' && IsDigit(Peek(1))) {
      digits += Advance();  // '.'
      while (!AtEnd() && IsDigit(Peek())) digits += Advance();
      token.kind = TokenKind::kFloat;
      token.float_value = std::stod(digits);
    } else {
      token.kind = TokenKind::kInteger;
      token.int_value = std::stoll(digits);
    }
    token.text = std::move(digits);
    return token;
  }

  if (c == '\'') {
    Advance();
    std::string text;
    for (;;) {
      if (AtEnd()) return ErrorHere("unterminated string literal");
      char s = Advance();
      if (s == '\'') {
        if (Peek() == '\'') {
          text += '\'';
          Advance();
        } else {
          break;
        }
      } else {
        text += s;
      }
    }
    token.kind = TokenKind::kString;
    token.text = std::move(text);
    return token;
  }

  if (c == '#') {
    Advance();
    if (IsIdentStart(Peek())) {
      std::string text;
      while (!AtEnd() && (IsIdentBody(Peek()) || Peek() == ':')) {
        text += Advance();
      }
      token.kind = TokenKind::kSymbol;
      token.text = std::move(text);
      return token;
    }
    if (IsBinaryChar(Peek())) {
      std::string text;
      while (!AtEnd() && IsBinaryChar(Peek())) text += Advance();
      token.kind = TokenKind::kSymbol;
      token.text = std::move(text);
      return token;
    }
    if (Peek() == '(') {
      // #( starts a literal array; hand back '#' as part of '(' handling.
      Advance();
      token.kind = TokenKind::kLeftParen;
      token.text = "#(";
      return token;
    }
    return ErrorHere("malformed symbol literal");
  }

  if (c == '$') {
    Advance();
    if (AtEnd()) return ErrorHere("malformed character literal");
    token.kind = TokenKind::kCharacter;
    token.text = std::string(1, Advance());
    return token;
  }

  if (c == ':' && Peek(1) == '=') {
    Advance();
    Advance();
    token.kind = TokenKind::kAssign;
    return token;
  }

  switch (c) {
    case '(': Advance(); token.kind = TokenKind::kLeftParen; return token;
    case ')': Advance(); token.kind = TokenKind::kRightParen; return token;
    case '[': Advance(); token.kind = TokenKind::kLeftBracket; return token;
    case ']': Advance(); token.kind = TokenKind::kRightBracket; return token;
    case '{': Advance(); token.kind = TokenKind::kLeftBrace; return token;
    case '}': Advance(); token.kind = TokenKind::kRightBrace; return token;
    case '.': Advance(); token.kind = TokenKind::kPeriod; return token;
    case ';': Advance(); token.kind = TokenKind::kSemicolon; return token;
    case '^': Advance(); token.kind = TokenKind::kCaret; return token;
    case '|': Advance(); token.kind = TokenKind::kPipe; return token;
    case ':': Advance(); token.kind = TokenKind::kColon; return token;
    case '!': Advance(); token.kind = TokenKind::kBang; return token;
    case '@': Advance(); token.kind = TokenKind::kAt; return token;
    default:
      break;
  }

  if (IsBinaryChar(c)) {
    std::string text;
    while (!AtEnd() && IsBinaryChar(Peek())) text += Advance();
    token.kind = TokenKind::kBinary;
    token.text = std::move(text);
    return token;
  }

  return ErrorHere(std::string("unexpected character '") + c + "'");
}

}  // namespace gemstone::opal
