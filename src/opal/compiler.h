#ifndef GEMSTONE_OPAL_COMPILER_H_
#define GEMSTONE_OPAL_COMPILER_H_

#include <memory>
#include <string_view>

#include "core/result.h"
#include "object/object_memory.h"
#include "opal/ast.h"
#include "opal/bytecode.h"

namespace gemstone::opal {

/// Compiles OPAL ASTs to bytecode. "The Compiler requires some
/// modifications from the ST80 compiler. Most are small changes in syntax
/// or for slightly different bytecodes, but a large addition is needed [to]
/// translate calculus expressions into procedural form" (§6) — here, the
/// large addition is the declarative-block analysis: blocks whose body is
/// a conjunction of path comparisons over the block argument are flagged
/// `is_declarative` and carry the extracted conjuncts, so `select:`-style
/// primitives can run them through the set-algebra machinery (and
/// directories) instead of per-element message dispatch.
class Compiler {
 public:
  explicit Compiler(ObjectMemory* memory) : memory_(memory) {}

  /// Compiles a method body in the context of `class_oid` (whose instance
  /// variables are addressable by name). kNilOid compiles a plain `doIt`
  /// body with no instance-variable scope.
  Result<std::shared_ptr<CompiledMethod>> Compile(const MethodAst& ast,
                                                  Oid class_oid);

  /// Lex + parse + compile a `doIt` body.
  Result<std::shared_ptr<CompiledMethod>> CompileBody(std::string_view source,
                                                      Oid class_oid = kNilOid);

  /// Lex + parse + compile a full method definition for `class_oid`.
  Result<std::shared_ptr<CompiledMethod>> CompileMethodSource(
      std::string_view source, Oid class_oid);

 private:
  struct Unit;

  Status CompileExpr(const Expr& expr, Unit* unit);
  Status CompileStatementList(const std::vector<ExprPtr>& body, Unit* unit,
                              bool is_block);
  Result<std::shared_ptr<const CompiledMethod>> CompileBlockExpr(
      const BlockExpr& block, Unit* parent);
  Status CompileVarLoad(const std::string& name, int line, Unit* unit);
  Status CompileVarStore(const std::string& name, int line, Unit* unit);
  void AnalyzeDeclarative(const BlockExpr& block, CompiledMethod* compiled);

  ObjectMemory* memory_;
  Oid class_oid_;
  std::vector<Unit*> scopes_;  // innermost last
};

}  // namespace gemstone::opal

#endif  // GEMSTONE_OPAL_COMPILER_H_
