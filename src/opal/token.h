#ifndef GEMSTONE_OPAL_TOKEN_H_
#define GEMSTONE_OPAL_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace gemstone::opal {

enum class TokenKind : std::uint8_t {
  kEnd,
  kIdentifier,   // foo
  kKeyword,      // foo:   (one segment of a keyword message)
  kBinary,       // + - * / < > = ~ , % & ? (and combinations)
  kInteger,      // 42
  kFloat,        // 3.25
  kString,       // 'text' (embedded '' escapes a quote)
  kSymbol,       // #foo  #foo:bar:  #+
  kCharacter,    // $a
  kLeftParen,    // (
  kRightParen,   // )
  kLeftBracket,  // [
  kRightBracket, // ]
  kLeftBrace,    // {
  kRightBrace,   // }
  kPeriod,       // .
  kSemicolon,    // ;
  kCaret,        // ^
  kPipe,         // | (temp declarations and block parameter bar)
  kAssign,       // :=
  kColon,        // : (block parameter introducer, as in [:x | ...])
  kBang,         // !  (OPAL path navigation)
  kAt,           // @  (OPAL path time qualifier)
};

std::string_view TokenKindToString(TokenKind kind);

/// One lexical token with source position (1-based line/column) for
/// compiler diagnostics.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier/keyword/selector/symbol spelling
  std::int64_t int_value = 0;
  double float_value = 0;
  int line = 0;
  int column = 0;

  std::string ToString() const;
};

}  // namespace gemstone::opal

#endif  // GEMSTONE_OPAL_TOKEN_H_
