#include "opal/compiler.h"

#include <algorithm>

#include "opal/parser.h"

namespace gemstone::opal {

/// Per-method/block compilation state. Units form a lexical chain through
/// Compiler::scopes_ so blocks resolve outer temporaries by level.
struct Compiler::Unit {
  std::shared_ptr<CompiledMethod> method = std::make_shared<CompiledMethod>();
  Emitter emitter;
  std::vector<std::string> slot_names;  // args then temps

  std::uint16_t AddLiteral(const Value& v) {
    for (std::size_t i = 0; i < method->literals.size(); ++i) {
      if (method->literals[i] == v &&
          method->literals[i].tag() == v.tag()) {
        return static_cast<std::uint16_t>(i);
      }
    }
    method->literals.push_back(v);
    return static_cast<std::uint16_t>(method->literals.size() - 1);
  }

  int SlotOf(const std::string& name) const {
    for (std::size_t i = 0; i < slot_names.size(); ++i) {
      if (slot_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
};

Result<std::shared_ptr<CompiledMethod>> Compiler::CompileBody(
    std::string_view source, Oid class_oid) {
  GS_ASSIGN_OR_RETURN(MethodAst ast, Parser::ParseBody(source, &memory_->symbols()));
  return Compile(ast, class_oid);
}

Result<std::shared_ptr<CompiledMethod>> Compiler::CompileMethodSource(
    std::string_view source, Oid class_oid) {
  GS_ASSIGN_OR_RETURN(MethodAst ast,
                      Parser::ParseMethodSource(source, &memory_->symbols()));
  return Compile(ast, class_oid);
}

Result<std::shared_ptr<CompiledMethod>> Compiler::Compile(const MethodAst& ast,
                                                          Oid class_oid) {
  class_oid_ = class_oid;
  scopes_.clear();

  Unit unit;
  unit.method->selector = ast.selector;
  unit.method->num_args = static_cast<std::uint8_t>(ast.params.size());
  for (const std::string& p : ast.params) unit.slot_names.push_back(p);
  for (const std::string& t : ast.temps) unit.slot_names.push_back(t);
  unit.method->num_slots = static_cast<std::uint16_t>(unit.slot_names.size());

  scopes_.push_back(&unit);
  Status s = CompileStatementList(ast.body, &unit, /*is_block=*/false);
  scopes_.pop_back();
  GS_RETURN_IF_ERROR(s);

  unit.method->code = unit.emitter.Take();
  return unit.method;
}

Status Compiler::CompileStatementList(const std::vector<ExprPtr>& body,
                                      Unit* unit, bool is_block) {
  bool explicit_return = false;
  for (std::size_t i = 0; i < body.size(); ++i) {
    GS_RETURN_IF_ERROR(CompileExpr(*body[i], unit));
    explicit_return = body[i]->kind == Expr::Kind::kReturn;
    const bool last = i + 1 == body.size();
    if (!last && !explicit_return) unit->emitter.Op8(Op::kPop);
  }
  if (!explicit_return) {
    if (body.empty()) {
      unit->emitter.Op8(Op::kPushLiteral);
      unit->emitter.U16(unit->AddLiteral(Value::Nil()));
    }
    // A block answers its last expression; a method body used as doIt
    // answers its last expression too (ReturnTop below); a *method* in
    // ST80 answers self, which the interpreter realizes because ^-less
    // method bodies end with the last statement's value discarded and
    // self pushed — we keep doIt semantics (answer last value), which
    // subsumes both for a database server returning results.
    unit->emitter.Op8(is_block ? Op::kLocalReturn : Op::kReturnTop);
  }
  return Status::OK();
}

Status Compiler::CompileVarLoad(const std::string& name, int line,
                                Unit* unit) {
  if (name == "self" || name == "super") {
    unit->emitter.Op8(Op::kPushSelf);
    return Status::OK();
  }
  // Lexical temporaries, innermost first.
  for (std::size_t depth = 0; depth < scopes_.size(); ++depth) {
    Unit* scope = scopes_[scopes_.size() - 1 - depth];
    const int slot = scope->SlotOf(name);
    if (slot >= 0) {
      unit->emitter.Op8(Op::kPushTemp);
      unit->emitter.U8(static_cast<std::uint8_t>(depth));
      unit->emitter.U16(static_cast<std::uint16_t>(slot));
      return Status::OK();
    }
  }
  // Instance variables of the enclosing class.
  if (!class_oid_.IsNil()) {
    const SymbolId sym = memory_->symbols().Intern(name);
    const auto vars = memory_->classes().AllInstVars(class_oid_);
    if (std::find(vars.begin(), vars.end(), sym) != vars.end()) {
      unit->emitter.Op8(Op::kPushInstVar);
      unit->emitter.U16(unit->AddLiteral(Value::Symbol(sym)));
      return Status::OK();
    }
  }
  // Globals (class names and user globals), resolved at run time.
  unit->emitter.Op8(Op::kPushGlobal);
  unit->emitter.U16(
      unit->AddLiteral(Value::Symbol(memory_->symbols().Intern(name))));
  (void)line;
  return Status::OK();
}

Status Compiler::CompileVarStore(const std::string& name, int line,
                                 Unit* unit) {
  if (name == "self" || name == "super") {
    return Status::CompileError("cannot assign to self (line " +
                                std::to_string(line) + ")");
  }
  for (std::size_t depth = 0; depth < scopes_.size(); ++depth) {
    Unit* scope = scopes_[scopes_.size() - 1 - depth];
    const int slot = scope->SlotOf(name);
    if (slot >= 0) {
      unit->emitter.Op8(Op::kStoreTemp);
      unit->emitter.U8(static_cast<std::uint8_t>(depth));
      unit->emitter.U16(static_cast<std::uint16_t>(slot));
      return Status::OK();
    }
  }
  if (!class_oid_.IsNil()) {
    const SymbolId sym = memory_->symbols().Intern(name);
    const auto vars = memory_->classes().AllInstVars(class_oid_);
    if (std::find(vars.begin(), vars.end(), sym) != vars.end()) {
      unit->emitter.Op8(Op::kStoreInstVar);
      unit->emitter.U16(unit->AddLiteral(Value::Symbol(sym)));
      return Status::OK();
    }
  }
  unit->emitter.Op8(Op::kStoreGlobal);
  unit->emitter.U16(
      unit->AddLiteral(Value::Symbol(memory_->symbols().Intern(name))));
  return Status::OK();
}

Result<std::shared_ptr<const CompiledMethod>> Compiler::CompileBlockExpr(
    const BlockExpr& block, Unit* parent) {
  (void)parent;
  Unit unit;
  unit.method->is_block = true;
  unit.method->num_args = static_cast<std::uint8_t>(block.params.size());
  for (const std::string& p : block.params) unit.slot_names.push_back(p);
  for (const std::string& t : block.temps) unit.slot_names.push_back(t);
  unit.method->num_slots = static_cast<std::uint16_t>(unit.slot_names.size());

  scopes_.push_back(&unit);
  Status s = CompileStatementList(block.body, &unit, /*is_block=*/true);
  scopes_.pop_back();
  GS_RETURN_IF_ERROR(s);

  unit.method->code = unit.emitter.Take();
  AnalyzeDeclarative(block, unit.method.get());
  return std::shared_ptr<const CompiledMethod>(unit.method);
}

Status Compiler::CompileExpr(const Expr& expr, Unit* unit) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral: {
      const auto& e = static_cast<const LiteralExpr&>(expr);
      unit->emitter.Op8(Op::kPushLiteral);
      unit->emitter.U16(unit->AddLiteral(e.value));
      return Status::OK();
    }
    case Expr::Kind::kArray: {
      const auto& e = static_cast<const ArrayExpr&>(expr);
      for (const ExprPtr& element : e.elements) {
        GS_RETURN_IF_ERROR(CompileExpr(*element, unit));
      }
      unit->emitter.Op8(Op::kMakeArray);
      unit->emitter.U16(static_cast<std::uint16_t>(e.elements.size()));
      return Status::OK();
    }
    case Expr::Kind::kVarRef: {
      const auto& e = static_cast<const VarRefExpr&>(expr);
      return CompileVarLoad(e.name, e.line, unit);
    }
    case Expr::Kind::kAssign: {
      const auto& e = static_cast<const AssignExpr&>(expr);
      GS_RETURN_IF_ERROR(CompileExpr(*e.value, unit));
      return CompileVarStore(e.name, e.line, unit);
    }
    case Expr::Kind::kSend: {
      const auto& e = static_cast<const SendExpr&>(expr);
      GS_RETURN_IF_ERROR(CompileExpr(*e.receiver, unit));
      for (const ExprPtr& arg : e.args) {
        GS_RETURN_IF_ERROR(CompileExpr(*arg, unit));
      }
      unit->emitter.Op8(e.to_super ? Op::kSuperSend : Op::kSend);
      unit->emitter.U16(unit->AddLiteral(
          Value::Symbol(memory_->symbols().Intern(e.selector))));
      unit->emitter.U8(static_cast<std::uint8_t>(e.args.size()));
      return Status::OK();
    }
    case Expr::Kind::kCascade: {
      const auto& e = static_cast<const CascadeExpr&>(expr);
      GS_RETURN_IF_ERROR(CompileExpr(*e.receiver, unit));
      for (std::size_t i = 0; i < e.messages.size(); ++i) {
        const bool last = i + 1 == e.messages.size();
        if (!last) unit->emitter.Op8(Op::kDup);
        for (const ExprPtr& arg : e.messages[i].args) {
          GS_RETURN_IF_ERROR(CompileExpr(*arg, unit));
        }
        unit->emitter.Op8(Op::kSend);
        unit->emitter.U16(unit->AddLiteral(Value::Symbol(
            memory_->symbols().Intern(e.messages[i].selector))));
        unit->emitter.U8(static_cast<std::uint8_t>(e.messages[i].args.size()));
        if (!last) unit->emitter.Op8(Op::kPop);
      }
      return Status::OK();
    }
    case Expr::Kind::kBlock: {
      const auto& e = static_cast<const BlockExpr&>(expr);
      GS_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledMethod> block,
                          CompileBlockExpr(e, unit));
      unit->method->blocks.push_back(std::move(block));
      unit->emitter.Op8(Op::kPushBlock);
      unit->emitter.U16(
          static_cast<std::uint16_t>(unit->method->blocks.size() - 1));
      return Status::OK();
    }
    case Expr::Kind::kPath: {
      const auto& e = static_cast<const PathExpr&>(expr);
      GS_RETURN_IF_ERROR(CompileExpr(*e.root, unit));
      for (const PathStepAst& step : e.steps) {
        const bool timed = step.time != nullptr;
        if (timed) GS_RETURN_IF_ERROR(CompileExpr(*step.time, unit));
        unit->emitter.Op8(Op::kPathGet);
        unit->emitter.U16(unit->AddLiteral(
            Value::Symbol(memory_->symbols().Intern(step.name))));
        unit->emitter.U8(timed ? 1 : 0);
      }
      return Status::OK();
    }
    case Expr::Kind::kPathAssign: {
      const auto& e = static_cast<const PathAssignExpr&>(expr);
      if (e.steps.back().time != nullptr) {
        return Status::CompileError("cannot assign into the past (line " +
                                    std::to_string(e.line) + ")");
      }
      GS_RETURN_IF_ERROR(CompileExpr(*e.root, unit));
      for (std::size_t i = 0; i + 1 < e.steps.size(); ++i) {
        const PathStepAst& step = e.steps[i];
        const bool timed = step.time != nullptr;
        if (timed) GS_RETURN_IF_ERROR(CompileExpr(*step.time, unit));
        unit->emitter.Op8(Op::kPathGet);
        unit->emitter.U16(unit->AddLiteral(
            Value::Symbol(memory_->symbols().Intern(step.name))));
        unit->emitter.U8(timed ? 1 : 0);
      }
      GS_RETURN_IF_ERROR(CompileExpr(*e.value, unit));
      unit->emitter.Op8(Op::kPathSet);
      unit->emitter.U16(unit->AddLiteral(
          Value::Symbol(memory_->symbols().Intern(e.steps.back().name))));
      return Status::OK();
    }
    case Expr::Kind::kReturn: {
      const auto& e = static_cast<const ReturnExpr&>(expr);
      GS_RETURN_IF_ERROR(CompileExpr(*e.value, unit));
      unit->emitter.Op8(Op::kReturnTop);
      return Status::OK();
    }
  }
  return Status::Internal("unreachable expression kind");
}

namespace {

/// Matches `arg!a!b` with no time qualifiers; fills `path`.
bool MatchArgPath(const Expr& expr, const std::string& arg,
                  std::vector<std::string>* path) {
  if (expr.kind != Expr::Kind::kPath) return false;
  const auto& p = static_cast<const PathExpr&>(expr);
  if (p.root->kind != Expr::Kind::kVarRef) return false;
  if (static_cast<const VarRefExpr&>(*p.root).name != arg) return false;
  for (const PathStepAst& step : p.steps) {
    if (step.time != nullptr) return false;
    path->push_back(step.name);
  }
  return true;
}

bool MatchConjunct(const Expr& expr, const std::string& arg,
                   CompiledMethod::PredicateConjunct* out) {
  if (expr.kind != Expr::Kind::kSend) return false;
  const auto& send = static_cast<const SendExpr&>(expr);
  if (send.args.size() != 1) return false;
  using CmpOp = CompiledMethod::PredicateConjunct::CmpOp;
  CmpOp op;
  if (send.selector == "=") {
    op = CmpOp::kEq;
  } else if (send.selector == "~=") {
    op = CmpOp::kNe;
  } else if (send.selector == "<") {
    op = CmpOp::kLt;
  } else if (send.selector == "<=") {
    op = CmpOp::kLe;
  } else if (send.selector == ">") {
    op = CmpOp::kGt;
  } else if (send.selector == ">=") {
    op = CmpOp::kGe;
  } else {
    return false;
  }
  out->op = op;
  if (!MatchArgPath(*send.receiver, arg, &out->lhs_path)) return false;
  const Expr& rhs = *send.args[0];
  if (rhs.kind == Expr::Kind::kLiteral) {
    out->rhs_literal = static_cast<const LiteralExpr&>(rhs).value;
    return true;
  }
  return MatchArgPath(rhs, arg, &out->rhs_path);
}

bool MatchConjunction(const Expr& expr, const std::string& arg,
                      std::vector<CompiledMethod::PredicateConjunct>* out) {
  // `(c1) & (c2)` recursively, or a single comparison.
  if (expr.kind == Expr::Kind::kSend) {
    const auto& send = static_cast<const SendExpr&>(expr);
    if (send.selector == "&" && send.args.size() == 1) {
      return MatchConjunction(*send.receiver, arg, out) &&
             MatchConjunction(*send.args[0], arg, out);
    }
  }
  CompiledMethod::PredicateConjunct conjunct;
  if (!MatchConjunct(expr, arg, &conjunct)) return false;
  out->push_back(std::move(conjunct));
  return true;
}

}  // namespace

void Compiler::AnalyzeDeclarative(const BlockExpr& block,
                                  CompiledMethod* compiled) {
  if (block.params.size() != 1 || !block.temps.empty() ||
      block.body.size() != 1) {
    return;
  }
  std::vector<CompiledMethod::PredicateConjunct> conjuncts;
  if (!MatchConjunction(*block.body[0], block.params[0], &conjuncts)) {
    return;
  }
  compiled->declarative_conjuncts = std::move(conjuncts);
  compiled->is_declarative = true;
}

}  // namespace gemstone::opal
