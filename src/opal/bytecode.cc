#include "opal/bytecode.h"

namespace gemstone::opal {

std::string_view OpToString(Op op) {
  switch (op) {
    case Op::kPushLiteral: return "pushLiteral";
    case Op::kPushSelf: return "pushSelf";
    case Op::kPushTemp: return "pushTemp";
    case Op::kStoreTemp: return "storeTemp";
    case Op::kPushGlobal: return "pushGlobal";
    case Op::kStoreGlobal: return "storeGlobal";
    case Op::kPushInstVar: return "pushInstVar";
    case Op::kStoreInstVar: return "storeInstVar";
    case Op::kPop: return "pop";
    case Op::kDup: return "dup";
    case Op::kSend: return "send";
    case Op::kSuperSend: return "superSend";
    case Op::kPushBlock: return "pushBlock";
    case Op::kReturnTop: return "returnTop";
    case Op::kLocalReturn: return "localReturn";
    case Op::kPathGet: return "pathGet";
    case Op::kPathSet: return "pathSet";
    case Op::kMakeArray: return "makeArray";
  }
  return "?";
}

std::string CompiledMethod::Disassemble(const SymbolTable& symbols) const {
  std::string out = (is_block ? "block" : "method ") +
                    (is_block ? std::string() : selector) + " (args " +
                    std::to_string(num_args) + ", slots " +
                    std::to_string(num_slots) + ")\n";
  std::size_t ip = 0;
  auto u8 = [&]() { return code[ip++]; };
  auto u16 = [&]() {
    std::uint16_t v = static_cast<std::uint16_t>(code[ip]) |
                      (static_cast<std::uint16_t>(code[ip + 1]) << 8);
    ip += 2;
    return v;
  };
  auto literal_text = [&](std::uint16_t index) {
    const Value& v = literals[index];
    if (v.IsSymbol()) return "#" + symbols.Name(v.symbol());
    return v.ToString();
  };
  while (ip < code.size()) {
    out += "  " + std::to_string(ip) + ": ";
    const Op op = static_cast<Op>(u8());
    out += OpToString(op);
    switch (op) {
      case Op::kPushLiteral:
      case Op::kPushGlobal:
      case Op::kStoreGlobal:
      case Op::kPushInstVar:
      case Op::kStoreInstVar:
        out += " " + literal_text(u16());
        break;
      case Op::kPushTemp:
      case Op::kStoreTemp: {
        const std::uint8_t level = u8();
        const std::uint16_t slot = u16();
        out += " level=" + std::to_string(level) +
               " slot=" + std::to_string(slot);
        break;
      }
      case Op::kSend:
      case Op::kSuperSend: {
        const std::uint16_t selector_index = u16();
        const std::uint8_t argc = u8();
        out += " " + literal_text(selector_index) + " argc=" +
               std::to_string(argc);
        break;
      }
      case Op::kPushBlock:
        out += " [" + std::to_string(u16()) + "]";
        break;
      case Op::kPathGet: {
        const std::uint16_t name = u16();
        const std::uint8_t timed = u8();
        out += " " + literal_text(name) + (timed ? " @time" : "");
        break;
      }
      case Op::kPathSet:
        out += " " + literal_text(u16());
        break;
      case Op::kMakeArray:
        out += " n=" + std::to_string(u16());
        break;
      default:
        break;
    }
    out += "\n";
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    out += "block [" + std::to_string(i) + "]:\n" +
           blocks[i]->Disassemble(symbols);
  }
  return out;
}

}  // namespace gemstone::opal
