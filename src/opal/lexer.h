#ifndef GEMSTONE_OPAL_LEXER_H_
#define GEMSTONE_OPAL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/result.h"
#include "opal/token.h"

namespace gemstone::opal {

/// Tokenizes OPAL source: Smalltalk-80 lexical rules ("we have been able
/// to incorporate declarative statements in OPAL without departing from
/// Smalltalk syntax", §5.4) plus the two OPAL extensions: `!` for path
/// navigation and `@` for the time qualifier.
///
/// Comments are double-quoted, as in ST80: "like this".
class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  /// Tokenizes the whole input; fails with CompileError (carrying
  /// line/column) on malformed literals.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> Next();
  void SkipWhitespaceAndComments();
  Status ErrorHere(const std::string& message) const;

  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char Advance();
  bool AtEnd() const { return pos_ >= source_.size(); }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace gemstone::opal

#endif  // GEMSTONE_OPAL_LEXER_H_
