#include <algorithm>
#include <cmath>

#include "index/directory.h"
#include "opal/compiler.h"
#include "opal/interpreter.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

// Kernel primitive methods. Each is a captureless lambda converted to a
// PrimitiveFn and installed into the bootstrapped class hierarchy; OPAL
// methods compiled at run time layer on top via ordinary lookup.

namespace gemstone::opal {

namespace {

// --- Small helpers ----------------------------------------------------------

Status WrongArgs(Interpreter& interp, const char* selector,
                 std::size_t want, std::size_t got) {
  (void)interp;
  return Status::RuntimeError(std::string("#") + selector + " expects " +
                              std::to_string(want) + " arguments, got " +
                              std::to_string(got));
}

Result<bool> AsBoolean(Interpreter& interp, const Value& v,
                       const char* context) {
  if (!v.IsBoolean()) {
    return Status::TypeMismatch(std::string(context) +
                                " needs a Boolean, got " +
                                interp.DefaultPrintString(v));
  }
  return v.boolean();
}

/// Evaluates `v` as a condition value: booleans pass through; a block is
/// invoked with no arguments (and: / or: accept both).
Result<bool> AsCondition(Interpreter& interp, const Value& v,
                         const char* context) {
  if (v.IsBoolean()) return v.boolean();
  if (v.IsHandle()) {
    GS_ASSIGN_OR_RETURN(Value r, interp.CallBlock(v, {}));
    if (interp.nlr_active()) return false;  // unwinding; caller propagates
    return AsBoolean(interp, r, context);
  }
  return Status::TypeMismatch(std::string(context) +
                              " needs a Boolean or a block");
}

/// Enumerate the member values of any collection object: Set/Bag/
/// Dictionary families yield named-element values; Array families yield
/// indexed slots in order.
Result<std::vector<Value>> CollectionMembers(Interpreter& interp,
                                             const Value& collection) {
  if (!collection.IsRef()) {
    return Status::TypeMismatch("not a collection: " +
                                interp.DefaultPrintString(collection));
  }
  GS_ASSIGN_OR_RETURN(Oid class_oid, interp.ClassOfValue(collection));
  const GsClass* cls = interp.memory().classes().Get(class_oid);
  if (cls == nullptr) return Status::Internal("collection class missing");
  std::vector<Value> members;
  if (cls->format() == ObjectFormat::kIndexed) {
    GS_ASSIGN_OR_RETURN(std::size_t n,
                        interp.session().IndexedSize(collection.ref()));
    members.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      GS_ASSIGN_OR_RETURN(Value v,
                          interp.session().ReadIndexed(collection.ref(), i));
      members.push_back(std::move(v));
    }
  } else {
    GS_ASSIGN_OR_RETURN(auto named,
                        interp.session().ListNamed(collection.ref()));
    members.reserve(named.size());
    for (auto& [name, value] : named) members.push_back(std::move(value));
  }
  return members;
}

/// Creates a fresh collection of the same class as `like` (for select:
/// results) or of an explicit kernel class.
Result<Value> NewCollection(Interpreter& interp, Oid class_oid) {
  GS_ASSIGN_OR_RETURN(Oid oid, interp.session().Create(class_oid));
  return Value::Ref(oid);
}

/// Adds `member` to a set-format collection under a fresh alias.
Status SetAddRaw(Interpreter& interp, Oid set, const Value& member) {
  const SymbolId alias = interp.memory().symbols().GenerateAlias();
  return interp.session().WriteNamed(set, alias, member);
}

Status AppendRaw(Interpreter& interp, Oid array, const Value& member) {
  return interp.session().AppendIndexed(array, member).status();
}

/// Adds `member` into `collection` respecting its format and Set
/// uniqueness, and notifies the directory manager.
Result<Value> GenericAdd(Interpreter& interp, const Value& collection,
                         const Value& member) {
  GS_ASSIGN_OR_RETURN(Oid class_oid, interp.ClassOfValue(collection));
  const GsClass* cls = interp.memory().classes().Get(class_oid);
  const auto& kernel = interp.memory().kernel();
  if (cls->format() == ObjectFormat::kIndexed) {
    GS_RETURN_IF_ERROR(AppendRaw(interp, collection.ref(), member));
  } else {
    if (interp.memory().classes().IsKindOf(class_oid, kernel.set)) {
      // Set semantics: no duplicates under value equality.
      GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, collection));
      for (const Value& existing : members) {
        if (existing == member) return member;
      }
    }
    GS_RETURN_IF_ERROR(SetAddRaw(interp, collection.ref(), member));
  }
  if (interp.directories() != nullptr) {
    GS_RETURN_IF_ERROR(interp.directories()->NoteAdd(
        &interp.session(), collection.ref(), member));
  }
  return member;
}

Status GenericAddAll(Interpreter& interp, const Value& target,
                     const Value& source) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, source));
  for (const Value& m : members) {
    GS_RETURN_IF_ERROR(GenericAdd(interp, target, m).status());
  }
  return Status::OK();
}

std::string StringOrSymbolText(Interpreter& interp, const Value& v,
                               bool* ok) {
  *ok = true;
  if (v.IsString()) return v.string();
  if (v.IsSymbol()) return interp.memory().symbols().Name(v.symbol());
  *ok = false;
  return {};
}

// Compares with the given operator; numbers numerically, strings
// lexicographically.
Result<bool> OrderedCompare(const Value& a, const Value& b,
                            CompiledMethod::PredicateConjunct::CmpOp op) {
  using CmpOp = CompiledMethod::PredicateConjunct::CmpOp;
  if (op == CmpOp::kEq) return a == b;
  if (op == CmpOp::kNe) return !(a == b);
  int cmp;
  if (a.IsNumber() && b.IsNumber()) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    cmp = x < y ? -1 : (x > y ? 1 : 0);
  } else if (a.IsString() && b.IsString()) {
    cmp = a.string().compare(b.string());
  } else {
    return Status::TypeMismatch("values are not order-comparable");
  }
  switch (op) {
    case CmpOp::kLt: return cmp < 0;
    case CmpOp::kLe: return cmp <= 0;
    case CmpOp::kGt: return cmp > 0;
    case CmpOp::kGe: return cmp >= 0;
    default: return Status::Internal("unreachable");
  }
}

// --- selectWhere: the declarative query path --------------------------------

/// Evaluates one extracted conjunct against a member without any message
/// dispatch (the compiled calculus-to-procedural translation, §6).
Result<bool> EvalConjunct(Interpreter& interp,
                          const CompiledMethod::PredicateConjunct& conjunct,
                          const Value& member) {
  Value lhs = member;
  for (const std::string& step : conjunct.lhs_path) {
    if (!lhs.IsRef()) return Status::TypeMismatch("path into simple value");
    const SymbolId sym = interp.memory().symbols().Intern(step);
    GS_ASSIGN_OR_RETURN(lhs, interp.session().ReadNamed(lhs.ref(), sym));
  }
  Value rhs;
  if (conjunct.rhs_path.empty()) {
    rhs = conjunct.rhs_literal;
  } else {
    rhs = member;
    for (const std::string& step : conjunct.rhs_path) {
      if (!rhs.IsRef()) return Status::TypeMismatch("path into simple value");
      const SymbolId sym = interp.memory().symbols().Intern(step);
      GS_ASSIGN_OR_RETURN(rhs, interp.session().ReadNamed(rhs.ref(), sym));
    }
  }
  return OrderedCompare(lhs, rhs, conjunct.op);
}

/// Runs a declarative block over a collection: pick an equality conjunct
/// covered by a directory as the access path, residual conjuncts filter.
Result<Value> SelectWhere(Interpreter& interp, const Value& collection,
                          const CompiledMethod& block) {
  using CmpOp = CompiledMethod::PredicateConjunct::CmpOp;
  const auto& conjuncts = block.declarative_conjuncts;

  std::vector<Value> candidates;
  int used_conjunct = -1;
  if (interp.directories() != nullptr && collection.IsRef()) {
    for (std::size_t c = 0; c < conjuncts.size(); ++c) {
      const auto& conj = conjuncts[c];
      if (!conj.rhs_path.empty() || conj.lhs_path.empty()) continue;
      std::vector<SymbolId> path;
      for (const std::string& step : conj.lhs_path) {
        path.push_back(interp.memory().symbols().Intern(step));
      }
      index::Directory* dir =
          interp.directories()->Find(collection.ref(), path);
      if (dir == nullptr) continue;
      const TxnTime at = interp.session().EffectiveTime() == kTimeNow
                             ? interp.session().manager().Now()
                             : interp.session().EffectiveTime();
      if (conj.op == CmpOp::kEq) {
        for (Oid member : dir->Lookup(conj.rhs_literal, at)) {
          candidates.push_back(Value::Ref(member));
        }
        used_conjunct = static_cast<int>(c);
        break;
      }
      if (conj.op == CmpOp::kLt || conj.op == CmpOp::kLe ||
          conj.op == CmpOp::kGt || conj.op == CmpOp::kGe) {
        // Range probe; the residual check below re-applies the exact
        // bound, so half-open endpoints need no special casing.
        const Value lo = (conj.op == CmpOp::kGt || conj.op == CmpOp::kGe)
                             ? conj.rhs_literal
                             : Value::Float(-1e308);
        const Value hi = (conj.op == CmpOp::kLt || conj.op == CmpOp::kLe)
                             ? conj.rhs_literal
                             : Value::Float(1e308);
        if (!conj.rhs_literal.IsNumber()) continue;
        for (Oid member : dir->LookupRange(lo, hi, at)) {
          candidates.push_back(Value::Ref(member));
        }
        used_conjunct = static_cast<int>(c);
        break;
      }
    }
  }
  if (used_conjunct < 0) {
    GS_ASSIGN_OR_RETURN(candidates, CollectionMembers(interp, collection));
  }

  GS_ASSIGN_OR_RETURN(Oid class_oid, interp.ClassOfValue(collection));
  GS_ASSIGN_OR_RETURN(Value result, NewCollection(interp, class_oid));
  for (const Value& member : candidates) {
    bool keep = true;
    for (std::size_t c = 0; c < conjuncts.size() && keep; ++c) {
      // Re-apply every conjunct (the directory probe is a superset for
      // ranges and exact for equality; rechecking is cheap and safe).
      GS_ASSIGN_OR_RETURN(keep, EvalConjunct(interp, conjuncts[c], member));
    }
    if (keep) {
      GS_ASSIGN_OR_RETURN(Oid rcls, interp.ClassOfValue(result));
      const GsClass* cls = interp.memory().classes().Get(rcls);
      if (cls->format() == ObjectFormat::kIndexed) {
        GS_RETURN_IF_ERROR(AppendRaw(interp, result.ref(), member));
      } else {
        GS_RETURN_IF_ERROR(SetAddRaw(interp, result.ref(), member));
      }
    }
  }
  return result;
}

// --- Object ------------------------------------------------------------------

Result<Value> PrimIdentical(Interpreter&, const Value& receiver,
                            std::vector<Value>& args) {
  return Value::Boolean(receiver == args[0]);
}

Result<Value> PrimNotIdentical(Interpreter&, const Value& receiver,
                               std::vector<Value>& args) {
  return Value::Boolean(!(receiver == args[0]));
}

Result<Value> PrimNotEqual(Interpreter& interp, const Value& receiver,
                           std::vector<Value>& args) {
  const SymbolId eq = interp.memory().symbols().Intern("=");
  GS_ASSIGN_OR_RETURN(Value v, interp.Send(receiver, eq, {args[0]}));
  GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, v, "~="));
  return Value::Boolean(!b);
}

Result<Value> PrimIsNil(Interpreter&, const Value& receiver,
                        std::vector<Value>&) {
  return Value::Boolean(receiver.IsNil());
}

Result<Value> PrimNotNil(Interpreter&, const Value& receiver,
                         std::vector<Value>&) {
  return Value::Boolean(!receiver.IsNil());
}

Result<Value> PrimClass(Interpreter& interp, const Value& receiver,
                        std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(Oid class_oid, interp.ClassOfValue(receiver));
  return Value::Ref(class_oid);
}

Result<Value> PrimPrintString(Interpreter& interp, const Value& receiver,
                              std::vector<Value>&) {
  return Value::String(interp.DefaultPrintString(receiver));
}

Result<Value> PrimYourself(Interpreter&, const Value& receiver,
                           std::vector<Value>&) {
  return receiver;
}

Result<Value> PrimHash(Interpreter&, const Value& receiver,
                       std::vector<Value>&) {
  return Value::Integer(static_cast<std::int64_t>(ValueHash()(receiver)));
}

Result<Value> PrimDeepEqualTo(Interpreter& interp, const Value& receiver,
                              std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(bool eq, interp.session().DeepEquals(receiver, args[0]));
  return Value::Boolean(eq);
}

Result<Value> PrimIsKindOf(Interpreter& interp, const Value& receiver,
                           std::vector<Value>& args) {
  if (!args[0].IsRef()) return Value::Boolean(false);
  GS_ASSIGN_OR_RETURN(Oid class_oid, interp.ClassOfValue(receiver));
  return Value::Boolean(
      interp.memory().classes().IsKindOf(class_oid, args[0].ref()));
}

Result<Value> PrimRespondsTo(Interpreter& interp, const Value& receiver,
                             std::vector<Value>& args) {
  if (!args[0].IsSymbol()) {
    return Status::TypeMismatch("respondsTo: needs a Symbol");
  }
  GS_ASSIGN_OR_RETURN(Oid class_oid, interp.ClassOfValue(receiver));
  return Value::Boolean(interp.memory().classes().LookupMethod(
                            class_oid, args[0].symbol()) != nullptr);
}

Result<Value> PrimError(Interpreter& interp, const Value&,
                        std::vector<Value>& args) {
  return Status::RuntimeError(args[0].IsString()
                                  ? args[0].string()
                                  : interp.DefaultPrintString(args[0]));
}

Result<Value> PrimInstVarNamed(Interpreter& interp, const Value& receiver,
                               std::vector<Value>& args) {
  if (!receiver.IsRef()) {
    return Status::TypeMismatch("instVarNamed: on a simple value");
  }
  bool ok;
  const std::string name = StringOrSymbolText(interp, args[0], &ok);
  if (!ok) return Status::TypeMismatch("instVarNamed: needs a name");
  return interp.session().ReadNamed(receiver.ref(),
                                    interp.memory().symbols().Intern(name));
}

Result<Value> PrimInstVarNamedPut(Interpreter& interp, const Value& receiver,
                                  std::vector<Value>& args) {
  if (!receiver.IsRef()) {
    return Status::TypeMismatch("instVarNamed:put: on a simple value");
  }
  bool ok;
  const std::string name = StringOrSymbolText(interp, args[0], &ok);
  if (!ok) return Status::TypeMismatch("instVarNamed:put: needs a name");
  GS_RETURN_IF_ERROR(interp.session().WriteNamed(
      receiver.ref(), interp.memory().symbols().Intern(name), args[1]));
  return args[1];
}

/// elementAt:atTime: — explicit temporal read (the @ of path syntax as a
/// message, usable where the path form is inconvenient).
Result<Value> PrimElementAtTime(Interpreter& interp, const Value& receiver,
                                std::vector<Value>& args) {
  if (!receiver.IsRef()) {
    return Status::TypeMismatch("elementAt:atTime: on a simple value");
  }
  bool ok;
  const std::string name = StringOrSymbolText(interp, args[0], &ok);
  if (!ok || !args[1].IsInteger()) {
    return Status::TypeMismatch("elementAt:atTime: needs name and time");
  }
  return interp.session().ReadNamedAt(
      receiver.ref(), interp.memory().symbols().Intern(name),
      static_cast<TxnTime>(args[1].integer()));
}

// --- Boolean -----------------------------------------------------------------

Result<Value> PrimNot(Interpreter& interp, const Value& receiver,
                      std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, receiver, "not"));
  return Value::Boolean(!b);
}

Result<Value> PrimAnd(Interpreter& interp, const Value& receiver,
                      std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(bool a, AsBoolean(interp, receiver, "&"));
  GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, args[0], "&"));
  return Value::Boolean(a && b);
}

Result<Value> PrimOr(Interpreter& interp, const Value& receiver,
                     std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(bool a, AsBoolean(interp, receiver, "|"));
  GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, args[0], "|"));
  return Value::Boolean(a || b);
}

Result<Value> PrimAndColon(Interpreter& interp, const Value& receiver,
                           std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(bool a, AsBoolean(interp, receiver, "and:"));
  if (!a) return Value::Boolean(false);
  GS_ASSIGN_OR_RETURN(bool b, AsCondition(interp, args[0], "and:"));
  if (interp.nlr_active()) return Value::Nil();
  return Value::Boolean(b);
}

Result<Value> PrimOrColon(Interpreter& interp, const Value& receiver,
                          std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(bool a, AsBoolean(interp, receiver, "or:"));
  if (a) return Value::Boolean(true);
  GS_ASSIGN_OR_RETURN(bool b, AsCondition(interp, args[0], "or:"));
  if (interp.nlr_active()) return Value::Nil();
  return Value::Boolean(b);
}

Result<Value> PrimIfTrue(Interpreter& interp, const Value& receiver,
                         std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, receiver, "ifTrue:"));
  if (!b) return Value::Nil();
  return interp.CallBlock(args[0], {});
}

Result<Value> PrimIfFalse(Interpreter& interp, const Value& receiver,
                          std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, receiver, "ifFalse:"));
  if (b) return Value::Nil();
  return interp.CallBlock(args[0], {});
}

Result<Value> PrimIfTrueIfFalse(Interpreter& interp, const Value& receiver,
                                std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, receiver, "ifTrue:ifFalse:"));
  return interp.CallBlock(b ? args[0] : args[1], {});
}

Result<Value> PrimIfFalseIfTrue(Interpreter& interp, const Value& receiver,
                                std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, receiver, "ifFalse:ifTrue:"));
  return interp.CallBlock(b ? args[1] : args[0], {});
}

// --- Number ------------------------------------------------------------------

Result<Value> NumericPair(Interpreter& interp, const Value& a, const Value& b,
                          const char* op, bool* both_int) {
  if (!a.IsNumber() || !b.IsNumber()) {
    return Status::TypeMismatch(std::string(op) + " needs numbers, got " +
                                interp.DefaultPrintString(a) + " and " +
                                interp.DefaultPrintString(b));
  }
  *both_int = a.IsInteger() && b.IsInteger();
  return Value::Nil();
}

Result<Value> PrimAdd(Interpreter& interp, const Value& r,
                      std::vector<Value>& args) {
  bool ints;
  GS_RETURN_IF_ERROR(NumericPair(interp, r, args[0], "+", &ints).status());
  if (ints) return Value::Integer(r.integer() + args[0].integer());
  return Value::Float(r.AsDouble() + args[0].AsDouble());
}

Result<Value> PrimSub(Interpreter& interp, const Value& r,
                      std::vector<Value>& args) {
  bool ints;
  GS_RETURN_IF_ERROR(NumericPair(interp, r, args[0], "-", &ints).status());
  if (ints) return Value::Integer(r.integer() - args[0].integer());
  return Value::Float(r.AsDouble() - args[0].AsDouble());
}

Result<Value> PrimMul(Interpreter& interp, const Value& r,
                      std::vector<Value>& args) {
  bool ints;
  GS_RETURN_IF_ERROR(NumericPair(interp, r, args[0], "*", &ints).status());
  if (ints) return Value::Integer(r.integer() * args[0].integer());
  return Value::Float(r.AsDouble() * args[0].AsDouble());
}

Result<Value> PrimDiv(Interpreter& interp, const Value& r,
                      std::vector<Value>& args) {
  bool ints;
  GS_RETURN_IF_ERROR(NumericPair(interp, r, args[0], "/", &ints).status());
  if (args[0].AsDouble() == 0) {
    return Status::RuntimeError("division by zero");
  }
  if (ints && r.integer() % args[0].integer() == 0) {
    return Value::Integer(r.integer() / args[0].integer());
  }
  return Value::Float(r.AsDouble() / args[0].AsDouble());
}

Result<Value> PrimIntDiv(Interpreter& interp, const Value& r,
                         std::vector<Value>& args) {
  bool ints;
  GS_RETURN_IF_ERROR(NumericPair(interp, r, args[0], "//", &ints).status());
  if (args[0].AsDouble() == 0) return Status::RuntimeError("division by zero");
  const double q = std::floor(r.AsDouble() / args[0].AsDouble());
  return Value::Integer(static_cast<std::int64_t>(q));
}

Result<Value> PrimMod(Interpreter& interp, const Value& r,
                      std::vector<Value>& args) {
  bool ints;
  GS_RETURN_IF_ERROR(NumericPair(interp, r, args[0], "\\\\", &ints).status());
  if (args[0].AsDouble() == 0) return Status::RuntimeError("division by zero");
  const double q = std::floor(r.AsDouble() / args[0].AsDouble());
  const double m = r.AsDouble() - q * args[0].AsDouble();
  if (ints) return Value::Integer(static_cast<std::int64_t>(m));
  return Value::Float(m);
}

template <int kOp>  // 0 < , 1 <= , 2 > , 3 >=
Result<Value> PrimNumCompare(Interpreter& interp, const Value& r,
                             std::vector<Value>& args) {
  bool ints;
  GS_RETURN_IF_ERROR(NumericPair(interp, r, args[0], "<", &ints).status());
  const double a = r.AsDouble();
  const double b = args[0].AsDouble();
  switch (kOp) {
    case 0: return Value::Boolean(a < b);
    case 1: return Value::Boolean(a <= b);
    case 2: return Value::Boolean(a > b);
    default: return Value::Boolean(a >= b);
  }
}

Result<Value> PrimValueEq(Interpreter&, const Value& r,
                          std::vector<Value>& args) {
  return Value::Boolean(r == args[0]);
}

Result<Value> PrimAbs(Interpreter&, const Value& r, std::vector<Value>&) {
  if (r.IsInteger()) return Value::Integer(std::abs(r.integer()));
  return Value::Float(std::fabs(r.real()));
}

Result<Value> PrimNegated(Interpreter&, const Value& r, std::vector<Value>&) {
  if (r.IsInteger()) return Value::Integer(-r.integer());
  return Value::Float(-r.real());
}

Result<Value> PrimAsFloat(Interpreter&, const Value& r, std::vector<Value>&) {
  return Value::Float(r.AsDouble());
}

Result<Value> PrimAsInteger(Interpreter&, const Value& r,
                            std::vector<Value>&) {
  return Value::Integer(static_cast<std::int64_t>(r.AsDouble()));
}

Result<Value> PrimSqrt(Interpreter&, const Value& r, std::vector<Value>&) {
  if (r.AsDouble() < 0) return Status::RuntimeError("sqrt of a negative");
  return Value::Float(std::sqrt(r.AsDouble()));
}

Result<Value> PrimSquared(Interpreter&, const Value& r, std::vector<Value>&) {
  if (r.IsInteger()) return Value::Integer(r.integer() * r.integer());
  return Value::Float(r.real() * r.real());
}

Result<Value> PrimMin(Interpreter& interp, const Value& r,
                      std::vector<Value>& args) {
  bool ints;
  GS_RETURN_IF_ERROR(NumericPair(interp, r, args[0], "min:", &ints).status());
  return r.AsDouble() <= args[0].AsDouble() ? r : args[0];
}

Result<Value> PrimMax(Interpreter& interp, const Value& r,
                      std::vector<Value>& args) {
  bool ints;
  GS_RETURN_IF_ERROR(NumericPair(interp, r, args[0], "max:", &ints).status());
  return r.AsDouble() >= args[0].AsDouble() ? r : args[0];
}

Result<Value> PrimBetweenAnd(Interpreter& interp, const Value& r,
                             std::vector<Value>& args) {
  bool ints;
  GS_RETURN_IF_ERROR(
      NumericPair(interp, r, args[0], "between:and:", &ints).status());
  GS_RETURN_IF_ERROR(
      NumericPair(interp, r, args[1], "between:and:", &ints).status());
  return Value::Boolean(r.AsDouble() >= args[0].AsDouble() &&
                        r.AsDouble() <= args[1].AsDouble());
}

Result<Value> PrimTimesRepeat(Interpreter& interp, const Value& r,
                              std::vector<Value>& args) {
  if (!r.IsInteger()) {
    return Status::TypeMismatch("timesRepeat: needs an Integer receiver");
  }
  for (std::int64_t i = 0; i < r.integer(); ++i) {
    GS_RETURN_IF_ERROR(interp.CallBlock(args[0], {}).status());
    if (interp.nlr_active()) return Value::Nil();
  }
  return r;
}

Result<Value> PrimToDo(Interpreter& interp, const Value& r,
                       std::vector<Value>& args) {
  if (!r.IsInteger() || !args[0].IsInteger()) {
    return Status::TypeMismatch("to:do: needs Integer bounds");
  }
  for (std::int64_t i = r.integer(); i <= args[0].integer(); ++i) {
    GS_RETURN_IF_ERROR(
        interp.CallBlock(args[1], {Value::Integer(i)}).status());
    if (interp.nlr_active()) return Value::Nil();
  }
  return r;
}

Result<Value> PrimToByDo(Interpreter& interp, const Value& r,
                         std::vector<Value>& args) {
  if (!r.IsInteger() || !args[0].IsInteger() || !args[1].IsInteger()) {
    return Status::TypeMismatch("to:by:do: needs Integer bounds and step");
  }
  const std::int64_t step = args[1].integer();
  if (step == 0) return Status::RuntimeError("to:by:do: step is zero");
  for (std::int64_t i = r.integer();
       step > 0 ? i <= args[0].integer() : i >= args[0].integer();
       i += step) {
    GS_RETURN_IF_ERROR(
        interp.CallBlock(args[2], {Value::Integer(i)}).status());
    if (interp.nlr_active()) return Value::Nil();
  }
  return r;
}

// --- String ------------------------------------------------------------------

Result<Value> PrimStringConcat(Interpreter& interp, const Value& r,
                               std::vector<Value>& args) {
  if (!r.IsString() || !args[0].IsString()) {
    return Status::TypeMismatch("',' concatenates Strings, got " +
                                interp.DefaultPrintString(args[0]));
  }
  return Value::String(r.string() + args[0].string());
}

Result<Value> PrimStringSize(Interpreter&, const Value& r,
                             std::vector<Value>&) {
  return Value::Integer(static_cast<std::int64_t>(r.string().size()));
}

Result<Value> PrimStringAt(Interpreter&, const Value& r,
                           std::vector<Value>& args) {
  if (!args[0].IsInteger()) return Status::TypeMismatch("at: needs an index");
  const std::int64_t i = args[0].integer();
  if (i < 1 || static_cast<std::size_t>(i) > r.string().size()) {
    return Status::OutOfRange("string index " + std::to_string(i) +
                              " out of 1.." +
                              std::to_string(r.string().size()));
  }
  return Value::String(std::string(1, r.string()[static_cast<std::size_t>(
                                        i - 1)]));
}

template <int kOp>
Result<Value> PrimStringCompare(Interpreter& interp, const Value& r,
                                std::vector<Value>& args) {
  if (!args[0].IsString()) {
    return Status::TypeMismatch("string comparison with " +
                                interp.DefaultPrintString(args[0]));
  }
  const int cmp = r.string().compare(args[0].string());
  switch (kOp) {
    case 0: return Value::Boolean(cmp < 0);
    case 1: return Value::Boolean(cmp <= 0);
    case 2: return Value::Boolean(cmp > 0);
    default: return Value::Boolean(cmp >= 0);
  }
}

Result<Value> PrimAsSymbol(Interpreter& interp, const Value& r,
                           std::vector<Value>&) {
  return Value::Symbol(interp.memory().symbols().Intern(r.string()));
}

Result<Value> PrimSymbolAsString(Interpreter& interp, const Value& r,
                                 std::vector<Value>&) {
  return Value::String(interp.memory().symbols().Name(r.symbol()));
}

Result<Value> PrimStringIsEmpty(Interpreter&, const Value& r,
                                std::vector<Value>&) {
  return Value::Boolean(r.string().empty());
}

Result<Value> PrimCopyFromTo(Interpreter&, const Value& r,
                             std::vector<Value>& args) {
  if (!args[0].IsInteger() || !args[1].IsInteger()) {
    return Status::TypeMismatch("copyFrom:to: needs Integer bounds");
  }
  const std::int64_t from = args[0].integer();
  const std::int64_t to = args[1].integer();
  const auto& s = r.string();
  if (from < 1 || to > static_cast<std::int64_t>(s.size()) || from > to + 1) {
    return Status::OutOfRange("copyFrom:to: bounds");
  }
  return Value::String(s.substr(static_cast<std::size_t>(from - 1),
                                static_cast<std::size_t>(to - from + 1)));
}

// --- Block -------------------------------------------------------------------

Result<Value> PrimBlockValue0(Interpreter& interp, const Value& r,
                              std::vector<Value>&) {
  return interp.CallBlock(r, {});
}

Result<Value> PrimBlockValue1(Interpreter& interp, const Value& r,
                              std::vector<Value>& args) {
  return interp.CallBlock(r, {args[0]});
}

Result<Value> PrimBlockValue2(Interpreter& interp, const Value& r,
                              std::vector<Value>& args) {
  return interp.CallBlock(r, {args[0], args[1]});
}

Result<Value> PrimBlockValue3(Interpreter& interp, const Value& r,
                              std::vector<Value>& args) {
  return interp.CallBlock(r, {args[0], args[1], args[2]});
}

Result<Value> PrimBlockNumArgs(Interpreter&, const Value& r,
                               std::vector<Value>&) {
  auto* closure = dynamic_cast<BlockClosure*>(r.handle().get());
  if (closure == nullptr) return Status::TypeMismatch("not a block");
  return Value::Integer(closure->method->num_args);
}

Result<Value> PrimBlockIsDeclarative(Interpreter&, const Value& r,
                                     std::vector<Value>&) {
  auto* closure = dynamic_cast<BlockClosure*>(r.handle().get());
  if (closure == nullptr) return Status::TypeMismatch("not a block");
  return Value::Boolean(closure->method->is_declarative);
}

Result<Value> PrimWhileTrue(Interpreter& interp, const Value& r,
                            std::vector<Value>& args) {
  for (;;) {
    GS_ASSIGN_OR_RETURN(Value cond, interp.CallBlock(r, {}));
    if (interp.nlr_active()) return Value::Nil();
    GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, cond, "whileTrue:"));
    if (!b) return Value::Nil();
    if (!args.empty()) {
      GS_RETURN_IF_ERROR(interp.CallBlock(args[0], {}).status());
      if (interp.nlr_active()) return Value::Nil();
    }
  }
}

Result<Value> PrimWhileFalse(Interpreter& interp, const Value& r,
                             std::vector<Value>& args) {
  for (;;) {
    GS_ASSIGN_OR_RETURN(Value cond, interp.CallBlock(r, {}));
    if (interp.nlr_active()) return Value::Nil();
    GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, cond, "whileFalse:"));
    if (b) return Value::Nil();
    if (!args.empty()) {
      GS_RETURN_IF_ERROR(interp.CallBlock(args[0], {}).status());
      if (interp.nlr_active()) return Value::Nil();
    }
  }
}

// --- Class (metaclass protocol) ----------------------------------------------

Result<GsClass*> ReceiverClass(Interpreter& interp, const Value& receiver) {
  if (!receiver.IsRef()) return Status::TypeMismatch("not a class");
  GsClass* cls = interp.memory().classes().Get(receiver.ref());
  if (cls == nullptr) return Status::TypeMismatch("not a class");
  return cls;
}

Result<Value> PrimClassNew(Interpreter& interp, const Value& receiver,
                           std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(GsClass * cls, ReceiverClass(interp, receiver));
  GS_ASSIGN_OR_RETURN(Oid oid, interp.session().Create(cls->oid()));
  return Value::Ref(oid);
}

Result<Value> PrimClassNewSize(Interpreter& interp, const Value& receiver,
                               std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(GsClass * cls, ReceiverClass(interp, receiver));
  if (!args[0].IsInteger() || args[0].integer() < 0) {
    return Status::TypeMismatch("new: needs a non-negative size");
  }
  GS_ASSIGN_OR_RETURN(Oid oid, interp.session().Create(cls->oid()));
  for (std::int64_t i = 0; i < args[0].integer(); ++i) {
    GS_RETURN_IF_ERROR(
        interp.session().AppendIndexed(oid, Value::Nil()).status());
  }
  return Value::Ref(oid);
}

Result<Value> PrimClassName(Interpreter& interp, const Value& receiver,
                            std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(GsClass * cls, ReceiverClass(interp, receiver));
  return Value::String(cls->name());
}

Result<Value> PrimClassSuperclass(Interpreter& interp, const Value& receiver,
                                  std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(GsClass * cls, ReceiverClass(interp, receiver));
  if (cls->superclass().IsNil()) return Value::Nil();
  return Value::Ref(cls->superclass());
}

Result<Value> PrimClassInstVarNames(Interpreter& interp,
                                    const Value& receiver,
                                    std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(GsClass * cls, ReceiverClass(interp, receiver));
  GS_ASSIGN_OR_RETURN(Oid array,
                      interp.session().Create(interp.memory().kernel().array));
  for (SymbolId var : interp.memory().classes().AllInstVars(cls->oid())) {
    GS_RETURN_IF_ERROR(
        interp.session()
            .AppendIndexed(array, Value::String(
                                      interp.memory().symbols().Name(var)))
            .status());
  }
  return Value::Ref(array);
}

/// Schema mutation touches shared state outside the transaction
/// workspace, so it may only run on the gateway's exclusive write path; a
/// snapshot-pinned evaluation bounces with kReadOnlyRetry before mutating
/// anything.
Status RequireSchemaWritable(Interpreter& interp, const char* what) {
  if (interp.session().SnapshotPinned()) {
    return Status::ReadOnlyRetry(std::string(what) +
                                 " on the snapshot read path");
  }
  return Status::OK();
}

Result<Value> DefineSubclass(Interpreter& interp, const Value& receiver,
                             const Value& name_value,
                             const std::vector<std::string>& inst_vars) {
  GS_RETURN_IF_ERROR(RequireSchemaWritable(interp, "class definition"));
  GS_ASSIGN_OR_RETURN(GsClass * super, ReceiverClass(interp, receiver));
  if (!name_value.IsString()) {
    return Status::TypeMismatch("subclass: needs a String name");
  }
  const Oid oid = interp.memory().AllocateOid();
  GS_ASSIGN_OR_RETURN(
      Oid defined,
      interp.memory().classes().DefineClass(oid, name_value.string(),
                                            super->oid(), super->format(),
                                            inst_vars));
  return Value::Ref(defined);
}

Result<Value> PrimSubclass(Interpreter& interp, const Value& receiver,
                           std::vector<Value>& args) {
  return DefineSubclass(interp, receiver, args[0], {});
}

Result<Value> PrimSubclassInstVars(Interpreter& interp, const Value& receiver,
                                   std::vector<Value>& args) {
  std::vector<std::string> inst_vars;
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, args[1]));
  for (const Value& v : members) {
    bool ok;
    std::string text = StringOrSymbolText(interp, v, &ok);
    if (!ok) {
      return Status::TypeMismatch(
          "instVarNames: needs Strings or Symbols");
    }
    inst_vars.push_back(std::move(text));
  }
  return DefineSubclass(interp, receiver, args[0], inst_vars);
}

Result<Value> PrimAddInstVarName(Interpreter& interp, const Value& receiver,
                                 std::vector<Value>& args) {
  GS_RETURN_IF_ERROR(
      RequireSchemaWritable(interp, "instance variable addition"));
  GS_ASSIGN_OR_RETURN(GsClass * cls, ReceiverClass(interp, receiver));
  bool ok;
  const std::string name = StringOrSymbolText(interp, args[0], &ok);
  if (!ok) return Status::TypeMismatch("addInstVarName: needs a name");
  GS_RETURN_IF_ERROR(interp.memory().classes().AddInstVar(cls->oid(), name));
  return receiver;
}

Result<Value> PrimCompileMethod(Interpreter& interp, const Value& receiver,
                                std::vector<Value>& args) {
  GS_RETURN_IF_ERROR(RequireSchemaWritable(interp, "method compilation"));
  GS_ASSIGN_OR_RETURN(GsClass * cls, ReceiverClass(interp, receiver));
  if (!args[0].IsString()) {
    return Status::TypeMismatch("compileMethod: needs source text");
  }
  Compiler compiler(&interp.memory());
  GS_ASSIGN_OR_RETURN(auto method,
                      compiler.CompileMethodSource(args[0].string(),
                                                   cls->oid()));
  const SymbolId selector =
      interp.memory().symbols().Intern(method->selector);
  // Through the registry: the install takes the exclusive class lock and
  // retires any replaced handle a concurrent reader may be executing.
  GS_RETURN_IF_ERROR(interp.memory().classes().InstallMethod(
      cls->oid(), selector, method, args[0].string()));
  return Value::Symbol(selector);
}

// --- System ------------------------------------------------------------------

Result<Value> PrimSysCommit(Interpreter& interp, const Value&,
                            std::vector<Value>&) {
  Status s = interp.session().Commit();
  Status begin = interp.session().Begin();
  if (!begin.ok()) return begin;
  if (s.IsTransactionConflict()) return Value::Boolean(false);
  GS_RETURN_IF_ERROR(s);
  return Value::Boolean(true);
}

Result<Value> PrimSysAbort(Interpreter& interp, const Value&,
                           std::vector<Value>&) {
  GS_RETURN_IF_ERROR(interp.session().Abort());
  return interp.session().Begin();
}

Result<Value> PrimSysNow(Interpreter& interp, const Value&,
                         std::vector<Value>&) {
  return Value::Integer(
      static_cast<std::int64_t>(interp.session().manager().Now()));
}

Result<Value> PrimSysSafeTime(Interpreter& interp, const Value&,
                              std::vector<Value>&) {
  return Value::Integer(
      static_cast<std::int64_t>(interp.session().manager().SafeTime()));
}

Result<Value> PrimSysTimeDial(Interpreter& interp, const Value&,
                              std::vector<Value>& args) {
  if (!args[0].IsInteger() || args[0].integer() < 0) {
    return Status::TypeMismatch("timeDial: needs a non-negative Integer");
  }
  interp.session().SetTimeDial(static_cast<TxnTime>(args[0].integer()));
  return Value::Nil();
}

Result<Value> PrimSysClearTimeDial(Interpreter& interp, const Value&,
                                   std::vector<Value>&) {
  interp.session().ClearTimeDial();
  return Value::Nil();
}

Result<Value> PrimSysSafeTimeDial(Interpreter& interp, const Value&,
                                  std::vector<Value>&) {
  interp.session().SetTimeDialToSafeTime();
  return Value::Integer(
      static_cast<std::int64_t>(interp.session().manager().SafeTime()));
}

Result<Value> PrimSysStats(Interpreter&, const Value&, std::vector<Value>&) {
  // System stats — the live process-wide telemetry report as a String.
  return Value::String(telemetry::ToText(
      telemetry::MetricsRegistry::Global().Snapshot()));
}

Result<Value> PrimSysStatsJson(Interpreter&, const Value&,
                               std::vector<Value>&) {
  return Value::String(telemetry::ToJson(
      telemetry::MetricsRegistry::Global().Snapshot()));
}

Result<Value> PrimSysCreateDirectoryOn(Interpreter& interp, const Value&,
                                       std::vector<Value>& args) {
  // System createDirectoryOn: aCollection path: #(step1 step2)
  GS_RETURN_IF_ERROR(RequireSchemaWritable(interp, "directory creation"));
  if (interp.directories() == nullptr) {
    return Status::Unavailable("no directory manager in this session");
  }
  if (!args[0].IsRef()) {
    return Status::TypeMismatch("createDirectoryOn: needs a collection");
  }
  GS_ASSIGN_OR_RETURN(auto steps, CollectionMembers(interp, args[1]));
  std::vector<SymbolId> path;
  for (const Value& s : steps) {
    bool ok;
    const std::string text = StringOrSymbolText(interp, s, &ok);
    if (!ok) return Status::TypeMismatch("path: needs names");
    path.push_back(interp.memory().symbols().Intern(text));
  }
  GS_RETURN_IF_ERROR(interp.directories()->CreateDirectory(
      &interp.session(), args[0].ref(), path));
  return Value::Boolean(true);
}

// --- Collections -------------------------------------------------------------

Result<Value> PrimCollAdd(Interpreter& interp, const Value& r,
                          std::vector<Value>& args) {
  return GenericAdd(interp, r, args[0]);
}

Result<Value> PrimCollSize(Interpreter& interp, const Value& r,
                           std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  return Value::Integer(static_cast<std::int64_t>(members.size()));
}

Result<Value> PrimCollIsEmpty(Interpreter& interp, const Value& r,
                              std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  return Value::Boolean(members.empty());
}

Result<Value> PrimCollNotEmpty(Interpreter& interp, const Value& r,
                               std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  return Value::Boolean(!members.empty());
}

Result<Value> PrimCollIncludes(Interpreter& interp, const Value& r,
                               std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  for (const Value& m : members) {
    if (m == args[0]) return Value::Boolean(true);
  }
  return Value::Boolean(false);
}

Result<Value> PrimCollDo(Interpreter& interp, const Value& r,
                         std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  for (const Value& m : members) {
    GS_RETURN_IF_ERROR(interp.CallBlock(args[0], {m}).status());
    if (interp.nlr_active()) return Value::Nil();
  }
  return r;
}

Result<Value> CollFilter(Interpreter& interp, const Value& r,
                         const Value& block, bool keep_matching) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  GS_ASSIGN_OR_RETURN(Oid class_oid, interp.ClassOfValue(r));
  GS_ASSIGN_OR_RETURN(Value result, NewCollection(interp, class_oid));
  const GsClass* cls = interp.memory().classes().Get(class_oid);
  for (const Value& m : members) {
    GS_ASSIGN_OR_RETURN(Value keep, interp.CallBlock(block, {m}));
    if (interp.nlr_active()) return Value::Nil();
    GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, keep, "select:"));
    if (b == keep_matching) {
      if (cls->format() == ObjectFormat::kIndexed) {
        GS_RETURN_IF_ERROR(AppendRaw(interp, result.ref(), m));
      } else {
        GS_RETURN_IF_ERROR(SetAddRaw(interp, result.ref(), m));
      }
    }
  }
  return result;
}

Result<Value> PrimCollSelect(Interpreter& interp, const Value& r,
                             std::vector<Value>& args) {
  return CollFilter(interp, r, args[0], true);
}

Result<Value> PrimCollReject(Interpreter& interp, const Value& r,
                             std::vector<Value>& args) {
  return CollFilter(interp, r, args[0], false);
}

Result<Value> PrimCollSelectWhere(Interpreter& interp, const Value& r,
                                  std::vector<Value>& args) {
  if (!args[0].IsHandle()) {
    return Status::TypeMismatch("selectWhere: needs a block");
  }
  auto* closure = dynamic_cast<BlockClosure*>(args[0].handle().get());
  if (closure == nullptr || !closure->method->is_declarative) {
    return Status::InvalidArgument(
        "selectWhere: needs a declarative block — a one-argument block "
        "whose body is a conjunction of path comparisons, e.g. "
        "[:e | (e!salary > 1000) & (e!dept = 'Sales')]");
  }
  return SelectWhere(interp, r, *closure->method);
}

Result<Value> PrimCollCollect(Interpreter& interp, const Value& r,
                              std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  GS_ASSIGN_OR_RETURN(Value result,
                      NewCollection(interp, interp.memory().kernel().array));
  for (const Value& m : members) {
    GS_ASSIGN_OR_RETURN(Value mapped, interp.CallBlock(args[0], {m}));
    if (interp.nlr_active()) return Value::Nil();
    GS_RETURN_IF_ERROR(AppendRaw(interp, result.ref(), mapped));
  }
  return result;
}

Result<Value> PrimCollDetectIfNone(Interpreter& interp, const Value& r,
                                   std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  for (const Value& m : members) {
    GS_ASSIGN_OR_RETURN(Value keep, interp.CallBlock(args[0], {m}));
    if (interp.nlr_active()) return Value::Nil();
    GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, keep, "detect:"));
    if (b) return m;
  }
  return interp.CallBlock(args[1], {});
}

Result<Value> PrimCollDetect(Interpreter& interp, const Value& r,
                             std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  for (const Value& m : members) {
    GS_ASSIGN_OR_RETURN(Value keep, interp.CallBlock(args[0], {m}));
    if (interp.nlr_active()) return Value::Nil();
    GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, keep, "detect:"));
    if (b) return m;
  }
  return Status::RuntimeError("detect: found no matching member");
}

Result<Value> PrimCollAddAll(Interpreter& interp, const Value& r,
                             std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, args[0]));
  for (const Value& m : members) {
    GS_RETURN_IF_ERROR(GenericAdd(interp, r, m).status());
  }
  return args[0];
}

Result<Value> PrimCollAsArray(Interpreter& interp, const Value& r,
                              std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  GS_ASSIGN_OR_RETURN(Value result,
                      NewCollection(interp, interp.memory().kernel().array));
  for (const Value& m : members) {
    GS_RETURN_IF_ERROR(AppendRaw(interp, result.ref(), m));
  }
  return result;
}

Result<Value> PrimCollAsSet(Interpreter& interp, const Value& r,
                            std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  GS_ASSIGN_OR_RETURN(Value result,
                      NewCollection(interp, interp.memory().kernel().set));
  for (const Value& m : members) {
    GS_RETURN_IF_ERROR(GenericAdd(interp, result, m).status());
  }
  return result;
}

Result<Value> PrimCollInjectInto(Interpreter& interp, const Value& r,
                                 std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  Value acc = args[0];
  for (const Value& m : members) {
    GS_ASSIGN_OR_RETURN(acc, interp.CallBlock(args[1], {acc, m}));
    if (interp.nlr_active()) return Value::Nil();
  }
  return acc;
}

Result<Value> PrimIfNil(Interpreter& interp, const Value& r,
                        std::vector<Value>& args) {
  if (!r.IsNil()) return r;
  return interp.CallBlock(args[0], {});
}

Result<Value> PrimIfNotNil(Interpreter& interp, const Value& r,
                           std::vector<Value>& args) {
  if (r.IsNil()) return Value::Nil();
  return interp.CallBlock(args[0], {r});
}

Result<Value> PrimIfNilIfNotNil(Interpreter& interp, const Value& r,
                                std::vector<Value>& args) {
  if (r.IsNil()) return interp.CallBlock(args[0], {});
  return interp.CallBlock(args[1], {r});
}

// Renders a collection with its members: "a Set(1 2 3)".
Result<Value> PrimCollPrintString(Interpreter& interp, const Value& r,
                                  std::vector<Value>& args) {
  (void)args;
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  std::string out = interp.DefaultPrintString(r) + "(";
  const SymbolId print = interp.memory().symbols().Intern("printString");
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i != 0) out += " ";
    GS_ASSIGN_OR_RETURN(Value rendered, interp.Send(members[i], print, {}));
    out += rendered.IsString() ? rendered.string()
                               : interp.DefaultPrintString(members[i]);
  }
  out += ")";
  return Value::String(std::move(out));
}

Result<Value> PrimCollAnySatisfy(Interpreter& interp, const Value& r,
                                 std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  for (const Value& m : members) {
    GS_ASSIGN_OR_RETURN(Value keep, interp.CallBlock(args[0], {m}));
    if (interp.nlr_active()) return Value::Nil();
    GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, keep, "anySatisfy:"));
    if (b) return Value::Boolean(true);
  }
  return Value::Boolean(false);
}

Result<Value> PrimCollAllSatisfy(Interpreter& interp, const Value& r,
                                 std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  for (const Value& m : members) {
    GS_ASSIGN_OR_RETURN(Value keep, interp.CallBlock(args[0], {m}));
    if (interp.nlr_active()) return Value::Nil();
    GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, keep, "allSatisfy:"));
    if (!b) return Value::Boolean(false);
  }
  return Value::Boolean(true);
}

Result<Value> PrimCollCount(Interpreter& interp, const Value& r,
                            std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto members, CollectionMembers(interp, r));
  std::int64_t n = 0;
  for (const Value& m : members) {
    GS_ASSIGN_OR_RETURN(Value keep, interp.CallBlock(args[0], {m}));
    if (interp.nlr_active()) return Value::Nil();
    GS_ASSIGN_OR_RETURN(bool b, AsBoolean(interp, keep, "count:"));
    if (b) ++n;
  }
  return Value::Integer(n);
}

// --- Set algebra on OPAL sets ---------------------------------------------------

Result<Value> PrimSetUnion(Interpreter& interp, const Value& r,
                           std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(Value result,
                      NewCollection(interp, interp.memory().kernel().set));
  GS_RETURN_IF_ERROR(GenericAddAll(interp, result, r));
  GS_RETURN_IF_ERROR(GenericAddAll(interp, result, args[0]));
  return result;
}

Result<Value> PrimSetIntersection(Interpreter& interp, const Value& r,
                                  std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto mine, CollectionMembers(interp, r));
  GS_ASSIGN_OR_RETURN(auto theirs, CollectionMembers(interp, args[0]));
  GS_ASSIGN_OR_RETURN(Value result,
                      NewCollection(interp, interp.memory().kernel().set));
  for (const Value& m : mine) {
    for (const Value& t : theirs) {
      if (m == t) {
        GS_RETURN_IF_ERROR(GenericAdd(interp, result, m).status());
        break;
      }
    }
  }
  return result;
}

Result<Value> PrimSetDifference(Interpreter& interp, const Value& r,
                                std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto mine, CollectionMembers(interp, r));
  GS_ASSIGN_OR_RETURN(auto theirs, CollectionMembers(interp, args[0]));
  GS_ASSIGN_OR_RETURN(Value result,
                      NewCollection(interp, interp.memory().kernel().set));
  for (const Value& m : mine) {
    bool found = false;
    for (const Value& t : theirs) found = found || (m == t);
    if (!found) GS_RETURN_IF_ERROR(GenericAdd(interp, result, m).status());
  }
  return result;
}

// a isSubsetOf: b — the §5.2 primitive at the OPAL level.
Result<Value> PrimSetSubset(Interpreter& interp, const Value& r,
                            std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto mine, CollectionMembers(interp, r));
  GS_ASSIGN_OR_RETURN(auto theirs, CollectionMembers(interp, args[0]));
  for (const Value& m : mine) {
    bool found = false;
    for (const Value& t : theirs) found = found || (m == t);
    if (!found) return Value::Boolean(false);
  }
  return Value::Boolean(true);
}

// --- More string protocol ---------------------------------------------------------

Result<Value> PrimStringAsUppercase(Interpreter&, const Value& r,
                                    std::vector<Value>&) {
  std::string out = r.string();
  for (char& c : out) c = static_cast<char>(std::toupper(
                            static_cast<unsigned char>(c)));
  return Value::String(std::move(out));
}

Result<Value> PrimStringAsLowercase(Interpreter&, const Value& r,
                                    std::vector<Value>&) {
  std::string out = r.string();
  for (char& c : out) c = static_cast<char>(std::tolower(
                            static_cast<unsigned char>(c)));
  return Value::String(std::move(out));
}

Result<Value> PrimStringIncludesSubstring(Interpreter&, const Value& r,
                                          std::vector<Value>& args) {
  if (!args[0].IsString()) {
    return Status::TypeMismatch("includesSubstring: needs a String");
  }
  return Value::Boolean(r.string().find(args[0].string()) !=
                        std::string::npos);
}

Result<Value> PrimStringIndexOf(Interpreter&, const Value& r,
                                std::vector<Value>& args) {
  if (!args[0].IsString() || args[0].string().size() != 1) {
    return Status::TypeMismatch("indexOf: needs a one-character String");
  }
  const std::size_t pos = r.string().find(args[0].string()[0]);
  return Value::Integer(pos == std::string::npos
                            ? 0
                            : static_cast<std::int64_t>(pos + 1));
}

Result<Value> PrimStringReversed(Interpreter&, const Value& r,
                                 std::vector<Value>&) {
  return Value::String(std::string(r.string().rbegin(), r.string().rend()));
}

// --- Dictionary values / associationsDo analog -------------------------------------

Result<Value> PrimDictValues(Interpreter& interp, const Value& r,
                             std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(auto named, interp.session().ListNamed(r.ref()));
  GS_ASSIGN_OR_RETURN(Value result,
                      NewCollection(interp, interp.memory().kernel().array));
  for (const auto& [name, value] : named) {
    GS_RETURN_IF_ERROR(AppendRaw(interp, result.ref(), value));
  }
  return result;
}

// --- Set-specific ------------------------------------------------------------

Result<Value> SetRemove(Interpreter& interp, const Value& r,
                        const Value& target, bool* removed) {
  *removed = false;
  GS_ASSIGN_OR_RETURN(auto named, interp.session().ListNamed(r.ref()));
  for (const auto& [name, value] : named) {
    if (value == target) {
      GS_RETURN_IF_ERROR(
          interp.session().WriteNamed(r.ref(), name, Value::Nil()));
      *removed = true;
      if (interp.directories() != nullptr) {
        GS_RETURN_IF_ERROR(interp.directories()->NoteRemove(
            &interp.session(), r.ref(), value));
      }
      return target;
    }
  }
  return Value::Nil();
}

Result<Value> PrimSetRemove(Interpreter& interp, const Value& r,
                            std::vector<Value>& args) {
  bool removed;
  GS_ASSIGN_OR_RETURN(Value v, SetRemove(interp, r, args[0], &removed));
  if (!removed) {
    return Status::NotFound("remove: member not in collection");
  }
  return v;
}

Result<Value> PrimSetRemoveIfAbsent(Interpreter& interp, const Value& r,
                                    std::vector<Value>& args) {
  bool removed;
  GS_ASSIGN_OR_RETURN(Value v, SetRemove(interp, r, args[0], &removed));
  if (!removed) return interp.CallBlock(args[1], {});
  return v;
}

// --- Dictionary --------------------------------------------------------------

Result<SymbolId> DictKey(Interpreter& interp, const Value& key) {
  bool ok;
  const std::string text = StringOrSymbolText(interp, key, &ok);
  if (!ok) {
    return Status::TypeMismatch(
        "Dictionary keys must be Strings or Symbols (element names)");
  }
  return interp.memory().symbols().Intern(text);
}

Result<Value> PrimDictAtPut(Interpreter& interp, const Value& r,
                            std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(SymbolId key, DictKey(interp, args[0]));
  GS_RETURN_IF_ERROR(interp.session().WriteNamed(r.ref(), key, args[1]));
  return args[1];
}

Result<Value> PrimDictAt(Interpreter& interp, const Value& r,
                         std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(SymbolId key, DictKey(interp, args[0]));
  GS_ASSIGN_OR_RETURN(Value v, interp.session().ReadNamed(r.ref(), key));
  if (v.IsNil()) {
    return Status::NotFound("key not found: " +
                            interp.DefaultPrintString(args[0]));
  }
  return v;
}

Result<Value> PrimDictAtIfAbsent(Interpreter& interp, const Value& r,
                                 std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(SymbolId key, DictKey(interp, args[0]));
  GS_ASSIGN_OR_RETURN(Value v, interp.session().ReadNamed(r.ref(), key));
  if (v.IsNil()) return interp.CallBlock(args[1], {});
  return v;
}

Result<Value> PrimDictIncludesKey(Interpreter& interp, const Value& r,
                                  std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(SymbolId key, DictKey(interp, args[0]));
  GS_ASSIGN_OR_RETURN(Value v, interp.session().ReadNamed(r.ref(), key));
  return Value::Boolean(!v.IsNil());
}

Result<Value> PrimDictRemoveKey(Interpreter& interp, const Value& r,
                                std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(SymbolId key, DictKey(interp, args[0]));
  GS_ASSIGN_OR_RETURN(Value old, interp.session().ReadNamed(r.ref(), key));
  if (old.IsNil()) return Status::NotFound("removeKey: key not present");
  GS_RETURN_IF_ERROR(
      interp.session().WriteNamed(r.ref(), key, Value::Nil()));
  return old;
}

Result<Value> PrimDictKeys(Interpreter& interp, const Value& r,
                           std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(auto named, interp.session().ListNamed(r.ref()));
  GS_ASSIGN_OR_RETURN(Value result,
                      NewCollection(interp, interp.memory().kernel().array));
  for (const auto& [name, value] : named) {
    GS_RETURN_IF_ERROR(AppendRaw(
        interp, result.ref(),
        Value::String(interp.memory().symbols().Name(name))));
  }
  return result;
}

Result<Value> PrimDictKeysAndValuesDo(Interpreter& interp, const Value& r,
                                      std::vector<Value>& args) {
  GS_ASSIGN_OR_RETURN(auto named, interp.session().ListNamed(r.ref()));
  for (const auto& [name, value] : named) {
    GS_RETURN_IF_ERROR(
        interp
            .CallBlock(args[0],
                       {Value::String(interp.memory().symbols().Name(name)),
                        value})
            .status());
    if (interp.nlr_active()) return Value::Nil();
  }
  return r;
}

// --- Array / OrderedCollection -----------------------------------------------

Result<Value> PrimArrayAt(Interpreter& interp, const Value& r,
                          std::vector<Value>& args) {
  if (!args[0].IsInteger()) return Status::TypeMismatch("at: needs an index");
  const std::int64_t i = args[0].integer();
  if (i < 1) return Status::OutOfRange("indexes are 1-based");
  return interp.session().ReadIndexed(r.ref(),
                                      static_cast<std::size_t>(i - 1));
}

Result<Value> PrimArrayAtPut(Interpreter& interp, const Value& r,
                             std::vector<Value>& args) {
  if (!args[0].IsInteger()) {
    return Status::TypeMismatch("at:put: needs an index");
  }
  const std::int64_t i = args[0].integer();
  GS_ASSIGN_OR_RETURN(std::size_t n, interp.session().IndexedSize(r.ref()));
  if (i < 1 || static_cast<std::size_t>(i) > n) {
    return Status::OutOfRange("index " + std::to_string(i) + " out of 1.." +
                              std::to_string(n));
  }
  GS_RETURN_IF_ERROR(interp.session().WriteIndexed(
      r.ref(), static_cast<std::size_t>(i - 1), args[1]));
  return args[1];
}

Result<Value> PrimArrayFirst(Interpreter& interp, const Value& r,
                             std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(std::size_t n, interp.session().IndexedSize(r.ref()));
  if (n == 0) return Status::OutOfRange("first of an empty collection");
  return interp.session().ReadIndexed(r.ref(), 0);
}

Result<Value> PrimArrayLast(Interpreter& interp, const Value& r,
                            std::vector<Value>&) {
  GS_ASSIGN_OR_RETURN(std::size_t n, interp.session().IndexedSize(r.ref()));
  if (n == 0) return Status::OutOfRange("last of an empty collection");
  return interp.session().ReadIndexed(r.ref(), n - 1);
}

}  // namespace

void InstallKernelPrimitives(ObjectMemory* memory) {
  ClassRegistry& classes = memory->classes();
  SymbolTable& symbols = memory->symbols();
  const KernelClasses& kernel = memory->kernel();

  auto install = [&](Oid class_oid, const char* selector, PrimitiveFn fn) {
    // gs_lint: allow(read-path-retry): boot-time install, no session yet
    Status s = classes.InstallMethod(class_oid, symbols.Intern(selector),
                                     std::make_shared<PrimitiveMethod>(fn));
    (void)s;  // kernel classes always exist at boot
  };

  // Object protocol (inherited everywhere).
  install(kernel.object, "==", PrimIdentical);
  install(kernel.object, "~~", PrimNotIdentical);
  install(kernel.object, "=", PrimValueEq);
  install(kernel.object, "~=", PrimNotEqual);
  install(kernel.object, "isNil", PrimIsNil);
  install(kernel.object, "notNil", PrimNotNil);
  install(kernel.object, "class", PrimClass);
  install(kernel.object, "printString", PrimPrintString);
  install(kernel.object, "displayString", PrimPrintString);
  install(kernel.object, "yourself", PrimYourself);
  install(kernel.object, "hash", PrimHash);
  install(kernel.object, "deepEqualTo:", PrimDeepEqualTo);
  install(kernel.object, "isKindOf:", PrimIsKindOf);
  install(kernel.object, "respondsTo:", PrimRespondsTo);
  install(kernel.object, "error:", PrimError);
  install(kernel.object, "instVarNamed:", PrimInstVarNamed);
  install(kernel.object, "instVarNamed:put:", PrimInstVarNamedPut);
  install(kernel.object, "elementAt:atTime:", PrimElementAtTime);
  install(kernel.object, "ifNil:", PrimIfNil);
  install(kernel.object, "ifNotNil:", PrimIfNotNil);
  install(kernel.object, "ifNil:ifNotNil:", PrimIfNilIfNotNil);

  // Boolean.
  install(kernel.boolean, "not", PrimNot);
  install(kernel.boolean, "&", PrimAnd);
  install(kernel.boolean, "|", PrimOr);
  install(kernel.boolean, "and:", PrimAndColon);
  install(kernel.boolean, "or:", PrimOrColon);
  install(kernel.boolean, "ifTrue:", PrimIfTrue);
  install(kernel.boolean, "ifFalse:", PrimIfFalse);
  install(kernel.boolean, "ifTrue:ifFalse:", PrimIfTrueIfFalse);
  install(kernel.boolean, "ifFalse:ifTrue:", PrimIfFalseIfTrue);

  // Number (Integer and Float inherit).
  install(kernel.number, "+", PrimAdd);
  install(kernel.number, "-", PrimSub);
  install(kernel.number, "*", PrimMul);
  install(kernel.number, "/", PrimDiv);
  install(kernel.number, "//", PrimIntDiv);
  install(kernel.number, "\\\\", PrimMod);
  install(kernel.number, "<", PrimNumCompare<0>);
  install(kernel.number, "<=", PrimNumCompare<1>);
  install(kernel.number, ">", PrimNumCompare<2>);
  install(kernel.number, ">=", PrimNumCompare<3>);
  install(kernel.number, "abs", PrimAbs);
  install(kernel.number, "negated", PrimNegated);
  install(kernel.number, "asFloat", PrimAsFloat);
  install(kernel.number, "asInteger", PrimAsInteger);
  install(kernel.number, "sqrt", PrimSqrt);
  install(kernel.number, "squared", PrimSquared);
  install(kernel.number, "min:", PrimMin);
  install(kernel.number, "max:", PrimMax);
  install(kernel.number, "between:and:", PrimBetweenAnd);
  install(kernel.integer, "timesRepeat:", PrimTimesRepeat);
  install(kernel.integer, "to:do:", PrimToDo);
  install(kernel.integer, "to:by:do:", PrimToByDo);

  // String and Symbol.
  install(kernel.string, ",", PrimStringConcat);
  install(kernel.string, "size", PrimStringSize);
  install(kernel.string, "at:", PrimStringAt);
  install(kernel.string, "<", PrimStringCompare<0>);
  install(kernel.string, "<=", PrimStringCompare<1>);
  install(kernel.string, ">", PrimStringCompare<2>);
  install(kernel.string, ">=", PrimStringCompare<3>);
  install(kernel.string, "asSymbol", PrimAsSymbol);
  install(kernel.string, "isEmpty", PrimStringIsEmpty);
  install(kernel.string, "copyFrom:to:", PrimCopyFromTo);
  install(kernel.string, "asUppercase", PrimStringAsUppercase);
  install(kernel.string, "asLowercase", PrimStringAsLowercase);
  install(kernel.string, "includesSubstring:", PrimStringIncludesSubstring);
  install(kernel.string, "indexOf:", PrimStringIndexOf);
  install(kernel.string, "reversed", PrimStringReversed);
  install(kernel.symbol, "asString", PrimSymbolAsString);

  // Block.
  install(kernel.block, "value", PrimBlockValue0);
  install(kernel.block, "value:", PrimBlockValue1);
  install(kernel.block, "value:value:", PrimBlockValue2);
  install(kernel.block, "value:value:value:", PrimBlockValue3);
  install(kernel.block, "numArgs", PrimBlockNumArgs);
  install(kernel.block, "isDeclarative", PrimBlockIsDeclarative);
  install(kernel.block, "whileTrue:", PrimWhileTrue);
  install(kernel.block, "whileTrue", PrimWhileTrue);
  install(kernel.block, "whileFalse:", PrimWhileFalse);

  // Class (metaclass protocol).
  install(kernel.metaclass, "new", PrimClassNew);
  install(kernel.metaclass, "new:", PrimClassNewSize);
  install(kernel.metaclass, "name", PrimClassName);
  install(kernel.metaclass, "superclass", PrimClassSuperclass);
  install(kernel.metaclass, "instVarNames", PrimClassInstVarNames);
  install(kernel.metaclass, "subclass:", PrimSubclass);
  install(kernel.metaclass, "subclass:instVarNames:", PrimSubclassInstVars);
  install(kernel.metaclass, "addInstVarName:", PrimAddInstVarName);
  install(kernel.metaclass, "compileMethod:", PrimCompileMethod);

  // System singleton.
  install(kernel.system, "commitTransaction", PrimSysCommit);
  install(kernel.system, "abortTransaction", PrimSysAbort);
  install(kernel.system, "now", PrimSysNow);
  install(kernel.system, "safeTime", PrimSysSafeTime);
  install(kernel.system, "timeDial:", PrimSysTimeDial);
  install(kernel.system, "clearTimeDial", PrimSysClearTimeDial);
  install(kernel.system, "safeTimeDial", PrimSysSafeTimeDial);
  install(kernel.system, "stats", PrimSysStats);
  install(kernel.system, "statsJson", PrimSysStatsJson);
  install(kernel.system, "createDirectoryOn:path:", PrimSysCreateDirectoryOn);

  // Collection protocol (Set, Bag, Dictionary, Array, OrderedCollection).
  install(kernel.collection, "add:", PrimCollAdd);
  install(kernel.collection, "size", PrimCollSize);
  install(kernel.collection, "isEmpty", PrimCollIsEmpty);
  install(kernel.collection, "notEmpty", PrimCollNotEmpty);
  install(kernel.collection, "includes:", PrimCollIncludes);
  install(kernel.collection, "do:", PrimCollDo);
  install(kernel.collection, "select:", PrimCollSelect);
  install(kernel.collection, "reject:", PrimCollReject);
  install(kernel.collection, "selectWhere:", PrimCollSelectWhere);
  install(kernel.collection, "collect:", PrimCollCollect);
  install(kernel.collection, "detect:ifNone:", PrimCollDetectIfNone);
  install(kernel.collection, "detect:", PrimCollDetect);
  install(kernel.collection, "addAll:", PrimCollAddAll);
  install(kernel.collection, "asArray", PrimCollAsArray);
  install(kernel.collection, "asSet", PrimCollAsSet);
  install(kernel.collection, "inject:into:", PrimCollInjectInto);
  install(kernel.collection, "printString", PrimCollPrintString);
  install(kernel.collection, "anySatisfy:", PrimCollAnySatisfy);
  install(kernel.collection, "allSatisfy:", PrimCollAllSatisfy);
  install(kernel.collection, "count:", PrimCollCount);

  // Set / Bag.
  install(kernel.set, "remove:", PrimSetRemove);
  install(kernel.set, "remove:ifAbsent:", PrimSetRemoveIfAbsent);
  install(kernel.bag, "remove:", PrimSetRemove);
  install(kernel.bag, "remove:ifAbsent:", PrimSetRemoveIfAbsent);
  install(kernel.set, "union:", PrimSetUnion);
  install(kernel.set, "intersection:", PrimSetIntersection);
  install(kernel.set, "difference:", PrimSetDifference);
  install(kernel.set, "isSubsetOf:", PrimSetSubset);

  // Dictionary.
  install(kernel.dictionary, "at:put:", PrimDictAtPut);
  install(kernel.dictionary, "at:", PrimDictAt);
  install(kernel.dictionary, "at:ifAbsent:", PrimDictAtIfAbsent);
  install(kernel.dictionary, "includesKey:", PrimDictIncludesKey);
  install(kernel.dictionary, "removeKey:", PrimDictRemoveKey);
  install(kernel.dictionary, "keys", PrimDictKeys);
  install(kernel.dictionary, "keysAndValuesDo:", PrimDictKeysAndValuesDo);
  install(kernel.dictionary, "values", PrimDictValues);

  // Array / OrderedCollection.
  install(kernel.array, "at:", PrimArrayAt);
  install(kernel.array, "at:put:", PrimArrayAtPut);
  install(kernel.array, "first", PrimArrayFirst);
  install(kernel.array, "last", PrimArrayLast);
  install(kernel.ordered_collection, "at:", PrimArrayAt);
  install(kernel.ordered_collection, "at:put:", PrimArrayAtPut);
  install(kernel.ordered_collection, "first", PrimArrayFirst);
  install(kernel.ordered_collection, "last", PrimArrayLast);

  (void)WrongArgs;
}

}  // namespace gemstone::opal
