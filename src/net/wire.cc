#include "net/wire.h"

#include "executor/error_format.h"

namespace gemstone::net {

std::string_view MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kLogin: return "Login";
    case MsgType::kExecuteOpal: return "ExecuteOpal";
    case MsgType::kStdmQuery: return "StdmQuery";
    case MsgType::kBegin: return "Begin";
    case MsgType::kCommit: return "Commit";
    case MsgType::kAbort: return "Abort";
    case MsgType::kSetTimeDial: return "SetTimeDial";
    case MsgType::kExplain: return "Explain";
    case MsgType::kStats: return "Stats";
    case MsgType::kLogout: return "Logout";
    case MsgType::kOk: return "Ok";
    case MsgType::kError: return "Error";
    case MsgType::kProtocolError: return "ProtocolError";
  }
  return "unknown";
}

void AppendU32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendU64(std::string* out, std::uint64_t v) {
  AppendU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  AppendU32(out, static_cast<std::uint32_t>(v >> 32));
}

bool ReadU32(std::string_view buf, std::size_t offset, std::uint32_t* out) {
  if (buf.size() < offset + 4) return false;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(buf[offset + i]));
  };
  *out = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  return true;
}

bool ReadU64(std::string_view buf, std::size_t offset, std::uint64_t* out) {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  if (!ReadU32(buf, offset, &lo) || !ReadU32(buf, offset + 4, &hi)) {
    return false;
  }
  *out = static_cast<std::uint64_t>(lo) |
         (static_cast<std::uint64_t>(hi) << 32);
  return true;
}

void AppendFrame(std::string* out, MsgType type, std::uint64_t trace_id,
                 std::uint32_t seq, std::string_view payload) {
  AppendU32(out, static_cast<std::uint32_t>(payload.size() + kFrameHeaderLen));
  out->push_back(static_cast<char>(type));
  AppendU64(out, trace_id);
  AppendU32(out, seq);
  out->append(payload);
}

std::string EncodeFrame(MsgType type, std::uint64_t trace_id,
                        std::uint32_t seq, std::string_view payload) {
  std::string out;
  out.reserve(4 + kFrameHeaderLen + payload.size());
  AppendFrame(&out, type, trace_id, seq, payload);
  return out;
}

DecodeResult DecodeFrame(std::string_view buf, std::uint32_t max_frame_len,
                         Frame* out, std::size_t* consumed) {
  std::uint32_t len = 0;
  if (!ReadU32(buf, 0, &len)) return DecodeResult::kNeedMore;
  if (len < kFrameHeaderLen || len > max_frame_len) {
    return DecodeResult::kMalformed;
  }
  if (buf.size() < 4u + len) return DecodeResult::kNeedMore;
  out->type = static_cast<MsgType>(static_cast<unsigned char>(buf[4]));
  ReadU64(buf, 5, &out->trace_id);
  ReadU32(buf, 13, &out->seq);
  out->payload.assign(buf.substr(4u + kFrameHeaderLen, len - kFrameHeaderLen));
  *consumed = 4u + len;
  return DecodeResult::kFrame;
}

std::string EncodeErrorPayload(const Status& status) {
  std::string payload;
  payload.push_back(static_cast<char>(status.code()));
  payload += executor::FormatErrorText(status);
  return payload;
}

Status DecodeErrorPayload(std::string_view payload) {
  if (payload.empty()) {
    return Status::Internal("empty error frame");
  }
  const auto raw = static_cast<unsigned char>(payload[0]);
  StatusCode code = StatusCode::kInternal;
  if (raw <= static_cast<unsigned char>(StatusCode::kInternal)) {
    code = static_cast<StatusCode>(raw);
  }
  std::string text(payload.substr(1));
  if (code == StatusCode::kOk) {
    // An error frame must carry an error; a lying peer degrades to
    // Internal rather than minting an OK-coded failure.
    return Status::Internal("error frame carried OK code: " + text);
  }
  return Status(code, std::move(text));
}

}  // namespace gemstone::net
