#ifndef GEMSTONE_NET_SERVER_H_
#define GEMSTONE_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "admin/authorization.h"
#include "core/annotations.h"
#include "core/status.h"
#include "core/sync.h"
#include "executor/executor.h"
#include "net/wire.h"
#include "telemetry/metrics.h"

namespace gemstone::net {

/// Tuning and robustness knobs. The defaults suit tests and small
/// deployments; every limit exists so one client cannot take the gateway
/// down (the §6 deployment serves many host machines from one system).
struct ServerOptions {
  /// TCP port to bind on 127.0.0.1... 0 picks an ephemeral port
  /// (Server::port() reports the choice).
  std::uint16_t port = 0;

  /// Worker threads executing requests. Read-shaped requests (queries,
  /// non-writing OPAL, EXPLAIN) run concurrently on the snapshot read
  /// path; writes and commits serialize on the exclusive path (DESIGN.md
  /// §10, §12). Extra workers also overlap framing, response writes, and
  /// queue handoff with execution.
  int workers = 4;

  /// Accepted connections beyond this are answered with a kProtocolError
  /// frame ("server at connection capacity") and closed.
  std::size_t max_connections = 64;

  /// Frames whose length prefix exceeds this are a framing error: the
  /// connection gets a kProtocolError frame and is closed (the stream
  /// cannot resync).
  std::uint32_t max_frame_len = 1u << 20;

  /// Parsed-but-unserved requests a connection may pipeline before the
  /// gateway stops reading from it (backpressure).
  std::size_t max_pipeline = 32;

  /// Bytes a connection's outbox may buffer before the gateway stops
  /// reading new requests from it (backpressure).
  std::size_t outbox_limit = 4u << 20;

  /// Close connections with no complete frame for this long. 0 disables.
  std::uint64_t idle_timeout_ms = 0;

  /// Requests that waited in the dispatch queue longer than this are
  /// answered with an Unavailable error frame instead of executing
  /// (admission control under overload). 0 disables.
  std::uint64_t request_timeout_ms = 0;

  /// Requests whose end-to-end latency (socket read to response flush)
  /// meets this emit a kSlowRequest flight-recorder event carrying the
  /// full stage breakdown and trace id. 0 disables.
  std::uint64_t slow_request_us = 100'000;
};

/// Where a request currently sits in its lifecycle — the same stages the
/// `net.stage.*` histograms measure. Exposed per connection in /statusz.
enum class RequestStage : std::uint8_t {
  kIdle = 0,    // no request being served
  kLockWait,    // dequeued, waiting on executor_mu_
  kExecute,     // inside the Executor
  kSerialize,   // encoding the response frame
  kFlush,       // response in the outbox, waiting for the socket
};

std::string_view RequestStageName(RequestStage stage);

/// The multi-session network gateway (§6's "network link"): a poll(2)
/// event loop accepts connections and parses length-prefixed frames
/// without blocking; complete requests are handed to a bounded worker
/// pool; each connection is bound to one txn::Session created at login
/// and torn down (aborting any open transaction) when the connection
/// dies. Failures of user code travel back as error frames — the gateway
/// never answers an OPAL/STDM failure with a disconnect.
///
/// Threading model (DESIGN.md §10, §12): one event-loop thread owns
/// every socket; `workers` threads own request execution. A connection is
/// in the dispatch queue at most once, so its requests execute in order
/// and its Session is never touched by two workers at once (enforced in
/// GS_THREAD_SAFETY builds by the Session owner assertion). Dispatch
/// splits per request: read-shaped requests on an access-free session run
/// pinned to the SafeTime commit snapshot without executor_mu_ (retrying
/// on the exclusive path if the code turns out to write); everything else
/// serializes under executor_mu_.
class Server {
 public:
  /// `executor` must outlive the server. `auth`, when non-null, is
  /// installed as the transaction manager's access controller, so every
  /// remote read/write is checked against the logged-in user's segments.
  Server(executor::Executor* executor, admin::AuthorizationManager* auth,
         ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loop and worker pool.
  Status Start();

  /// Graceful shutdown: stops accepting and reading, lets in-flight
  /// requests (including commits) finish, flushes outboxes, aborts the
  /// sessions of surviving connections, closes every socket, and joins
  /// all threads. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Live connection count (telemetry-backed; test convenience).
  std::int64_t connection_count() const;

  /// JSON status page: uptime/build info, options, request counters,
  /// per-stage latency percentiles, the per-connection table (with each
  /// connection's in-flight request and its current stage), and the
  /// hottest conflict objects. Served as `GET /statusz` by the admin
  /// endpoint and as the kStatsStatusz wire format. Callable from any
  /// thread while the server runs.
  std::string StatusJson() const;

  /// Registers an extra top-level `"key": <fn()>` section appended to
  /// StatusJson() — how optional subsystems (the tier store, say) join
  /// the status page without the server linking against them. `fn` must
  /// return a complete JSON value and be callable from any thread. Must
  /// be called before Start(); the section table is immutable while the
  /// server runs.
  void SetStatusSection(const std::string& key,
                        std::function<std::string()> fn);

 private:
  struct Connection;
  struct Request;

  /// A response before framing: DispatchLocked returns one of these so
  /// the frame encode (the serialize stage) happens *outside*
  /// executor_mu_ — the coarse lock holds only real Executor work.
  struct Reply {
    MsgType type = MsgType::kOk;
    std::string payload;
    /// Set by DispatchReadOnly when the request hit a side effect under
    /// the snapshot pin (kReadOnlyRetry): the caller discards this reply
    /// and re-runs the request under executor_mu_. Never leaves the
    /// server — the client sees only the retried outcome.
    bool retry_exclusive = false;
  };

  /// Stage timings and identity of one response waiting in the outbox for
  /// its flush; completes (and observes flush/total latency) when the
  /// event loop has written the connection's outbox past `outbox_target`.
  struct PendingFlush {
    std::uint64_t outbox_target = 0;
    std::uint64_t received_ns = 0;
    std::uint64_t appended_ns = 0;
    std::uint64_t trace_id = 0;
    std::uint32_t seq = 0;
    MsgType type = MsgType::kOk;
    std::uint64_t queue_us = 0;
    std::uint64_t lock_wait_us = 0;
    std::uint64_t execute_us = 0;
    std::uint64_t serialize_us = 0;
    std::uint64_t tracks_read = 0;
    std::uint64_t tracks_written = 0;
  };

  void EventLoop();
  void WorkerLoop();

  void AcceptReady();
  void ReadReady(const std::shared_ptr<Connection>& conn);
  void WriteReady(Connection* conn);
  /// Parses complete frames out of conn->inbuf and schedules them.
  void ParseFrames(const std::shared_ptr<Connection>& conn);
  void Schedule(const std::shared_ptr<Connection>& conn);
  /// Marks a connection dead and closes its socket; session teardown
  /// happens later in ReapDeadConnections once no worker references it.
  void MarkDead(Connection* conn, const std::string& reason);
  void ReapDeadConnections();
  void WakeLoop();

  /// Executes one request and appends the response frame to the outbox,
  /// observing the queue/lock_wait/execute/serialize stage histograms.
  void HandleRequest(Connection* conn, Request&& request);
  Reply DispatchLocked(Connection* conn, const Request& request)
      GS_REQUIRES(executor_mu_);
  /// True when `request` may try the snapshot read path: a read-shaped
  /// type on a logged-in connection whose session has a time dial or a
  /// transaction with no recorded accesses. Decided outside any lock —
  /// only this connection's worker mutates that state (per-connection
  /// FIFO), so the answer cannot go stale before dispatch.
  bool ReadPathEligible(Connection* conn, const Request& request);
  /// Runs a read-shaped request without executor_mu_, pinned to the
  /// commit snapshot at SafeTime (unless a dial already fixes the view).
  /// Answers retry_exclusive when the code attempted a side effect.
  Reply DispatchReadOnly(Connection* conn, const Request& request);
  /// Shared SetTimeDial decode/apply (both dispatch paths).
  Reply DispatchTimeDial(txn::Session* session, const Request& request);
  /// Renders a failure as a kError reply (and counts it).
  Reply ErrorReply(const Status& status);
  /// Completes flushed responses on `conn`: pops every PendingFlush whose
  /// bytes have reached the socket, observing flush and total latency and
  /// emitting kSlowRequest events past the threshold.
  void CompleteFlushes(Connection* conn, std::uint64_t now_ns);

  executor::Executor* executor_;
  admin::AuthorizationManager* auth_;
  const ServerOptions options_;

  /// Extra StatusJson sections (SetStatusSection); frozen at Start().
  std::map<std::string, std::function<std::string()>> status_sections_;

  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// Set by Stop() once the worker pool has drained and joined; the event
  /// loop then only flushes outboxes before exiting.
  std::atomic<bool> workers_done_{false};

  std::thread loop_thread_;
  std::vector<std::thread> worker_threads_;

  /// Serializes the *write path* into the Executor: mutating OPAL,
  /// transaction control, login/logout. The Executor's shared structures
  /// (session table, class registry, globals, TransactionManager) are
  /// internally synchronized, so snapshot read-path requests bypass this
  /// lock entirely (DESIGN.md §12); it survives as the serialization
  /// point for writers and as the fallback for reads that turn out to
  /// write. Lock order: never while holding conn_table_mu_ or conn->mu.
  Mutex executor_mu_{LockRank::kNetExecutor, "net.executor_mu"};

  /// Dispatch queue: connections with pending requests, each present at
  /// most once. Guarded by queue_mu_ — a raw std::mutex (invisible to the
  /// thread-safety analysis and the lock-order validator) because the
  /// workers block on a condvar. It is a leaf by inspection: no queue_mu_
  /// section acquires anything.
  std::mutex queue_mu_;  // gs_lint: allow(raw-mutex)
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Connection>> queue_;
  bool queue_closed_ = false;

  /// Connection table. Written by the event-loop thread; StatusJson (any
  /// thread) reads it, so the table itself is lock-protected. Lock order:
  /// conn_table_mu_ before conn->mu and before executor_mu_; workers take
  /// it only from the (otherwise lock-free) status path.
  mutable Mutex conn_table_mu_{LockRank::kNetConnTable,
                               "net.conn_table_mu"};
  std::map<int, std::shared_ptr<Connection>> connections_
      GS_GUARDED_BY(conn_table_mu_);
  std::uint64_t next_conn_id_ GS_GUARDED_BY(conn_table_mu_) = 1;

  /// Source of server-assigned trace ids (client stamped 0). The top bit
  /// marks "assigned here" so mixed dumps stay disambiguated.
  std::atomic<std::uint64_t> next_trace_id_{1};

  std::uint64_t start_ns_ = 0;  // Start() time; uptime in /statusz

  // Telemetry (registry-owned; pointers stable for process lifetime).
  telemetry::Gauge* connections_gauge_;
  telemetry::Counter* accepted_;
  telemetry::Counter* rejected_;
  telemetry::Counter* requests_;
  telemetry::Counter* request_errors_;
  telemetry::Counter* protocol_errors_;
  telemetry::Counter* bytes_in_;
  telemetry::Counter* bytes_out_;
  telemetry::Counter* backpressure_stalls_;
  telemetry::Counter* idle_timeouts_;
  telemetry::Counter* request_timeouts_;
  telemetry::Counter* slow_requests_;
  /// Requests served on (or bounced off) the snapshot read path.
  telemetry::Counter* read_path_requests_;
  telemetry::Counter* read_path_retries_;
  /// End-to-end latency (socket read to response flushed) and the five
  /// stage histograms it telescopes into: total = queue + lock_wait +
  /// execute + serialize + flush for every request, by construction.
  telemetry::Histogram* request_latency_us_;
  telemetry::Histogram* stage_queue_us_;
  telemetry::Histogram* stage_lock_wait_us_;
  telemetry::Histogram* stage_execute_us_;
  telemetry::Histogram* stage_serialize_us_;
  telemetry::Histogram* stage_flush_us_;
};

}  // namespace gemstone::net

#endif  // GEMSTONE_NET_SERVER_H_
