#ifndef GEMSTONE_NET_CLIENT_H_
#define GEMSTONE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/ids.h"
#include "core/result.h"
#include "core/status.h"
#include "net/wire.h"

namespace gemstone::net {

/// A blocking client for the gemstone::net gateway — the host-machine side
/// of §6's network link. One Client is one connection is (after Login) one
/// session; it is not thread-safe — give each thread its own Client, the
/// way each host terminal in the paper owns its session.
///
/// Every request method blocks until the matching response frame arrives.
/// kError responses become the carried Status (the same text a local REPL
/// would print); kProtocolError responses become InvalidArgument. A torn
/// connection surfaces as IoError.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to a gateway on 127.0.0.1:`port`.
  Status Connect(std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Opens the connection's session as `user`; answers the session id.
  Result<std::uint64_t> Login(UserId user = kDbaUser);
  Status Logout();

  /// Compiles and runs one block of OPAL source; answers the printString
  /// of the block's value.
  Result<std::string> Execute(std::string_view opal_source);

  /// Runs a §5.1 set-calculus query; answers the rendered result set.
  Result<std::string> Stdm(std::string_view query_text);

  Status Begin();
  /// Commits; answers the database's logical clock after the commit, so a
  /// remote client can learn times to dial back to.
  Result<std::uint64_t> Commit();
  Status Abort();

  Status SetTimeDial(std::uint64_t time);
  Status SetTimeDialToSafeTime();
  Status ClearTimeDial();

  /// EXPLAIN (or EXPLAIN ANALYZE) for a set-calculus query.
  Result<std::string> Explain(std::string_view query_text, bool analyze);

  /// The gateway's metrics snapshot (kStatsText/kStatsJson/kStatsProm).
  Result<std::string> Stats(std::uint8_t format = kStatsText);

  /// The gateway's JSON status page (kStatsStatusz): per-connection
  /// table, in-flight request stages, stage latency percentiles — the
  /// same document `GET /statusz` serves.
  Result<std::string> Statusz() { return Stats(kStatsStatusz); }

  // --- Trace context -----------------------------------------------------------
  //
  // Every request carries a 64-bit trace id and a per-connection sequence
  // number; the server echoes both on the reply and attributes its
  // internal work (spans, I/O, flight events) to the id. By default the
  // client stamps a fresh id per request (connection nonce + sequence).

  /// Forces the next requests to carry `id` (0 restores per-request ids).
  /// Lets a caller propagate its own correlation id end to end.
  void set_trace_id(std::uint64_t id) { trace_id_override_ = id; }

  /// The trace id the *last* request carried (as echoed by the server).
  std::uint64_t last_trace_id() const { return last_trace_id_; }
  /// The sequence number the last request carried.
  std::uint32_t last_seq() const { return last_seq_; }

  // --- Low-level escape hatches (protocol tests) -------------------------------

  /// Writes raw bytes to the socket, bypassing framing. Fuzz tests use
  /// this to send garbage.
  Status SendRaw(std::string_view bytes);

  /// Reads one complete frame (blocking). IoError on EOF/reset — a clean
  /// server-side close after a protocol error lands here.
  Result<Frame> ReadFrame();

 private:
  /// Sends one frame and reads the response; kOk answers the payload.
  /// Verifies the reply echoes the request's sequence number.
  Result<std::string> RoundTrip(MsgType type, std::string_view payload);

  int fd_ = -1;
  std::string inbuf_;
  std::uint32_t max_frame_len_ = 1u << 20;

  std::uint64_t trace_nonce_ = 0;  // per-connection; set at Connect
  std::uint64_t trace_id_override_ = 0;
  std::uint64_t last_trace_id_ = 0;
  std::uint32_t next_seq_ = 0;
  std::uint32_t last_seq_ = 0;
};

}  // namespace gemstone::net

#endif  // GEMSTONE_NET_CLIENT_H_
