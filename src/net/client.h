#ifndef GEMSTONE_NET_CLIENT_H_
#define GEMSTONE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/ids.h"
#include "core/result.h"
#include "core/status.h"
#include "net/wire.h"

namespace gemstone::net {

/// A blocking client for the gemstone::net gateway — the host-machine side
/// of §6's network link. One Client is one connection is (after Login) one
/// session; it is not thread-safe — give each thread its own Client, the
/// way each host terminal in the paper owns its session.
///
/// Every request method blocks until the matching response frame arrives.
/// kError responses become the carried Status (the same text a local REPL
/// would print); kProtocolError responses become InvalidArgument. A torn
/// connection surfaces as IoError.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to a gateway on 127.0.0.1:`port`.
  Status Connect(std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Opens the connection's session as `user`; answers the session id.
  Result<std::uint64_t> Login(UserId user = kDbaUser);
  Status Logout();

  /// Compiles and runs one block of OPAL source; answers the printString
  /// of the block's value.
  Result<std::string> Execute(std::string_view opal_source);

  /// Runs a §5.1 set-calculus query; answers the rendered result set.
  Result<std::string> Stdm(std::string_view query_text);

  Status Begin();
  /// Commits; answers the database's logical clock after the commit, so a
  /// remote client can learn times to dial back to.
  Result<std::uint64_t> Commit();
  Status Abort();

  Status SetTimeDial(std::uint64_t time);
  Status SetTimeDialToSafeTime();
  Status ClearTimeDial();

  /// EXPLAIN (or EXPLAIN ANALYZE) for a set-calculus query.
  Result<std::string> Explain(std::string_view query_text, bool analyze);

  /// The gateway's metrics snapshot (kStatsText/kStatsJson/kStatsProm).
  Result<std::string> Stats(std::uint8_t format = kStatsText);

  // --- Low-level escape hatches (protocol tests) -------------------------------

  /// Writes raw bytes to the socket, bypassing framing. Fuzz tests use
  /// this to send garbage.
  Status SendRaw(std::string_view bytes);

  /// Reads one complete frame (blocking). IoError on EOF/reset — a clean
  /// server-side close after a protocol error lands here.
  Result<Frame> ReadFrame();

 private:
  /// Sends one frame and reads the response; kOk answers the payload.
  Result<std::string> RoundTrip(MsgType type, std::string_view payload);

  int fd_ = -1;
  std::string inbuf_;
  std::uint32_t max_frame_len_ = 1u << 20;
};

}  // namespace gemstone::net

#endif  // GEMSTONE_NET_CLIENT_H_
