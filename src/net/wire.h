#ifndef GEMSTONE_NET_WIRE_H_
#define GEMSTONE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/access_control.h"
#include "core/ids.h"
#include "core/status.h"

namespace gemstone::net {

/// The network link of §6: host machines talk to the GemStone system over
/// a length-prefixed binary protocol whose unit of communication matches
/// the paper's — "blocks of code" in, "results and error messages" out.
///
/// Frame grammar (all integers little-endian):
///
///   frame   := u32 len | u8 type | u64 trace_id | u32 seq
///              | payload[len - 13]
///
/// Every frame carries a trace header: a 64-bit trace id naming the
/// request across machines and a per-connection request sequence number.
/// A client stamps both on each request (trace id 0 asks the server to
/// assign one); the server echoes them verbatim on the matching response,
/// and binds the trace id into a thread-local trace context for the
/// duration of dispatch, so server-side spans, I/O attribution, and
/// flight-recorder events all name the owning request.
///
/// `len` counts the type byte, the trace header, and the payload, so the
/// smallest legal frame has len == kFrameHeaderLen (a bare header).
/// len < kFrameHeaderLen and len > max_frame_len are framing errors: the
/// receiver cannot trust the stream, answers with a kProtocolError frame,
/// and closes.
///
/// Request payloads:
///   kLogin        u32 user
///   kExecuteOpal  OPAL source text
///   kStdmQuery    §5.1 set-calculus query text
///   kBegin        (empty)
///   kCommit       (empty)
///   kAbort        (empty)
///   kSetTimeDial  u8 mode (kDialClear | kDialSafeTime | kDialExplicit),
///                 then u64 time when explicit
///   kExplain      u8 analyze (0/1) | query text
///   kStats        u8 format (kStatsText | kStatsJson | kStatsProm)
///   kLogout       (empty)
///
/// Response payloads:
///   kOk            request-specific: Login answers u64 session id,
///                  Commit answers u64 commit time, text otherwise
///   kError         u8 StatusCode | error text — the same structured text
///                  the local REPL prints (executor::FormatErrorText).
///                  An error frame never implies a disconnect.
///   kProtocolError text; sent for malformed input. The server closes the
///                  connection only when framing cannot resync (bad len);
///                  an unknown type byte inside a well-formed frame keeps
///                  the connection open.
enum class MsgType : std::uint8_t {
  kLogin = 0x01,
  kExecuteOpal = 0x02,
  kStdmQuery = 0x03,
  kBegin = 0x04,
  kCommit = 0x05,
  kAbort = 0x06,
  kSetTimeDial = 0x07,
  kExplain = 0x08,
  kStats = 0x09,
  kLogout = 0x0A,

  kOk = 0x80,
  kError = 0x81,
  kProtocolError = 0x82,
};

std::string_view MsgTypeName(MsgType type);

/// Bytes of every frame between the length prefix and the payload:
/// u8 type + u64 trace_id + u32 seq.
inline constexpr std::uint32_t kFrameHeaderLen = 13;

// SetTimeDial modes.
inline constexpr std::uint8_t kDialClear = 0;
inline constexpr std::uint8_t kDialSafeTime = 1;
inline constexpr std::uint8_t kDialExplicit = 2;

// Stats formats.
inline constexpr std::uint8_t kStatsText = 0;
inline constexpr std::uint8_t kStatsJson = 1;
inline constexpr std::uint8_t kStatsProm = 2;
/// The gateway's own status page (the same JSON `GET /statusz` serves):
/// per-connection table, in-flight request stages, stage histograms.
inline constexpr std::uint8_t kStatsStatusz = 3;

/// One decoded frame: the type byte, the trace header, and the payload.
struct Frame {
  MsgType type = MsgType::kOk;
  std::uint64_t trace_id = 0;  // 0 on a request = "server, assign one"
  std::uint32_t seq = 0;       // per-connection request sequence
  std::string payload;
};

// --- Little-endian integer helpers ------------------------------------------

void AppendU32(std::string* out, std::uint32_t v);
void AppendU64(std::string* out, std::uint64_t v);

/// Reads a u32/u64 at `offset`; false when the buffer is too short.
bool ReadU32(std::string_view buf, std::size_t offset, std::uint32_t* out);
bool ReadU64(std::string_view buf, std::size_t offset, std::uint64_t* out);

// --- Frame encode / decode ---------------------------------------------------

/// Appends one complete frame (length prefix included) to `out`.
void AppendFrame(std::string* out, MsgType type, std::uint64_t trace_id,
                 std::uint32_t seq, std::string_view payload);

std::string EncodeFrame(MsgType type, std::uint64_t trace_id,
                        std::uint32_t seq, std::string_view payload);

/// Control-plane convenience: a frame with an empty trace header (trace
/// id 0, seq 0) — connection-level notices that answer no request.
inline std::string EncodeFrame(MsgType type, std::string_view payload) {
  return EncodeFrame(type, 0, 0, payload);
}

enum class DecodeResult {
  kNeedMore,   // buffer holds a frame prefix only; read more bytes
  kFrame,      // *out holds a frame; *consumed bytes were used
  kMalformed,  // len outside [kFrameHeaderLen, max_frame_len]; cannot resync
};

/// Attempts to decode one frame from the front of `buf`. On kFrame,
/// `*consumed` is the byte count to drop from the buffer. The type byte
/// is *not* validated — unknown types are a semantic error the dispatch
/// layer answers with kProtocolError, not a framing error.
DecodeResult DecodeFrame(std::string_view buf, std::uint32_t max_frame_len,
                         Frame* out, std::size_t* consumed);

// --- Error-frame payload encoding -------------------------------------------

/// kError payload: u8 StatusCode | message text (FormatErrorText form).
std::string EncodeErrorPayload(const Status& status);

/// Reconstructs the Status a kError payload carries; codes outside the
/// StatusCode range (a newer peer) degrade to kInternal.
Status DecodeErrorPayload(std::string_view payload);

}  // namespace gemstone::net

#endif  // GEMSTONE_NET_WIRE_H_
