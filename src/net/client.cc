#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <system_error>
#include <utility>

namespace gemstone::net {

namespace {

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::system_category().message(errno);
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      inbuf_(std::move(other.inbuf_)),
      max_frame_len_(other.max_frame_len_),
      trace_nonce_(other.trace_nonce_),
      trace_id_override_(other.trace_id_override_),
      last_trace_id_(other.last_trace_id_),
      next_seq_(other.next_seq_),
      last_seq_(other.last_seq_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    inbuf_ = std::move(other.inbuf_);
    max_frame_len_ = other.max_frame_len_;
    trace_nonce_ = other.trace_nonce_;
    trace_id_override_ = other.trace_id_override_;
    last_trace_id_ = other.last_trace_id_;
    next_seq_ = other.next_seq_;
    last_seq_ = other.last_seq_;
    other.fd_ = -1;
  }
  return *this;
}

Status Client::Connect(std::uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::IoError(ErrnoText("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IoError(ErrnoText("connect"));
    Close();
    return s;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Per-connection trace nonce: clock entropy mixed with the fd keeps two
  // clients' auto-stamped ids from colliding in a shared server dump.
  // The top bit stays clear — it marks server-assigned ids.
  trace_nonce_ =
      (static_cast<std::uint64_t>(
           std::chrono::steady_clock::now().time_since_epoch().count())
       ^ (static_cast<std::uint64_t>(fd_) << 40)) &
      ~(1ull << 63);
  next_seq_ = 0;
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoText("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame() {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  while (true) {
    Frame frame;
    std::size_t consumed = 0;
    const DecodeResult r =
        DecodeFrame(inbuf_, max_frame_len_, &frame, &consumed);
    if (r == DecodeResult::kFrame) {
      inbuf_.erase(0, consumed);
      return frame;
    }
    if (r == DecodeResult::kMalformed) {
      return Status::Corruption("malformed frame from server");
    }
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoText("recv"));
    }
    inbuf_.append(buf, static_cast<std::size_t>(n));
  }
}

Result<std::string> Client::RoundTrip(MsgType type, std::string_view payload) {
  const std::uint32_t seq = ++next_seq_;
  std::uint64_t trace_id = trace_id_override_ != 0
                               ? trace_id_override_
                               : ((trace_nonce_ + seq) & ~(1ull << 63));
  if (trace_id == 0) trace_id = 1;
  last_trace_id_ = trace_id;
  last_seq_ = seq;
  GS_RETURN_IF_ERROR(SendRaw(EncodeFrame(type, trace_id, seq, payload)));
  GS_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  switch (frame.type) {
    case MsgType::kOk:
    case MsgType::kError:
      // Responses echo the request's trace header; a mismatch means the
      // stream slipped a frame (a reply paired with the wrong request).
      if (frame.seq != seq) {
        return Status::Corruption(
            "response echoed sequence " + std::to_string(frame.seq) +
            ", expected " + std::to_string(seq));
      }
      last_trace_id_ = frame.trace_id;
      if (frame.type == MsgType::kError) {
        return DecodeErrorPayload(frame.payload);
      }
      return std::move(frame.payload);
    case MsgType::kProtocolError:
      // Framing-level notices may answer no particular request (trace
      // header zeroed), so the seq check does not apply.
      return Status::InvalidArgument("protocol error: " + frame.payload);
    default:
      return Status::Corruption("unexpected response frame type");
  }
}

Result<std::uint64_t> Client::Login(UserId user) {
  std::string payload;
  AppendU32(&payload, static_cast<std::uint32_t>(user));
  GS_ASSIGN_OR_RETURN(std::string response,
                      RoundTrip(MsgType::kLogin, payload));
  std::uint64_t session = 0;
  if (!ReadU64(response, 0, &session)) {
    return Status::Corruption("Login response missing session id");
  }
  return session;
}

Status Client::Logout() {
  return RoundTrip(MsgType::kLogout, "").status();
}

Result<std::string> Client::Execute(std::string_view opal_source) {
  return RoundTrip(MsgType::kExecuteOpal, opal_source);
}

Result<std::string> Client::Stdm(std::string_view query_text) {
  return RoundTrip(MsgType::kStdmQuery, query_text);
}

Status Client::Begin() { return RoundTrip(MsgType::kBegin, "").status(); }

Result<std::uint64_t> Client::Commit() {
  GS_ASSIGN_OR_RETURN(std::string response, RoundTrip(MsgType::kCommit, ""));
  std::uint64_t time = 0;
  if (!ReadU64(response, 0, &time)) {
    return Status::Corruption("Commit response missing commit time");
  }
  return time;
}

Status Client::Abort() { return RoundTrip(MsgType::kAbort, "").status(); }

Status Client::SetTimeDial(std::uint64_t time) {
  std::string payload(1, static_cast<char>(kDialExplicit));
  AppendU64(&payload, time);
  return RoundTrip(MsgType::kSetTimeDial, payload).status();
}

Status Client::SetTimeDialToSafeTime() {
  return RoundTrip(MsgType::kSetTimeDial,
                   std::string(1, static_cast<char>(kDialSafeTime)))
      .status();
}

Status Client::ClearTimeDial() {
  return RoundTrip(MsgType::kSetTimeDial,
                   std::string(1, static_cast<char>(kDialClear)))
      .status();
}

Result<std::string> Client::Explain(std::string_view query_text,
                                    bool analyze) {
  std::string payload(1, analyze ? '\1' : '\0');
  payload.append(query_text);
  return RoundTrip(MsgType::kExplain, payload);
}

Result<std::string> Client::Stats(std::uint8_t format) {
  return RoundTrip(MsgType::kStats,
                   std::string(1, static_cast<char>(format)));
}

}  // namespace gemstone::net
