#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <sstream>
#include <system_error>
#include <utility>
#include <vector>

#include "executor/error_format.h"
#include "telemetry/export.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/io_attribution.h"
#include "telemetry/observatory.h"
#include "telemetry/trace.h"

namespace gemstone::net {

namespace {

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " +
         std::system_category().message(errno);
}

std::uint64_t NowMs() { return telemetry::TraceNowNs() / 1'000'000; }

/// Scoped Session owner binding: the worker claims the session for the
/// duration of one request (GS_THREAD_SAFETY builds assert this), then
/// releases it so the next request may run on any worker.
class SessionOwnerBinding {
 public:
  explicit SessionOwnerBinding(txn::Session* session) : session_(session) {
    if (session_ != nullptr) session_->BindOwnerToCurrentThread();
  }
  ~SessionOwnerBinding() {
    if (session_ != nullptr) session_->ReleaseOwner();
  }
  SessionOwnerBinding(const SessionOwnerBinding&) = delete;
  SessionOwnerBinding& operator=(const SessionOwnerBinding&) = delete;

 private:
  txn::Session* session_;
};

}  // namespace

std::string_view RequestStageName(RequestStage stage) {
  switch (stage) {
    case RequestStage::kIdle: return "idle";
    case RequestStage::kLockWait: return "lock_wait";
    case RequestStage::kExecute: return "execute";
    case RequestStage::kSerialize: return "serialize";
    case RequestStage::kFlush: return "flush";
  }
  return "unknown";
}

/// One parsed request waiting for a worker. `received_ns` is stamped when
/// the frame came off the socket — the zero point every stage delta
/// telescopes from.
struct Server::Request {
  MsgType type = MsgType::kOk;
  std::uint64_t trace_id = 0;
  std::uint32_t seq = 0;
  std::string payload;
  std::uint64_t received_ns = 0;
};

/// Per-connection state. The socket, read buffer, and timestamps belong
/// to the event-loop thread; pending/outbox/flags are shared with workers
/// under `mu`. `session`/`logged_in` are written by the single worker
/// serving the connection; they (and the byte counters and in-flight
/// markers) are relaxed atomics so the status page can read them from any
/// thread without joining the lock dance.
struct Server::Connection {
  int fd = -1;
  std::uint64_t id = 0;

  // Event-loop-thread state.
  std::string inbuf;
  std::uint64_t last_frame_ms = 0;
  bool read_paused = false;

  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};

  // Worker-owned session binding (see struct comment).
  std::atomic<SessionId> session{0};
  std::atomic<bool> logged_in{false};

  // The request this connection's worker is serving right now (status
  // page only; monitoring-grade consistency).
  std::atomic<std::uint8_t> inflight_stage{0};  // RequestStage
  std::atomic<std::uint64_t> inflight_trace_id{0};
  std::atomic<std::uint8_t> inflight_type{0};  // MsgType

  mutable Mutex mu{LockRank::kNetConnection, "net.conn_mu"};
  std::deque<Request> pending GS_GUARDED_BY(mu);
  std::string outbox GS_GUARDED_BY(mu);
  /// Cumulative bytes ever appended to / flushed out of the outbox; a
  /// PendingFlush completes when flushed catches up to its target.
  std::uint64_t outbox_appended GS_GUARDED_BY(mu) = 0;
  std::uint64_t outbox_flushed GS_GUARDED_BY(mu) = 0;
  std::deque<PendingFlush> awaiting_flush GS_GUARDED_BY(mu);
  bool scheduled GS_GUARDED_BY(mu) = false;
  bool dead GS_GUARDED_BY(mu) = false;
  bool close_after_flush GS_GUARDED_BY(mu) = false;
  std::string close_reason GS_GUARDED_BY(mu);
};

Server::Server(executor::Executor* executor,
               admin::AuthorizationManager* auth, ServerOptions options)
    : executor_(executor), auth_(auth), options_(options) {
  auto& registry = telemetry::MetricsRegistry::Global();
  connections_gauge_ = registry.GetGauge("net.connections");
  accepted_ = registry.GetCounter("net.connections_accepted");
  rejected_ = registry.GetCounter("net.connections_rejected");
  requests_ = registry.GetCounter("net.requests");
  request_errors_ = registry.GetCounter("net.request_errors");
  protocol_errors_ = registry.GetCounter("net.protocol_errors");
  bytes_in_ = registry.GetCounter("net.bytes_in");
  bytes_out_ = registry.GetCounter("net.bytes_out");
  backpressure_stalls_ = registry.GetCounter("net.backpressure_stalls");
  idle_timeouts_ = registry.GetCounter("net.idle_timeouts");
  request_timeouts_ = registry.GetCounter("net.request_timeouts");
  slow_requests_ = registry.GetCounter("net.slow_requests");
  read_path_requests_ = registry.GetCounter("net.read_path_requests");
  read_path_retries_ = registry.GetCounter("net.read_path_retries");
  // Loopback stages sit in single-digit microseconds: these distributions
  // need the dense MicroLatencyBounds or the histogram cannot resolve
  // them (satellite fix — the default decade ladder put a 5 µs median in
  // a 2.5 µs-wide bucket).
  const auto& micro = telemetry::Histogram::MicroLatencyBounds();
  request_latency_us_ =
      registry.GetHistogram("net.request_latency_us", micro);
  stage_queue_us_ = registry.GetHistogram("net.stage.queue_us", micro);
  stage_lock_wait_us_ =
      registry.GetHistogram("net.stage.lock_wait_us", micro);
  stage_execute_us_ = registry.GetHistogram("net.stage.execute_us", micro);
  stage_serialize_us_ =
      registry.GetHistogram("net.stage.serialize_us", micro);
  stage_flush_us_ = registry.GetHistogram("net.stage.flush_us", micro);
}

Server::~Server() { Stop(); }

std::int64_t Server::connection_count() const {
  return connections_gauge_->value();
}

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  if (auth_ != nullptr) {
    executor_->transactions().set_access_controller(auth_);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::IoError(ErrnoText("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IoError(ErrnoText("bind"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status s = Status::IoError(ErrnoText("listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  int wake[2] = {-1, -1};
  if (::pipe2(wake, O_NONBLOCK | O_CLOEXEC) < 0) {
    Status s = Status::IoError(ErrnoText("pipe2"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  wake_read_fd_ = wake[0];
  wake_write_fd_ = wake[1];

  stopping_.store(false, std::memory_order_release);
  workers_done_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = false;
    queue_.clear();
  }

  const int workers = options_.workers < 1 ? 1 : options_.workers;
  worker_threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  loop_thread_ = std::thread([this] { EventLoop(); });
  start_ns_ = telemetry::TraceNowNs();
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  stopping_.store(true, std::memory_order_release);
  WakeLoop();

  // Drain: workers finish everything already parsed (in-flight commits
  // included), then exit when the queue runs dry.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : worker_threads_) worker.join();
  worker_threads_.clear();

  // With the pool gone, outboxes are final: the loop flushes and exits.
  workers_done_.store(true, std::memory_order_release);
  WakeLoop();
  loop_thread_.join();

  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
}

void Server::WakeLoop() {
  if (wake_write_fd_ < 0) return;
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

// --- Event loop ----------------------------------------------------------------

void Server::EventLoop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  std::uint64_t drain_deadline_ms = 0;

  while (true) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && drain_deadline_ms == 0) {
      drain_deadline_ms = NowMs() + 5000;
    }

    fds.clear();
    polled.clear();
    if (!stopping && listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
    } else {
      fds.push_back({-1, 0, 0});  // keep indices stable
    }
    fds.push_back({wake_read_fd_, POLLIN, 0});

    bool flushing = false;  // any outbox still draining
    {
      MutexLock table(conn_table_mu_);
      for (auto& [id, conn] : connections_) {
        if (conn->fd < 0) continue;
        short events = 0;
        bool paused_by_limits = false;
        bool flushed_and_closing = false;
        bool dead = false;
        {
          MutexLock lock(conn->mu);
          dead = conn->dead;
          if (!dead) {
            const bool limits =
                conn->pending.size() >= options_.max_pipeline ||
                conn->outbox.size() >= options_.outbox_limit;
            const bool want_read =
                !stopping && !conn->close_after_flush && !limits;
            paused_by_limits =
                limits && !stopping && !conn->close_after_flush;
            if (want_read) events |= POLLIN;
            if (!conn->outbox.empty()) {
              events |= POLLOUT;
              flushing = true;
            } else if (conn->close_after_flush) {
              // Response already flushed; nothing left to wait for.
              flushed_and_closing = true;
            }
          }
        }
        if (dead) continue;
        if (flushed_and_closing) {
          MarkDead(conn.get(), "closed after protocol error");
          continue;
        }
        if (paused_by_limits && !conn->read_paused) {
          conn->read_paused = true;
          backpressure_stalls_->Increment();
        } else if (!paused_by_limits) {
          conn->read_paused = false;
        }
        fds.push_back({conn->fd, events, 0});
        polled.push_back(conn);
      }
    }

    if (stopping) {
      bool workers_busy = false;
      if (!workers_done_.load(std::memory_order_acquire)) {
        workers_busy = true;
      }
      if ((!workers_busy && !flushing) || NowMs() >= drain_deadline_ms) {
        break;
      }
    }

    const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (n < 0 && errno != EINTR) break;

    // Drain wakeup bytes.
    if (fds[1].revents & POLLIN) {
      char buf[256];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }

    if (fds[0].revents & POLLIN) AcceptReady();

    for (std::size_t i = 0; i < polled.size(); ++i) {
      const pollfd& pfd = fds[i + 2];
      Connection* conn = polled[i].get();
      if (conn->fd < 0) continue;
      if (pfd.revents & (POLLERR | POLLNVAL)) {
        MarkDead(conn, "socket error");
        continue;
      }
      if (pfd.revents & POLLOUT) WriteReady(conn);
      if (conn->fd >= 0 && (pfd.revents & (POLLIN | POLLHUP))) {
        ReadReady(polled[i]);
      }
    }

    // Idle-timeout sweep.
    if (options_.idle_timeout_ms > 0 && !stopping) {
      const std::uint64_t now = NowMs();
      MutexLock table(conn_table_mu_);
      for (auto& [id, conn] : connections_) {
        if (conn->fd < 0) continue;
        if (now - conn->last_frame_ms > options_.idle_timeout_ms) {
          idle_timeouts_->Increment();
          MarkDead(conn.get(), "idle timeout");
        }
      }
    }

    ReapDeadConnections();
  }

  // Teardown: whatever survives the drain is closed and its session
  // aborted (logout aborts any open transaction).
  {
    MutexLock table(conn_table_mu_);
    for (auto& [id, conn] : connections_) {
      MarkDead(conn.get(), "server shutdown");
      {
        MutexLock lock(conn->mu);
        conn->pending.clear();
        conn->scheduled = false;
      }
    }
  }
  ReapDeadConnections();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::AcceptReady() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: poll again
    bool at_capacity = false;
    {
      MutexLock table(conn_table_mu_);
      at_capacity = connections_.size() >= options_.max_connections;
    }
    if (at_capacity) {
      rejected_->Increment();
      const std::string frame =
          EncodeFrame(MsgType::kProtocolError, "server at connection capacity");
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->last_frame_ms = NowMs();
    {
      MutexLock table(conn_table_mu_);
      conn->id = next_conn_id_++;
      connections_.emplace(conn->id, conn);
    }
    accepted_->Increment();
    connections_gauge_->Add(1);
    telemetry::FlightRecorder::Global().Record(
        telemetry::FlightEventKind::kNetConnOpen, 0, conn->id, 0, "");
  }
}

void Server::ReadReady(const std::shared_ptr<Connection>& conn) {
  char buf[65536];
  const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
  if (n == 0) {
    MarkDead(conn.get(), "peer closed");
    return;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    MarkDead(conn.get(), ErrnoText("read"));
    return;
  }
  bytes_in_->Increment(static_cast<std::uint64_t>(n));
  conn->bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
  conn->inbuf.append(buf, static_cast<std::size_t>(n));
  ParseFrames(conn);
}

void Server::ParseFrames(const std::shared_ptr<Connection>& conn) {
  std::size_t offset = 0;
  bool scheduled_any = false;
  while (true) {
    Frame frame;
    std::size_t used = 0;
    const DecodeResult r =
        DecodeFrame(std::string_view(conn->inbuf).substr(offset),
                    options_.max_frame_len, &frame, &used);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kMalformed) {
      // The length prefix is garbage, so the stream cannot resync:
      // answer once, flush, close.
      protocol_errors_->Increment();
      const std::string response = EncodeFrame(
          MsgType::kProtocolError,
          "malformed frame: length must be in [" +
              std::to_string(kFrameHeaderLen) + ", " +
              std::to_string(options_.max_frame_len) + "]");
      MutexLock lock(conn->mu);
      conn->outbox += response;
      conn->outbox_appended += response.size();
      conn->close_after_flush = true;
      conn->inbuf.clear();
      return;
    }
    offset += used;
    conn->last_frame_ms = NowMs();
    Request request;
    request.type = frame.type;
    // A zero trace id asks the gateway to assign one; the top bit marks
    // server-assigned ids so mixed dumps stay unambiguous.
    request.trace_id =
        frame.trace_id != 0
            ? frame.trace_id
            : ((1ull << 63) |
               next_trace_id_.fetch_add(1, std::memory_order_relaxed));
    request.seq = frame.seq;
    request.payload = std::move(frame.payload);
    request.received_ns = telemetry::TraceNowNs();
    {
      MutexLock lock(conn->mu);
      conn->pending.push_back(std::move(request));
    }
    scheduled_any = true;
  }
  if (offset > 0) conn->inbuf.erase(0, offset);
  if (scheduled_any) Schedule(conn);
}

void Server::WriteReady(Connection* conn) {
  constexpr std::size_t kMaxWrite = 256 * 1024;
  std::string chunk;
  {
    MutexLock lock(conn->mu);
    if (conn->outbox.empty()) return;
    chunk.assign(conn->outbox, 0, std::min(kMaxWrite, conn->outbox.size()));
  }
  const ssize_t n = ::send(conn->fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    MarkDead(conn, ErrnoText("write"));
    return;
  }
  bytes_out_->Increment(static_cast<std::uint64_t>(n));
  conn->bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                            std::memory_order_relaxed);
  bool close_now = false;
  {
    MutexLock lock(conn->mu);
    conn->outbox.erase(0, static_cast<std::size_t>(n));
    conn->outbox_flushed += static_cast<std::uint64_t>(n);
    close_now = conn->close_after_flush && conn->outbox.empty();
  }
  CompleteFlushes(conn, telemetry::TraceNowNs());
  if (close_now) MarkDead(conn, "closed after protocol error");
}

void Server::CompleteFlushes(Connection* conn, std::uint64_t now_ns) {
  // Collect completed responses under the lock, observe outside it.
  std::vector<PendingFlush> done;
  {
    MutexLock lock(conn->mu);
    while (!conn->awaiting_flush.empty() &&
           conn->awaiting_flush.front().outbox_target <=
               conn->outbox_flushed) {
      done.push_back(std::move(conn->awaiting_flush.front()));
      conn->awaiting_flush.pop_front();
    }
    if (done.empty()) return;
    if (conn->awaiting_flush.empty() &&
        conn->inflight_stage.load(std::memory_order_relaxed) ==
            static_cast<std::uint8_t>(RequestStage::kFlush)) {
      conn->inflight_stage.store(
          static_cast<std::uint8_t>(RequestStage::kIdle),
          std::memory_order_relaxed);
    }
  }
  for (const PendingFlush& pf : done) {
    const std::uint64_t flush_us =
        (now_ns > pf.appended_ns ? now_ns - pf.appended_ns : 0) / 1000;
    const std::uint64_t total_us =
        (now_ns > pf.received_ns ? now_ns - pf.received_ns : 0) / 1000;
    stage_flush_us_->Observe(flush_us);
    request_latency_us_->Observe(total_us);
    if (options_.slow_request_us != 0 &&
        total_us >= options_.slow_request_us) {
      slow_requests_->Increment();
      std::ostringstream detail;
      detail << MsgTypeName(pf.type) << " queue=" << pf.queue_us
             << "us lock_wait=" << pf.lock_wait_us
             << "us execute=" << pf.execute_us
             << "us serialize=" << pf.serialize_us
             << "us flush=" << flush_us
             << "us tracks_read=" << pf.tracks_read
             << " tracks_written=" << pf.tracks_written;
      // Bind the request's trace id so the event carries it — the flush
      // completes on the event-loop thread, outside the dispatch scope.
      telemetry::TraceContextScope trace(pf.trace_id);
      telemetry::FlightRecorder::Global().Record(
          telemetry::FlightEventKind::kSlowRequest,
          conn->session.load(std::memory_order_relaxed), total_us, pf.seq,
          detail.str());
    }
  }
}

void Server::Schedule(const std::shared_ptr<Connection>& conn) {
  bool enqueue = false;
  {
    MutexLock lock(conn->mu);
    if (!conn->scheduled && !conn->dead && !conn->pending.empty()) {
      conn->scheduled = true;
      enqueue = true;
    }
  }
  if (enqueue) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      queue_.push_back(conn);
    }
    queue_cv_.notify_one();
  }
}

void Server::MarkDead(Connection* conn, const std::string& reason) {
  {
    MutexLock lock(conn->mu);
    if (conn->dead) return;
    conn->dead = true;
    conn->close_reason = reason;
  }
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void Server::ReapDeadConnections() {
  // Unlink under the table lock; session teardown happens after it is
  // released. Holding conn_table_mu_ across Logout would both stall the
  // status page behind a slow abort and violate the lock-order contract
  // (DESIGN.md §12: conn_table_mu_ is never held while entering the
  // executor or transaction layer).
  struct Reaped {
    std::shared_ptr<Connection> conn;
    std::string reason;
  };
  std::vector<Reaped> reaped;
  {
    MutexLock table(conn_table_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      Connection* conn = it->second.get();
      bool reap = false;
      std::string reason;
      {
        MutexLock lock(conn->mu);
        // A scheduled connection is still referenced by a worker; its
        // teardown waits for the completion wakeup.
        reap = conn->dead && !conn->scheduled;
        reason = conn->close_reason;
      }
      if (!reap) {
        ++it;
        continue;
      }
      reaped.push_back(Reaped{it->second, std::move(reason)});
      it = connections_.erase(it);
    }
  }
  for (Reaped& r : reaped) {
    const SessionId session =
        r.conn->session.load(std::memory_order_relaxed);
    if (r.conn->logged_in.load(std::memory_order_relaxed)) {
      // Logout aborts any transaction the disconnected client left open.
      // `dead && !scheduled` guarantees no worker still references the
      // session, and the Executor's session table is internally
      // synchronized, so no executor_mu_ — a reap never waits behind a
      // long-running request.
      (void)executor_->Logout(session);
    }
    connections_gauge_->Add(-1);
    telemetry::FlightRecorder::Global().Record(
        telemetry::FlightEventKind::kNetConnClose, session,
        r.conn->bytes_in.load(std::memory_order_relaxed),
        r.conn->bytes_out.load(std::memory_order_relaxed), r.reason);
  }
}

// --- Worker pool ---------------------------------------------------------------

void Server::WorkerLoop() {
  while (true) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      conn = std::move(queue_.front());
      queue_.pop_front();
    }

    Request request;
    bool have = false;
    {
      MutexLock lock(conn->mu);
      if (conn->dead) {
        conn->pending.clear();
        conn->scheduled = false;
      } else if (!conn->pending.empty()) {
        request = std::move(conn->pending.front());
        conn->pending.pop_front();
        have = true;
      } else {
        conn->scheduled = false;
      }
    }

    if (have) HandleRequest(conn.get(), std::move(request));

    // Round-robin fairness: a pipelining client goes to the back of the
    // queue instead of monopolizing this worker.
    bool more = false;
    {
      MutexLock lock(conn->mu);
      if (conn->dead || conn->pending.empty()) {
        if (conn->dead) conn->pending.clear();
        conn->scheduled = false;
      } else {
        more = true;
      }
    }
    if (more) {
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_.push_back(conn);
      }
      queue_cv_.notify_one();
    }
    WakeLoop();
  }
}

Server::Reply Server::ErrorReply(const Status& status) {
  request_errors_->Increment();
  return Reply{MsgType::kError, EncodeErrorPayload(status)};
}

void Server::HandleRequest(Connection* conn, Request&& request) {
  requests_->Increment();

  // Stage clock. Every delta telescopes from received_ns, so
  //   total = queue + lock_wait + execute + serialize + flush
  // holds exactly for each request (flush completes in CompleteFlushes).
  const std::uint64_t dequeue_ns = telemetry::TraceNowNs();
  stage_queue_us_->Observe((dequeue_ns - request.received_ns) / 1000);

  // Everything this thread records while serving the request — spans,
  // flight events, slow-op captures — now names the owning request.
  telemetry::TraceContextScope trace(request.trace_id);
  // Root of the request's span tree: every span opened below (executor,
  // txn, commit, disk) parent-links under it, so /trace?id= exports the
  // whole request as one nested flame.
  TELEM_SPAN("net.request");
  conn->inflight_trace_id.store(request.trace_id, std::memory_order_relaxed);
  conn->inflight_type.store(static_cast<std::uint8_t>(request.type),
                            std::memory_order_relaxed);
  conn->inflight_stage.store(
      static_cast<std::uint8_t>(RequestStage::kLockWait),
      std::memory_order_relaxed);

  const telemetry::IoTally io_before = telemetry::ThreadIoTally();
  Reply reply;
  // A request may run in two legs (optimistic read path, then the
  // exclusive retry), so lock-wait and execute accumulate piecewise; the
  // stage telescoping (total = queue + lock_wait + execute + serialize +
  // flush) holds over the sums.
  std::uint64_t lock_wait_ns = 0;
  std::uint64_t execute_ns = 0;

  const std::uint64_t timeout_ns = options_.request_timeout_ms * 1'000'000;
  if (timeout_ns > 0 && dequeue_ns - request.received_ns > timeout_ns) {
    request_timeouts_->Increment();
    conn->inflight_stage.store(
        static_cast<std::uint8_t>(RequestStage::kExecute),
        std::memory_order_relaxed);
    reply = ErrorReply(Status::Unavailable(
        "request timed out waiting for a worker (server overloaded)"));
  } else if (request.type == MsgType::kStats) {
    // Stats is a monitoring endpoint: no login, no executor lock (the
    // lock_wait stage is genuinely zero here).
    conn->inflight_stage.store(
        static_cast<std::uint8_t>(RequestStage::kExecute),
        std::memory_order_relaxed);
    const std::uint64_t exec_start = telemetry::TraceNowNs();
    const std::uint8_t format =
        request.payload.empty()
            ? kStatsText
            : static_cast<std::uint8_t>(request.payload[0]);
    std::string text;
    if (format == kStatsStatusz) {
      text = StatusJson();
    } else {
      const telemetry::Snapshot snapshot =
          telemetry::MetricsRegistry::Global().Snapshot();
      switch (format) {
        case kStatsJson: text = telemetry::ToJson(snapshot); break;
        case kStatsProm: text = telemetry::ToPrometheus(snapshot); break;
        default: text = telemetry::ToText(snapshot); break;
      }
    }
    reply = Reply{MsgType::kOk, std::move(text)};
    execute_ns = telemetry::TraceNowNs() - exec_start;
  } else if (ReadPathEligible(conn, request)) {
    // Snapshot read path: no executor lock. If the code turns out to
    // write, the pinned session answers kReadOnlyRetry before mutating
    // anything and the request reruns below on the exclusive path.
    read_path_requests_->Increment();
    conn->inflight_stage.store(
        static_cast<std::uint8_t>(RequestStage::kExecute),
        std::memory_order_relaxed);
    const std::uint64_t exec_start = telemetry::TraceNowNs();
    reply = DispatchReadOnly(conn, request);
    execute_ns += telemetry::TraceNowNs() - exec_start;
    if (reply.retry_exclusive) {
      read_path_retries_->Increment();
      conn->inflight_stage.store(
          static_cast<std::uint8_t>(RequestStage::kLockWait),
          std::memory_order_relaxed);
      const std::uint64_t wait_start = telemetry::TraceNowNs();
      MutexLock lock(executor_mu_);
      const std::uint64_t retry_start = telemetry::TraceNowNs();
      lock_wait_ns += retry_start - wait_start;
      conn->inflight_stage.store(
          static_cast<std::uint8_t>(RequestStage::kExecute),
          std::memory_order_relaxed);
      reply = DispatchLocked(conn, request);
      execute_ns += telemetry::TraceNowNs() - retry_start;
    }
  } else {
    MutexLock lock(executor_mu_);
    const std::uint64_t lock_acquired_ns = telemetry::TraceNowNs();
    lock_wait_ns = lock_acquired_ns - dequeue_ns;
    conn->inflight_stage.store(
        static_cast<std::uint8_t>(RequestStage::kExecute),
        std::memory_order_relaxed);
    reply = DispatchLocked(conn, request);
    execute_ns = telemetry::TraceNowNs() - lock_acquired_ns;
  }

  // Synthetic boundary: any instrumentation gap folds into serialize.
  const std::uint64_t execute_done_ns =
      dequeue_ns + lock_wait_ns + execute_ns;
  stage_lock_wait_us_->Observe(lock_wait_ns / 1000);
  stage_execute_us_->Observe(execute_ns / 1000);
  const telemetry::IoTally io_after = telemetry::ThreadIoTally();
  const telemetry::IoTally io = telemetry::IoDelta(io_before, io_after);

  // Serialize outside the executor lock: framing is the response's cost,
  // not the database's.
  conn->inflight_stage.store(
      static_cast<std::uint8_t>(RequestStage::kSerialize),
      std::memory_order_relaxed);
  const std::string response =
      EncodeFrame(reply.type, request.trace_id, request.seq, reply.payload);
  const std::uint64_t serialized_ns = telemetry::TraceNowNs();
  stage_serialize_us_->Observe((serialized_ns - execute_done_ns) / 1000);

  PendingFlush pf;
  pf.received_ns = request.received_ns;
  pf.appended_ns = serialized_ns;
  pf.trace_id = request.trace_id;
  pf.seq = request.seq;
  pf.type = request.type;
  pf.queue_us = (dequeue_ns - request.received_ns) / 1000;
  pf.lock_wait_us = lock_wait_ns / 1000;
  pf.execute_us = execute_ns / 1000;
  pf.serialize_us = (serialized_ns - execute_done_ns) / 1000;
  pf.tracks_read = io.tracks_read;
  pf.tracks_written = io.tracks_written;

  bool appended = false;
  {
    MutexLock lock(conn->mu);
    if (!conn->dead) {
      conn->outbox += response;
      conn->outbox_appended += response.size();
      pf.outbox_target = conn->outbox_appended;
      conn->awaiting_flush.push_back(pf);
      appended = true;
    }
  }
  conn->inflight_stage.store(
      static_cast<std::uint8_t>(appended ? RequestStage::kFlush
                                         : RequestStage::kIdle),
      std::memory_order_relaxed);
}

Server::Reply Server::DispatchLocked(Connection* conn,
                                     const Request& request) {
  const bool logged_in = conn->logged_in.load(std::memory_order_relaxed);
  const SessionId conn_session =
      conn->session.load(std::memory_order_relaxed);

  // Everything below Login requires a bound session.
  if (request.type != MsgType::kLogin && !logged_in) {
    if (request.type == MsgType::kExecuteOpal ||
        request.type == MsgType::kStdmQuery ||
        request.type == MsgType::kBegin || request.type == MsgType::kCommit ||
        request.type == MsgType::kAbort ||
        request.type == MsgType::kSetTimeDial ||
        request.type == MsgType::kExplain ||
        request.type == MsgType::kLogout) {
      return ErrorReply(
          Status::TransactionState("not logged in: send Login first"));
    }
  }

  // Login and Logout sit outside the owner binding: Login has no session
  // yet, and Logout destroys the Session inside the call — a binding's
  // release would touch freed memory.
  if (request.type == MsgType::kLogin) {
    if (logged_in) {
      return ErrorReply(
          Status::TransactionState("connection already logged in"));
    }
    std::uint32_t user = 0;
    if (request.payload.size() != 4 || !ReadU32(request.payload, 0, &user)) {
      return ErrorReply(
          Status::InvalidArgument("Login payload must be a u32 user id"));
    }
    auto logged = executor_->Login(static_cast<UserId>(user));
    if (!logged.ok()) return ErrorReply(logged.status());
    conn->session.store(logged.value(), std::memory_order_relaxed);
    conn->logged_in.store(true, std::memory_order_relaxed);
    std::string payload;
    AppendU64(&payload, logged.value());
    return Reply{MsgType::kOk, std::move(payload)};
  }
  if (request.type == MsgType::kLogout) {
    Status s = executor_->Logout(conn_session);
    conn->logged_in.store(false, std::memory_order_relaxed);
    conn->session.store(0, std::memory_order_relaxed);
    if (!s.ok()) return ErrorReply(s);
    return Reply{MsgType::kOk, ""};
  }

  txn::Session* session =
      logged_in ? executor_->session(conn_session) : nullptr;
  SessionOwnerBinding owner(session);

  switch (request.type) {
    case MsgType::kExecuteOpal: {
      auto result = executor_->ExecuteToString(conn_session, request.payload);
      if (!result.ok()) return ErrorReply(result.status());
      return Reply{MsgType::kOk, std::move(result.value())};
    }

    case MsgType::kStdmQuery: {
      auto result = executor_->ExecuteStdm(conn_session, request.payload);
      if (!result.ok()) return ErrorReply(result.status());
      return Reply{MsgType::kOk, std::move(result.value())};
    }

    case MsgType::kBegin: {
      Status s = session->Begin();
      if (!s.ok()) return ErrorReply(s);
      return Reply{MsgType::kOk, ""};
    }

    case MsgType::kCommit: {
      // 1:1 with Session::Commit — the transaction ends either way; the
      // client decides when to Begin the next one. A conflict travels
      // back as an error frame, never a disconnect.
      Status s = session->Commit();
      if (!s.ok()) return ErrorReply(s);
      std::string payload;
      AppendU64(&payload, executor_->transactions().Now());
      return Reply{MsgType::kOk, std::move(payload)};
    }

    case MsgType::kAbort: {
      Status s = session->Abort();
      if (!s.ok()) return ErrorReply(s);
      return Reply{MsgType::kOk, ""};
    }

    case MsgType::kSetTimeDial:
      return DispatchTimeDial(session, request);

    case MsgType::kExplain: {
      if (request.payload.empty()) {
        return ErrorReply(Status::InvalidArgument(
            "Explain payload must carry an analyze byte and a query"));
      }
      const bool analyze = request.payload[0] != 0;
      auto result = executor_->ExplainStdm(
          conn_session, std::string_view(request.payload).substr(1), analyze);
      if (!result.ok()) return ErrorReply(result.status());
      return Reply{MsgType::kOk, std::move(result.value())};
    }

    default: {
      // A well-framed but unknown type: semantic error, connection keeps
      // going — a newer client against an older server degrades politely.
      protocol_errors_->Increment();
      char hex[8];
      std::snprintf(hex, sizeof(hex), "0x%02x",
                    static_cast<unsigned>(request.type));
      return Reply{MsgType::kProtocolError,
                   std::string("unknown message type ") + hex};
    }
  }
}

Server::Reply Server::DispatchTimeDial(txn::Session* session,
                                       const Request& request) {
  if (request.payload.empty()) {
    return ErrorReply(Status::InvalidArgument(
        "SetTimeDial payload must carry a mode byte"));
  }
  const auto mode = static_cast<std::uint8_t>(request.payload[0]);
  if (mode == kDialClear && request.payload.size() == 1) {
    session->ClearTimeDial();
  } else if (mode == kDialSafeTime && request.payload.size() == 1) {
    session->SetTimeDialToSafeTime();
  } else if (mode == kDialExplicit && request.payload.size() == 9) {
    std::uint64_t time = 0;
    ReadU64(request.payload, 1, &time);
    session->SetTimeDial(time);
  } else {
    return ErrorReply(
        Status::InvalidArgument("malformed SetTimeDial payload"));
  }
  return Reply{MsgType::kOk, ""};
}

bool Server::ReadPathEligible(Connection* conn, const Request& request) {
  switch (request.type) {
    case MsgType::kExecuteOpal:
    case MsgType::kStdmQuery:
    case MsgType::kExplain:
    case MsgType::kSetTimeDial:
    case MsgType::kCommit:
      break;
    default:
      return false;
  }
  if (!conn->logged_in.load(std::memory_order_relaxed)) return false;
  return executor_->SessionIsReadPathEligible(
      conn->session.load(std::memory_order_relaxed));
}

Server::Reply Server::DispatchReadOnly(Connection* conn,
                                       const Request& request) {
  const SessionId conn_session =
      conn->session.load(std::memory_order_relaxed);
  txn::Session* session = executor_->session(conn_session);
  if (session == nullptr) {
    return ErrorReply(Status::NotFound("no such session: " +
                                       std::to_string(conn_session)));
  }
  SessionOwnerBinding owner(session);

  switch (request.type) {
    // Queries run pinned to the SafeTime commit snapshot (the pin is a
    // no-op view change when a dial is already set, so skip it): reads
    // resolve against committed history under the store's shared lock and
    // record nothing, so they can neither conflict nor be invalidated by
    // concurrent commits.
    case MsgType::kExecuteOpal: {
      std::optional<txn::SnapshotPin> pin;
      if (!session->DialSet()) {
        pin.emplace(session, executor_->transactions().SafeTime());
      }
      auto result = executor_->ExecuteToString(conn_session, request.payload);
      if (!result.ok()) {
        if (result.status().IsReadOnlyRetry()) {
          Reply retry;
          retry.retry_exclusive = true;
          return retry;
        }
        return ErrorReply(result.status());
      }
      return Reply{MsgType::kOk, std::move(result.value())};
    }

    case MsgType::kStdmQuery: {
      std::optional<txn::SnapshotPin> pin;
      if (!session->DialSet()) {
        pin.emplace(session, executor_->transactions().SafeTime());
      }
      auto result = executor_->ExecuteStdm(conn_session, request.payload);
      if (!result.ok()) {
        if (result.status().IsReadOnlyRetry()) {
          Reply retry;
          retry.retry_exclusive = true;
          return retry;
        }
        return ErrorReply(result.status());
      }
      return Reply{MsgType::kOk, std::move(result.value())};
    }

    case MsgType::kExplain: {
      if (request.payload.empty()) {
        return ErrorReply(Status::InvalidArgument(
            "Explain payload must carry an analyze byte and a query"));
      }
      std::optional<txn::SnapshotPin> pin;
      if (!session->DialSet()) {
        pin.emplace(session, executor_->transactions().SafeTime());
      }
      const bool analyze = request.payload[0] != 0;
      auto result = executor_->ExplainStdm(
          conn_session, std::string_view(request.payload).substr(1), analyze);
      if (!result.ok()) {
        if (result.status().IsReadOnlyRetry()) {
          Reply retry;
          retry.retry_exclusive = true;
          return retry;
        }
        return ErrorReply(result.status());
      }
      return Reply{MsgType::kOk, std::move(result.value())};
    }

    // Session-local control: the dial and an access-free commit touch
    // only the session and the (thread-safe) transaction manager. An
    // eligible session's commit takes the manager's lock-free tier.
    case MsgType::kSetTimeDial:
      return DispatchTimeDial(session, request);

    case MsgType::kCommit: {
      Status s = session->Commit();
      if (!s.ok()) return ErrorReply(s);
      std::string payload;
      AppendU64(&payload, executor_->transactions().Now());
      return Reply{MsgType::kOk, std::move(payload)};
    }

    default: {
      // Unreachable: ReadPathEligible admits only the types above.
      Reply retry;
      retry.retry_exclusive = true;
      return retry;
    }
  }
}

// --- Status page ---------------------------------------------------------------

std::string Server::StatusJson() const {
  std::ostringstream out;
  out << "{\"uptime_s\":" << (telemetry::TraceNowNs() - start_ns_) / 1e9;
  out << ",\"build\":{\"compiler\":\"" << telemetry::JsonEscape(__VERSION__)
      << "\",\"mode\":\""
#ifdef NDEBUG
      << "release"
#else
      << "debug"
#endif
      << "\"}";
  out << ",\"options\":{\"port\":" << port_
      << ",\"workers\":" << options_.workers
      << ",\"max_connections\":" << options_.max_connections
      << ",\"max_pipeline\":" << options_.max_pipeline
      << ",\"request_timeout_ms\":" << options_.request_timeout_ms
      << ",\"slow_request_us\":" << options_.slow_request_us << "}";
  out << ",\"counters\":{\"connections\":" << connections_gauge_->value()
      << ",\"accepted\":" << accepted_->value()
      << ",\"rejected\":" << rejected_->value()
      << ",\"requests\":" << requests_->value()
      << ",\"request_errors\":" << request_errors_->value()
      << ",\"protocol_errors\":" << protocol_errors_->value()
      << ",\"backpressure_stalls\":" << backpressure_stalls_->value()
      << ",\"request_timeouts\":" << request_timeouts_->value()
      << ",\"slow_requests\":" << slow_requests_->value()
      << ",\"read_path_requests\":" << read_path_requests_->value()
      << ",\"read_path_retries\":" << read_path_retries_->value() << "}";

  const auto hist_json = [&out](const char* name,
                                const telemetry::Histogram* hist) {
    const telemetry::HistogramSnapshot snap = hist->Snapshot();
    out << "\"" << name << "\":{\"count\":" << snap.count
        << ",\"sum_us\":" << snap.sum << ",\"p50\":" << snap.p50()
        << ",\"p95\":" << snap.p95() << ",\"p99\":" << snap.p99() << "}";
  };
  out << ",\"stages\":{";
  hist_json("queue_us", stage_queue_us_);
  out << ",";
  hist_json("lock_wait_us", stage_lock_wait_us_);
  out << ",";
  hist_json("execute_us", stage_execute_us_);
  out << ",";
  hist_json("serialize_us", stage_serialize_us_);
  out << ",";
  hist_json("flush_us", stage_flush_us_);
  out << "},";
  hist_json("request_latency_us", request_latency_us_);

  out << ",\"connections\":[";
  {
    bool first = true;
    MutexLock table(conn_table_mu_);
    for (const auto& [id, conn] : connections_) {
      std::size_t pending = 0;
      std::size_t outbox_bytes = 0;
      std::size_t in_flush = 0;
      bool dead = false;
      {
        MutexLock lock(conn->mu);
        pending = conn->pending.size();
        outbox_bytes = conn->outbox.size();
        in_flush = conn->awaiting_flush.size();
        dead = conn->dead;
      }
      if (dead) continue;
      if (!first) out << ",";
      first = false;
      const auto stage = static_cast<RequestStage>(
          conn->inflight_stage.load(std::memory_order_relaxed));
      out << "{\"id\":" << conn->id << ",\"session\":"
          << conn->session.load(std::memory_order_relaxed)
          << ",\"logged_in\":"
          << (conn->logged_in.load(std::memory_order_relaxed) ? "true"
                                                              : "false")
          << ",\"bytes_in\":"
          << conn->bytes_in.load(std::memory_order_relaxed)
          << ",\"bytes_out\":"
          << conn->bytes_out.load(std::memory_order_relaxed)
          << ",\"pending\":" << pending
          << ",\"outbox_bytes\":" << outbox_bytes
          << ",\"awaiting_flush\":" << in_flush << ",\"inflight\":{";
      out << "\"stage\":\"" << RequestStageName(stage) << "\"";
      if (stage != RequestStage::kIdle) {
        out << ",\"type\":\""
            << MsgTypeName(static_cast<MsgType>(
                   conn->inflight_type.load(std::memory_order_relaxed)))
            << "\",\"trace_id\":"
            << conn->inflight_trace_id.load(std::memory_order_relaxed);
      }
      out << "}}";
    }
  }
  out << "]";

  out << ",\"conflict_hotspots\":[";
  {
    bool first = true;
    for (const auto& [oid, count] :
         executor_->transactions().ConflictHotspots()) {
      if (!first) out << ",";
      first = false;
      out << "{\"oid\":" << oid << ",\"conflicts\":" << count << "}";
    }
  }
  out << "]";

  // The lock-order validator's view (DESIGN.md §13): whether this build
  // validates at all, the observed rank->rank acquisition edges, and
  // whether the observed graph is still a DAG. In release builds the
  // section reports validated=false with an empty edge set.
  {
    std::string cycle;
    const bool acyclic = lock_order::GraphIsAcyclic(&cycle);
    out << ",\"lock_order\":{\"validated\":"
        << (GS_LOCK_ORDER_VALIDATION ? "true" : "false")
        << ",\"acquisitions\":" << lock_order::AcquisitionCount()
        << ",\"violations\":" << lock_order::ViolationCount()
        << ",\"acyclic\":" << (acyclic ? "true" : "false");
    if (!acyclic) {
      out << ",\"cycle\":\"" << telemetry::JsonEscape(cycle) << "\"";
    }
    out << ",\"edges\":[";
    bool first = true;
    for (const lock_order::Edge& edge : lock_order::AcquisitionEdges()) {
      if (!first) out << ",";
      first = false;
      out << "{\"holder\":\"" << LockRankName(edge.holder)
          << "\",\"acquired\":\"" << LockRankName(edge.acquired)
          << "\",\"count\":" << edge.count << "}";
    }
    out << "]}";
  }

  // Recent-rate sparklines from the Observatory ring (empty object until
  // the sampler has two samples). Queried without any server lock held —
  // the Observatory has its own.
  out << ",\"recent_rates\":"
      << telemetry::Observatory::Global().SparklineJson(
             {"net.", "txn.", "disk.", "storage."});

  // Optional subsystem sections (SetStatusSection) — e.g. "tiers" from
  // the temporal track store when gemstone_serve enables it.
  for (const auto& [key, fn] : status_sections_) {
    out << ",\"" << key << "\":" << fn();
  }
  out << "}";
  return out.str();
}

void Server::SetStatusSection(const std::string& key,
                              std::function<std::string()> fn) {
  status_sections_[key] = std::move(fn);
}

}  // namespace gemstone::net
