#ifndef GEMSTONE_OBJECT_CLASS_REGISTRY_H_
#define GEMSTONE_OBJECT_CLASS_REGISTRY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/annotations.h"
#include "core/ids.h"
#include "core/result.h"
#include "core/status.h"
#include "core/sync.h"
#include "object/symbol_table.h"

namespace gemstone {

/// Base for anything installable in a method dictionary. The OPAL layer
/// derives CompiledMethod and PrimitiveMethod from this; the object layer
/// stays ignorant of bytecodes.
class MethodHandle {
 public:
  virtual ~MethodHandle() = default;
};

/// How instances of a class arrange their private memory.
enum class ObjectFormat : std::uint8_t {
  kNamed,    // named instance variables only (records, kernel objects)
  kIndexed,  // numbered slots in addition to named ones (arrays, strings)
  kSet,      // alias-named members (Set/Bag/Dictionary families)
};

/// A class: name, superclass, declared instance variables, and a method
/// dictionary. §4.1: "a class is a group of structurally similar objects
/// that respond to the same set of messages ... classes are organized in
/// a (strict) hierarchy" — i.e., single inheritance.
class GsClass {
 public:
  GsClass(Oid oid, std::string name, Oid superclass, ObjectFormat format)
      : oid_(oid),
        name_(std::move(name)),
        superclass_(superclass),
        format_(format) {}

  Oid oid() const { return oid_; }
  const std::string& name() const { return name_; }
  Oid superclass() const { return superclass_; }
  ObjectFormat format() const { return format_; }

  /// Instance variables declared by this class (not inherited ones).
  const std::vector<SymbolId>& own_inst_vars() const { return inst_vars_; }
  void add_inst_var(SymbolId name) { inst_vars_.push_back(name); }
  bool declares_inst_var(SymbolId name) const {
    for (SymbolId v : inst_vars_) {
      if (v == name) return true;
    }
    return false;
  }

  /// Installs (or replaces) the method for `selector`.
  void InstallMethod(SymbolId selector,
                     std::shared_ptr<const MethodHandle> method) {
    methods_[selector] = std::move(method);
  }

  /// This class's own method for `selector`, nullptr if absent (callers
  /// walk the superclass chain via ClassRegistry::LookupMethod).
  const MethodHandle* OwnMethod(SymbolId selector) const {
    auto it = methods_.find(selector);
    return it == methods_.end() ? nullptr : it->second.get();
  }

  std::size_t method_count() const { return methods_.size(); }
  const std::unordered_map<SymbolId, std::shared_ptr<const MethodHandle>>&
  methods() const {
    return methods_;
  }

  /// OPAL methods keep their source so the schema can be exported and
  /// recompiled after recovery (compiled code itself is not persistent).
  void SetMethodSource(SymbolId selector, std::string source) {
    method_sources_[selector] = std::move(source);
  }
  const std::unordered_map<SymbolId, std::string>& method_sources() const {
    return method_sources_;
  }

 private:
  Oid oid_;
  std::string name_;
  Oid superclass_;
  ObjectFormat format_;
  std::vector<SymbolId> inst_vars_;
  std::unordered_map<SymbolId, std::shared_ptr<const MethodHandle>> methods_;
  std::unordered_map<SymbolId, std::string> method_sources_;
};

/// Owns every class and implements lookup along the strict hierarchy.
///
/// Satisfies design goal §2A: type definition (DefineClass) is separate
/// from instantiation (ObjectMemory / Workspace create instances), and
/// §2C: classes can gain instance variables after instances exist, with
/// no restructuring (instances store elements sparsely).
///
/// Internally synchronized: the gateway's snapshot read path sends
/// messages (method lookup, inst-var resolution) concurrently with schema
/// mutation on the exclusive write path, so every lookup holds the shared
/// lock and every mutation the exclusive one. GsClass pointers returned
/// by Get/FindByName stay valid forever (classes are never erased), and a
/// replaced method's handle is retired, not destroyed, so an interpreter
/// mid-execution of the old version never dangles. Runtime method
/// installs must go through InstallMethod/SetMethodSource here — not the
/// GsClass setters — to get that protection.
class ClassRegistry {
 public:
  explicit ClassRegistry(SymbolTable* symbols) : symbols_(symbols) {}
  ClassRegistry(const ClassRegistry&) = delete;
  ClassRegistry& operator=(const ClassRegistry&) = delete;

  /// Defines a new class. `superclass` must already exist (or be kNilOid
  /// for the root). Fails with AlreadyExists on a duplicate name.
  Result<Oid> DefineClass(Oid oid, std::string_view name, Oid superclass,
                          ObjectFormat format,
                          const std::vector<std::string>& inst_var_names);

  /// Adds an instance variable to an existing class; existing instances
  /// acquire the element lazily on first write (no reformatting — §2C).
  Status AddInstVar(Oid class_oid, std::string_view name);

  /// Installs (or replaces) `selector` on `class_oid` under the exclusive
  /// lock; a replaced handle is retired so concurrent executions of the
  /// old method stay valid. `source`, when present, is kept for schema
  /// export (compiled OPAL methods); primitives pass nullopt.
  Status InstallMethod(Oid class_oid, SymbolId selector,
                       std::shared_ptr<const MethodHandle> method,
                       std::optional<std::string> source = std::nullopt);

  GsClass* Get(Oid oid);
  const GsClass* Get(Oid oid) const;
  GsClass* FindByName(std::string_view name);
  const GsClass* FindByName(std::string_view name) const;

  /// All instance variables visible in instances of `class_oid`:
  /// superclass-first, then own (shared structure via the hierarchy, §4.1).
  std::vector<SymbolId> AllInstVars(Oid class_oid) const;

  /// True if `class_oid` equals `ancestor` or inherits from it.
  bool IsKindOf(Oid class_oid, Oid ancestor) const;

  /// Finds the method for `selector` on `class_oid` or the nearest
  /// ancestor defining it; nullptr when no class in the chain responds.
  const MethodHandle* LookupMethod(Oid class_oid, SymbolId selector) const;

  /// As LookupMethod, but also reports the class that defined the method
  /// (needed for `super` sends).
  const MethodHandle* LookupMethodFrom(Oid class_oid, SymbolId selector,
                                       Oid* defining_class) const;

  std::size_t size() const {
    ReaderMutexLock lock(mu_);
    return classes_.size();
  }

  /// Monotonic schema version, bumped by every successful DefineClass /
  /// AddInstVar / InstallMethod. Interpreters key their session-local
  /// send caches on it: one atomic load per send instead of a
  /// shared-lock acquisition, which the snapshot read path hammers from
  /// every worker at once. Retired method handles outlive their
  /// replacement, so a cache that is one version stale still points at
  /// live (merely superseded) methods.
  std::uint64_t SchemaVersion() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Names of every registered class (diagnostics).
  std::vector<std::string> ClassNames() const;

 private:
  // Unlocked variants for use while already holding mu_.
  GsClass* GetLocked(Oid oid) GS_REQUIRES_SHARED(mu_);
  const GsClass* GetLocked(Oid oid) const GS_REQUIRES_SHARED(mu_);
  const MethodHandle* LookupMethodFromLocked(Oid class_oid, SymbolId selector,
                                             Oid* defining_class) const
      GS_REQUIRES_SHARED(mu_);

  SymbolTable* symbols_;
  std::atomic<std::uint64_t> version_{1};
  mutable SharedMutex mu_{LockRank::kClassRegistry,
                          "object.class_registry_mu"};
  std::unordered_map<std::uint64_t, std::unique_ptr<GsClass>> classes_
      GS_GUARDED_BY(mu_);
  std::unordered_map<std::string, Oid> by_name_ GS_GUARDED_BY(mu_);
  /// Replaced method handles, kept alive for the process: a send resolved
  /// to a method just before a recompile may still be executing it.
  std::vector<std::shared_ptr<const MethodHandle>> retired_methods_
      GS_GUARDED_BY(mu_);
};

}  // namespace gemstone

#endif  // GEMSTONE_OBJECT_CLASS_REGISTRY_H_
