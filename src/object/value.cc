#include "object/value.h"

#include <functional>

namespace gemstone {

std::string_view ValueTagToString(ValueTag tag) {
  switch (tag) {
    case ValueTag::kNil:
      return "Nil";
    case ValueTag::kBoolean:
      return "Boolean";
    case ValueTag::kInteger:
      return "Integer";
    case ValueTag::kFloat:
      return "Float";
    case ValueTag::kString:
      return "String";
    case ValueTag::kSymbol:
      return "Symbol";
    case ValueTag::kRef:
      return "Ref";
    case ValueTag::kHandle:
      return "Handle";
  }
  return "Unknown";
}

std::string Value::ToString() const {
  switch (tag()) {
    case ValueTag::kNil:
      return "nil";
    case ValueTag::kBoolean:
      return boolean() ? "true" : "false";
    case ValueTag::kInteger:
      return std::to_string(integer());
    case ValueTag::kFloat:
      return std::to_string(real());
    case ValueTag::kString:
      return "'" + string() + "'";
    case ValueTag::kSymbol:
      return "#sym" + std::to_string(symbol());
    case ValueTag::kRef:
      return ref().ToString();
    case ValueTag::kHandle:
      return "<block>";
  }
  return "?";
}

std::size_t ValueHash::operator()(const Value& v) const {
  const std::size_t salt = static_cast<std::size_t>(v.tag()) * 0x9e3779b9u;
  switch (v.tag()) {
    case ValueTag::kNil:
      return 0;
    case ValueTag::kBoolean:
      return salt ^ (v.boolean() ? 1u : 2u);
    case ValueTag::kInteger:
      // Integers hash like the equal-comparing float, so {1, 1.0} collide
      // (required: they compare ==).
      return std::hash<double>()(static_cast<double>(v.integer()));
    case ValueTag::kFloat:
      return std::hash<double>()(v.real());
    case ValueTag::kString:
      return salt ^ std::hash<std::string>()(v.string());
    case ValueTag::kSymbol:
      return salt ^ std::hash<SymbolId>()(v.symbol());
    case ValueTag::kRef:
      return salt ^ std::hash<Oid>()(v.ref());
    case ValueTag::kHandle:
      return salt ^ std::hash<const void*>()(v.handle().get());
  }
  return 0;
}

}  // namespace gemstone
