#include "object/symbol_table.h"

namespace gemstone {

SymbolId SymbolTable::InternLocked(std::string_view text, bool alias) {
  auto it = ids_.find(std::string(text));
  if (it != ids_.end()) {
    if (alias) is_alias_[it->second] = true;
    return it->second;
  }
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(text);
  is_alias_.push_back(alias);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::Intern(std::string_view text) {
  const std::string key(text);
  {
    // Fast path: the overwhelmingly common case is a spelling that is
    // already interned, which needs no mutation at all.
    ReaderMutexLock lock(mu_);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
  }
  WriterMutexLock lock(mu_);
  return InternLocked(text, /*alias=*/false);
}

SymbolId SymbolTable::Lookup(std::string_view text) const {
  ReaderMutexLock lock(mu_);
  auto it = ids_.find(std::string(text));
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

const std::string& SymbolTable::Name(SymbolId id) const {
  ReaderMutexLock lock(mu_);
  return names_.at(id);
}

SymbolId SymbolTable::GenerateAlias() {
  WriterMutexLock lock(mu_);
  std::string name;
  do {
    name = "_a" + std::to_string(next_alias_++);
  } while (ids_.count(name) != 0);
  return InternLocked(name, /*alias=*/true);
}

SymbolId SymbolTable::InternAlias(std::string_view text) {
  WriterMutexLock lock(mu_);
  return InternLocked(text, /*alias=*/true);
}

bool SymbolTable::IsAlias(SymbolId id) const {
  ReaderMutexLock lock(mu_);
  return id < is_alias_.size() && is_alias_[id];
}

std::size_t SymbolTable::size() const {
  ReaderMutexLock lock(mu_);
  return names_.size();
}

}  // namespace gemstone
