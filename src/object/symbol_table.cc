#include "object/symbol_table.h"

namespace gemstone {

SymbolId SymbolTable::Intern(std::string_view text) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(std::string(text));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(text);
  is_alias_.push_back(false);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::Lookup(std::string_view text) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(std::string(text));
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

const std::string& SymbolTable::Name(SymbolId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.at(id);
}

SymbolId SymbolTable::GenerateAlias() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string name;
  do {
    name = "_a" + std::to_string(next_alias_++);
  } while (ids_.count(name) != 0);
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.push_back(name);
  is_alias_.push_back(true);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::InternAlias(std::string_view text) {
  SymbolId id = Intern(text);
  std::lock_guard<std::mutex> lock(mu_);
  is_alias_[id] = true;
  return id;
}

bool SymbolTable::IsAlias(SymbolId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < is_alias_.size() && is_alias_[id];
}

std::size_t SymbolTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

}  // namespace gemstone
