#ifndef GEMSTONE_OBJECT_GS_OBJECT_H_
#define GEMSTONE_OBJECT_GS_OBJECT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/ids.h"
#include "object/association_table.h"
#include "object/value.h"

namespace gemstone {

/// One named element of an object: an element name plus the element's
/// association table (§6: "An element is represented as an element name
/// and a table of associations").
struct NamedElement {
  SymbolId name = kInvalidSymbol;
  AssociationTable table;
};

/// A GemStone object: private memory with identity and history.
///
/// Structure follows §4.1 ("private memory is structured as a list of
/// named or numbered instance variables") with §5.3's temporal extension:
/// each element is an association table rather than a single slot.
///
/// - *Named* elements hold instance variables and the alias-named members
///   of sets (§5.1: unlabeled set members get generated alias names).
/// - *Indexed* elements hold array/string-like numbered slots.
///
/// Objects are value-copyable: a transaction workspace clones an object,
/// mutates the clone, and the Linker folds dirty elements back into the
/// permanent copy at commit time.
class GsObject {
 public:
  GsObject() = default;
  GsObject(Oid oid, Oid class_oid) : oid_(oid), class_oid_(class_oid) {}

  Oid oid() const { return oid_; }
  Oid class_oid() const { return class_oid_; }
  void set_class_oid(Oid class_oid) { class_oid_ = class_oid; }

  // --- Named elements -----------------------------------------------------

  /// Binds `name` to `value` starting at `time`, creating the element on
  /// first use (optional instance variables cost nothing until bound).
  void WriteNamed(SymbolId name, TxnTime time, Value value);

  /// The value of `name` visible at `time`; nullptr if the element was
  /// never bound at or before `time`. A deleted element yields nil.
  const Value* ReadNamed(SymbolId name, TxnTime time) const;

  /// Full history of `name`, or nullptr if the element does not exist.
  const AssociationTable* NamedHistory(SymbolId name) const;

  bool HasNamed(SymbolId name) const { return NamedHistory(name) != nullptr; }

  /// All named elements in creation order (stable display order).
  const std::vector<NamedElement>& named_elements() const { return named_; }

  /// Number of named elements whose value at `time` is bound and non-nil —
  /// the cardinality of a set at `time`.
  std::size_t CountBoundNamedAt(TxnTime time) const;

  // --- Indexed elements ---------------------------------------------------

  /// Writes slot `index` (0-based) at `time`, growing the object; slots
  /// skipped over spring into existence bound to nil at `time`.
  void WriteIndexed(std::size_t index, TxnTime time, Value value);

  /// Appends a new slot bound at `time`; returns its index.
  std::size_t AppendIndexed(TxnTime time, Value value);

  /// The value of slot `index` at `time`; nullptr if the slot did not
  /// exist at `time`.
  const Value* ReadIndexed(std::size_t index, TxnTime time) const;

  /// Number of slots that existed at `time`. Slot creation times are
  /// non-decreasing by construction (appends carry commit times, which
  /// increase), so this is a binary search.
  std::size_t IndexedSizeAt(TxnTime time) const;

  /// Total allocated slots across all times.
  std::size_t indexed_capacity() const { return indexed_.size(); }

  const AssociationTable* IndexedHistory(std::size_t index) const {
    return index < indexed_.size() ? &indexed_[index] : nullptr;
  }

  // --- History tiering ------------------------------------------------------

  /// Largest demotion boundary applied to this object: every binding at a
  /// time strictly below the floor is complete only in the tier store's
  /// cold runs (in memory each element keeps just its creation marker and
  /// the carry-forward). 0 = full history resident. Reads at `t <
  /// history_floor()` must consult the level resolver.
  TxnTime history_floor() const { return history_floor_; }
  void set_history_floor(TxnTime floor) { history_floor_ = floor; }

  /// Bindings a demotion at `boundary` would move to cold storage.
  std::size_t CountTruncatableBelow(TxnTime boundary) const;

  /// Truncates every element's history below `boundary` (keeping creation
  /// markers and carry-forwards) and raises the floor. The caller must
  /// have durably emitted the full prefix at or before `boundary` first.
  /// Returns the number of associations removed.
  std::size_t TruncateHistoryBelow(TxnTime boundary);

  // --- Accounting ----------------------------------------------------------

  /// Total associations stored across every element (history bloat metric;
  /// feeds the Boxer's track-packing estimate).
  std::size_t TotalAssociations() const;

  /// Rough serialized size in bytes, used by the Boxer to pack tracks.
  std::size_t ApproximateByteSize() const;

 private:
  Oid oid_;
  Oid class_oid_;
  TxnTime history_floor_ = 0;
  std::vector<NamedElement> named_;
  std::vector<AssociationTable> indexed_;
};

}  // namespace gemstone

#endif  // GEMSTONE_OBJECT_GS_OBJECT_H_
