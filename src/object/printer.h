#ifndef GEMSTONE_OBJECT_PRINTER_H_
#define GEMSTONE_OBJECT_PRINTER_H_

#include <string>

#include "core/ids.h"
#include "object/object_memory.h"
#include "object/value.h"

namespace gemstone {

/// Renders `value` as seen at `time` in the paper's STDM notation:
/// `{Name: 'Sales', Managers: {'Nathen', 'Roberts'}, Budget: 142000}`.
/// Alias element names are elided (as §5.1 does for sets of simple
/// values); recursion stops at `max_depth` and on cycles (printed as
/// `<oid:N>`), and unbound/nil set members are skipped.
std::string PrintValue(const ObjectMemory& memory, const Value& value,
                       TxnTime time, int max_depth = 8);

/// Convenience overload for a whole object.
std::string PrintObject(const ObjectMemory& memory, Oid oid, TxnTime time,
                        int max_depth = 8);

}  // namespace gemstone

#endif  // GEMSTONE_OBJECT_PRINTER_H_
