#include "object/printer.h"

#include <unordered_set>

namespace gemstone {

namespace {

void PrintRec(const ObjectMemory& memory, const Value& value, TxnTime time,
              int depth, std::unordered_set<std::uint64_t>* on_path,
              std::string* out) {
  if (!value.IsRef()) {
    if (value.IsSymbol()) {
      out->append("#").append(memory.symbols().Name(value.symbol()));
      return;
    }
    out->append(value.ToString());
    return;
  }
  const Oid oid = value.ref();
  if (depth <= 0 || on_path->count(oid.raw) != 0) {
    out->append("<").append(oid.ToString()).append(">");
    return;
  }
  const GsObject* object = memory.Find(oid);
  if (object == nullptr) {
    out->append(memory.IsArchived(oid) ? "<archived>" : "<missing>");
    return;
  }
  on_path->insert(oid.raw);
  out->append("{");
  bool first = true;
  for (const NamedElement& element : object->named_elements()) {
    const Value* v = element.table.ValueAt(time);
    const bool is_alias = memory.symbols().IsAlias(element.name);
    if (v == nullptr) continue;
    if (is_alias && v->IsNil()) continue;  // departed set member
    if (!first) out->append(", ");
    first = false;
    if (!is_alias) {
      out->append(memory.symbols().Name(element.name)).append(": ");
    }
    PrintRec(memory, *v, time, depth - 1, on_path, out);
  }
  const std::size_t n = object->IndexedSizeAt(time);
  for (std::size_t i = 0; i < n; ++i) {
    if (!first) out->append(", ");
    first = false;
    const Value* v = object->ReadIndexed(i, time);
    Value nil;
    PrintRec(memory, v ? *v : nil, time, depth - 1, on_path, out);
  }
  out->append("}");
  on_path->erase(oid.raw);
}

}  // namespace

std::string PrintValue(const ObjectMemory& memory, const Value& value,
                       TxnTime time, int max_depth) {
  std::string out;
  std::unordered_set<std::uint64_t> on_path;
  PrintRec(memory, value, time, max_depth, &on_path, &out);
  return out;
}

std::string PrintObject(const ObjectMemory& memory, Oid oid, TxnTime time,
                        int max_depth) {
  return PrintValue(memory, Value::Ref(oid), time, max_depth);
}

}  // namespace gemstone
