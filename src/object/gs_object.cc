#include "object/gs_object.h"

#include <algorithm>

namespace gemstone {

void GsObject::WriteNamed(SymbolId name, TxnTime time, Value value) {
  for (NamedElement& element : named_) {
    if (element.name == name) {
      element.table.Bind(time, std::move(value));
      return;
    }
  }
  named_.push_back(NamedElement{name, {}});
  named_.back().table.Bind(time, std::move(value));
}

const Value* GsObject::ReadNamed(SymbolId name, TxnTime time) const {
  const AssociationTable* table = NamedHistory(name);
  return table ? table->ValueAt(time) : nullptr;
}

const AssociationTable* GsObject::NamedHistory(SymbolId name) const {
  for (const NamedElement& element : named_) {
    if (element.name == name) return &element.table;
  }
  return nullptr;
}

std::size_t GsObject::CountBoundNamedAt(TxnTime time) const {
  std::size_t count = 0;
  for (const NamedElement& element : named_) {
    const Value* v = element.table.ValueAt(time);
    if (v != nullptr && !v->IsNil()) ++count;
  }
  return count;
}

void GsObject::WriteIndexed(std::size_t index, TxnTime time, Value value) {
  while (indexed_.size() <= index) {
    indexed_.emplace_back();
    if (indexed_.size() <= index) {
      // Intermediate slots exist from `time` onward, bound to nil.
      indexed_.back().Bind(time, Value::Nil());
    }
  }
  indexed_[index].Bind(time, std::move(value));
}

std::size_t GsObject::AppendIndexed(TxnTime time, Value value) {
  indexed_.emplace_back();
  indexed_.back().Bind(time, std::move(value));
  return indexed_.size() - 1;
}

const Value* GsObject::ReadIndexed(std::size_t index, TxnTime time) const {
  if (index >= indexed_.size()) return nullptr;
  return indexed_[index].ValueAt(time);
}

std::size_t GsObject::IndexedSizeAt(TxnTime time) const {
  // First slot whose first binding is after `time` ends the prefix.
  auto it = std::upper_bound(
      indexed_.begin(), indexed_.end(), time,
      [](TxnTime t, const AssociationTable& table) {
        return t < table.FirstBoundAt();
      });
  return static_cast<std::size_t>(it - indexed_.begin());
}

std::size_t GsObject::CountTruncatableBelow(TxnTime boundary) const {
  std::size_t count = 0;
  for (const NamedElement& element : named_) {
    count += element.table.CountTruncatableBelow(boundary);
  }
  for (const AssociationTable& table : indexed_) {
    count += table.CountTruncatableBelow(boundary);
  }
  return count;
}

std::size_t GsObject::TruncateHistoryBelow(TxnTime boundary) {
  std::size_t removed = 0;
  for (NamedElement& element : named_) {
    removed += element.table.TruncateBelow(boundary);
  }
  for (AssociationTable& table : indexed_) {
    removed += table.TruncateBelow(boundary);
  }
  if (boundary > history_floor_) history_floor_ = boundary;
  return removed;
}

std::size_t GsObject::TotalAssociations() const {
  std::size_t total = 0;
  for (const NamedElement& element : named_) {
    total += element.table.history_size();
  }
  for (const AssociationTable& table : indexed_) {
    total += table.history_size();
  }
  return total;
}

std::size_t GsObject::ApproximateByteSize() const {
  // Header + per-element name + per-association (time, tagged value).
  std::size_t bytes = 16;
  auto value_bytes = [](const Value& v) -> std::size_t {
    return v.IsString() ? 9 + v.string().size() : 9;
  };
  for (const NamedElement& element : named_) {
    bytes += 4;
    for (const Association& a : element.table.entries()) {
      bytes += 8 + value_bytes(a.value);
    }
  }
  for (const AssociationTable& table : indexed_) {
    bytes += 2;
    for (const Association& a : table.entries()) {
      bytes += 8 + value_bytes(a.value);
    }
  }
  return bytes;
}

}  // namespace gemstone
