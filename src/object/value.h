#ifndef GEMSTONE_OBJECT_VALUE_H_
#define GEMSTONE_OBJECT_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

#include "core/ids.h"

namespace gemstone {

/// Discriminates the immediate value kinds of the GemStone data model.
///
/// Simple (immediate) values — nil, booleans, integers, floats, strings,
/// symbols — are stored inline and compare by value; per §5.4 "STDM does
/// not support entity identity, except for simple, nonchangeable values",
/// so for these, value equality *is* identity. kRef is a reference to a
/// full GsObject and carries only the Oid: equality of two kRef values is
/// entity identity, never structural equivalence.
enum class ValueTag : std::uint8_t {
  kNil = 0,
  kBoolean,
  kInteger,
  kFloat,
  kString,
  kSymbol,
  kRef,
  kHandle,  // transient runtime payload (block closures); never persisted
};

/// Opaque base for transient runtime payloads carried in a Value (the
/// OPAL layer derives BlockClosure from this). Handles compare by
/// pointer identity and are not serializable — the storage layer writes
/// them as nil.
class RuntimeHandle {
 public:
  virtual ~RuntimeHandle() = default;
};

std::string_view ValueTagToString(ValueTag tag);

/// A tagged immediate value or object reference.
class Value {
 public:
  /// Default-constructed Value is nil.
  Value() = default;

  static Value Nil() { return Value(); }
  static Value Boolean(bool b) { return Value(Repr(std::in_place_index<1>, b)); }
  static Value Integer(std::int64_t i) {
    return Value(Repr(std::in_place_index<2>, i));
  }
  static Value Float(double d) { return Value(Repr(std::in_place_index<3>, d)); }
  static Value String(std::string s) {
    return Value(Repr(std::in_place_index<4>, std::move(s)));
  }
  static Value Symbol(SymbolId id) {
    return Value(Repr(std::in_place_index<5>, id));
  }
  static Value Ref(Oid oid) { return Value(Repr(std::in_place_index<6>, oid)); }
  static Value Handle(std::shared_ptr<RuntimeHandle> handle) {
    return Value(Repr(std::in_place_index<7>, std::move(handle)));
  }

  ValueTag tag() const { return static_cast<ValueTag>(repr_.index()); }

  bool IsNil() const { return tag() == ValueTag::kNil; }
  bool IsBoolean() const { return tag() == ValueTag::kBoolean; }
  bool IsInteger() const { return tag() == ValueTag::kInteger; }
  bool IsFloat() const { return tag() == ValueTag::kFloat; }
  bool IsNumber() const { return IsInteger() || IsFloat(); }
  bool IsString() const { return tag() == ValueTag::kString; }
  bool IsSymbol() const { return tag() == ValueTag::kSymbol; }
  bool IsRef() const { return tag() == ValueTag::kRef; }
  bool IsHandle() const { return tag() == ValueTag::kHandle; }

  /// Unchecked accessors: the tag must match.
  bool boolean() const { return std::get<1>(repr_); }
  std::int64_t integer() const { return std::get<2>(repr_); }
  double real() const { return std::get<3>(repr_); }
  const std::string& string() const { return std::get<4>(repr_); }
  SymbolId symbol() const { return std::get<5>(repr_); }
  Oid ref() const { return std::get<6>(repr_); }
  const std::shared_ptr<RuntimeHandle>& handle() const {
    return std::get<7>(repr_);
  }

  /// Numeric value widened to double (tag must be kInteger or kFloat).
  double AsDouble() const {
    return IsInteger() ? static_cast<double>(integer()) : real();
  }

  /// Value equality for simple values; entity identity for references.
  /// Integers and floats compare numerically across the two tags.
  friend bool operator==(const Value& a, const Value& b) {
    if (a.IsNumber() && b.IsNumber()) {
      if (a.IsInteger() && b.IsInteger()) return a.integer() == b.integer();
      return a.AsDouble() == b.AsDouble();
    }
    return a.repr_ == b.repr_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Debug rendering: "nil", "42", "'text'", "#sym" (needs no symbol
  /// table: symbols render by id), "oid:7".
  std::string ToString() const;

 private:
  using Repr = std::variant<std::monostate, bool, std::int64_t, double,
                            std::string, SymbolId, Oid,
                            std::shared_ptr<RuntimeHandle>>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

/// A hash consistent with operator== for non-numeric mixing (integers and
/// floats that compare equal may hash differently only when one is a float
/// with fractional part zero; callers keying maps by Value should
/// normalize numbers first — collections in gs_object do).
struct ValueHash {
  std::size_t operator()(const Value& v) const;
};

}  // namespace gemstone

#endif  // GEMSTONE_OBJECT_VALUE_H_
