#ifndef GEMSTONE_OBJECT_OBJECT_MEMORY_H_
#define GEMSTONE_OBJECT_OBJECT_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/annotations.h"
#include "core/ids.h"
#include "core/sync.h"
#include "core/result.h"
#include "core/status.h"
#include "object/class_registry.h"
#include "object/gs_object.h"
#include "object/symbol_table.h"
#include "object/value.h"

namespace gemstone {

/// Oids of the bootstrapped kernel class hierarchy (a database-oriented
/// subset of the ST80 image: "minus display and file system classes", §6).
struct KernelClasses {
  Oid object;
  Oid undefined_object;
  Oid boolean;
  Oid magnitude;
  Oid number;
  Oid integer;
  Oid real;  // "Float" in ST80; "real" here to avoid clashing with Value.
  Oid string;
  Oid symbol;
  Oid collection;
  Oid set;
  Oid bag;
  Oid dictionary;
  Oid array;
  Oid ordered_collection;
  Oid association;
  Oid block;
  Oid metaclass;      // class "Class"
  Oid system;         // class "System": transaction control, time dial
  Oid system_object;  // the System singleton instance
};

/// The shared permanent object space plus the global object table.
///
/// §6: "The Object Manager performs the same operations as the ST80
/// object memory, but is quite different in structure" — objects here are
/// element/association-table structures (GsObject), not contiguous words,
/// precisely because "GemStone objects retain history [and] grow with
/// time".
///
/// Concurrency contract: many sessions read concurrently; mutation happens
/// only inside TransactionManager::Commit (the Linker) under this class's
/// writer lock. Oid allocation is lock-free.
///
/// There are deliberately no arbitrary limits here (§2B): the 32K-object /
/// 64KB-object ceilings of ST80 implementations do not exist; capacity is
/// bounded by memory / simulated disk only.
class ObjectMemory {
 public:
  ObjectMemory();
  ObjectMemory(const ObjectMemory&) = delete;
  ObjectMemory& operator=(const ObjectMemory&) = delete;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  ClassRegistry& classes() { return classes_; }
  const ClassRegistry& classes() const { return classes_; }
  const KernelClasses& kernel() const { return kernel_; }

  /// Mints a fresh, never-reused identity. Thread-safe.
  Oid AllocateOid() { return Oid(next_oid_.fetch_add(1)); }

  /// Recovery support: guarantees future allocations exceed `floor`
  /// (identities are permanent; a recovered image must not re-mint them).
  void EnsureOidAbove(std::uint64_t floor) {
    std::uint64_t current = next_oid_.load();
    while (current <= floor &&
           !next_oid_.compare_exchange_weak(current, floor + 1)) {
    }
  }

  // --- Permanent store ------------------------------------------------------

  /// Publishes `object` into the permanent space (commit path only).
  /// Fails with AlreadyExists if the oid is present.
  Status Insert(GsObject object);

  /// Read access; nullptr when absent (never existed, or archived).
  /// The pointer remains valid until the object is archived; element reads
  /// through it are safe concurrently with commits only for times <= the
  /// reader's snapshot (history entries are append-only).
  const GsObject* Find(Oid oid) const;

  /// Mutable access for the Linker at commit; nullptr when absent.
  GsObject* FindMutable(Oid oid);

  bool Contains(Oid oid) const;

  /// Detaches an object for migration to archival media (§6: a DBA "can
  /// explicitly move objects to other media"); subsequent Find returns
  /// nullptr and reads report Unavailable.
  Result<GsObject> Detach(Oid oid);

  /// True if `oid` was detached to archival media at some point.
  bool IsArchived(Oid oid) const;

  std::size_t NumObjects() const;

  /// Every oid currently resident (snapshot; used by checkpointing).
  std::vector<Oid> AllOids() const;

  // --- Typed reads ----------------------------------------------------------

  /// The value of `oid`'s element `name` at `time`. NotFound when the
  /// object or element is missing; Unavailable when archived.
  Result<Value> ReadNamed(Oid oid, SymbolId name, TxnTime time) const;

  /// Class of a value: immediates map to kernel classes, references to the
  /// referenced object's class (nil Oid if the object is unknown).
  Oid ClassOf(const Value& value) const;

  /// Structural equivalence at `time` (§4.2 distinguishes this from
  /// identity): simple values by value; references recursively by element
  /// structure. Handles cycles.
  bool DeepEquals(const Value& a, const Value& b, TxnTime time) const;

 private:
  bool DeepEqualsRec(
      const Value& a, const Value& b, TxnTime time,
      std::unordered_map<std::uint64_t, std::uint64_t>* assumed) const;

  SymbolTable symbols_;
  ClassRegistry classes_;
  KernelClasses kernel_;
  std::atomic<std::uint64_t> next_oid_{1};

  mutable SharedMutex mu_{LockRank::kObjectMemory, "object.memory_mu"};
  // The global object table ("GOOP ... resolved through a global object
  // table", §6): identity -> object representation.
  std::unordered_map<std::uint64_t, std::unique_ptr<GsObject>> objects_
      GS_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, bool> archived_ GS_GUARDED_BY(mu_);
};

}  // namespace gemstone

#endif  // GEMSTONE_OBJECT_OBJECT_MEMORY_H_
