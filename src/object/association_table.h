#ifndef GEMSTONE_OBJECT_ASSOCIATION_TABLE_H_
#define GEMSTONE_OBJECT_ASSOCIATION_TABLE_H_

#include <cstddef>
#include <vector>

#include "core/ids.h"
#include "object/value.h"

namespace gemstone {

/// One (transaction time, value) pair: "associations are pairs of
/// transaction times and object pointers, each representing that the
/// element acquired the object as its value at the time given" (§6).
struct Association {
  TxnTime time = kTimeOrigin;
  Value value;
};

/// The full history of one element of an object.
///
/// §5.3.2: "we represent history in STDM by replacing an element's single
/// value with a set of values ... the binding between an element name and
/// its associated value is indexed by time." The table is kept sorted by
/// ascending time; a read at time T resolves to the binding with the
/// largest time <= T. Bindings are never erased — deletion is a binding
/// to nil at a later time (Figure 1's departed employee).
class AssociationTable {
 public:
  AssociationTable() = default;

  /// Binds `value` starting at `time`. If a binding at exactly `time`
  /// exists it is replaced (a transaction writes each element at most once
  /// per commit time); otherwise the pair is inserted in time order.
  /// Out-of-order binds are accepted (the Linker replays recovered history
  /// in arbitrary track order).
  void Bind(TxnTime time, Value value);

  /// The value visible at `time`, or nullptr if the element had no binding
  /// yet. Note a deleted element returns a pointer to a nil Value, which
  /// is distinct from "never bound".
  const Value* ValueAt(TxnTime time) const;

  /// The value visible now (largest binding).
  const Value* CurrentValue() const {
    return entries_.empty() ? nullptr : &entries_.back().value;
  }

  /// Time of the earliest binding, or kTimeNow if empty.
  TxnTime FirstBoundAt() const {
    return entries_.empty() ? kTimeNow : entries_.front().time;
  }

  /// Time of the latest binding, or kTimeOrigin if empty.
  TxnTime LastBoundAt() const {
    return entries_.empty() ? kTimeOrigin : entries_.back().time;
  }

  std::size_t history_size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Full history, ascending by time.
  const std::vector<Association>& entries() const { return entries_; }

  /// Bindings that TruncateBelow(boundary) would drop: every entry at or
  /// before `boundary` except the first (the creation marker, which keeps
  /// FirstBoundAt/IndexedSizeAt exact) and the last (the carry-forward
  /// that keeps reads at times >= boundary resolving in memory).
  std::size_t CountTruncatableBelow(TxnTime boundary) const;

  /// Drops the truncatable prefix (see CountTruncatableBelow). The caller
  /// must have emitted every entry at or before `boundary` to a cold run
  /// first — after this, reads at times < boundary may resolve to the
  /// creation marker instead of the true binding and must be routed to
  /// the tier resolver. Returns the number of entries removed.
  std::size_t TruncateBelow(TxnTime boundary);

 private:
  std::vector<Association> entries_;
};

}  // namespace gemstone

#endif  // GEMSTONE_OBJECT_ASSOCIATION_TABLE_H_
