#ifndef GEMSTONE_OBJECT_SYMBOL_TABLE_H_
#define GEMSTONE_OBJECT_SYMBOL_TABLE_H_

#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ids.h"

namespace gemstone {

/// Interns strings into dense SymbolIds.
///
/// Element names, selectors and OPAL #symbols all live here, so symbol
/// comparison anywhere in the system is an integer compare. Also mints
/// the "arbitrary aliases" §5.1 requires as element names for unlabeled
/// set members.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `text`, interning it on first sight.
  SymbolId Intern(std::string_view text);

  /// Returns the id for `text` if already interned, kInvalidSymbol otherwise.
  SymbolId Lookup(std::string_view text) const;

  /// The spelling of an interned symbol. `id` must be valid.
  const std::string& Name(SymbolId id) const;

  /// Mints a fresh, never-before-seen alias symbol ("_a1", "_a2", ...),
  /// used as the element name of unlabeled set members (§5.1).
  SymbolId GenerateAlias();

  /// Interns `text` and marks it as an alias — used when recovering
  /// serialized objects whose alias names must keep their alias-ness.
  SymbolId InternAlias(std::string_view text);

  /// True if `id` was produced by GenerateAlias.
  bool IsAlias(SymbolId id) const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> names_;
  std::vector<bool> is_alias_;
  std::unordered_map<std::string, SymbolId> ids_;
  std::uint64_t next_alias_ = 1;
};

}  // namespace gemstone

#endif  // GEMSTONE_OBJECT_SYMBOL_TABLE_H_
