#ifndef GEMSTONE_OBJECT_SYMBOL_TABLE_H_
#define GEMSTONE_OBJECT_SYMBOL_TABLE_H_

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/annotations.h"
#include "core/ids.h"
#include "core/sync.h"

namespace gemstone {

/// Interns strings into dense SymbolIds.
///
/// Element names, selectors and OPAL #symbols all live here, so symbol
/// comparison anywhere in the system is an integer compare. Also mints
/// the "arbitrary aliases" §5.1 requires as element names for unlabeled
/// set members.
///
/// Thread-safe. Lookups of already-interned spellings take only the
/// reader side of a shared mutex (the snapshot read path interns the
/// same few selectors thousands of times per request, concurrently
/// across workers); a first-sight intern upgrades to the writer side
/// and re-checks, so two sessions interning the same spelling
/// concurrently always agree on the id. Interned spellings live in a
/// deque and are immutable afterwards, so the reference Name() returns
/// stays valid (and its characters stable) for the table's lifetime,
/// even while other threads intern.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `text`, interning it on first sight.
  SymbolId Intern(std::string_view text);

  /// Returns the id for `text` if already interned, kInvalidSymbol otherwise.
  SymbolId Lookup(std::string_view text) const;

  /// The spelling of an interned symbol. `id` must be valid.
  const std::string& Name(SymbolId id) const;

  /// Mints a fresh, never-before-seen alias symbol ("_a1", "_a2", ...),
  /// used as the element name of unlabeled set members (§5.1).
  SymbolId GenerateAlias();

  /// Interns `text` and marks it as an alias — used when recovering
  /// serialized objects whose alias names must keep their alias-ness.
  /// One critical section: the id is already an alias by the time any
  /// other thread can observe it.
  SymbolId InternAlias(std::string_view text);

  /// True if `id` was produced by GenerateAlias.
  bool IsAlias(SymbolId id) const;

  std::size_t size() const;

 private:
  /// Lookup-or-insert shared by Intern/InternAlias/GenerateAlias.
  SymbolId InternLocked(std::string_view text, bool alias)
      GS_REQUIRES(mu_);

  mutable SharedMutex mu_{LockRank::kSymbolTable,
                          "object.symbol_table_mu"};
  // Deque: interned spellings never move, so Name() references survive
  // concurrent interning.
  std::deque<std::string> names_ GS_GUARDED_BY(mu_);
  std::vector<bool> is_alias_ GS_GUARDED_BY(mu_);
  std::unordered_map<std::string, SymbolId> ids_ GS_GUARDED_BY(mu_);
  std::uint64_t next_alias_ GS_GUARDED_BY(mu_) = 1;
};

}  // namespace gemstone

#endif  // GEMSTONE_OBJECT_SYMBOL_TABLE_H_
