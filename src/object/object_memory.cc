#include "object/object_memory.h"

#include <utility>

namespace gemstone {

namespace {
// Kernel classes occupy a reserved low oid range.
constexpr std::uint64_t kFirstUserOid = 64;
}  // namespace

ObjectMemory::ObjectMemory() : classes_(&symbols_) {
  next_oid_.store(kFirstUserOid);
  std::uint64_t next = 1;
  auto define = [&](std::string_view name, Oid superclass, ObjectFormat fmt) {
    Oid oid(next++);
    auto result = classes_.DefineClass(oid, name, superclass, fmt, {});
    return std::move(result).ValueOrDie();
  };
  kernel_.object = define("Object", kNilOid, ObjectFormat::kNamed);
  kernel_.undefined_object =
      define("UndefinedObject", kernel_.object, ObjectFormat::kNamed);
  kernel_.boolean = define("Boolean", kernel_.object, ObjectFormat::kNamed);
  kernel_.magnitude = define("Magnitude", kernel_.object, ObjectFormat::kNamed);
  kernel_.number = define("Number", kernel_.magnitude, ObjectFormat::kNamed);
  kernel_.integer = define("Integer", kernel_.number, ObjectFormat::kNamed);
  kernel_.real = define("Float", kernel_.number, ObjectFormat::kNamed);
  kernel_.string = define("String", kernel_.magnitude, ObjectFormat::kIndexed);
  kernel_.symbol = define("Symbol", kernel_.string, ObjectFormat::kIndexed);
  kernel_.collection =
      define("Collection", kernel_.object, ObjectFormat::kNamed);
  kernel_.set = define("Set", kernel_.collection, ObjectFormat::kSet);
  kernel_.bag = define("Bag", kernel_.collection, ObjectFormat::kSet);
  kernel_.dictionary =
      define("Dictionary", kernel_.collection, ObjectFormat::kSet);
  kernel_.array = define("Array", kernel_.collection, ObjectFormat::kIndexed);
  kernel_.ordered_collection =
      define("OrderedCollection", kernel_.collection, ObjectFormat::kIndexed);
  kernel_.association =
      define("Association", kernel_.object, ObjectFormat::kNamed);
  kernel_.block = define("Block", kernel_.object, ObjectFormat::kNamed);
  kernel_.metaclass = define("Class", kernel_.object, ObjectFormat::kNamed);
  kernel_.system = define("System", kernel_.object, ObjectFormat::kNamed);
  // The System singleton occupies a fixed reserved oid below the first
  // user identity.
  kernel_.system_object = Oid(62);
  objects_.emplace(kernel_.system_object.raw, std::make_unique<GsObject>(
                                                  kernel_.system_object,
                                                  kernel_.system));
}

Status ObjectMemory::Insert(GsObject object) {
  WriterMutexLock lock(mu_);
  const std::uint64_t key = object.oid().raw;
  if (objects_.count(key) != 0) {
    return Status::AlreadyExists("object already in permanent space: " +
                                 object.oid().ToString());
  }
  objects_.emplace(key, std::make_unique<GsObject>(std::move(object)));
  archived_.erase(key);  // a restored object is no longer archival-only
  return Status::OK();
}

const GsObject* ObjectMemory::Find(Oid oid) const {
  ReaderMutexLock lock(mu_);
  auto it = objects_.find(oid.raw);
  return it == objects_.end() ? nullptr : it->second.get();
}

GsObject* ObjectMemory::FindMutable(Oid oid) {
  ReaderMutexLock lock(mu_);
  auto it = objects_.find(oid.raw);
  return it == objects_.end() ? nullptr : it->second.get();
}

bool ObjectMemory::Contains(Oid oid) const {
  ReaderMutexLock lock(mu_);
  return objects_.count(oid.raw) != 0;
}

Result<GsObject> ObjectMemory::Detach(Oid oid) {
  WriterMutexLock lock(mu_);
  auto it = objects_.find(oid.raw);
  if (it == objects_.end()) {
    return Status::NotFound("cannot archive absent object: " + oid.ToString());
  }
  GsObject detached = std::move(*it->second);
  objects_.erase(it);
  archived_[oid.raw] = true;
  return detached;
}

bool ObjectMemory::IsArchived(Oid oid) const {
  ReaderMutexLock lock(mu_);
  auto it = archived_.find(oid.raw);
  return it != archived_.end() && it->second;
}

std::size_t ObjectMemory::NumObjects() const {
  ReaderMutexLock lock(mu_);
  return objects_.size();
}

std::vector<Oid> ObjectMemory::AllOids() const {
  ReaderMutexLock lock(mu_);
  std::vector<Oid> oids;
  oids.reserve(objects_.size());
  for (const auto& [raw, obj] : objects_) oids.push_back(Oid(raw));
  return oids;
}

Result<Value> ObjectMemory::ReadNamed(Oid oid, SymbolId name,
                                      TxnTime time) const {
  const GsObject* object = Find(oid);
  if (object == nullptr) {
    if (IsArchived(oid)) {
      return Status::Unavailable("object migrated to archival media: " +
                                 oid.ToString());
    }
    return Status::NotFound("no such object: " + oid.ToString());
  }
  const Value* value = object->ReadNamed(name, time);
  if (value == nullptr) {
    return Status::NotFound("element not bound at requested time");
  }
  return *value;
}

Oid ObjectMemory::ClassOf(const Value& value) const {
  switch (value.tag()) {
    case ValueTag::kNil:
      return kernel_.undefined_object;
    case ValueTag::kBoolean:
      return kernel_.boolean;
    case ValueTag::kInteger:
      return kernel_.integer;
    case ValueTag::kFloat:
      return kernel_.real;
    case ValueTag::kString:
      return kernel_.string;
    case ValueTag::kSymbol:
      return kernel_.symbol;
    case ValueTag::kRef: {
      const GsObject* object = Find(value.ref());
      return object == nullptr ? kNilOid : object->class_oid();
    }
    case ValueTag::kHandle:
      return kernel_.block;
  }
  return kNilOid;
}

bool ObjectMemory::DeepEquals(const Value& a, const Value& b,
                              TxnTime time) const {
  std::unordered_map<std::uint64_t, std::uint64_t> assumed;
  return DeepEqualsRec(a, b, time, &assumed);
}

bool ObjectMemory::DeepEqualsRec(
    const Value& a, const Value& b, TxnTime time,
    std::unordered_map<std::uint64_t, std::uint64_t>* assumed) const {
  if (!a.IsRef() || !b.IsRef()) return a == b;
  if (a.ref() == b.ref()) return true;
  // Cycle handling: if we are already comparing this pair higher in the
  // recursion, assume equality (coinductive structural equivalence).
  auto it = assumed->find(a.ref().raw);
  if (it != assumed->end() && it->second == b.ref().raw) return true;

  const GsObject* oa = Find(a.ref());
  const GsObject* ob = Find(b.ref());
  if (oa == nullptr || ob == nullptr) return false;
  if (oa->class_oid() != ob->class_oid()) return false;

  (*assumed)[a.ref().raw] = b.ref().raw;

  // Named elements: each bound (non-nil) element in one must match the
  // other. Alias-named elements (set members) compare as unordered sets.
  const bool is_set =
      classes_.Get(oa->class_oid()) != nullptr &&
      classes_.Get(oa->class_oid())->format() == ObjectFormat::kSet;
  if (is_set) {
    if (oa->CountBoundNamedAt(time) != ob->CountBoundNamedAt(time)) {
      assumed->erase(a.ref().raw);
      return false;
    }
    for (const NamedElement& ea : oa->named_elements()) {
      const Value* va = ea.table.ValueAt(time);
      if (va == nullptr || va->IsNil()) continue;
      bool found = false;
      for (const NamedElement& eb : ob->named_elements()) {
        const Value* vb = eb.table.ValueAt(time);
        if (vb == nullptr || vb->IsNil()) continue;
        if (DeepEqualsRec(*va, *vb, time, assumed)) {
          found = true;
          break;
        }
      }
      if (!found) {
        assumed->erase(a.ref().raw);
        return false;
      }
    }
  } else {
    auto bound_matches = [&](const GsObject& x, const GsObject& y) {
      for (const NamedElement& ex : x.named_elements()) {
        const Value* vx = ex.table.ValueAt(time);
        if (vx == nullptr || vx->IsNil()) continue;
        const Value* vy = y.ReadNamed(ex.name, time);
        Value nil;
        if (vy == nullptr) vy = &nil;
        if (!DeepEqualsRec(*vx, *vy, time, assumed)) return false;
      }
      return true;
    };
    if (!bound_matches(*oa, *ob) || !bound_matches(*ob, *oa)) {
      assumed->erase(a.ref().raw);
      return false;
    }
  }

  // Indexed elements compare positionally over the slots alive at `time`.
  const std::size_t na = oa->IndexedSizeAt(time);
  const std::size_t nb = ob->IndexedSizeAt(time);
  if (na != nb) {
    assumed->erase(a.ref().raw);
    return false;
  }
  for (std::size_t i = 0; i < na; ++i) {
    const Value* va = oa->ReadIndexed(i, time);
    const Value* vb = ob->ReadIndexed(i, time);
    Value nil;
    if (va == nullptr) va = &nil;
    if (vb == nullptr) vb = &nil;
    if (!DeepEqualsRec(*va, *vb, time, assumed)) {
      assumed->erase(a.ref().raw);
      return false;
    }
  }
  assumed->erase(a.ref().raw);
  return true;
}

}  // namespace gemstone
