#include "object/class_registry.h"

namespace gemstone {

Result<Oid> ClassRegistry::DefineClass(
    Oid oid, std::string_view name, Oid superclass, ObjectFormat format,
    const std::vector<std::string>& inst_var_names) {
  WriterMutexLock lock(mu_);
  std::string key(name);
  if (by_name_.count(key) != 0) {
    return Status::AlreadyExists("class already defined: " + key);
  }
  if (!superclass.IsNil() && classes_.count(superclass.raw) == 0) {
    return Status::NotFound("superclass does not exist: " +
                            superclass.ToString());
  }
  auto cls = std::make_unique<GsClass>(oid, key, superclass, format);
  for (const std::string& var : inst_var_names) {
    SymbolId sym = symbols_->Intern(var);
    if (cls->declares_inst_var(sym)) {
      return Status::InvalidArgument("duplicate instance variable: " + var);
    }
    // Shadowing an inherited variable is disallowed (strict hierarchy).
    for (Oid c = superclass; !c.IsNil();) {
      const GsClass* ancestor = GetLocked(c);
      if (ancestor->declares_inst_var(sym)) {
        return Status::InvalidArgument("instance variable '" + var +
                                       "' already declared by ancestor " +
                                       ancestor->name());
      }
      c = ancestor->superclass();
    }
    cls->add_inst_var(sym);
  }
  classes_.emplace(oid.raw, std::move(cls));
  by_name_.emplace(std::move(key), oid);
  version_.fetch_add(1, std::memory_order_release);
  return oid;
}

Status ClassRegistry::AddInstVar(Oid class_oid, std::string_view name) {
  WriterMutexLock lock(mu_);
  GsClass* cls = GetLocked(class_oid);
  if (cls == nullptr) {
    return Status::NotFound("no such class: " + class_oid.ToString());
  }
  SymbolId sym = symbols_->Intern(name);
  for (Oid c = class_oid; !c.IsNil();) {
    const GsClass* ancestor = GetLocked(c);
    if (ancestor->declares_inst_var(sym)) {
      return Status::AlreadyExists("instance variable exists: " +
                                   std::string(name));
    }
    c = ancestor->superclass();
  }
  cls->add_inst_var(sym);
  version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status ClassRegistry::InstallMethod(Oid class_oid, SymbolId selector,
                                    std::shared_ptr<const MethodHandle> method,
                                    std::optional<std::string> source) {
  WriterMutexLock lock(mu_);
  GsClass* cls = GetLocked(class_oid);
  if (cls == nullptr) {
    return Status::NotFound("no such class: " + class_oid.ToString());
  }
  auto existing = cls->methods().find(selector);
  if (existing != cls->methods().end()) {
    retired_methods_.push_back(existing->second);
  }
  cls->InstallMethod(selector, std::move(method));
  if (source.has_value()) {
    cls->SetMethodSource(selector, std::move(*source));
  }
  version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

GsClass* ClassRegistry::GetLocked(Oid oid) {
  auto it = classes_.find(oid.raw);
  return it == classes_.end() ? nullptr : it->second.get();
}

const GsClass* ClassRegistry::GetLocked(Oid oid) const {
  auto it = classes_.find(oid.raw);
  return it == classes_.end() ? nullptr : it->second.get();
}

GsClass* ClassRegistry::Get(Oid oid) {
  ReaderMutexLock lock(mu_);
  return GetLocked(oid);
}

const GsClass* ClassRegistry::Get(Oid oid) const {
  ReaderMutexLock lock(mu_);
  return GetLocked(oid);
}

GsClass* ClassRegistry::FindByName(std::string_view name) {
  ReaderMutexLock lock(mu_);
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : GetLocked(it->second);
}

const GsClass* ClassRegistry::FindByName(std::string_view name) const {
  ReaderMutexLock lock(mu_);
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : GetLocked(it->second);
}

std::vector<SymbolId> ClassRegistry::AllInstVars(Oid class_oid) const {
  ReaderMutexLock lock(mu_);
  // Collect the chain root-first so inherited variables come before own.
  std::vector<const GsClass*> chain;
  for (Oid c = class_oid; !c.IsNil();) {
    const GsClass* cls = GetLocked(c);
    if (cls == nullptr) break;
    chain.push_back(cls);
    c = cls->superclass();
  }
  std::vector<SymbolId> all;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const auto& own = (*it)->own_inst_vars();
    all.insert(all.end(), own.begin(), own.end());
  }
  return all;
}

bool ClassRegistry::IsKindOf(Oid class_oid, Oid ancestor) const {
  ReaderMutexLock lock(mu_);
  for (Oid c = class_oid; !c.IsNil();) {
    if (c == ancestor) return true;
    const GsClass* cls = GetLocked(c);
    if (cls == nullptr) return false;
    c = cls->superclass();
  }
  return false;
}

const MethodHandle* ClassRegistry::LookupMethod(Oid class_oid,
                                                SymbolId selector) const {
  Oid ignored;
  return LookupMethodFrom(class_oid, selector, &ignored);
}

const MethodHandle* ClassRegistry::LookupMethodFrom(Oid class_oid,
                                                    SymbolId selector,
                                                    Oid* defining_class) const {
  ReaderMutexLock lock(mu_);
  return LookupMethodFromLocked(class_oid, selector, defining_class);
}

const MethodHandle* ClassRegistry::LookupMethodFromLocked(
    Oid class_oid, SymbolId selector, Oid* defining_class) const {
  for (Oid c = class_oid; !c.IsNil();) {
    const GsClass* cls = GetLocked(c);
    if (cls == nullptr) return nullptr;
    if (const MethodHandle* method = cls->OwnMethod(selector)) {
      *defining_class = c;
      return method;
    }
    c = cls->superclass();
  }
  return nullptr;
}

std::vector<std::string> ClassRegistry::ClassNames() const {
  ReaderMutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, oid] : by_name_) names.push_back(name);
  return names;
}

}  // namespace gemstone
