#include "object/class_registry.h"

namespace gemstone {

Result<Oid> ClassRegistry::DefineClass(
    Oid oid, std::string_view name, Oid superclass, ObjectFormat format,
    const std::vector<std::string>& inst_var_names) {
  std::string key(name);
  if (by_name_.count(key) != 0) {
    return Status::AlreadyExists("class already defined: " + key);
  }
  if (!superclass.IsNil() && classes_.count(superclass.raw) == 0) {
    return Status::NotFound("superclass does not exist: " +
                            superclass.ToString());
  }
  auto cls = std::make_unique<GsClass>(oid, key, superclass, format);
  for (const std::string& var : inst_var_names) {
    SymbolId sym = symbols_->Intern(var);
    if (cls->declares_inst_var(sym)) {
      return Status::InvalidArgument("duplicate instance variable: " + var);
    }
    // Shadowing an inherited variable is disallowed (strict hierarchy).
    for (Oid c = superclass; !c.IsNil();) {
      const GsClass* ancestor = Get(c);
      if (ancestor->declares_inst_var(sym)) {
        return Status::InvalidArgument("instance variable '" + var +
                                       "' already declared by ancestor " +
                                       ancestor->name());
      }
      c = ancestor->superclass();
    }
    cls->add_inst_var(sym);
  }
  classes_.emplace(oid.raw, std::move(cls));
  by_name_.emplace(std::move(key), oid);
  return oid;
}

Status ClassRegistry::AddInstVar(Oid class_oid, std::string_view name) {
  GsClass* cls = Get(class_oid);
  if (cls == nullptr) {
    return Status::NotFound("no such class: " + class_oid.ToString());
  }
  SymbolId sym = symbols_->Intern(name);
  for (Oid c = class_oid; !c.IsNil();) {
    const GsClass* ancestor = Get(c);
    if (ancestor->declares_inst_var(sym)) {
      return Status::AlreadyExists("instance variable exists: " +
                                   std::string(name));
    }
    c = ancestor->superclass();
  }
  cls->add_inst_var(sym);
  return Status::OK();
}

GsClass* ClassRegistry::Get(Oid oid) {
  auto it = classes_.find(oid.raw);
  return it == classes_.end() ? nullptr : it->second.get();
}

const GsClass* ClassRegistry::Get(Oid oid) const {
  auto it = classes_.find(oid.raw);
  return it == classes_.end() ? nullptr : it->second.get();
}

GsClass* ClassRegistry::FindByName(std::string_view name) {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : Get(it->second);
}

const GsClass* ClassRegistry::FindByName(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : Get(it->second);
}

std::vector<SymbolId> ClassRegistry::AllInstVars(Oid class_oid) const {
  // Collect the chain root-first so inherited variables come before own.
  std::vector<const GsClass*> chain;
  for (Oid c = class_oid; !c.IsNil();) {
    const GsClass* cls = Get(c);
    if (cls == nullptr) break;
    chain.push_back(cls);
    c = cls->superclass();
  }
  std::vector<SymbolId> all;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const auto& own = (*it)->own_inst_vars();
    all.insert(all.end(), own.begin(), own.end());
  }
  return all;
}

bool ClassRegistry::IsKindOf(Oid class_oid, Oid ancestor) const {
  for (Oid c = class_oid; !c.IsNil();) {
    if (c == ancestor) return true;
    const GsClass* cls = Get(c);
    if (cls == nullptr) return false;
    c = cls->superclass();
  }
  return false;
}

const MethodHandle* ClassRegistry::LookupMethod(Oid class_oid,
                                                SymbolId selector) const {
  Oid ignored;
  return LookupMethodFrom(class_oid, selector, &ignored);
}

const MethodHandle* ClassRegistry::LookupMethodFrom(Oid class_oid,
                                                    SymbolId selector,
                                                    Oid* defining_class) const {
  for (Oid c = class_oid; !c.IsNil();) {
    const GsClass* cls = Get(c);
    if (cls == nullptr) return nullptr;
    if (const MethodHandle* method = cls->OwnMethod(selector)) {
      *defining_class = c;
      return method;
    }
    c = cls->superclass();
  }
  return nullptr;
}

std::vector<std::string> ClassRegistry::ClassNames() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, oid] : by_name_) names.push_back(name);
  return names;
}

}  // namespace gemstone
