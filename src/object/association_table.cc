#include "object/association_table.h"

#include <algorithm>

namespace gemstone {

namespace {
bool TimeLess(const Association& a, TxnTime t) { return a.time < t; }
}  // namespace

void AssociationTable::Bind(TxnTime time, Value value) {
  if (entries_.empty() || entries_.back().time < time) {
    entries_.push_back(Association{time, std::move(value)});
    return;
  }
  auto it = std::lower_bound(entries_.begin(), entries_.end(), time, TimeLess);
  if (it != entries_.end() && it->time == time) {
    it->value = std::move(value);
  } else {
    entries_.insert(it, Association{time, std::move(value)});
  }
}

std::size_t AssociationTable::CountTruncatableBelow(TxnTime boundary) const {
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), boundary,
      [](TxnTime t, const Association& a) { return t < a.time; });
  const std::size_t prefix =
      static_cast<std::size_t>(std::distance(entries_.begin(), it));
  return prefix <= 2 ? 0 : prefix - 2;
}

std::size_t AssociationTable::TruncateBelow(TxnTime boundary) {
  const std::size_t removable = CountTruncatableBelow(boundary);
  if (removable == 0) return 0;
  // Keep entries_[0] (creation marker) and the last prefix entry (the
  // carry-forward); drop everything between them.
  entries_.erase(entries_.begin() + 1, entries_.begin() + 1 + removable);
  return removable;
}

const Value* AssociationTable::ValueAt(TxnTime time) const {
  // Find the last entry with entry.time <= time.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), time,
      [](TxnTime t, const Association& a) { return t < a.time; });
  if (it == entries_.begin()) return nullptr;
  return &std::prev(it)->value;
}

}  // namespace gemstone
