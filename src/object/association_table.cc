#include "object/association_table.h"

#include <algorithm>

namespace gemstone {

namespace {
bool TimeLess(const Association& a, TxnTime t) { return a.time < t; }
}  // namespace

void AssociationTable::Bind(TxnTime time, Value value) {
  if (entries_.empty() || entries_.back().time < time) {
    entries_.push_back(Association{time, std::move(value)});
    return;
  }
  auto it = std::lower_bound(entries_.begin(), entries_.end(), time, TimeLess);
  if (it != entries_.end() && it->time == time) {
    it->value = std::move(value);
  } else {
    entries_.insert(it, Association{time, std::move(value)});
  }
}

const Value* AssociationTable::ValueAt(TxnTime time) const {
  // Find the last entry with entry.time <= time.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), time,
      [](TxnTime t, const Association& a) { return t < a.time; });
  if (it == entries_.begin()) return nullptr;
  return &std::prev(it)->value;
}

}  // namespace gemstone
