#include "storage/boxer.h"

#include <algorithm>

#include "storage/serializer.h"

namespace gemstone::storage {

namespace {
constexpr std::size_t kCountHeader = 4;    // u32 fragment count
constexpr std::size_t kFragmentHeader = 16;  // u64 oid + u32 offset + u32 len
}  // namespace

Boxer::Boxer(std::size_t track_capacity) : track_capacity_(track_capacity) {}

Result<Boxing> Boxer::Pack(
    std::span<const Oid> oids,
    std::span<const std::vector<std::uint8_t>> blobs) const {
  if (track_capacity_ < kCountHeader + kFragmentHeader + 1) {
    return Status::InvalidArgument("track capacity too small for boxing");
  }
  Boxing boxing;
  boxing.placements.resize(blobs.size());

  ByteWriter current;
  std::uint32_t current_count = 0;
  std::vector<Oid> current_oids;

  auto seal = [&]() {
    if (current_count == 0) return;
    ByteWriter track;
    track.PutU32(current_count);
    track.PutBytes(current.bytes());
    boxing.payloads.push_back(TrackPayload{track.Take(), current_oids});
    current = ByteWriter();
    current_count = 0;
    current_oids.clear();
  };

  for (std::size_t i = 0; i < blobs.size(); ++i) {
    const std::vector<std::uint8_t>& blob = blobs[i];
    std::size_t offset = 0;
    // Zero-length blobs cannot occur (serialized images always carry a
    // header), but emit a single empty fragment defensively.
    do {
      std::size_t room = track_capacity_ - kCountHeader - current.size();
      if (room <= kFragmentHeader) {
        seal();
        room = track_capacity_ - kCountHeader;
      }
      const std::size_t take =
          std::min(blob.size() - offset, room - kFragmentHeader);
      current.PutU64(oids[i].raw);
      current.PutU32(static_cast<std::uint32_t>(offset));
      current.PutU32(static_cast<std::uint32_t>(take));
      current.PutBytes(std::span<const std::uint8_t>(blob).subspan(offset,
                                                                   take));
      ++current_count;
      if (current_oids.empty() || current_oids.back() != oids[i]) {
        current_oids.push_back(oids[i]);
      }
      const std::size_t payload_index = boxing.payloads.size();
      auto& placement = boxing.placements[i];
      if (placement.empty() || placement.back() != payload_index) {
        placement.push_back(payload_index);
      }
      offset += take;
    } while (offset < blob.size());
  }
  seal();
  return boxing;
}

Result<std::size_t> Boxer::ExtractFragments(
    std::span<const std::uint8_t> track_bytes, Oid oid,
    std::span<std::uint8_t> image) {
  ByteReader in(track_bytes);
  GS_ASSIGN_OR_RETURN(std::uint32_t count, in.GetU32());
  std::size_t placed = 0;
  for (std::uint32_t f = 0; f < count; ++f) {
    GS_ASSIGN_OR_RETURN(std::uint64_t frag_oid, in.GetU64());
    GS_ASSIGN_OR_RETURN(std::uint32_t offset, in.GetU32());
    GS_ASSIGN_OR_RETURN(std::uint32_t len, in.GetU32());
    if (in.remaining() < len) {
      return Status::Corruption("fragment overruns track payload");
    }
    if (Oid(frag_oid) == oid) {
      if (static_cast<std::size_t>(offset) + len > image.size()) {
        return Status::Corruption("fragment outside object image bounds");
      }
      for (std::uint32_t b = 0; b < len; ++b) {
        image[offset + b] = track_bytes[in.position() + b];
      }
      placed += len;
    }
    GS_RETURN_IF_ERROR(in.Skip(len));
  }
  return placed;
}

}  // namespace gemstone::storage
