#include "storage/heatmap.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "telemetry/trace.h"

namespace gemstone::storage {

TrackHeatmap::TrackHeatmap(TrackId num_tracks, std::uint64_t half_life_ns)
    : num_tracks_(num_tracks),
      half_life_ns_(half_life_ns == 0 ? kDefaultHalfLifeNs : half_life_ns),
      cells_(num_tracks) {}

void TrackHeatmap::DecayTo(Cell* cell, std::uint64_t now_ns) const {
  if (now_ns <= cell->last_ns) return;  // clock went sideways: no decay
  const double dt = static_cast<double>(now_ns - cell->last_ns);
  // heat' = heat * 2^(-dt / half_life); exp2 of the negative ratio.
  const double factor =
      std::exp2(-dt / static_cast<double>(half_life_ns_));
  cell->read_heat *= factor;
  cell->write_heat *= factor;
  cell->historical_heat *= factor;
  cell->last_ns = now_ns;
}

void TrackHeatmap::Deposit(TrackId track, Access access, bool historical,
                           std::uint64_t now_ns) {
  if (track >= num_tracks_) return;
  if (now_ns == 0) now_ns = telemetry::TraceNowNs();
  if (historical) {
    historical_accesses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    current_accesses_.fetch_add(1, std::memory_order_relaxed);
  }
  double total = 0;
  bool first_touch = false;
  {
    MutexLock lock(mu_);
    Cell& cell = cells_[track];
    DecayTo(&cell, now_ns);
    switch (access) {
      case Access::kRead:
        ++cell.reads;
        if (historical) {
          cell.historical_heat += 1.0;
        } else {
          cell.read_heat += 1.0;
        }
        break;
      case Access::kWrite:
        ++cell.writes;
        if (historical) {
          cell.historical_heat += 1.0;
        } else {
          cell.write_heat += 1.0;
        }
        break;
      case Access::kSeek:
        ++cell.seeks;
        break;
    }
    if (!cell.touched) {
      cell.touched = true;
      first_touch = true;
    }
    total = cell.read_heat + cell.write_heat + cell.historical_heat;
  }
  if (first_touch) touched_tracks_.fetch_add(1, std::memory_order_relaxed);
  // Approximate hottest-track mirror: monotone max of decayed deposit
  // heat. Slightly stale by design (it never decays downward); the JSON
  // view recomputes precisely. Store milliheat so the atomic is integral.
  const std::uint64_t milliheat = static_cast<std::uint64_t>(total * 1000.0);
  std::uint64_t prev =
      hot_track_milliheat_.load(std::memory_order_relaxed);
  while (milliheat > prev &&
         !hot_track_milliheat_.compare_exchange_weak(
             prev, milliheat, std::memory_order_relaxed)) {
  }
  if (milliheat > prev) {
    hot_track_.store(track, std::memory_order_relaxed);
  }
}

void TrackHeatmap::RecordRead(TrackId track, bool historical,
                              std::uint64_t now_ns) {
  Deposit(track, Access::kRead, historical, now_ns);
}

void TrackHeatmap::RecordWrite(TrackId track, bool historical,
                               std::uint64_t now_ns) {
  Deposit(track, Access::kWrite, historical, now_ns);
}

void TrackHeatmap::RecordSeek(TrackId track, std::uint64_t now_ns) {
  if (track >= num_tracks_) return;
  if (now_ns == 0) now_ns = telemetry::TraceNowNs();
  MutexLock lock(mu_);
  Cell& cell = cells_[track];
  DecayTo(&cell, now_ns);
  ++cell.seeks;
}

TrackHeatmap::TrackHeat TrackHeatmap::HeatOf(TrackId track,
                                             std::uint64_t now_ns) const {
  TrackHeat heat;
  heat.track = track;
  if (track >= num_tracks_) return heat;
  if (now_ns == 0) now_ns = telemetry::TraceNowNs();
  MutexLock lock(mu_);
  const Cell& cell = cells_[track];
  if (!cell.touched) return heat;
  Cell decayed = cell;
  DecayTo(&decayed, now_ns);
  heat.read_heat = decayed.read_heat;
  heat.write_heat = decayed.write_heat;
  heat.historical_heat = decayed.historical_heat;
  heat.reads = decayed.reads;
  heat.writes = decayed.writes;
  heat.seeks = decayed.seeks;
  return heat;
}

std::vector<TrackHeatmap::TrackHeat> TrackHeatmap::Hottest(
    std::size_t limit, std::uint64_t now_ns) const {
  if (now_ns == 0) now_ns = telemetry::TraceNowNs();
  std::vector<TrackHeat> all;
  {
    MutexLock lock(mu_);
    for (TrackId t = 0; t < num_tracks_; ++t) {
      const Cell& cell = cells_[t];
      if (!cell.touched) continue;
      Cell decayed = cell;
      DecayTo(&decayed, now_ns);
      TrackHeat heat;
      heat.track = t;
      heat.read_heat = decayed.read_heat;
      heat.write_heat = decayed.write_heat;
      heat.historical_heat = decayed.historical_heat;
      heat.reads = decayed.reads;
      heat.writes = decayed.writes;
      heat.seeks = decayed.seeks;
      all.push_back(heat);
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TrackHeat& a, const TrackHeat& b) {
                     return a.read_heat + a.write_heat + a.historical_heat >
                            b.read_heat + b.write_heat + b.historical_heat;
                   });
  if (limit != 0 && all.size() > limit) all.resize(limit);
  return all;
}

std::vector<TrackHeatmap::TrackHeat> TrackHeatmap::Segments(
    std::size_t n, std::uint64_t now_ns) const {
  if (n == 0) n = kDefaultSegments;
  if (now_ns == 0) now_ns = telemetry::TraceNowNs();
  if (num_tracks_ == 0) return {};
  n = std::min<std::size_t>(n, num_tracks_);
  std::vector<TrackHeat> segments(n);
  const std::size_t per = (num_tracks_ + n - 1) / n;
  MutexLock lock(mu_);
  for (TrackId t = 0; t < num_tracks_; ++t) {
    const Cell& cell = cells_[t];
    if (!cell.touched) continue;
    Cell decayed = cell;
    DecayTo(&decayed, now_ns);
    TrackHeat& seg = segments[std::min<std::size_t>(t / per, n - 1)];
    seg.read_heat += decayed.read_heat;
    seg.write_heat += decayed.write_heat;
    seg.historical_heat += decayed.historical_heat;
    seg.reads += decayed.reads;
    seg.writes += decayed.writes;
    seg.seeks += decayed.seeks;
  }
  for (std::size_t i = 0; i < n; ++i) {
    segments[i].track = static_cast<TrackId>(i * per);  // segment start
  }
  return segments;
}

namespace {
void AppendHeat(std::ostringstream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  os << buf;
}
}  // namespace

std::string TrackHeatmap::ToJson(std::size_t track_limit,
                                 std::size_t segments,
                                 std::uint64_t now_ns) const {
  if (track_limit == 0) track_limit = kDefaultTrackLimit;
  track_limit = std::min(track_limit, kMaxTrackLimit);
  if (now_ns == 0) now_ns = telemetry::TraceNowNs();

  std::ostringstream os;
  os << "{\"num_tracks\":" << num_tracks_
     << ",\"half_life_ms\":" << half_life_ns_ / 1000000
     << ",\"current_accesses\":" << current_accesses()
     << ",\"historical_accesses\":" << historical_accesses()
     << ",\"touched_tracks\":" << touched_tracks();

  const std::vector<TrackHeat> hottest = Hottest(track_limit, now_ns);
  os << ",\"hottest\":[";
  for (std::size_t i = 0; i < hottest.size(); ++i) {
    const TrackHeat& h = hottest[i];
    if (i > 0) os << ',';
    os << "{\"track\":" << h.track << ",\"read_heat\":";
    AppendHeat(os, h.read_heat);
    os << ",\"write_heat\":";
    AppendHeat(os, h.write_heat);
    os << ",\"historical_heat\":";
    AppendHeat(os, h.historical_heat);
    os << ",\"reads\":" << h.reads << ",\"writes\":" << h.writes
       << ",\"seeks\":" << h.seeks << '}';
  }
  os << ']';

  const std::vector<TrackHeat> segs = Segments(segments, now_ns);
  os << ",\"segments\":[";
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const TrackHeat& s = segs[i];
    if (i > 0) os << ',';
    os << "{\"start_track\":" << s.track << ",\"read_heat\":";
    AppendHeat(os, s.read_heat);
    os << ",\"write_heat\":";
    AppendHeat(os, s.write_heat);
    os << ",\"historical_heat\":";
    AppendHeat(os, s.historical_heat);
    os << ",\"reads\":" << s.reads << ",\"writes\":" << s.writes << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace gemstone::storage
