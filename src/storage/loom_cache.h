#ifndef GEMSTONE_STORAGE_LOOM_CACHE_H_
#define GEMSTONE_STORAGE_LOOM_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "core/result.h"
#include "object/gs_object.h"
#include "object/symbol_table.h"
#include "storage/storage_engine.h"
#include "telemetry/metrics.h"

namespace gemstone::storage {

/// Thin snapshot of the cache's telemetry counters (`loom.*`).
struct LoomStats {
  std::uint64_t hits = 0;
  std::uint64_t faults = 0;      // misses served from disk
  std::uint64_t evictions = 0;
  std::uint64_t write_backs = 0;
};

/// A LOOM-style two-level object memory (Kaehler & Krasner), the paper's
/// §7 comparison baseline: "LOOM maintains a two-level object space in
/// main memory and on disk. Objects are moved to main memory from disk as
/// needed."
///
/// The paper's four objections are reproduced as observable behavior:
///  1. single-user: no transactions, one mutator (not synchronized);
///  2. "it retains the same maximum size for objects" — kMaxObjectBytes
///     (64 KB) is enforced on fault and write-back;
///  3. standard object representation: an object faults in *whole*,
///     history and all — there is no way to bring in "only a fragment of
///     the object", so deep histories amplify fault cost;
///  4. no clustering/indexing: faults read each object's tracks
///     independently (LoadObject, never the batched LoadObjects).
class LoomObjectMemory {
 public:
  static constexpr std::size_t kMaxObjectBytes = 64 * 1024;
  static constexpr std::size_t kMaxResidentObjects = 32 * 1024;

  LoomObjectMemory(StorageEngine* engine, SymbolTable* symbols,
                   std::size_t cache_capacity);

  /// The object, faulting it in from secondary storage on a miss and
  /// evicting the least recently used resident (written back if dirty).
  /// InvalidArgument when the object's image exceeds kMaxObjectBytes —
  /// the ST80 representation ceiling the paper calls out.
  Result<GsObject*> Fetch(Oid oid);

  /// Marks a resident object dirty so eviction writes it back.
  Status MarkDirty(Oid oid);

  /// Writes back every dirty resident (a LOOM "snapshot").
  Status Flush();

  std::size_t resident_count() const { return residents_.size(); }
  LoomStats stats() const;

 private:
  struct Resident {
    GsObject object;
    bool dirty = false;
    std::list<std::uint64_t>::iterator lru_position;
  };

  Status EvictOne();

  StorageEngine* engine_;
  SymbolTable* symbols_;
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, Resident> residents_;
  std::list<std::uint64_t> lru_;  // front = most recently used

  telemetry::Counter hits_;
  telemetry::Counter faults_;
  telemetry::Counter evictions_;
  telemetry::Counter write_backs_;
  telemetry::Registration telemetry_;  // after the counters it samples
};

}  // namespace gemstone::storage

#endif  // GEMSTONE_STORAGE_LOOM_CACHE_H_
