#ifndef GEMSTONE_STORAGE_COMMIT_MANAGER_H_
#define GEMSTONE_STORAGE_COMMIT_MANAGER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/result.h"
#include "storage/simulated_disk.h"

namespace gemstone::storage {

/// The durable root of the store, written alternately to tracks 0 and 1.
/// Recovery picks the valid root with the highest epoch, so a crash at any
/// point during a commit leaves the previous epoch intact.
struct RootState {
  std::uint64_t epoch = 0;
  std::uint32_t catalog_len = 0;
  std::uint64_t catalog_checksum = 0;
  std::vector<TrackId> catalog_tracks;
};

/// The Commit Manager (§6): "provides safe writing for groups of tracks.
/// Safe writing guarantees that all the tracks in the group get written,
/// or none get written, and that the tracks in the group replace their old
/// versions atomically."
///
/// Mechanism: every commit writes to *fresh* tracks (shadowing); the group
/// becomes visible only via the single-track root flip, which is the
/// atomicity point. Tracks 0 and 1 are reserved for the two root slots.
class CommitManager {
 public:
  explicit CommitManager(SimulatedDisk* disk) : disk_(disk) {}

  static constexpr TrackId kRootSlotA = 0;
  static constexpr TrackId kRootSlotB = 1;
  static constexpr TrackId kFirstDataTrack = 2;

  /// Writes epoch-0 empty roots into both slots.
  Status Format();

  /// Reads both root slots and returns the valid one with the highest
  /// epoch; Corruption if neither slot holds a valid root.
  Result<RootState> RecoverRoot() const;

  /// Every valid root on the device, newest epoch first (0–2 entries).
  /// Recovery tries them in order: when the newest root's catalog stream
  /// turns out unreadable, the older slot is the fallback — that is the
  /// point of keeping two slots.
  std::vector<RootState> RecoverRootCandidates() const;

  /// The safe group write. Writes `data_tracks` (shadow copies), chunks
  /// `catalog_bytes` across `catalog_tracks`, then flips the root to
  /// `next_epoch`. If any write fails, the function returns the error and
  /// the previous root remains the recovered state — none of the group is
  /// visible.
  Status CommitGroup(
      const std::vector<std::pair<TrackId, std::vector<std::uint8_t>>>&
          data_tracks,
      const std::vector<TrackId>& catalog_tracks,
      const std::vector<std::uint8_t>& catalog_bytes,
      std::uint64_t next_epoch);

  /// Reassembles the catalog byte stream a RootState points at.
  Result<std::vector<std::uint8_t>> ReadCatalogBytes(
      const RootState& root) const;

  std::uint64_t commits() const { return commits_; }

 private:
  Status WriteRoot(const RootState& root);

  SimulatedDisk* disk_;
  std::uint64_t commits_ = 0;
};

}  // namespace gemstone::storage

#endif  // GEMSTONE_STORAGE_COMMIT_MANAGER_H_
