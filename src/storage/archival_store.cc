#include "storage/archival_store.h"

#include "storage/serializer.h"

namespace gemstone::storage {

Status ArchivalStore::Archive(ObjectMemory* memory, Oid oid) {
  GS_ASSIGN_OR_RETURN(GsObject object, memory->Detach(oid));
  std::vector<std::uint8_t> image =
      SerializeObject(object, memory->symbols());
  total_bytes_ += image.size();
  images_[oid.raw] = std::move(image);
  return Status::OK();
}

Status ArchivalStore::Restore(ObjectMemory* memory, Oid oid) {
  auto it = images_.find(oid.raw);
  if (it == images_.end()) {
    return Status::NotFound("not archived: " + oid.ToString());
  }
  GS_ASSIGN_OR_RETURN(GsObject object,
                      DeserializeObject(it->second, &memory->symbols()));
  GS_RETURN_IF_ERROR(memory->Insert(std::move(object)));
  total_bytes_ -= it->second.size();
  images_.erase(it);
  return Status::OK();
}

Result<GsObject> ArchivalStore::Peek(Oid oid, SymbolTable* symbols) const {
  auto it = images_.find(oid.raw);
  if (it == images_.end()) {
    return Status::NotFound("not archived: " + oid.ToString());
  }
  return DeserializeObject(it->second, symbols);
}

}  // namespace gemstone::storage
