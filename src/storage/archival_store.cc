#include "storage/archival_store.h"

#include <utility>

#include "storage/serializer.h"
#include "telemetry/flight_recorder.h"

namespace gemstone::storage {

ArchivalStore::ArchivalStore()
    : telemetry_(telemetry::MetricsRegistry::Global().Register(
          [this](telemetry::SampleSink* sink) {
            sink->Counter("storage.archive.archives", archives_.value());
            sink->Counter("storage.archive.restores", restores_.value());
            sink->Gauge("storage.archive.objects", objects_gauge_.value());
            sink->Gauge("storage.archive.bytes", bytes_gauge_.value());
            sink->Gauge("storage.archive.runs", runs_gauge_.value());
            sink->Gauge("storage.archive.run_bytes",
                        run_bytes_gauge_.value());
          })) {}

void ArchivalStore::SyncMirrors() {
  objects_gauge_.Set(static_cast<std::int64_t>(images_.size()));
  bytes_gauge_.Set(static_cast<std::int64_t>(total_bytes_));
  runs_gauge_.Set(static_cast<std::int64_t>(runs_.size()));
  run_bytes_gauge_.Set(static_cast<std::int64_t>(run_bytes_));
}

Status ArchivalStore::Archive(ObjectMemory* memory, Oid oid) {
  GS_ASSIGN_OR_RETURN(GsObject object, memory->Detach(oid));
  std::vector<std::uint8_t> image =
      SerializeObject(object, memory->symbols());
  const std::uint64_t image_bytes = image.size();
  total_bytes_ += image_bytes;
  images_[oid.raw] = std::move(image);
  archives_.Increment();
  SyncMirrors();
  telemetry::FlightRecorder::Global().Record(
      telemetry::FlightEventKind::kArchive, 0, oid.raw, image_bytes, "");
  return Status::OK();
}

Status ArchivalStore::Restore(ObjectMemory* memory, Oid oid) {
  auto it = images_.find(oid.raw);
  if (it == images_.end()) {
    return Status::NotFound("not archived: " + oid.ToString());
  }
  GS_ASSIGN_OR_RETURN(GsObject object,
                      DeserializeObject(it->second, &memory->symbols()));
  GS_RETURN_IF_ERROR(memory->Insert(std::move(object)));
  const std::uint64_t image_bytes = it->second.size();
  total_bytes_ -= image_bytes;
  images_.erase(it);
  restores_.Increment();
  SyncMirrors();
  telemetry::FlightRecorder::Global().Record(
      telemetry::FlightEventKind::kRestore, 0, oid.raw, image_bytes, "");
  return Status::OK();
}

Result<GsObject> ArchivalStore::Peek(Oid oid, SymbolTable* symbols) const {
  auto it = images_.find(oid.raw);
  if (it == images_.end()) {
    return Status::NotFound("not archived: " + oid.ToString());
  }
  return DeserializeObject(it->second, symbols);
}

Status ArchivalStore::StoreRun(std::uint64_t run_id,
                               std::vector<std::uint8_t> bytes) {
  auto it = runs_.find(run_id);
  if (it != runs_.end()) {
    return Status::InvalidArgument("archive already holds run " +
                                   std::to_string(run_id));
  }
  run_bytes_ += bytes.size();
  runs_.emplace(run_id, std::move(bytes));
  SyncMirrors();
  return Status::OK();
}

Result<std::vector<std::uint8_t>> ArchivalStore::ReadRun(
    std::uint64_t run_id) const {
  auto it = runs_.find(run_id);
  if (it == runs_.end()) {
    return Status::NotFound("no archived run " + std::to_string(run_id));
  }
  return it->second;
}

Status ArchivalStore::DropRun(std::uint64_t run_id) {
  auto it = runs_.find(run_id);
  if (it == runs_.end()) {
    return Status::NotFound("no archived run " + std::to_string(run_id));
  }
  run_bytes_ -= it->second.size();
  runs_.erase(it);
  SyncMirrors();
  return Status::OK();
}

std::vector<std::uint64_t> ArchivalStore::RunIds() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(runs_.size());
  for (const auto& [id, bytes] : runs_) ids.push_back(id);
  return ids;
}

}  // namespace gemstone::storage
