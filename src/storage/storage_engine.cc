#include "storage/storage_engine.h"

#include <algorithm>
#include <map>

#include "storage/serializer.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace.h"

namespace gemstone::storage {

StorageEngine::StorageEngine(SimulatedDisk* disk)
    : disk_(disk),
      commit_manager_(disk),
      boxer_(disk->track_capacity()),
      telemetry_(telemetry::MetricsRegistry::Global().Register(
          [this](telemetry::SampleSink* sink) {
            sink->Counter("engine.commits", commits_.value());
            sink->Counter("engine.objects_written", objects_written_.value());
            sink->Counter("engine.bytes_written", bytes_written_.value());
            sink->Counter("engine.objects_loaded", objects_loaded_.value());
            sink->Counter("engine.recovery_fallbacks",
                          recovery_fallbacks_.value());
            sink->Gauge("engine.free_tracks", free_tracks_gauge_.value());
            sink->Gauge("engine.epoch", epoch_gauge_.value());
          })) {}

EngineStats StorageEngine::stats() const {
  EngineStats stats;
  stats.commits = commits_.value();
  stats.objects_written = objects_written_.value();
  stats.bytes_written = bytes_written_.value();
  stats.objects_loaded = objects_loaded_.value();
  stats.recovery_fallbacks = recovery_fallbacks_.value();
  return stats;
}

Status StorageEngine::Format() {
  GS_RETURN_IF_ERROR(commit_manager_.Format());
  return Open();
}

Status StorageEngine::Open() {
  const std::vector<RootState> candidates =
      commit_manager_.RecoverRootCandidates();
  if (candidates.empty()) {
    return Status::Corruption("no valid root block on device");
  }
  // Try the newest root first; when its catalog stream is unreadable
  // (torn track, bit rot, read fault), fall back to the older slot — the
  // reason the device keeps two. The fallback epoch is the pre-crash
  // committed state, so recovering it is correct, never a hybrid.
  Catalog catalog;
  const RootState* adopted = nullptr;
  Status last_error = Status::OK();
  for (const RootState& root : candidates) {
    if (root.catalog_tracks.empty()) {
      catalog = Catalog();
      adopted = &root;
      break;
    }
    auto bytes = commit_manager_.ReadCatalogBytes(root);
    if (!bytes.ok()) {
      recovery_fallbacks_.Increment();
      telemetry::FlightRecorder::Global().Record(
          telemetry::FlightEventKind::kRecoveryFallback, 0, root.epoch, 0,
          bytes.status().message());
      last_error = bytes.status();
      continue;
    }
    auto parsed = Catalog::Deserialize(bytes.value());
    if (!parsed.ok()) {
      recovery_fallbacks_.Increment();
      telemetry::FlightRecorder::Global().Record(
          telemetry::FlightEventKind::kRecoveryFallback, 0, root.epoch, 0,
          parsed.status().message());
      last_error = parsed.status();
      continue;
    }
    catalog = std::move(parsed).value();
    adopted = &root;
    break;
  }
  if (adopted == nullptr) {
    return last_error;
  }
  catalog_ = std::move(catalog);
  epoch_ = adopted->epoch;
  catalog_tracks_ = adopted->catalog_tracks;

  std::set<TrackId> used = {CommitManager::kRootSlotA,
                            CommitManager::kRootSlotB};
  for (TrackId t : catalog_tracks_) used.insert(t);
  track_refs_.clear();
  for (const auto& [oid, extent] : catalog_.entries()) {
    for (TrackId t : extent.tracks) {
      used.insert(t);
      ++track_refs_[t];
    }
  }
  free_tracks_.clear();
  for (TrackId t = 0; t < disk_->num_tracks(); ++t) {
    if (used.count(t) == 0) free_tracks_.insert(t);
  }
  open_ = true;
  free_tracks_gauge_.Set(static_cast<std::int64_t>(free_tracks_.size()));
  epoch_gauge_.Set(static_cast<std::int64_t>(epoch_));
  return Status::OK();
}

Result<std::vector<TrackId>> StorageEngine::Allocate(std::size_t n) {
  if (free_tracks_.size() < n) {
    return Status::IoError("device full: need " + std::to_string(n) +
                           " tracks, have " +
                           std::to_string(free_tracks_.size()));
  }
  std::vector<TrackId> out;
  out.reserve(n);
  auto it = free_tracks_.begin();
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(*it);
    it = free_tracks_.erase(it);
  }
  return out;
}

void StorageEngine::Release(const std::vector<TrackId>& tracks) {
  for (TrackId t : tracks) free_tracks_.insert(t);
}

void StorageEngine::AddExtentRefs(const std::vector<TrackId>& tracks) {
  for (TrackId t : tracks) ++track_refs_[t];
}

void StorageEngine::DropExtentRefs(const std::vector<TrackId>& tracks) {
  for (TrackId t : tracks) {
    auto it = track_refs_.find(t);
    if (it == track_refs_.end()) continue;
    if (--it->second == 0) {
      track_refs_.erase(it);
      free_tracks_.insert(t);
    }
  }
}

Status StorageEngine::CommitObjects(
    const std::vector<const GsObject*>& objects, const SymbolTable& symbols) {
  if (!open_) return Status::TransactionState("engine not open");
  TELEM_SPAN("engine.commit");
  // 1. Serialize + 2. box into track payloads.
  std::vector<Oid> oids;
  std::vector<std::vector<std::uint8_t>> blobs;
  oids.reserve(objects.size());
  blobs.reserve(objects.size());
  Boxing boxing;
  {
    TELEM_SPAN("commit.box");
    for (const GsObject* object : objects) {
      oids.push_back(object->oid());
      blobs.push_back(SerializeObject(*object, symbols));
    }
    GS_ASSIGN_OR_RETURN(boxing, boxer_.Pack(oids, blobs));
  }
  // 3. Allocate shadow tracks for data + catalog.
  GS_ASSIGN_OR_RETURN(std::vector<TrackId> data_tracks,
                      Allocate(boxing.payloads.size()));
  // 4. Build the changed-extent list and link the next catalog.
  Linker::LinkResult linked;
  std::vector<std::uint8_t> catalog_bytes;
  std::vector<std::pair<Oid, Extent>> changed;
  {
    TELEM_SPAN("commit.link");
    changed.reserve(objects.size());
    for (std::size_t i = 0; i < oids.size(); ++i) {
      Extent extent;
      extent.byte_len = static_cast<std::uint32_t>(blobs[i].size());
      extent.checksum = Fnv1a(std::span<const std::uint8_t>(blobs[i]));
      for (std::size_t payload_index : boxing.placements[i]) {
        extent.tracks.push_back(data_tracks[payload_index]);
      }
      changed.emplace_back(oids[i], std::move(extent));
    }
    linked = Linker::Link(catalog_, changed);
    catalog_bytes = linked.next.Serialize();
  }
  const std::size_t cat_count =
      (catalog_bytes.size() + disk_->track_capacity() - 1) /
      disk_->track_capacity();
  auto cat_alloc = Allocate(cat_count);
  if (!cat_alloc.ok()) {
    Release(data_tracks);
    return cat_alloc.status();
  }
  const std::vector<TrackId> cat_tracks = std::move(cat_alloc).value();

  // 5. Safe group write.
  std::vector<std::pair<TrackId, std::vector<std::uint8_t>>> group;
  group.reserve(boxing.payloads.size());
  std::uint64_t bytes_written = 0;
  for (std::size_t i = 0; i < boxing.payloads.size(); ++i) {
    bytes_written += boxing.payloads[i].bytes.size();
    group.emplace_back(data_tracks[i], std::move(boxing.payloads[i].bytes));
  }
  Status commit_status = commit_manager_.CommitGroup(
      group, cat_tracks, catalog_bytes, epoch_ + 1);
  if (!commit_status.ok()) {
    Release(data_tracks);
    Release(cat_tracks);
    return commit_status;
  }

  // 6. The group is durable: adopt the new catalog and recycle superseded
  // track versions (object history lives inside the new images). Shared
  // tracks free only when their last referencing extent is superseded.
  for (const auto& [oid, extent] : changed) {
    AddExtentRefs(extent.tracks);
  }
  DropExtentRefs(linked.superseded_tracks);
  Release(catalog_tracks_);
  catalog_tracks_ = cat_tracks;
  catalog_ = std::move(linked.next);
  ++epoch_;
  commits_.Increment();
  objects_written_.Increment(objects.size());
  bytes_written_.Increment(bytes_written + catalog_bytes.size());
  free_tracks_gauge_.Set(static_cast<std::int64_t>(free_tracks_.size()));
  epoch_gauge_.Set(static_cast<std::int64_t>(epoch_));
  return Status::OK();
}

Result<GsObject> StorageEngine::LoadObject(Oid oid, SymbolTable* symbols) {
  if (!open_) return Status::TransactionState("engine not open");
  const Extent* extent = catalog_.Find(oid);
  if (extent == nullptr) {
    return Status::NotFound("object not in catalog: " + oid.ToString());
  }
  std::vector<std::uint8_t> image(extent->byte_len);
  std::size_t placed = 0;
  for (TrackId t : extent->tracks) {
    GS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> track, disk_->ReadTrack(t));
    GS_ASSIGN_OR_RETURN(
        std::size_t n,
        Boxer::ExtractFragments(track, oid,
                                std::span<std::uint8_t>(image)));
    placed += n;
  }
  if (placed != image.size()) {
    return Status::Corruption("object image incomplete: got " +
                              std::to_string(placed) + " of " +
                              std::to_string(image.size()) + " bytes");
  }
  if (Fnv1a(std::span<const std::uint8_t>(image)) != extent->checksum) {
    return Status::Corruption("object image checksum mismatch");
  }
  objects_loaded_.Increment();
  return DeserializeObject(image, symbols);
}

Result<std::vector<GsObject>> StorageEngine::LoadObjects(
    const std::vector<Oid>& oids, SymbolTable* symbols) {
  if (!open_) return Status::TransactionState("engine not open");
  // Plan: every distinct track, ascending (one sweep across the platter),
  // with the images it must fill.
  struct Pending {
    const Extent* extent;
    std::vector<std::uint8_t> image;
    std::size_t placed = 0;
  };
  std::vector<Pending> pending(oids.size());
  std::map<TrackId, std::vector<std::size_t>> plan;
  for (std::size_t i = 0; i < oids.size(); ++i) {
    const Extent* extent = catalog_.Find(oids[i]);
    if (extent == nullptr) {
      return Status::NotFound("object not in catalog: " +
                              oids[i].ToString());
    }
    pending[i].extent = extent;
    pending[i].image.resize(extent->byte_len);
    for (TrackId t : extent->tracks) plan[t].push_back(i);
  }
  for (const auto& [track, members] : plan) {
    GS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> bytes,
                        disk_->ReadTrack(track));
    // Accept fragments only for requests whose *live extent* includes
    // this track (a shared track can still carry a neighbor's superseded
    // fragments; those must not leak into its current image).
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> wanted;
    for (std::size_t i : members) wanted[oids[i].raw].push_back(i);
    // One sweep over the payload fills every co-located wanted image.
    GS_RETURN_IF_ERROR(Boxer::ForEachFragment(
        bytes, [&](const Boxer::FragmentView& fragment) -> Status {
          auto it = wanted.find(fragment.oid.raw);
          if (it == wanted.end()) return Status::OK();
          for (std::size_t i : it->second) {
            if (fragment.offset + fragment.bytes.size() >
                pending[i].image.size()) {
              return Status::Corruption("fragment outside image bounds");
            }
            std::copy(fragment.bytes.begin(), fragment.bytes.end(),
                      pending[i].image.begin() + fragment.offset);
            pending[i].placed += fragment.bytes.size();
          }
          return Status::OK();
        }));
  }
  std::vector<GsObject> out;
  out.reserve(oids.size());
  for (std::size_t i = 0; i < oids.size(); ++i) {
    if (pending[i].placed != pending[i].image.size()) {
      return Status::Corruption("object image incomplete: " +
                                oids[i].ToString());
    }
    if (Fnv1a(std::span<const std::uint8_t>(pending[i].image)) !=
        pending[i].extent->checksum) {
      return Status::Corruption("object image checksum mismatch: " +
                                oids[i].ToString());
    }
    GS_ASSIGN_OR_RETURN(GsObject object,
                        DeserializeObject(pending[i].image, symbols));
    out.push_back(std::move(object));
    objects_loaded_.Increment();
  }
  return out;
}

std::vector<Oid> StorageEngine::CatalogOids() const {
  std::vector<Oid> oids;
  oids.reserve(catalog_.size());
  for (const auto& [raw, extent] : catalog_.entries()) {
    oids.push_back(Oid(raw));
  }
  std::sort(oids.begin(), oids.end());
  return oids;
}

double StorageEngine::HistoricalHeatOf(Oid oid) const {
  const Extent* extent = catalog_.Find(oid);
  if (extent == nullptr) return 0;
  const TrackHeatmap& heatmap = disk_->heatmap();
  double heat = 0;
  for (TrackId track : extent->tracks) {
    heat += heatmap.HeatOf(track).historical_heat;
  }
  return heat;
}

void StorageEngine::NoteHistoricalObjectAccess(Oid oid) {
  const Extent* extent = catalog_.Find(oid);
  if (extent == nullptr) return;
  TrackHeatmap& heatmap = disk_->heatmap();
  for (TrackId track : extent->tracks) {
    heatmap.RecordRead(track, /*historical=*/true);
  }
}

}  // namespace gemstone::storage
