#ifndef GEMSTONE_STORAGE_SERIALIZER_H_
#define GEMSTONE_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.h"
#include "object/gs_object.h"
#include "object/symbol_table.h"

namespace gemstone::storage {

/// Little-endian append-only encoder used by the storage layer.
class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(v); }
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutF64(double v);
  void PutString(std::string_view s);
  void PutBytes(std::span<const std::uint8_t> bytes);

  std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked decoder; every getter fails with Corruption on
/// truncated input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  Result<std::uint8_t> GetU8();
  Result<std::uint32_t> GetU32();
  Result<std::uint64_t> GetU64();
  Result<std::int64_t> GetI64();
  Result<double> GetF64();
  Result<std::string> GetString();

  /// Advances past `n` bytes without decoding them.
  Status Skip(std::size_t n) {
    if (remaining() < n) return Status::Corruption("skip past end");
    pos_ += n;
    return Status::OK();
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// FNV-1a over `bytes`; the storage layer's integrity check.
std::uint64_t Fnv1a(std::span<const std::uint8_t> bytes);

/// The tagged value wire codec shared by object images and the tier
/// store's cold-run records. Symbols are stored as text so the encoding
/// survives re-interning after recovery.
void WriteValue(const Value& v, const SymbolTable& symbols, ByteWriter* out);
Result<Value> ReadValue(ByteReader* in, SymbolTable* symbols);

/// Serializes a full object — identity, class, and the complete
/// association-table history of every element — with a trailing checksum.
/// Symbol names are stored as text so images survive re-interning.
std::vector<std::uint8_t> SerializeObject(const GsObject& object,
                                          const SymbolTable& symbols);

/// Inverse of SerializeObject; verifies the checksum and re-interns
/// element names into `symbols`.
Result<GsObject> DeserializeObject(std::span<const std::uint8_t> bytes,
                                   SymbolTable* symbols);

}  // namespace gemstone::storage

#endif  // GEMSTONE_STORAGE_SERIALIZER_H_
