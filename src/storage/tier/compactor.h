#ifndef GEMSTONE_STORAGE_TIER_COMPACTOR_H_
#define GEMSTONE_STORAGE_TIER_COMPACTOR_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "core/result.h"
#include "storage/tier/history_source.h"
#include "storage/tier/tier_store.h"
#include "telemetry/metrics.h"

namespace gemstone::storage::tier {

/// Policy knobs for the background demotion thread.
struct CompactorOptions {
  /// Wall-clock pause between passes.
  std::uint64_t interval_ms = 500;
  /// An object is a demotion candidate only when at least this many of
  /// its bindings would actually leave the primary store.
  std::uint64_t min_versions = 16;
  /// Objects whose decayed historical-channel heat exceeds this stay
  /// resident — the time dial still visits them (PR 9's heatmap split is
  /// exactly this signal).
  double max_historical_heat = 1.0;
  /// Demotions per pass; bounds how long the txn store's writer lock is
  /// taken per wakeup.
  std::size_t max_objects_per_pass = 8;
};

/// Point-in-time pass statistics for /tiers and tests.
struct CompactorStats {
  std::uint64_t passes = 0;
  std::uint64_t objects_demoted = 0;
  std::uint64_t records_demoted = 0;
  std::uint64_t skipped_hot = 0;
  std::uint64_t errors = 0;
  bool running = false;
};

/// The online compaction driver: a sampler-style background thread (the
/// observatory's Start/Stop lifecycle) that walks heat-ranked demotion
/// candidates, moves their cold history into the TierStore, truncates the
/// resident copies through the HistorySource, and then lets the store
/// rebalance its levels.
///
/// Lock discipline: the thread itself holds only its private lifecycle
/// mutex, which is a raw std::mutex — the thread *waits* on it, and it has
/// no lock-graph neighbors by construction (gs_lint enforces that tier
/// code never touches the executor lattice). All real locking happens
/// inside the callees: the HistorySource takes the txn store lock, the
/// TierStore takes LockRank::kStorageTier.
class TierCompactor {
 public:
  TierCompactor(TierStore* store, HistorySource* source,
                CompactorOptions options = {});
  ~TierCompactor();

  TierCompactor(const TierCompactor&) = delete;
  TierCompactor& operator=(const TierCompactor&) = delete;

  /// Launches the background thread; idempotent, restart-safe.
  void Start();

  /// Stops and joins the thread; idempotent. A pass in flight finishes.
  void Stop();

  bool running() const;

  /// One synchronous demotion pass — the thread body's unit of work,
  /// public so tests and benches drive compaction deterministically.
  /// Returns the number of objects demoted.
  Result<std::size_t> RunOncePass();

  CompactorStats stats() const;
  std::string StatusJson() const;

 private:
  void ThreadMain();

  TierStore* store_;
  HistorySource* source_;
  const CompactorOptions options_;

  // Lifecycle, observatory-style: the sleep is interruptible so Stop()
  // never waits out an interval.
  mutable std::mutex thread_mu_;  // gs_lint: allow(raw-mutex)
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;

  telemetry::Counter passes_;
  telemetry::Counter objects_demoted_;
  telemetry::Counter records_demoted_;
  telemetry::Counter skipped_hot_;
  telemetry::Counter errors_;
  telemetry::Gauge running_gauge_;
  telemetry::Registration telemetry_;  // after the instruments it samples
};

}  // namespace gemstone::storage::tier

#endif  // GEMSTONE_STORAGE_TIER_COMPACTOR_H_
