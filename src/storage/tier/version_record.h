#ifndef GEMSTONE_STORAGE_TIER_VERSION_RECORD_H_
#define GEMSTONE_STORAGE_TIER_VERSION_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/ids.h"
#include "object/value.h"

namespace gemstone::storage::tier {

/// One demoted binding: (object, element, transaction time) -> value.
///
/// This is the unit the levelled store sorts, merges, and resolves. The
/// element name travels as *text* (not SymbolId) so a cold run written
/// before a crash decodes correctly against the re-interned symbol table
/// after recovery — the same rule the object image codec follows.
struct VersionRecord {
  static constexpr std::uint8_t kNamed = 0;
  static constexpr std::uint8_t kIndexed = 1;

  Oid oid;
  std::uint8_t kind = kNamed;
  bool alias = false;       // named only: generated set-member alias
  std::string name;         // named only
  std::uint64_t index = 0;  // indexed only
  TxnTime time = kTimeOrigin;
  Value value;
};

/// The element an association belongs to, without the time — the probe
/// key of a point lookup.
struct ElementKey {
  Oid oid;
  std::uint8_t kind = VersionRecord::kNamed;
  std::string_view name;    // named only
  std::uint64_t index = 0;  // indexed only
};

/// Three-way comparison of a record's element against a probe key:
/// (oid, kind, name|index) lexicographically.
inline int CompareElement(const VersionRecord& r, const ElementKey& k) {
  if (r.oid != k.oid) return r.oid < k.oid ? -1 : 1;
  if (r.kind != k.kind) return r.kind < k.kind ? -1 : 1;
  if (r.kind == VersionRecord::kNamed) {
    const int c = std::string_view(r.name).compare(k.name);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (r.index != k.index) return r.index < k.index ? -1 : 1;
  return 0;
}

/// The run sort order: by element, then ascending time. Resolution at
/// time T scans an element's group and keeps the last binding <= T.
inline bool RecordOrder(const VersionRecord& a, const VersionRecord& b) {
  const ElementKey k{b.oid, b.kind, b.name, b.index};
  const int c = CompareElement(a, k);
  if (c != 0) return c < 0;
  return a.time < b.time;
}

/// True when two records bind the same element at the same time — the
/// duplicate shape repeated demotions produce (creation markers and
/// carry-forwards are re-emitted by design; compaction folds them).
inline bool SameBinding(const VersionRecord& a, const VersionRecord& b) {
  const ElementKey k{b.oid, b.kind, b.name, b.index};
  return CompareElement(a, k) == 0 && a.time == b.time;
}

}  // namespace gemstone::storage::tier

#endif  // GEMSTONE_STORAGE_TIER_VERSION_RECORD_H_
