#ifndef GEMSTONE_STORAGE_TIER_TIER_STORE_H_
#define GEMSTONE_STORAGE_TIER_TIER_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.h"
#include "core/sync.h"
#include "object/association_table.h"
#include "object/symbol_table.h"
#include "storage/archival_store.h"
#include "storage/commit_manager.h"
#include "storage/simulated_disk.h"
#include "storage/tier/cold_run.h"
#include "storage/tier/version_record.h"
#include "telemetry/metrics.h"

namespace gemstone::storage::tier {

/// Geometry and policy of the levelled store.
struct TierOptions {
  /// Cold platter levels (L1..Ln), each its own SimulatedDisk — the
  /// paper's §6 multi-disk shape. L0 is the primary object store and not
  /// owned here; the ArchivalStore (when attached) is the level below Ln.
  std::size_t cold_levels = 2;
  /// Tracks per level device. Deeper levels get this multiplied by the
  /// level's growth factor so a merged run always has shadow headroom.
  TrackId tracks_per_level = 256;
  std::size_t track_capacity = 8192;
  /// A level holding more than this many runs is merge-compacted into
  /// the next level down.
  std::size_t runs_per_level = 4;
  /// Half-life for the per-level device heatmaps; 0 = heatmap default.
  std::uint64_t heatmap_half_life_ns = 0;
};

/// Point-in-time shape of one level, for /tiers and tests.
struct TierLevelStats {
  std::size_t runs = 0;       // platter runs resident on the level
  std::uint64_t records = 0;  // bindings across those runs
  std::uint64_t bytes = 0;
  std::size_t free_tracks = 0;
  std::uint64_t epoch = 0;    // the level's commit epoch
};

/// Migration/compaction counters (monotonic, also exported as metrics).
struct TierCounters {
  std::uint64_t migrations = 0;        // AppendRun commits
  std::uint64_t records_demoted = 0;
  std::uint64_t compactions = 0;       // level -> level merges
  std::uint64_t archive_merges = 0;    // deepest level -> ArchivalStore
  std::uint64_t resolves = 0;          // point lookups served
  std::uint64_t resolve_misses = 0;    // lookups with no binding anywhere
  std::uint64_t recovery_fallbacks = 0;
};

/// The levelled temporal track store (ROADMAP item 4): object history
/// demoted off the primary device lands here as sorted immutable cold
/// runs, spread across per-level SimulatedDisks with the ArchivalStore as
/// the deepest level.
///
/// Durability: each level has its own CommitManager. A run append or a
/// compaction writes fresh tracks and flips that level's root — the same
/// dual-slot shadow protocol as the primary engine, so a crash at any
/// track write recovers the level to its previous catalog. Cross-level
/// moves order their flips destination-first: the worst a crash leaves is
/// the same run present at two levels (resolution tolerates duplicates;
/// the next compaction folds them). A gap is impossible.
///
/// Concurrency: mu_ (LockRank::kStorageTier) serializes catalog access.
/// It is taken from under the txn store lock by time-dial resolution and
/// lock-free by the compactor; inner work touches the symbol table and
/// the level devices, both inner ranks. The stats mirrors are atomics so
/// the metrics collector never takes mu_.
class TierStore {
 public:
  /// `archive` may be null (no archival level); when present it must
  /// outlive the store. The symbol table is the process-wide one — run
  /// values re-intern through it on decode.
  TierStore(SymbolTable* symbols, ArchivalStore* archive,
            TierOptions options = {});

  /// Initializes empty level catalogs (destroys previous contents).
  Status Format();

  /// Recovers every level from its newest valid root, falling back to the
  /// older slot when a catalog or a run fails verification — counting
  /// `storage.tier.recovery_fallbacks`. Fence indexes are rebuilt here.
  Status Open();

  bool is_open() const { return open_.load(std::memory_order_relaxed); }
  std::size_t cold_levels() const { return levels_.size(); }

  /// The level's device, 0-based from L1. Tests inject faults through it.
  SimulatedDisk* level_disk(std::size_t level);

  /// Durably appends one sorted run to L1 and flips its catalog. The
  /// records must be RecordOrder-sorted (CollectHistory emits them so).
  Status AppendRun(const std::vector<VersionRecord>& records);

  /// Runs one round of size-triggered maintenance: any level over its run
  /// budget merges into the level below (the deepest into the archive).
  Status MaybeCompact();

  /// Force-merges `level`'s runs downward regardless of budget.
  Status CompactLevel(std::size_t level);

  /// The binding of (`oid`, element) visible at `at`, searched across
  /// every level and the archive; nullopt when no cold run binds it.
  Result<std::optional<Association>> ResolveNamed(Oid oid,
                                                  std::string_view name,
                                                  TxnTime at);
  Result<std::optional<Association>> ResolveIndexed(Oid oid,
                                                    std::uint64_t index,
                                                    TxnTime at);

  /// Every cold binding of (`oid`, `name`) across all levels, ascending
  /// by time, duplicates folded — the tier half of History().
  Result<std::vector<Association>> NamedHistoryOf(Oid oid,
                                                  std::string_view name);

  std::vector<TierLevelStats> LevelStats() const;
  TierCounters counters() const;

  /// The /tiers payload: per-level sizes, counters, options.
  std::string StatusJson() const;

 private:
  struct Fence {
    std::size_t offset = 0;  // byte offset of the record in the run
    Oid oid;
    std::uint8_t kind = VersionRecord::kNamed;
    std::string name;
    std::uint64_t index = 0;
    TxnTime time = kTimeOrigin;
  };

  struct RunState {
    std::uint64_t id = 0;
    bool archived = false;           // payload in the ArchivalStore
    std::uint32_t record_count = 0;
    TxnTime min_time = 0, max_time = 0;
    Oid min_oid, max_oid;
    std::uint32_t byte_len = 0;      // including the checksum footer
    std::uint64_t checksum = 0;      // FNV-1a over bytes minus footer
    std::vector<TrackId> tracks;     // empty when archived
    std::vector<Fence> fences;       // rebuilt at Open, every 32 records
  };

  struct Level {
    std::unique_ptr<SimulatedDisk> disk;
    std::unique_ptr<CommitManager> commits;
    std::uint64_t epoch = 0;
    std::vector<TrackId> catalog_tracks;
    std::set<TrackId> free_tracks;
    std::vector<RunState> runs;
    telemetry::Histogram* read_us = nullptr;  // storage.tier.l<k>.read_us
  };

  static std::vector<Fence> BuildFences(const std::vector<VersionRecord>& recs,
                                        const std::vector<std::size_t>& offs);

  Status FlipLevelLocked(Level& level, std::vector<RunState> next_runs,
                         const std::vector<std::pair<TrackId,
                             std::vector<std::uint8_t>>>& data_tracks)
      GS_REQUIRES(mu_);
  Result<std::vector<TrackId>> AllocateLocked(Level& level, std::size_t n)
      GS_REQUIRES(mu_);
  /// Rebuilds the free set from the level's adopted runs + catalog — the
  /// single undo/commit point for track bookkeeping on both flip paths.
  void RecomputeFreeLocked(Level& level) GS_REQUIRES(mu_);
  std::vector<std::uint8_t> EncodeLevelCatalogLocked(
      const std::vector<RunState>& runs) const GS_REQUIRES(mu_);
  Result<std::vector<RunState>> DecodeLevelCatalog(
      std::span<const std::uint8_t> bytes, std::uint64_t* next_run_id) const;

  /// Reads `[begin, end)` of a run's byte stream — covering platter
  /// tracks only, or a slice of the archive blob.
  Result<std::vector<std::uint8_t>> ReadRunBytesLocked(
      const Level& level, const RunState& run, std::size_t begin,
      std::size_t end) const GS_REQUIRES(mu_);

  /// Best binding <= `at` for `key` within one run; nullopt if absent.
  Result<std::optional<Association>> ProbeRunLocked(
      const Level& level, const RunState& run, const ElementKey& key,
      TxnTime at) GS_REQUIRES(mu_);

  Result<std::optional<Association>> ResolveLocked(const ElementKey& key,
                                                   TxnTime at)
      GS_REQUIRES(mu_);

  Status CompactLevelLocked(std::size_t level_index, bool force)
      GS_REQUIRES(mu_);
  Status AppendRunLocked(const std::vector<VersionRecord>& records)
      GS_REQUIRES(mu_);
  Result<std::vector<VersionRecord>> DecodeWholeRunLocked(
      const Level& level, const RunState& run) GS_REQUIRES(mu_);

  void SyncMirrorsLocked() GS_REQUIRES(mu_);

  SymbolTable* symbols_;
  ArchivalStore* archive_;
  const TierOptions options_;

  mutable Mutex mu_{LockRank::kStorageTier, "storage.tier_store_mu"};
  std::vector<Level> levels_ GS_GUARDED_BY(mu_);
  std::uint64_t next_run_id_ GS_GUARDED_BY(mu_) = 1;
  std::atomic<bool> open_{false};

  telemetry::Histogram* archive_read_us_;  // storage.tier.archive.read_us

  // Counters + atomic mirrors of catalog shape; the collector reads only
  // these (taking mu_ there would invert kTelemetryMetrics < kStorageTier).
  telemetry::Counter migrations_;
  telemetry::Counter records_demoted_;
  telemetry::Counter compactions_;
  telemetry::Counter archive_merges_;
  telemetry::Counter resolves_;
  telemetry::Counter resolve_misses_;
  telemetry::Counter recovery_fallbacks_;
  static constexpr std::size_t kMaxMirroredLevels = 8;
  std::atomic<std::uint64_t> level_runs_[kMaxMirroredLevels] = {};
  std::atomic<std::uint64_t> level_records_[kMaxMirroredLevels] = {};
  std::atomic<std::uint64_t> level_bytes_[kMaxMirroredLevels] = {};
  telemetry::Registration telemetry_;  // after everything it samples

  friend class TierStoreTestPeer;
};

}  // namespace gemstone::storage::tier

#endif  // GEMSTONE_STORAGE_TIER_TIER_STORE_H_
