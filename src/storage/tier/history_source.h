#ifndef GEMSTONE_STORAGE_TIER_HISTORY_SOURCE_H_
#define GEMSTONE_STORAGE_TIER_HISTORY_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/ids.h"
#include "core/result.h"
#include "storage/tier/version_record.h"

namespace gemstone::storage::tier {

/// What the compactor asks of the layer that owns live history — in
/// practice txn::TransactionManager. The interface points *upward* so the
/// storage tier never includes txn headers: txn implements this and hands
/// itself to the TierCompactor at wiring time.
///
/// Thread contract: every method is called from the compaction thread
/// with NO locks held; implementations take their own locks (the txn
/// store lock sits outside LockRank::kStorageTier, so an implementation
/// may call into the TierStore while holding it — the compactor itself
/// never does the reverse).
class HistorySource {
 public:
  virtual ~HistorySource() = default;

  /// An object whose resident history is worth demoting.
  struct Candidate {
    Oid oid;
    std::uint64_t truncatable = 0;   // bindings a demotion would free
    double historical_heat = 0.0;    // decayed time-dial traffic (engine)
  };

  /// The largest boundary B it is safe to demote below right now: every
  /// binding at time <= B is final (no in-flight commit can produce one),
  /// so a cold run sealed at B never misses a late write.
  virtual TxnTime SafeDemotionBoundary() const = 0;

  /// Up to `limit` objects with at least `min_truncatable` demotable
  /// bindings below `boundary`, coldest-first by historical heat.
  virtual std::vector<Candidate> DemotionCandidates(
      TxnTime boundary, std::size_t limit, std::uint64_t min_truncatable) = 0;

  /// Every binding of `oid` at time <= `boundary`, all elements, sorted
  /// by RecordOrder. Includes the creation markers and carry-forwards the
  /// object will also keep in memory — duplication is the crash-safety
  /// margin, never a gap.
  virtual Result<std::vector<VersionRecord>> CollectHistory(
      Oid oid, TxnTime boundary) = 0;

  /// Truncates `oid`'s resident history below `boundary` and raises its
  /// history floor, durably (the permanent image is rewritten before the
  /// in-memory copy changes). Called only after the records returned by
  /// CollectHistory are durable in the tier store.
  virtual Status ApplyDemotion(Oid oid, TxnTime boundary) = 0;
};

}  // namespace gemstone::storage::tier

#endif  // GEMSTONE_STORAGE_TIER_HISTORY_SOURCE_H_
