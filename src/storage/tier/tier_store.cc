#include "storage/tier/tier_store.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_set>
#include <utility>

#include "telemetry/flight_recorder.h"

namespace gemstone::storage::tier {

namespace {

constexpr std::uint32_t kTierCatalogMagic = 0x47535443;  // "GSTC"
constexpr std::size_t kFenceInterval = 32;

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Chunks a run's byte stream across its allocated tracks, in order.
std::vector<std::pair<TrackId, std::vector<std::uint8_t>>> ChunkToTracks(
    const std::vector<std::uint8_t>& bytes,
    const std::vector<TrackId>& tracks, std::size_t capacity) {
  std::vector<std::pair<TrackId, std::vector<std::uint8_t>>> out;
  out.reserve(tracks.size());
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const std::size_t begin = i * capacity;
    const std::size_t end = std::min(bytes.size(), begin + capacity);
    out.emplace_back(tracks[i], std::vector<std::uint8_t>(
                                    bytes.begin() + begin, bytes.begin() + end));
  }
  return out;
}

/// Sorts and folds exact-duplicate bindings — the shape repeated
/// demotions and level merges produce by design.
void SortAndDedupe(std::vector<VersionRecord>* records) {
  std::stable_sort(records->begin(), records->end(), RecordOrder);
  records->erase(std::unique(records->begin(), records->end(), SameBinding),
                 records->end());
}

}  // namespace

TierStore::TierStore(SymbolTable* symbols, ArchivalStore* archive,
                     TierOptions options)
    : symbols_(symbols),
      archive_(archive),
      options_(options),
      telemetry_(telemetry::MetricsRegistry::Global().Register(
          [this](telemetry::SampleSink* sink) {
            sink->Counter("storage.tier.migrations", migrations_.value());
            sink->Counter("storage.tier.records_demoted",
                          records_demoted_.value());
            sink->Counter("storage.tier.compactions", compactions_.value());
            sink->Counter("storage.tier.archive_merges",
                          archive_merges_.value());
            sink->Counter("storage.tier.resolves", resolves_.value());
            sink->Counter("storage.tier.resolve_misses",
                          resolve_misses_.value());
            sink->Counter("storage.tier.recovery_fallbacks",
                          recovery_fallbacks_.value());
            const std::size_t n =
                std::min(options_.cold_levels, kMaxMirroredLevels);
            for (std::size_t i = 0; i < n; ++i) {
              const std::string prefix =
                  "storage.tier.l" + std::to_string(i + 1);
              sink->Gauge(prefix + ".runs",
                          static_cast<std::int64_t>(level_runs_[i].load(
                              std::memory_order_relaxed)));
              sink->Gauge(prefix + ".records",
                          static_cast<std::int64_t>(level_records_[i].load(
                              std::memory_order_relaxed)));
              sink->Gauge(prefix + ".bytes",
                          static_cast<std::int64_t>(level_bytes_[i].load(
                              std::memory_order_relaxed)));
            }
          })) {
  archive_read_us_ = telemetry::MetricsRegistry::Global().GetHistogram(
      "storage.tier.archive.read_us");
  MutexLock lock(mu_);
  levels_.reserve(options_.cold_levels);
  for (std::size_t k = 0; k < options_.cold_levels; ++k) {
    Level level;
    // Each level deeper doubles in capacity: a merge into level k+1 must
    // shadow the combined runs of level k alongside what k+1 already holds.
    const TrackId tracks = options_.tracks_per_level << k;
    level.disk = std::make_unique<SimulatedDisk>(
        tracks, options_.track_capacity, options_.heatmap_half_life_ns);
    level.commits = std::make_unique<CommitManager>(level.disk.get());
    level.read_us = telemetry::MetricsRegistry::Global().GetHistogram(
        "storage.tier.l" + std::to_string(k + 1) + ".read_us");
    levels_.push_back(std::move(level));
  }
}

SimulatedDisk* TierStore::level_disk(std::size_t level) {
  MutexLock lock(mu_);
  return level < levels_.size() ? levels_[level].disk.get() : nullptr;
}

Status TierStore::Format() {
  MutexLock lock(mu_);
  for (Level& level : levels_) {
    GS_RETURN_IF_ERROR(level.commits->Format());
    level.epoch = 1;  // Format seeds epochs 0 and 1; recovery adopts 1
    level.catalog_tracks.clear();
    level.runs.clear();
    RecomputeFreeLocked(level);
  }
  next_run_id_ = 1;
  SyncMirrorsLocked();
  open_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status TierStore::Open() {
  MutexLock lock(mu_);
  // Which archived-run ids any recoverable root still references — the
  // complement gets garbage collected (a crash between StoreRun and the
  // catalog flip orphans the new blob).
  std::unordered_set<std::uint64_t> referenced_blobs;
  for (Level& level : levels_) {
    const std::vector<RootState> candidates =
        level.commits->RecoverRootCandidates();
    if (candidates.empty()) {
      return Status::Corruption("tier level has no valid root (not formatted?)");
    }
    bool adopted = false;
    Status last_error = Status::OK();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const RootState& root = candidates[c];
      std::vector<RunState> runs;
      std::uint64_t catalog_next_id = 1;
      if (!root.catalog_tracks.empty()) {
        auto bytes = level.commits->ReadCatalogBytes(root);
        if (!bytes.ok()) {
          last_error = bytes.status();
          recovery_fallbacks_.Increment();
          continue;
        }
        auto parsed = DecodeLevelCatalog(bytes.value(), &catalog_next_id);
        if (!parsed.ok()) {
          last_error = parsed.status();
          recovery_fallbacks_.Increment();
          continue;
        }
        runs = std::move(parsed).value();
      }
      // Verify every run the catalog references and rebuild its fence
      // index; one bad run condemns the whole root.
      bool runs_ok = true;
      for (RunState& run : runs) {
        Result<std::vector<std::uint8_t>> blob =
            run.archived
                ? (archive_ != nullptr
                       ? archive_->ReadRun(run.id)
                       : Result<std::vector<std::uint8_t>>(Status::Unavailable(
                             "catalog references archived run but no "
                             "archival store attached")))
                : [&]() -> Result<std::vector<std::uint8_t>> {
                    std::vector<std::uint8_t> bytes;
                    for (TrackId t : run.tracks) {
                      GS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> track,
                                          level.disk->ReadTrack(t));
                      bytes.insert(bytes.end(), track.begin(), track.end());
                    }
                    return bytes;
                  }();
        if (!blob.ok() || blob.value().size() != run.byte_len) {
          last_error = blob.ok() ? Status::Corruption(
                                       "tier run length mismatch on recovery")
                                 : blob.status();
          runs_ok = false;
          break;
        }
        auto decoded = DecodeRun(blob.value(), symbols_);
        if (!decoded.ok() || decoded.value().run_id != run.id) {
          last_error = decoded.ok()
                           ? Status::Corruption("tier run id mismatch")
                           : decoded.status();
          runs_ok = false;
          break;
        }
        run.fences =
            BuildFences(decoded.value().records, decoded.value().offsets);
      }
      if (!runs_ok) {
        recovery_fallbacks_.Increment();
        continue;
      }
      if (c > 0) {
        telemetry::FlightRecorder::Global().Record(
            telemetry::FlightEventKind::kRecoveryFallback, 0, root.epoch, 0,
            "tier level fell back to older root");
      }
      level.epoch = root.epoch;
      level.catalog_tracks = root.catalog_tracks;
      level.runs = std::move(runs);
      next_run_id_ = std::max(next_run_id_, catalog_next_id);
      RecomputeFreeLocked(level);
      adopted = true;
      break;
    }
    if (!adopted) {
      return last_error.ok()
                 ? Status::Corruption("tier level unrecoverable")
                 : last_error;
    }
    // Blobs any *parseable* candidate references stay (the older root is
    // the fallback if the adopted slot's catalog track rots later —
    // exactly the engine's shadow-retention rule).
    for (const RootState& root : candidates) {
      if (root.catalog_tracks.empty()) continue;
      auto bytes = level.commits->ReadCatalogBytes(root);
      if (!bytes.ok()) continue;
      std::uint64_t ignored = 0;
      auto parsed = DecodeLevelCatalog(bytes.value(), &ignored);
      if (!parsed.ok()) continue;
      for (const RunState& run : parsed.value()) {
        if (run.archived) referenced_blobs.insert(run.id);
      }
    }
  }
  if (archive_ != nullptr) {
    for (std::uint64_t id : archive_->RunIds()) {
      if (referenced_blobs.count(id) == 0) {
        (void)archive_->DropRun(id);
      }
    }
  }
  SyncMirrorsLocked();
  open_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

std::vector<TierStore::Fence> TierStore::BuildFences(
    const std::vector<VersionRecord>& recs,
    const std::vector<std::size_t>& offs) {
  std::vector<Fence> fences;
  for (std::size_t i = 0; i < recs.size(); i += kFenceInterval) {
    Fence fence;
    fence.offset = offs[i];
    fence.oid = recs[i].oid;
    fence.kind = recs[i].kind;
    fence.name = recs[i].name;
    fence.index = recs[i].index;
    fence.time = recs[i].time;
    fences.push_back(std::move(fence));
  }
  return fences;
}

void TierStore::RecomputeFreeLocked(Level& level) {
  std::unordered_set<TrackId> used;
  for (TrackId t : level.catalog_tracks) used.insert(t);
  for (const RunState& run : level.runs) {
    for (TrackId t : run.tracks) used.insert(t);
  }
  level.free_tracks.clear();
  for (TrackId t = CommitManager::kFirstDataTrack;
       t < level.disk->num_tracks(); ++t) {
    if (used.count(t) == 0) level.free_tracks.insert(t);
  }
}

Result<std::vector<TrackId>> TierStore::AllocateLocked(Level& level,
                                                       std::size_t n) {
  if (level.free_tracks.size() < n) {
    return Status::IoError("tier level full: need " + std::to_string(n) +
                           " tracks, have " +
                           std::to_string(level.free_tracks.size()));
  }
  std::vector<TrackId> out;
  out.reserve(n);
  auto it = level.free_tracks.begin();
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(*it);
    it = level.free_tracks.erase(it);
  }
  return out;
}

std::vector<std::uint8_t> TierStore::EncodeLevelCatalogLocked(
    const std::vector<RunState>& runs) const {
  ByteWriter out;
  out.PutU32(kTierCatalogMagic);
  out.PutU64(next_run_id_);
  out.PutU32(static_cast<std::uint32_t>(runs.size()));
  for (const RunState& run : runs) {
    out.PutU64(run.id);
    out.PutU8(run.archived ? 1 : 0);
    out.PutU32(run.record_count);
    out.PutU64(run.min_time);
    out.PutU64(run.max_time);
    out.PutU64(run.min_oid.raw);
    out.PutU64(run.max_oid.raw);
    out.PutU32(run.byte_len);
    out.PutU64(run.checksum);
    out.PutU32(static_cast<std::uint32_t>(run.tracks.size()));
    for (TrackId t : run.tracks) out.PutU32(t);
  }
  return out.Take();
}

Result<std::vector<TierStore::RunState>> TierStore::DecodeLevelCatalog(
    std::span<const std::uint8_t> bytes, std::uint64_t* next_run_id) const {
  ByteReader in(bytes);
  GS_ASSIGN_OR_RETURN(std::uint32_t magic, in.GetU32());
  if (magic != kTierCatalogMagic) {
    return Status::Corruption("tier catalog magic mismatch");
  }
  GS_ASSIGN_OR_RETURN(*next_run_id, in.GetU64());
  GS_ASSIGN_OR_RETURN(std::uint32_t count, in.GetU32());
  std::vector<RunState> runs;
  runs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RunState run;
    GS_ASSIGN_OR_RETURN(run.id, in.GetU64());
    GS_ASSIGN_OR_RETURN(std::uint8_t archived, in.GetU8());
    run.archived = archived != 0;
    GS_ASSIGN_OR_RETURN(run.record_count, in.GetU32());
    GS_ASSIGN_OR_RETURN(run.min_time, in.GetU64());
    GS_ASSIGN_OR_RETURN(run.max_time, in.GetU64());
    GS_ASSIGN_OR_RETURN(std::uint64_t min_oid, in.GetU64());
    GS_ASSIGN_OR_RETURN(std::uint64_t max_oid, in.GetU64());
    run.min_oid = Oid(min_oid);
    run.max_oid = Oid(max_oid);
    GS_ASSIGN_OR_RETURN(run.byte_len, in.GetU32());
    GS_ASSIGN_OR_RETURN(run.checksum, in.GetU64());
    GS_ASSIGN_OR_RETURN(std::uint32_t ntracks, in.GetU32());
    for (std::uint32_t t = 0; t < ntracks; ++t) {
      GS_ASSIGN_OR_RETURN(TrackId track, in.GetU32());
      run.tracks.push_back(track);
    }
    runs.push_back(std::move(run));
  }
  if (in.remaining() != 0) {
    return Status::Corruption("tier catalog has trailing bytes");
  }
  return runs;
}

Status TierStore::FlipLevelLocked(
    Level& level, std::vector<RunState> next_runs,
    const std::vector<std::pair<TrackId, std::vector<std::uint8_t>>>&
        data_tracks) {
  const std::vector<std::uint8_t> catalog_bytes =
      EncodeLevelCatalogLocked(next_runs);
  const std::size_t cap = level.disk->track_capacity();
  const std::size_t n_cat = (catalog_bytes.size() + cap - 1) / cap;
  auto cat_tracks = AllocateLocked(level, n_cat);
  if (!cat_tracks.ok()) {
    RecomputeFreeLocked(level);
    return cat_tracks.status();
  }
  const Status st = level.commits->CommitGroup(
      data_tracks, cat_tracks.value(), catalog_bytes, level.epoch + 1);
  if (!st.ok()) {
    // Previous root still rules the device; drop the speculative
    // allocations so in-memory bookkeeping matches it again.
    RecomputeFreeLocked(level);
    return st;
  }
  ++level.epoch;
  level.catalog_tracks = std::move(cat_tracks).value();
  level.runs = std::move(next_runs);
  RecomputeFreeLocked(level);
  SyncMirrorsLocked();
  return Status::OK();
}

Status TierStore::AppendRun(const std::vector<VersionRecord>& records) {
  MutexLock lock(mu_);
  if (!open_.load(std::memory_order_relaxed)) {
    return Status::TransactionState("tier store is not open");
  }
  return AppendRunLocked(records);
}

Status TierStore::AppendRunLocked(const std::vector<VersionRecord>& records) {
  if (records.empty()) return Status::OK();
  if (levels_.empty()) {
    return Status::Unavailable("tier store configured with no cold levels");
  }
  std::vector<VersionRecord> sorted = records;
  SortAndDedupe(&sorted);

  Level& level = levels_.front();
  const std::size_t cap = level.disk->track_capacity();
  const std::uint64_t id = next_run_id_++;
  EncodedRun encoded = EncodeRun(id, sorted, *symbols_);
  const std::size_t n_data = (encoded.bytes.size() + cap - 1) / cap;

  // One forced merge downward when L1 is too full to shadow the new run
  // (data + a worst-case catalog rewrite).
  if (level.free_tracks.size() < n_data + 2 && !level.runs.empty()) {
    GS_RETURN_IF_ERROR(CompactLevelLocked(0, /*force=*/true));
  }
  auto data_tracks = AllocateLocked(level, n_data);
  if (!data_tracks.ok()) {
    RecomputeFreeLocked(level);
    return data_tracks.status();
  }

  RunState run;
  run.id = id;
  run.record_count = static_cast<std::uint32_t>(sorted.size());
  run.min_time = sorted.front().time;
  run.max_time = sorted.front().time;
  for (const VersionRecord& r : sorted) {
    run.min_time = std::min(run.min_time, r.time);
    run.max_time = std::max(run.max_time, r.time);
  }
  run.min_oid = sorted.front().oid;
  run.max_oid = sorted.back().oid;
  run.byte_len = static_cast<std::uint32_t>(encoded.bytes.size());
  run.checksum = Fnv1a(std::span<const std::uint8_t>(encoded.bytes)
                           .first(encoded.bytes.size() - 8));
  run.tracks = data_tracks.value();
  run.fences = BuildFences(sorted, encoded.offsets);

  std::vector<RunState> next_runs = level.runs;
  next_runs.push_back(std::move(run));
  GS_RETURN_IF_ERROR(FlipLevelLocked(
      level, std::move(next_runs),
      ChunkToTracks(encoded.bytes, data_tracks.value(), cap)));
  migrations_.Increment();
  records_demoted_.Increment(sorted.size());
  return Status::OK();
}

Result<std::vector<VersionRecord>> TierStore::DecodeWholeRunLocked(
    const Level& level, const RunState& run) {
  GS_ASSIGN_OR_RETURN(
      std::vector<std::uint8_t> bytes,
      ReadRunBytesLocked(level, run, 0, run.byte_len));
  GS_ASSIGN_OR_RETURN(DecodedRun decoded, DecodeRun(bytes, symbols_));
  return std::move(decoded.records);
}

Status TierStore::MaybeCompact() {
  MutexLock lock(mu_);
  if (!open_.load(std::memory_order_relaxed)) {
    return Status::TransactionState("tier store is not open");
  }
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    GS_RETURN_IF_ERROR(CompactLevelLocked(i, /*force=*/false));
  }
  return Status::OK();
}

Status TierStore::CompactLevel(std::size_t level) {
  MutexLock lock(mu_);
  if (level >= levels_.size()) {
    return Status::OutOfRange("no tier level " + std::to_string(level));
  }
  return CompactLevelLocked(level, /*force=*/true);
}

Status TierStore::CompactLevelLocked(std::size_t level_index, bool force) {
  Level& src = levels_[level_index];
  std::size_t platter_runs = 0;
  for (const RunState& run : src.runs) {
    if (!run.archived) ++platter_runs;
  }
  if (!force && platter_runs <= options_.runs_per_level) return Status::OK();
  if (src.runs.empty()) return Status::OK();

  const bool deepest = level_index + 1 == levels_.size();

  // Merge-sort every source run (archived included at the deepest level).
  std::vector<VersionRecord> merged;
  std::vector<std::uint64_t> source_ids;
  std::uint64_t merged_from = 0;
  for (const RunState& run : src.runs) {
    GS_ASSIGN_OR_RETURN(std::vector<VersionRecord> records,
                        DecodeWholeRunLocked(src, run));
    merged.insert(merged.end(), std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
    source_ids.push_back(run.id);
    ++merged_from;
  }
  SortAndDedupe(&merged);
  if (merged.empty()) return Status::OK();

  const std::uint64_t id = next_run_id_++;
  EncodedRun encoded = EncodeRun(id, merged, *symbols_);

  RunState run;
  run.id = id;
  run.record_count = static_cast<std::uint32_t>(merged.size());
  run.min_time = merged.front().time;
  run.max_time = merged.front().time;
  for (const VersionRecord& r : merged) {
    run.min_time = std::min(run.min_time, r.time);
    run.max_time = std::max(run.max_time, r.time);
  }
  run.min_oid = merged.front().oid;
  run.max_oid = merged.back().oid;
  run.byte_len = static_cast<std::uint32_t>(encoded.bytes.size());
  run.checksum = Fnv1a(std::span<const std::uint8_t>(encoded.bytes)
                           .first(encoded.bytes.size() - 8));
  run.fences = BuildFences(merged, encoded.offsets);

  if (deepest && archive_ != nullptr) {
    // Fold the level — platter runs plus any previous mega-run — into one
    // archive blob. Store the blob first, then flip the catalog; a crash
    // between the two orphans the blob (GC'd at Open), never loses a run.
    run.archived = true;
    GS_RETURN_IF_ERROR(archive_->StoreRun(id, encoded.bytes));
    const Status st = FlipLevelLocked(src, {run}, {});
    if (!st.ok()) {
      (void)archive_->DropRun(id);
      return st;
    }
    for (std::uint64_t old_id : source_ids) {
      if (old_id != id && archive_ != nullptr) {
        (void)archive_->DropRun(old_id);
      }
    }
    archive_merges_.Increment();
    telemetry::FlightRecorder::Global().Record(
        telemetry::FlightEventKind::kTierCompaction, 0, level_index + 1,
        merged.size(), "merged " + std::to_string(merged_from) +
                           " runs into archive");
    return Status::OK();
  }

  Level& dst = deepest ? src : levels_[level_index + 1];
  if (deepest && src.runs.size() <= 1) return Status::OK();
  const std::size_t cap = dst.disk->track_capacity();
  const std::size_t n_data = (encoded.bytes.size() + cap - 1) / cap;
  auto data_tracks = AllocateLocked(dst, n_data);
  if (!data_tracks.ok()) {
    RecomputeFreeLocked(dst);
    return data_tracks.status();
  }
  run.tracks = data_tracks.value();

  std::vector<RunState> dst_next = dst.runs;
  if (deepest) dst_next.clear();  // self-merge replaces the level wholesale
  dst_next.push_back(std::move(run));
  GS_RETURN_IF_ERROR(FlipLevelLocked(
      dst, std::move(dst_next),
      ChunkToTracks(encoded.bytes, data_tracks.value(), cap)));
  if (!deepest) {
    // Destination is durable; empty the source. A crash (or fault) right
    // here leaves the same records on both levels — resolution takes the
    // max-time duplicate, and the next merge folds them.
    GS_RETURN_IF_ERROR(FlipLevelLocked(src, {}, {}));
  }
  compactions_.Increment();
  telemetry::FlightRecorder::Global().Record(
      telemetry::FlightEventKind::kTierCompaction, 0, level_index + 1,
      merged.size(),
      deepest ? "self-merge (no archive attached)"
              : "merged into level " + std::to_string(level_index + 2));
  return Status::OK();
}

Result<std::vector<std::uint8_t>> TierStore::ReadRunBytesLocked(
    const Level& level, const RunState& run, std::size_t begin,
    std::size_t end) const {
  if (begin > end || end > run.byte_len) {
    return Status::Internal("tier run window out of bounds");
  }
  if (run.archived) {
    if (archive_ == nullptr) {
      return Status::Unavailable("archived run without archival store");
    }
    GS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> blob,
                        archive_->ReadRun(run.id));
    if (blob.size() < end) {
      return Status::Corruption("archived run shorter than its catalog entry");
    }
    return std::vector<std::uint8_t>(blob.begin() + begin, blob.begin() + end);
  }
  const std::size_t cap = level.disk->track_capacity();
  const std::size_t first = begin / cap;
  const std::size_t last = end == begin ? first : (end - 1) / cap;
  if (last >= run.tracks.size()) {
    return Status::Corruption("tier run window beyond its track extent");
  }
  std::vector<std::uint8_t> bytes;
  bytes.reserve((last - first + 1) * cap);
  for (std::size_t t = first; t <= last; ++t) {
    GS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> track,
                        level.disk->ReadTrack(run.tracks[t]));
    bytes.insert(bytes.end(), track.begin(), track.end());
  }
  const std::size_t offset = begin - first * cap;
  if (offset + (end - begin) > bytes.size()) {
    return Status::Corruption("tier run track shorter than expected");
  }
  return std::vector<std::uint8_t>(bytes.begin() + offset,
                                   bytes.begin() + offset + (end - begin));
}

Result<std::optional<Association>> TierStore::ProbeRunLocked(
    const Level& level, const RunState& run, const ElementKey& key,
    TxnTime at) {
  // Fence binary search: first fence strictly greater than (key, at).
  const auto fence_greater = [&](const Fence& f) {
    if (f.oid != key.oid) return f.oid > key.oid;
    if (f.kind != key.kind) return f.kind > key.kind;
    if (f.kind == VersionRecord::kNamed) {
      const int c = std::string_view(f.name).compare(key.name);
      if (c != 0) return c > 0;
    } else if (f.index != key.index) {
      return f.index > key.index;
    }
    return f.time > at;
  };
  std::size_t lo = 0, hi = run.fences.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (fence_greater(run.fences[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == 0) return std::optional<Association>();  // run starts past key
  const std::size_t idx = lo - 1;
  const std::size_t window_begin = run.fences[idx].offset;
  const std::size_t window_end = idx + 1 < run.fences.size()
                                     ? run.fences[idx + 1].offset
                                     : run.byte_len - 8;
  const std::uint64_t start_ns = NowNs();
  GS_ASSIGN_OR_RETURN(
      std::vector<std::uint8_t> bytes,
      ReadRunBytesLocked(level, run, window_begin, window_end));
  ByteReader in(bytes);
  std::optional<Association> best;
  while (in.remaining() > 0) {
    GS_ASSIGN_OR_RETURN(VersionRecord record, DecodeRecord(&in, symbols_));
    const int cmp = CompareElement(record, key);
    if (cmp > 0) break;
    if (cmp < 0) continue;
    if (record.time > at) break;
    best = Association{record.time, std::move(record.value)};
  }
  telemetry::Histogram* hist = run.archived ? archive_read_us_ : level.read_us;
  if (hist != nullptr) hist->Observe((NowNs() - start_ns) / 1000);
  return best;
}

Result<std::optional<Association>> TierStore::ResolveLocked(
    const ElementKey& key, TxnTime at) {
  resolves_.Increment();
  std::optional<Association> best;
  for (Level& level : levels_) {
    // Newest runs first: demotion emits disjoint (floor, boundary]
    // windows, so once a binding is found, every older run's max_time
    // prunes it without touching the platter.
    for (auto it = level.runs.rbegin(); it != level.runs.rend(); ++it) {
      const RunState& run = *it;
      if (run.min_time > at) continue;
      if (best.has_value() && run.max_time <= best->time) continue;
      if (key.oid < run.min_oid || key.oid > run.max_oid) continue;
      GS_ASSIGN_OR_RETURN(std::optional<Association> candidate,
                          ProbeRunLocked(level, run, key, at));
      if (candidate.has_value() &&
          (!best.has_value() || candidate->time > best->time)) {
        best = std::move(candidate);
      }
    }
  }
  if (!best.has_value()) resolve_misses_.Increment();
  return best;
}

Result<std::optional<Association>> TierStore::ResolveNamed(
    Oid oid, std::string_view name, TxnTime at) {
  MutexLock lock(mu_);
  return ResolveLocked(ElementKey{oid, VersionRecord::kNamed, name, 0}, at);
}

Result<std::optional<Association>> TierStore::ResolveIndexed(
    Oid oid, std::uint64_t index, TxnTime at) {
  MutexLock lock(mu_);
  return ResolveLocked(ElementKey{oid, VersionRecord::kIndexed, {}, index},
                       at);
}

Result<std::vector<Association>> TierStore::NamedHistoryOf(
    Oid oid, std::string_view name) {
  MutexLock lock(mu_);
  const ElementKey key{oid, VersionRecord::kNamed, name, 0};
  std::map<TxnTime, Value> merged;
  for (Level& level : levels_) {
    for (const RunState& run : level.runs) {
      if (key.oid < run.min_oid || key.oid > run.max_oid) continue;
      if (run.fences.empty()) continue;
      // An element's group may span several fence windows (fences land
      // every kFenceInterval records, a history can be longer), so the
      // scan range is [last fence strictly below the element, first
      // fence strictly above it) — the whole group lies inside.
      const auto element_of = [&](const Fence& f) {
        // Three-way fence element vs key, ignoring time.
        if (f.oid != key.oid) return f.oid < key.oid ? -1 : 1;
        if (f.kind != key.kind) return f.kind < key.kind ? -1 : 1;
        const int c = std::string_view(f.name).compare(key.name);
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
      };
      const auto search = [&](int bound) {
        // First fence index whose element compares >= `bound`.
        std::size_t lo = 0, hi = run.fences.size();
        while (lo < hi) {
          const std::size_t mid = lo + (hi - lo) / 2;
          if (element_of(run.fences[mid]) < bound) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        return lo;
      };
      const std::size_t first_at_or_after = search(0);
      const std::size_t first_after = search(1);
      const std::size_t begin_idx =
          first_at_or_after > 0 ? first_at_or_after - 1 : 0;
      const std::size_t window_begin = run.fences[begin_idx].offset;
      const std::size_t window_end = first_after < run.fences.size()
                                         ? run.fences[first_after].offset
                                         : run.byte_len - 8;
      if (window_end <= window_begin) continue;  // group not in this run
      GS_ASSIGN_OR_RETURN(
          std::vector<std::uint8_t> bytes,
          ReadRunBytesLocked(level, run, window_begin, window_end));
      ByteReader in(bytes);
      while (in.remaining() > 0) {
        GS_ASSIGN_OR_RETURN(VersionRecord record,
                            DecodeRecord(&in, symbols_));
        const int cmp = CompareElement(record, key);
        if (cmp > 0) break;
        if (cmp < 0) continue;
        merged[record.time] = std::move(record.value);
      }
    }
  }
  std::vector<Association> out;
  out.reserve(merged.size());
  for (auto& [time, value] : merged) {
    out.push_back(Association{time, std::move(value)});
  }
  return out;
}

void TierStore::SyncMirrorsLocked() {
  for (std::size_t i = 0; i < levels_.size() && i < kMaxMirroredLevels; ++i) {
    std::uint64_t runs = 0, records = 0, bytes = 0;
    for (const RunState& run : levels_[i].runs) {
      ++runs;
      records += run.record_count;
      bytes += run.byte_len;
    }
    level_runs_[i].store(runs, std::memory_order_relaxed);
    level_records_[i].store(records, std::memory_order_relaxed);
    level_bytes_[i].store(bytes, std::memory_order_relaxed);
  }
}

std::vector<TierLevelStats> TierStore::LevelStats() const {
  MutexLock lock(mu_);
  std::vector<TierLevelStats> stats;
  stats.reserve(levels_.size());
  for (const Level& level : levels_) {
    TierLevelStats s;
    for (const RunState& run : level.runs) {
      ++s.runs;
      s.records += run.record_count;
      s.bytes += run.byte_len;
    }
    s.free_tracks = level.free_tracks.size();
    s.epoch = level.epoch;
    stats.push_back(s);
  }
  return stats;
}

TierCounters TierStore::counters() const {
  TierCounters c;
  c.migrations = migrations_.value();
  c.records_demoted = records_demoted_.value();
  c.compactions = compactions_.value();
  c.archive_merges = archive_merges_.value();
  c.resolves = resolves_.value();
  c.resolve_misses = resolve_misses_.value();
  c.recovery_fallbacks = recovery_fallbacks_.value();
  return c;
}

std::string TierStore::StatusJson() const {
  const std::vector<TierLevelStats> stats = LevelStats();
  const TierCounters c = counters();
  std::string json = "{\"levels\":[";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (i > 0) json += ",";
    json += "{\"level\":" + std::to_string(i + 1) +
            ",\"runs\":" + std::to_string(stats[i].runs) +
            ",\"records\":" + std::to_string(stats[i].records) +
            ",\"bytes\":" + std::to_string(stats[i].bytes) +
            ",\"free_tracks\":" + std::to_string(stats[i].free_tracks) +
            ",\"epoch\":" + std::to_string(stats[i].epoch) + "}";
  }
  json += "]";
  if (archive_ != nullptr) {
    json += ",\"archive\":{\"runs\":" + std::to_string(archive_->run_count()) +
            ",\"bytes\":" + std::to_string(archive_->run_bytes()) + "}";
  }
  json += ",\"counters\":{\"migrations\":" + std::to_string(c.migrations) +
          ",\"records_demoted\":" + std::to_string(c.records_demoted) +
          ",\"compactions\":" + std::to_string(c.compactions) +
          ",\"archive_merges\":" + std::to_string(c.archive_merges) +
          ",\"resolves\":" + std::to_string(c.resolves) +
          ",\"resolve_misses\":" + std::to_string(c.resolve_misses) +
          ",\"recovery_fallbacks\":" + std::to_string(c.recovery_fallbacks) +
          "}";
  json += ",\"options\":{\"cold_levels\":" +
          std::to_string(options_.cold_levels) +
          ",\"tracks_per_level\":" + std::to_string(options_.tracks_per_level) +
          ",\"runs_per_level\":" + std::to_string(options_.runs_per_level) +
          "}}";
  return json;
}

}  // namespace gemstone::storage::tier
