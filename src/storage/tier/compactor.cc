#include "storage/tier/compactor.h"

#include <chrono>
#include <utility>
#include <vector>

#include "telemetry/flight_recorder.h"

namespace gemstone::storage::tier {

TierCompactor::TierCompactor(TierStore* store, HistorySource* source,
                             CompactorOptions options)
    : store_(store),
      source_(source),
      options_(options),
      telemetry_(telemetry::MetricsRegistry::Global().Register(
          [this](telemetry::SampleSink* sink) {
            sink->Counter("storage.tier.compactor.passes", passes_.value());
            sink->Counter("storage.tier.compactor.objects_demoted",
                          objects_demoted_.value());
            sink->Counter("storage.tier.compactor.records_demoted",
                          records_demoted_.value());
            sink->Counter("storage.tier.compactor.skipped_hot",
                          skipped_hot_.value());
            sink->Counter("storage.tier.compactor.errors", errors_.value());
            sink->Gauge("storage.tier.compactor.running",
                        running_gauge_.value());
          })) {}

TierCompactor::~TierCompactor() { Stop(); }

void TierCompactor::Start() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  if (running_) return;
  if (thread_.joinable()) thread_.join();  // a stopped thread's remains
  stop_requested_ = false;
  running_ = true;
  running_gauge_.Set(1);
  thread_ = std::thread([this] { ThreadMain(); });
}

void TierCompactor::Stop() {
  {
    std::unique_lock<std::mutex> lock(thread_mu_);
    if (!running_ && !thread_.joinable()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::unique_lock<std::mutex> lock(thread_mu_);
  running_ = false;
  running_gauge_.Set(0);
}

bool TierCompactor::running() const {
  std::unique_lock<std::mutex> lock(thread_mu_);
  return running_;
}

void TierCompactor::ThreadMain() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(thread_mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    auto demoted = RunOncePass();
    if (!demoted.ok()) {
      errors_.Increment();
    }
  }
}

Result<std::size_t> TierCompactor::RunOncePass() {
  passes_.Increment();
  const TxnTime boundary = source_->SafeDemotionBoundary();
  if (boundary == kTimeOrigin) return std::size_t{0};
  const std::vector<HistorySource::Candidate> candidates =
      source_->DemotionCandidates(boundary, options_.max_objects_per_pass,
                                  options_.min_versions);
  std::size_t demoted = 0;
  Status first_error = Status::OK();
  for (const HistorySource::Candidate& candidate : candidates) {
    if (candidate.historical_heat > options_.max_historical_heat) {
      // The time dial still visits this object's past: demoting it would
      // turn warm in-memory walks into cold-run probes.
      skipped_hot_.Increment();
      continue;
    }
    auto records = source_->CollectHistory(candidate.oid, boundary);
    if (!records.ok()) {
      if (first_error.ok()) first_error = records.status();
      continue;
    }
    if (records.value().empty()) continue;
    const std::size_t count = records.value().size();
    // Durability order is the crash contract: (1) the cold run lands and
    // its level catalog flips; (2) only then is the resident history
    // truncated. A crash between the two duplicates bindings — never
    // creates a gap.
    Status st = store_->AppendRun(records.value());
    if (!st.ok()) {
      if (first_error.ok()) first_error = st;
      continue;
    }
    st = source_->ApplyDemotion(candidate.oid, boundary);
    if (!st.ok()) {
      if (first_error.ok()) first_error = st;
      continue;
    }
    ++demoted;
    objects_demoted_.Increment();
    records_demoted_.Increment(count);
    telemetry::FlightRecorder::Global().Record(
        telemetry::FlightEventKind::kTierMigration, 0, candidate.oid.raw,
        count, "demoted below t=" + std::to_string(boundary));
  }
  // Rebalance after the pass so a burst of demotions triggers at most one
  // merge cascade.
  const Status st = store_->MaybeCompact();
  if (!st.ok() && first_error.ok()) first_error = st;
  if (!first_error.ok()) return first_error;
  return demoted;
}

CompactorStats TierCompactor::stats() const {
  CompactorStats s;
  s.passes = passes_.value();
  s.objects_demoted = objects_demoted_.value();
  s.records_demoted = records_demoted_.value();
  s.skipped_hot = skipped_hot_.value();
  s.errors = errors_.value();
  s.running = running();
  return s;
}

std::string TierCompactor::StatusJson() const {
  const CompactorStats s = stats();
  return "{\"running\":" + std::string(s.running ? "true" : "false") +
         ",\"passes\":" + std::to_string(s.passes) +
         ",\"objects_demoted\":" + std::to_string(s.objects_demoted) +
         ",\"records_demoted\":" + std::to_string(s.records_demoted) +
         ",\"skipped_hot\":" + std::to_string(s.skipped_hot) +
         ",\"errors\":" + std::to_string(s.errors) +
         ",\"interval_ms\":" + std::to_string(options_.interval_ms) +
         ",\"min_versions\":" + std::to_string(options_.min_versions) +
         ",\"max_objects_per_pass\":" +
         std::to_string(options_.max_objects_per_pass) + "}";
}

}  // namespace gemstone::storage::tier
