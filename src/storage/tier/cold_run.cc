#include "storage/tier/cold_run.h"

namespace gemstone::storage::tier {

namespace {
constexpr std::uint32_t kRunMagic = 0x47535231;  // "GSR1"
}  // namespace

void EncodeRecord(const VersionRecord& record, const SymbolTable& symbols,
                  ByteWriter* out) {
  out->PutU64(record.oid.raw);
  out->PutU8(record.kind);
  if (record.kind == VersionRecord::kNamed) {
    out->PutU8(record.alias ? 1 : 0);
    out->PutString(record.name);
  } else {
    out->PutU64(record.index);
  }
  out->PutU64(record.time);
  WriteValue(record.value, symbols, out);
}

Result<VersionRecord> DecodeRecord(ByteReader* in, SymbolTable* symbols) {
  VersionRecord record;
  GS_ASSIGN_OR_RETURN(std::uint64_t oid, in->GetU64());
  record.oid = Oid(oid);
  GS_ASSIGN_OR_RETURN(record.kind, in->GetU8());
  if (record.kind == VersionRecord::kNamed) {
    GS_ASSIGN_OR_RETURN(std::uint8_t alias, in->GetU8());
    record.alias = alias != 0;
    GS_ASSIGN_OR_RETURN(record.name, in->GetString());
  } else if (record.kind == VersionRecord::kIndexed) {
    GS_ASSIGN_OR_RETURN(record.index, in->GetU64());
  } else {
    return Status::Corruption("cold run record with unknown element kind " +
                              std::to_string(record.kind));
  }
  GS_ASSIGN_OR_RETURN(record.time, in->GetU64());
  GS_ASSIGN_OR_RETURN(record.value, ReadValue(in, symbols));
  return record;
}

EncodedRun EncodeRun(std::uint64_t run_id,
                     const std::vector<VersionRecord>& records,
                     const SymbolTable& symbols) {
  EncodedRun run;
  ByteWriter out;
  out.PutU32(kRunMagic);
  out.PutU64(run_id);
  out.PutU32(static_cast<std::uint32_t>(records.size()));
  run.offsets.reserve(records.size());
  for (const VersionRecord& record : records) {
    run.offsets.push_back(out.size());
    EncodeRecord(record, symbols, &out);
  }
  const std::uint64_t checksum = Fnv1a(out.bytes());
  out.PutU64(checksum);
  run.bytes = out.Take();
  return run;
}

Result<DecodedRun> DecodeRun(std::span<const std::uint8_t> bytes,
                             SymbolTable* symbols) {
  if (bytes.size() < 8 + 16) {
    return Status::Corruption("cold run shorter than header + footer");
  }
  const auto body = bytes.first(bytes.size() - 8);
  ByteReader tail(bytes.subspan(bytes.size() - 8));
  GS_ASSIGN_OR_RETURN(std::uint64_t stored, tail.GetU64());
  if (Fnv1a(body) != stored) {
    return Status::Corruption("cold run checksum mismatch");
  }
  ByteReader in(body);
  GS_ASSIGN_OR_RETURN(std::uint32_t magic, in.GetU32());
  if (magic != kRunMagic) {
    return Status::Corruption("cold run magic mismatch");
  }
  DecodedRun run;
  GS_ASSIGN_OR_RETURN(run.run_id, in.GetU64());
  GS_ASSIGN_OR_RETURN(std::uint32_t count, in.GetU32());
  run.records.reserve(count);
  run.offsets.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    run.offsets.push_back(in.position());
    GS_ASSIGN_OR_RETURN(VersionRecord record, DecodeRecord(&in, symbols));
    run.records.push_back(std::move(record));
  }
  if (in.remaining() != 0) {
    return Status::Corruption("cold run has trailing bytes");
  }
  run.body_end = body.size();
  return run;
}

}  // namespace gemstone::storage::tier
