#ifndef GEMSTONE_STORAGE_TIER_COLD_RUN_H_
#define GEMSTONE_STORAGE_TIER_COLD_RUN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/result.h"
#include "object/symbol_table.h"
#include "storage/serializer.h"
#include "storage/tier/version_record.h"

namespace gemstone::storage::tier {

/// Cold-run wire format:
///
///   header   : magic "GSR1" (u32) | run_id (u64) | record_count (u32)
///   records  : record_count encoded VersionRecords, RecordOrder-sorted
///   footer   : FNV-1a over everything above (u64)
///
/// A run is immutable once written; integrity is the trailing checksum
/// (verified by DecodeRun and by catalog recovery). Values reuse the
/// object-image value codec; symbols travel as text.

/// The encoded run plus the byte offset of each record — offsets feed the
/// in-memory fence index, which is rebuilt (not persisted) at Open.
struct EncodedRun {
  std::vector<std::uint8_t> bytes;
  std::vector<std::size_t> offsets;  // one per record, into `bytes`
};

/// A decoded run: records in stored order with their byte offsets, plus
/// where the record region ends (the checksum footer's offset).
struct DecodedRun {
  std::uint64_t run_id = 0;
  std::vector<VersionRecord> records;
  std::vector<std::size_t> offsets;
  std::size_t body_end = 0;
};

/// Encodes one record (element key, time, value) at the writer's tail.
void EncodeRecord(const VersionRecord& record, const SymbolTable& symbols,
                  ByteWriter* out);

/// Decodes one record; Corruption on malformed input.
Result<VersionRecord> DecodeRecord(ByteReader* in, SymbolTable* symbols);

/// Encodes `records` (must already be RecordOrder-sorted) as run
/// `run_id`.
EncodedRun EncodeRun(std::uint64_t run_id,
                     const std::vector<VersionRecord>& records,
                     const SymbolTable& symbols);

/// Verifies the checksum and decodes every record. Symbols referenced by
/// record values are re-interned into `symbols`.
Result<DecodedRun> DecodeRun(std::span<const std::uint8_t> bytes,
                             SymbolTable* symbols);

}  // namespace gemstone::storage::tier

#endif  // GEMSTONE_STORAGE_TIER_COLD_RUN_H_
