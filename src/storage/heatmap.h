#ifndef GEMSTONE_STORAGE_HEATMAP_H_
#define GEMSTONE_STORAGE_HEATMAP_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/annotations.h"
#include "core/sync.h"

namespace gemstone::storage {

using TrackId = std::uint32_t;

/// Per-track access heat with exponential decay (DESIGN.md §14). Every
/// read/write/seek deposits one unit of heat on its track; heat halves
/// every `half_life_ns`, so the map converges on *recent* access density
/// rather than accumulating forever like the raw `disk.*` counters.
/// Accesses are classified current-state vs. historical (time-dial reads,
/// telemetry::ThreadAccessIsHistorical) — the split ROADMAP item 4's
/// compaction policy needs: tracks hot with *current* traffic should
/// cluster near their directory; tracks hot only with *historical* reads
/// are audit traffic over settled data.
///
/// Decay is applied lazily per track at record/query time (no background
/// work): heat' = heat * 2^(-dt / half_life) before each deposit.
///
/// Locking: `mu_` is rank storage.heatmap, inner to storage.device — the
/// disk records into the map while holding its own lock. Aggregates the
/// registry collector exports are mirrored into plain atomics so the
/// collector (which runs under the registry lock) never touches `mu_`.
class TrackHeatmap {
 public:
  /// Default half-life: 60 s. Long enough that a compaction pass sees the
  /// last minute of workload, short enough that yesterday's bulk load is
  /// cold by lunch.
  static constexpr std::uint64_t kDefaultHalfLifeNs = 60ull * 1000000000ull;

  /// Payload caps for the /heatmap admin route.
  static constexpr std::size_t kDefaultTrackLimit = 32;
  static constexpr std::size_t kMaxTrackLimit = 1024;
  static constexpr std::size_t kDefaultSegments = 16;

  explicit TrackHeatmap(TrackId num_tracks,
                        std::uint64_t half_life_ns = kDefaultHalfLifeNs);
  TrackHeatmap(const TrackHeatmap&) = delete;
  TrackHeatmap& operator=(const TrackHeatmap&) = delete;

  /// Records one access. `now_ns` is the decay clock (TraceNowNs
  /// timebase); pass 0 to use the real clock — tests pass explicit
  /// timestamps to make the decay math deterministic.
  void RecordRead(TrackId track, bool historical, std::uint64_t now_ns = 0);
  void RecordWrite(TrackId track, bool historical, std::uint64_t now_ns = 0);
  void RecordSeek(TrackId track, std::uint64_t now_ns = 0);

  /// One track's state, decayed to the query instant.
  struct TrackHeat {
    TrackId track = 0;
    double read_heat = 0;        // decayed, current-state accesses
    double write_heat = 0;       // decayed, current-state accesses
    double historical_heat = 0;  // decayed, time-dial accesses
    std::uint64_t reads = 0;     // raw counts, never decay
    std::uint64_t writes = 0;
    std::uint64_t seeks = 0;
  };

  /// The `limit` hottest tracks by total decayed heat, hottest first.
  /// Never-touched tracks are skipped entirely.
  std::vector<TrackHeat> Hottest(std::size_t limit,
                                 std::uint64_t now_ns = 0) const;

  /// One track's decayed heat at the query instant (zeros for an
  /// out-of-range or never-touched track). The point query the compaction
  /// policy runs per candidate object extent.
  TrackHeat HeatOf(TrackId track, std::uint64_t now_ns = 0) const;

  /// One segment = 1/n of the track space, heats summed. The coarse view
  /// that makes a 10k-track device printable.
  std::vector<TrackHeat> Segments(std::size_t n,
                                  std::uint64_t now_ns = 0) const;

  /// The /heatmap document: device shape, aggregate counters, the
  /// `track_limit` hottest tracks, and `segments` segment rows.
  std::string ToJson(std::size_t track_limit = kDefaultTrackLimit,
                     std::size_t segments = kDefaultSegments,
                     std::uint64_t now_ns = 0) const;

  TrackId num_tracks() const { return num_tracks_; }
  std::uint64_t half_life_ns() const { return half_life_ns_; }

  // -- Lock-free aggregate mirrors ------------------------------------------
  // Safe from the registry collector: plain relaxed atomics, no mu_.
  std::uint64_t current_accesses() const {
    return current_accesses_.load(std::memory_order_relaxed);
  }
  std::uint64_t historical_accesses() const {
    return historical_accesses_.load(std::memory_order_relaxed);
  }
  /// Track of the hottest deposit seen recently (approximate — updated at
  /// record time, not decayed; the JSON view is the precise one).
  std::uint32_t hot_track() const {
    return hot_track_.load(std::memory_order_relaxed);
  }
  std::uint64_t touched_tracks() const {
    return touched_tracks_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    double read_heat = 0;
    double write_heat = 0;
    double historical_heat = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t seeks = 0;
    std::uint64_t last_ns = 0;  // decay clock of the heats above
    bool touched = false;
  };

  enum class Access : std::uint8_t { kRead, kWrite, kSeek };

  /// Decays `cell` in place to `now_ns`.
  void DecayTo(Cell* cell, std::uint64_t now_ns) const;
  void Deposit(TrackId track, Access access, bool historical,
               std::uint64_t now_ns);

  const TrackId num_tracks_;
  const std::uint64_t half_life_ns_;

  mutable Mutex mu_{LockRank::kStorageHeatmap, "storage.heatmap_mu"};
  std::vector<Cell> cells_ GS_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> current_accesses_{0};
  std::atomic<std::uint64_t> historical_accesses_{0};
  std::atomic<std::uint32_t> hot_track_{0};
  std::atomic<std::uint64_t> touched_tracks_{0};
  std::atomic<std::uint64_t> hot_track_milliheat_{0};
};

}  // namespace gemstone::storage

#endif  // GEMSTONE_STORAGE_HEATMAP_H_
