#ifndef GEMSTONE_STORAGE_BOXER_H_
#define GEMSTONE_STORAGE_BOXER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/ids.h"
#include "core/result.h"
#include "storage/serializer.h"
#include "storage/simulated_disk.h"

namespace gemstone::storage {

/// A track payload assembled by the Boxer: a container of object
/// fragments, each tagged with its owning oid and its byte offset within
/// that object's serialized image. Wire format per track:
///   [u32 fragment_count] { [u64 oid][u32 offset][u32 len][len bytes] }*
struct TrackPayload {
  std::vector<std::uint8_t> bytes;
  std::vector<Oid> oids;  // objects with at least one fragment here
};

/// Result of boxing one batch: payloads in emission order, plus, per input
/// blob, the payload indexes (ascending) its fragments landed in.
struct Boxing {
  std::vector<TrackPayload> payloads;
  std::vector<std::vector<std::size_t>> placements;  // parallel to inputs
};

/// The Boxer (§6): "whose job it is to fit objects into tracks after
/// database changes." Objects larger than one track span several tracks;
/// small objects share tracks (clustering: objects boxed together in one
/// call land on adjacent payloads, which the engine maps to adjacent
/// tracks — "physical access paths parallel logical access").
class Boxer {
 public:
  explicit Boxer(std::size_t track_capacity);

  /// Packs serialized object images (parallel arrays `oids` / `blobs`)
  /// into track payloads. Fails only if the track capacity cannot hold a
  /// single fragment header plus one byte.
  Result<Boxing> Pack(std::span<const Oid> oids,
                      std::span<const std::vector<std::uint8_t>> blobs) const;

  /// Extracts the fragments belonging to `oid` from one track payload,
  /// copying them into `image` (pre-sized to the object's byte length) at
  /// their recorded offsets. Returns the number of bytes placed.
  static Result<std::size_t> ExtractFragments(
      std::span<const std::uint8_t> track_bytes, Oid oid,
      std::span<std::uint8_t> image);

  /// One fragment of a track payload, viewed in place.
  struct FragmentView {
    Oid oid;
    std::uint32_t offset;
    std::span<const std::uint8_t> bytes;
  };

  /// Single pass over every fragment in a track payload (batched loads
  /// extract all co-located objects in one sweep).
  template <typename Fn>  // Fn: Status(const FragmentView&)
  static Status ForEachFragment(std::span<const std::uint8_t> track_bytes,
                                Fn&& fn);

 private:
  std::size_t track_capacity_;
};

// Implementation details only below here.

template <typename Fn>
Status Boxer::ForEachFragment(std::span<const std::uint8_t> track_bytes,
                              Fn&& fn) {
  ByteReader in(track_bytes);
  GS_ASSIGN_OR_RETURN(std::uint32_t count, in.GetU32());
  for (std::uint32_t f = 0; f < count; ++f) {
    GS_ASSIGN_OR_RETURN(std::uint64_t oid, in.GetU64());
    GS_ASSIGN_OR_RETURN(std::uint32_t offset, in.GetU32());
    GS_ASSIGN_OR_RETURN(std::uint32_t len, in.GetU32());
    if (in.remaining() < len) {
      return Status::Corruption("fragment overruns track payload");
    }
    FragmentView view{Oid(oid), offset,
                      track_bytes.subspan(in.position(), len)};
    GS_RETURN_IF_ERROR(fn(view));
    GS_RETURN_IF_ERROR(in.Skip(len));
  }
  return Status::OK();
}

}  // namespace gemstone::storage

#endif  // GEMSTONE_STORAGE_BOXER_H_
