#ifndef GEMSTONE_STORAGE_STORAGE_ENGINE_H_
#define GEMSTONE_STORAGE_STORAGE_ENGINE_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "object/gs_object.h"
#include "object/symbol_table.h"
#include "storage/boxer.h"
#include "storage/commit_manager.h"
#include "storage/linker.h"
#include "storage/simulated_disk.h"
#include "telemetry/metrics.h"

namespace gemstone::storage {

/// Thin snapshot of the engine's telemetry counters (`engine.*`).
struct EngineStats {
  std::uint64_t commits = 0;
  std::uint64_t objects_written = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t objects_loaded = 0;
  std::uint64_t recovery_fallbacks = 0;  // roots abandoned during Open
};

/// The secondary-storage face of the Object Manager: orchestrates the
/// Boxer, Linker and Commit Manager over a track-granular device (§6).
///
/// Each commit shadows changed objects into fresh tracks, links them into
/// a new catalog version, and flips the root atomically. A crash between
/// any two track writes recovers to the previous epoch (verified by the
/// failure-injection tests). Objects boxed together in one commit land on
/// adjacent tracks, which is what gives clustered access its locality.
///
/// Not internally synchronized: the TransactionManager serializes commits,
/// and recovery happens before sessions start.
class StorageEngine {
 public:
  explicit StorageEngine(SimulatedDisk* disk);

  /// Initializes an empty store (destroys any previous contents).
  Status Format();

  /// Recovers the newest valid root whose catalog stream reads back
  /// intact — falling back to the older root slot (and counting
  /// `engine.recovery_fallbacks`) when the newest one's catalog fails its
  /// checksum — then rebuilds the free-track map from the catalog's
  /// extents.
  Status Open();

  bool is_open() const { return open_; }
  std::uint64_t epoch() const { return epoch_; }
  const Catalog& catalog() const { return catalog_; }
  SimulatedDisk* disk() { return disk_; }
  EngineStats stats() const;

  /// Durably writes this commit's changed objects (full images, history
  /// included) as one safe group. Objects appear on adjacent tracks in
  /// argument order.
  Status CommitObjects(const std::vector<const GsObject*>& objects,
                       const SymbolTable& symbols);

  /// Reads one object back from its extent, verifying the image checksum.
  Result<GsObject> LoadObject(Oid oid, SymbolTable* symbols);

  /// Batched load: reads every distinct track covering `oids` exactly
  /// once and extracts all requested images from it — the payoff of the
  /// Boxer's clustering ("physical access paths parallel logical
  /// access", §6). Output order matches input order.
  Result<std::vector<GsObject>> LoadObjects(const std::vector<Oid>& oids,
                                            SymbolTable* symbols);

  bool Contains(Oid oid) const { return catalog_.Contains(oid); }
  std::vector<Oid> CatalogOids() const;

  /// Marks a time-dial read of `oid` on the heatmap: its extent tracks
  /// gain *historical* heat even when the object's past states were
  /// served from memory and no device read happened. This is how the
  /// current/historical split stays honest for in-memory history walks —
  /// the compaction signal (ROADMAP item 4) wants where the *audit*
  /// traffic lands, not just where its cache misses land. No-op for
  /// unknown oids. Caller holds whatever serializes catalog access (the
  /// TransactionManager's store lock).
  void NoteHistoricalObjectAccess(Oid oid);

  /// Decayed *historical-channel* heat summed over `oid`'s extent tracks —
  /// the compaction policy's per-object demotion signal (an object whose
  /// history the time dial still visits regularly should keep it resident).
  /// 0 for unknown oids. Same synchronization contract as
  /// NoteHistoricalObjectAccess.
  double HistoricalHeatOf(Oid oid) const;

  std::size_t free_track_count() const { return free_tracks_.size(); }

 private:
  Result<std::vector<TrackId>> Allocate(std::size_t n);
  void Release(const std::vector<TrackId>& tracks);

  /// Small objects cluster several extents onto one track, so a track is
  /// reusable only when the *last* extent referencing it is superseded.
  void AddExtentRefs(const std::vector<TrackId>& tracks);
  void DropExtentRefs(const std::vector<TrackId>& tracks);

  SimulatedDisk* disk_;
  CommitManager commit_manager_;
  Boxer boxer_;

  bool open_ = false;
  std::uint64_t epoch_ = 0;
  Catalog catalog_;
  std::vector<TrackId> catalog_tracks_;
  std::set<TrackId> free_tracks_;
  std::unordered_map<TrackId, std::uint32_t> track_refs_;

  telemetry::Counter commits_;
  telemetry::Counter objects_written_;
  telemetry::Counter bytes_written_;
  telemetry::Counter objects_loaded_;
  telemetry::Counter recovery_fallbacks_;
  // Mirrors of non-atomic state so the collector never races a commit.
  telemetry::Gauge free_tracks_gauge_;
  telemetry::Gauge epoch_gauge_;
  telemetry::Registration telemetry_;  // after the counters it samples
};

}  // namespace gemstone::storage

#endif  // GEMSTONE_STORAGE_STORAGE_ENGINE_H_
