#ifndef GEMSTONE_STORAGE_ARCHIVAL_STORE_H_
#define GEMSTONE_STORAGE_ARCHIVAL_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "object/object_memory.h"

namespace gemstone::storage {

/// The "other media" of §6: "A database administrator can explicitly move
/// objects to other media, such as tape or write-only memory. Hence, while
/// conceptually the entire history of the database exists, some objects in
/// it may become temporarily or permanently inaccessible."
///
/// Archived objects leave the hot ObjectMemory (reads there report
/// Unavailable) but keep their full history here as serialized images and
/// can be restored by the administrator.
class ArchivalStore {
 public:
  ArchivalStore() = default;

  /// Detaches `oid` from `memory` and stores its serialized image.
  Status Archive(ObjectMemory* memory, Oid oid);

  /// Moves the object back into the hot store.
  Status Restore(ObjectMemory* memory, Oid oid);

  /// Deserializes a *copy* for offline inspection without restoring.
  Result<GsObject> Peek(Oid oid, SymbolTable* symbols) const;

  bool Contains(Oid oid) const { return images_.count(oid.raw) != 0; }
  std::size_t size() const { return images_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> images_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace gemstone::storage

#endif  // GEMSTONE_STORAGE_ARCHIVAL_STORE_H_
