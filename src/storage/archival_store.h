#ifndef GEMSTONE_STORAGE_ARCHIVAL_STORE_H_
#define GEMSTONE_STORAGE_ARCHIVAL_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "object/object_memory.h"
#include "telemetry/metrics.h"

namespace gemstone::storage {

/// The "other media" of §6: "A database administrator can explicitly move
/// objects to other media, such as tape or write-only memory. Hence, while
/// conceptually the entire history of the database exists, some objects in
/// it may become temporarily or permanently inaccessible."
///
/// Two kinds of payload live here:
///  - whole objects, explicitly archived by the administrator (Archive /
///    Restore / Peek), which leave the hot ObjectMemory entirely; and
///  - cold-run blobs handed down by the tier store (StoreRun / ReadRun /
///    DropRun) — the archive is the deepest level of the levelled history
///    store, not a disconnected side-store.
///
/// Exports `storage.archive.*` registry metrics and records Archive /
/// Restore flight events. Not internally synchronized: object moves run
/// under the transaction store lock and run blobs under the tier store
/// lock; the registry collector reads only the atomic mirrors.
class ArchivalStore {
 public:
  ArchivalStore();

  /// Detaches `oid` from `memory` and stores its serialized image.
  Status Archive(ObjectMemory* memory, Oid oid);

  /// Moves the object back into the hot store.
  Status Restore(ObjectMemory* memory, Oid oid);

  /// Deserializes a *copy* for offline inspection without restoring.
  Result<GsObject> Peek(Oid oid, SymbolTable* symbols) const;

  bool Contains(Oid oid) const { return images_.count(oid.raw) != 0; }
  std::size_t size() const { return images_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }

  // --- Cold-run blobs (the deepest tier level) ------------------------------

  /// Stores a serialized cold run under `run_id` (tier-store run ids are
  /// unique across levels for the life of the store).
  Status StoreRun(std::uint64_t run_id, std::vector<std::uint8_t> bytes);

  /// The stored blob, or NotFound.
  Result<std::vector<std::uint8_t>> ReadRun(std::uint64_t run_id) const;

  /// Discards a stored run (after a verified re-merge upward). NotFound
  /// when absent.
  Status DropRun(std::uint64_t run_id);

  std::size_t run_count() const { return runs_.size(); }
  std::uint64_t run_bytes() const { return run_bytes_; }

  /// Every stored run id (unordered). Tier recovery uses this to garbage
  /// collect blobs a crash orphaned between StoreRun and the catalog flip.
  std::vector<std::uint64_t> RunIds() const;

 private:
  void SyncMirrors();

  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> images_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> runs_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t run_bytes_ = 0;

  telemetry::Counter archives_;
  telemetry::Counter restores_;
  // Mirrors of the non-atomic maps so the registry collector never races
  // an archive operation.
  telemetry::Gauge objects_gauge_;
  telemetry::Gauge bytes_gauge_;
  telemetry::Gauge runs_gauge_;
  telemetry::Gauge run_bytes_gauge_;
  telemetry::Registration telemetry_;  // after the instruments it samples
};

}  // namespace gemstone::storage

#endif  // GEMSTONE_STORAGE_ARCHIVAL_STORE_H_
