#include "storage/simulated_disk.h"

#include "telemetry/flight_recorder.h"
#include "telemetry/io_attribution.h"

namespace gemstone::storage {

SimulatedDisk::SimulatedDisk(TrackId num_tracks, std::size_t track_capacity,
                             std::uint64_t heatmap_half_life_ns)
    : num_tracks_(num_tracks),
      track_capacity_(track_capacity),
      tracks_(num_tracks),
      heatmap_(num_tracks, heatmap_half_life_ns == 0
                               ? TrackHeatmap::kDefaultHalfLifeNs
                               : heatmap_half_life_ns),
      telemetry_(telemetry::MetricsRegistry::Global().Register(
          [this](telemetry::SampleSink* sink) {
            sink->Counter("disk.tracks_read", tracks_read_.value());
            sink->Counter("disk.tracks_written", tracks_written_.value());
            sink->Counter("disk.seeks", seeks_.value());
            sink->Counter("disk.seek_distance", seek_distance_.value());
            // Heatmap aggregates come from the lock-free mirrors — the
            // collector runs under the registry lock and must not take
            // the heatmap mutex (rank inversion).
            sink->Counter("storage.heatmap.current_accesses",
                          heatmap_.current_accesses());
            sink->Counter("storage.heatmap.historical_accesses",
                          heatmap_.historical_accesses());
            sink->Gauge("storage.heatmap.hot_track",
                        static_cast<std::int64_t>(heatmap_.hot_track()));
            sink->Gauge("storage.heatmap.touched_tracks",
                        static_cast<std::int64_t>(heatmap_.touched_tracks()));
          })) {}

void SimulatedDisk::AccountSeek(TrackId track) const {
  const std::uint64_t delta = track >= last_track_
                                  ? track - last_track_
                                  : last_track_ - track;
  if (delta > 1) {
    seeks_.Increment();
    ++telemetry::ThreadIoTally().seeks;
    heatmap_.RecordSeek(track);
  }
  seek_distance_.Increment(delta);
  last_track_ = track;
}

Result<std::vector<std::uint8_t>> SimulatedDisk::ReadTrack(
    TrackId track) const {
  MutexLock lock(mu_);
  if (track >= num_tracks_) {
    return Status::OutOfRange("track " + std::to_string(track) +
                              " beyond device end");
  }
  if (read_faults_.count(track) != 0) {
    telemetry::FlightRecorder::Global().Record(
        telemetry::FlightEventKind::kStorageFault, 0, track, 0,
        "injected read fault");
    return Status::IoError("injected read fault at track " +
                           std::to_string(track));
  }
  AccountSeek(track);
  tracks_read_.Increment();
  ++telemetry::ThreadIoTally().tracks_read;
  heatmap_.RecordRead(track, telemetry::ThreadAccessIsHistorical());
  return tracks_[track];
}

Status SimulatedDisk::WriteTrack(TrackId track,
                                 std::vector<std::uint8_t> data) {
  MutexLock lock(mu_);
  if (track >= num_tracks_) {
    return Status::OutOfRange("track " + std::to_string(track) +
                              " beyond device end");
  }
  if (data.size() > track_capacity_) {
    return Status::InvalidArgument("write of " + std::to_string(data.size()) +
                                   " bytes exceeds track capacity");
  }
  if (write_fault_ != WriteFault::kNone) {
    if (writes_until_failure_ == 0) {
      if (write_fault_ == WriteFault::kTear) {
        // The tear fires exactly once; the device then behaves as crashed.
        write_fault_ = WriteFault::kFail;
        data.resize(std::min(data.size(), tear_keep_bytes_));
        AccountSeek(track);
        tracks_written_.Increment();
        ++telemetry::ThreadIoTally().tracks_written;
        heatmap_.RecordWrite(track, telemetry::ThreadAccessIsHistorical());
        tracks_[track] = std::move(data);
        telemetry::FlightRecorder::Global().Record(
            telemetry::FlightEventKind::kStorageFault, 0, track, 0,
            "injected torn write");
        return Status::IoError("injected torn write at track " +
                               std::to_string(track));
      }
      telemetry::FlightRecorder::Global().Record(
          telemetry::FlightEventKind::kStorageFault, 0, track, 0,
          "injected write fault");
      return Status::IoError("injected write fault at track " +
                             std::to_string(track));
    }
    --writes_until_failure_;
  }
  AccountSeek(track);
  tracks_written_.Increment();
  ++telemetry::ThreadIoTally().tracks_written;
  heatmap_.RecordWrite(track, telemetry::ThreadAccessIsHistorical());
  tracks_[track] = std::move(data);
  return Status::OK();
}

void SimulatedDisk::InjectWriteFailureAfter(
    std::uint64_t writes_until_failure) {
  MutexLock lock(mu_);
  write_fault_ = WriteFault::kFail;
  writes_until_failure_ = writes_until_failure;
}

void SimulatedDisk::InjectTornWriteAfter(std::uint64_t writes_until_tear,
                                         std::size_t keep_bytes) {
  MutexLock lock(mu_);
  write_fault_ = WriteFault::kTear;
  writes_until_failure_ = writes_until_tear;
  tear_keep_bytes_ = keep_bytes;
}

void SimulatedDisk::InjectReadFault(TrackId track) {
  MutexLock lock(mu_);
  read_faults_.insert(track);
}

void SimulatedDisk::ClearFault() {
  MutexLock lock(mu_);
  write_fault_ = WriteFault::kNone;
  read_faults_.clear();
}

Status SimulatedDisk::CorruptTrack(TrackId track, std::size_t offset,
                                   std::uint8_t mask) {
  MutexLock lock(mu_);
  if (track >= num_tracks_) {
    return Status::OutOfRange("track " + std::to_string(track) +
                              " beyond device end");
  }
  if (offset >= tracks_[track].size()) {
    return Status::OutOfRange("offset " + std::to_string(offset) +
                              " beyond track contents");
  }
  tracks_[track][offset] ^= mask;
  return Status::OK();
}

Status SimulatedDisk::TruncateTrack(TrackId track, std::size_t new_size) {
  MutexLock lock(mu_);
  if (track >= num_tracks_) {
    return Status::OutOfRange("track " + std::to_string(track) +
                              " beyond device end");
  }
  if (new_size > tracks_[track].size()) {
    return Status::OutOfRange("truncation cannot grow the track");
  }
  tracks_[track].resize(new_size);
  return Status::OK();
}

DiskStats SimulatedDisk::stats() const {
  DiskStats stats;
  stats.tracks_read = tracks_read_.value();
  stats.tracks_written = tracks_written_.value();
  stats.seeks = seeks_.value();
  stats.seek_distance = seek_distance_.value();
  return stats;
}

void SimulatedDisk::ResetStats() {
  tracks_read_.Reset();
  tracks_written_.Reset();
  seeks_.Reset();
  seek_distance_.Reset();
}

}  // namespace gemstone::storage
