#include "storage/simulated_disk.h"

namespace gemstone::storage {

SimulatedDisk::SimulatedDisk(TrackId num_tracks, std::size_t track_capacity)
    : num_tracks_(num_tracks),
      track_capacity_(track_capacity),
      tracks_(num_tracks) {}

void SimulatedDisk::AccountSeek(TrackId track) const {
  const std::uint64_t delta = track >= last_track_
                                  ? track - last_track_
                                  : last_track_ - track;
  if (delta > 1) ++stats_.seeks;
  stats_.seek_distance += delta;
  last_track_ = track;
}

Result<std::vector<std::uint8_t>> SimulatedDisk::ReadTrack(
    TrackId track) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (track >= num_tracks_) {
    return Status::OutOfRange("track " + std::to_string(track) +
                              " beyond device end");
  }
  AccountSeek(track);
  ++stats_.tracks_read;
  return tracks_[track];
}

Status SimulatedDisk::WriteTrack(TrackId track,
                                 std::vector<std::uint8_t> data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (track >= num_tracks_) {
    return Status::OutOfRange("track " + std::to_string(track) +
                              " beyond device end");
  }
  if (data.size() > track_capacity_) {
    return Status::InvalidArgument("write of " + std::to_string(data.size()) +
                                   " bytes exceeds track capacity");
  }
  if (fault_armed_) {
    if (writes_until_failure_ == 0) {
      return Status::IoError("injected write fault at track " +
                             std::to_string(track));
    }
    --writes_until_failure_;
  }
  AccountSeek(track);
  ++stats_.tracks_written;
  tracks_[track] = std::move(data);
  return Status::OK();
}

void SimulatedDisk::InjectWriteFailureAfter(
    std::uint64_t writes_until_failure) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_armed_ = true;
  writes_until_failure_ = writes_until_failure;
}

void SimulatedDisk::ClearFault() {
  std::lock_guard<std::mutex> lock(mu_);
  fault_armed_ = false;
}

DiskStats SimulatedDisk::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SimulatedDisk::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = DiskStats{};
}

}  // namespace gemstone::storage
