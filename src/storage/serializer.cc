#include "storage/serializer.h"

#include <bit>
#include <cstring>

namespace gemstone::storage {

namespace {
constexpr std::uint32_t kObjectMagic = 0x47534F42;  // "GSOB"

enum class WireTag : std::uint8_t {
  kNil = 0,
  kBooleanFalse = 1,
  kBooleanTrue = 2,
  kInteger = 3,
  kFloat = 4,
  kString = 5,
  kSymbol = 6,
  kRef = 7,
};
}  // namespace

void ByteWriter::PutU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
}

void ByteWriter::PutU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
}

void ByteWriter::PutF64(double v) {
  PutU64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::PutBytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

Result<std::uint8_t> ByteReader::GetU8() {
  if (remaining() < 1) return Status::Corruption("truncated u8");
  return bytes_[pos_++];
}

Result<std::uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) return Status::Corruption("truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
  }
  return v;
}

Result<std::uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) return Status::Corruption("truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
  }
  return v;
}

Result<std::int64_t> ByteReader::GetI64() {
  GS_ASSIGN_OR_RETURN(std::uint64_t v, GetU64());
  return static_cast<std::int64_t>(v);
}

Result<double> ByteReader::GetF64() {
  GS_ASSIGN_OR_RETURN(std::uint64_t v, GetU64());
  return std::bit_cast<double>(v);
}

Result<std::string> ByteReader::GetString() {
  GS_ASSIGN_OR_RETURN(std::uint32_t len, GetU32());
  if (remaining() < len) return Status::Corruption("truncated string");
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
  pos_ += len;
  return s;
}

std::uint64_t Fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void WriteValue(const Value& v, const SymbolTable& symbols, ByteWriter* out) {
  switch (v.tag()) {
    case ValueTag::kNil:
      out->PutU8(static_cast<std::uint8_t>(WireTag::kNil));
      return;
    case ValueTag::kBoolean:
      out->PutU8(static_cast<std::uint8_t>(v.boolean()
                                               ? WireTag::kBooleanTrue
                                               : WireTag::kBooleanFalse));
      return;
    case ValueTag::kInteger:
      out->PutU8(static_cast<std::uint8_t>(WireTag::kInteger));
      out->PutI64(v.integer());
      return;
    case ValueTag::kFloat:
      out->PutU8(static_cast<std::uint8_t>(WireTag::kFloat));
      out->PutF64(v.real());
      return;
    case ValueTag::kString:
      out->PutU8(static_cast<std::uint8_t>(WireTag::kString));
      out->PutString(v.string());
      return;
    case ValueTag::kSymbol:
      out->PutU8(static_cast<std::uint8_t>(WireTag::kSymbol));
      out->PutString(symbols.Name(v.symbol()));
      return;
    case ValueTag::kRef:
      out->PutU8(static_cast<std::uint8_t>(WireTag::kRef));
      out->PutU64(v.ref().raw);
      return;
    case ValueTag::kHandle:
      // Blocks and other runtime handles are transient; they persist as
      // nil (documented in DESIGN.md).
      out->PutU8(static_cast<std::uint8_t>(WireTag::kNil));
      return;
  }
}

Result<Value> ReadValue(ByteReader* in, SymbolTable* symbols) {
  GS_ASSIGN_OR_RETURN(std::uint8_t raw_tag, in->GetU8());
  switch (static_cast<WireTag>(raw_tag)) {
    case WireTag::kNil:
      return Value::Nil();
    case WireTag::kBooleanFalse:
      return Value::Boolean(false);
    case WireTag::kBooleanTrue:
      return Value::Boolean(true);
    case WireTag::kInteger: {
      GS_ASSIGN_OR_RETURN(std::int64_t v, in->GetI64());
      return Value::Integer(v);
    }
    case WireTag::kFloat: {
      GS_ASSIGN_OR_RETURN(double v, in->GetF64());
      return Value::Float(v);
    }
    case WireTag::kString: {
      GS_ASSIGN_OR_RETURN(std::string s, in->GetString());
      return Value::String(std::move(s));
    }
    case WireTag::kSymbol: {
      GS_ASSIGN_OR_RETURN(std::string s, in->GetString());
      return Value::Symbol(symbols->Intern(s));
    }
    case WireTag::kRef: {
      GS_ASSIGN_OR_RETURN(std::uint64_t oid, in->GetU64());
      return Value::Ref(Oid(oid));
    }
  }
  return Status::Corruption("unknown value wire tag " +
                            std::to_string(raw_tag));
}

namespace {

void WriteTable(const AssociationTable& table, const SymbolTable& symbols,
                ByteWriter* out) {
  out->PutU32(static_cast<std::uint32_t>(table.history_size()));
  for (const Association& a : table.entries()) {
    out->PutU64(a.time);
    WriteValue(a.value, symbols, out);
  }
}

Status ReadTable(ByteReader* in, SymbolTable* symbols,
                 AssociationTable* table) {
  GS_ASSIGN_OR_RETURN(std::uint32_t count, in->GetU32());
  for (std::uint32_t i = 0; i < count; ++i) {
    GS_ASSIGN_OR_RETURN(TxnTime time, in->GetU64());
    GS_ASSIGN_OR_RETURN(Value value, ReadValue(in, symbols));
    table->Bind(time, std::move(value));
  }
  return Status::OK();
}

}  // namespace

std::vector<std::uint8_t> SerializeObject(const GsObject& object,
                                          const SymbolTable& symbols) {
  ByteWriter out;
  out.PutU32(kObjectMagic);
  out.PutU64(object.oid().raw);
  out.PutU64(object.class_oid().raw);
  out.PutU64(object.history_floor());
  out.PutU32(static_cast<std::uint32_t>(object.named_elements().size()));
  for (const NamedElement& element : object.named_elements()) {
    out.PutString(symbols.Name(element.name));
    out.PutU8(symbols.IsAlias(element.name) ? 1 : 0);
    WriteTable(element.table, symbols, &out);
  }
  out.PutU32(static_cast<std::uint32_t>(object.indexed_capacity()));
  for (std::size_t i = 0; i < object.indexed_capacity(); ++i) {
    WriteTable(*object.IndexedHistory(i), symbols, &out);
  }
  const std::uint64_t checksum = Fnv1a(out.bytes());
  out.PutU64(checksum);
  return out.Take();
}

Result<GsObject> DeserializeObject(std::span<const std::uint8_t> bytes,
                                   SymbolTable* symbols) {
  if (bytes.size() < 8) return Status::Corruption("object image too small");
  const std::span<const std::uint8_t> body = bytes.first(bytes.size() - 8);
  ByteReader checksum_reader(bytes.subspan(bytes.size() - 8));
  GS_ASSIGN_OR_RETURN(std::uint64_t stored, checksum_reader.GetU64());
  if (Fnv1a(body) != stored) {
    return Status::Corruption("object image checksum mismatch");
  }

  ByteReader in(body);
  GS_ASSIGN_OR_RETURN(std::uint32_t magic, in.GetU32());
  if (magic != kObjectMagic) return Status::Corruption("bad object magic");
  GS_ASSIGN_OR_RETURN(std::uint64_t oid, in.GetU64());
  GS_ASSIGN_OR_RETURN(std::uint64_t class_oid, in.GetU64());
  GS_ASSIGN_OR_RETURN(std::uint64_t history_floor, in.GetU64());
  GsObject object{Oid(oid), Oid(class_oid)};
  object.set_history_floor(history_floor);

  GS_ASSIGN_OR_RETURN(std::uint32_t num_named, in.GetU32());
  for (std::uint32_t i = 0; i < num_named; ++i) {
    GS_ASSIGN_OR_RETURN(std::string name, in.GetString());
    GS_ASSIGN_OR_RETURN(std::uint8_t was_alias, in.GetU8());
    const SymbolId sym =
        was_alias != 0 ? symbols->InternAlias(name) : symbols->Intern(name);
    AssociationTable table;
    GS_RETURN_IF_ERROR(ReadTable(&in, symbols, &table));
    for (const Association& a : table.entries()) {
      object.WriteNamed(sym, a.time, a.value);
    }
  }
  GS_ASSIGN_OR_RETURN(std::uint32_t num_indexed, in.GetU32());
  for (std::uint32_t i = 0; i < num_indexed; ++i) {
    AssociationTable table;
    GS_RETURN_IF_ERROR(ReadTable(&in, symbols, &table));
    for (const Association& a : table.entries()) {
      object.WriteIndexed(i, a.time, a.value);
    }
  }
  if (in.remaining() != 0) {
    return Status::Corruption("trailing bytes after object image");
  }
  return object;
}

}  // namespace gemstone::storage
