#include "storage/linker.h"

#include "storage/serializer.h"

namespace gemstone::storage {

std::vector<std::uint8_t> Catalog::Serialize() const {
  ByteWriter out;
  out.PutU32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [oid, extent] : entries_) {
    out.PutU64(oid);
    out.PutU32(extent.byte_len);
    out.PutU64(extent.checksum);
    out.PutU32(static_cast<std::uint32_t>(extent.tracks.size()));
    for (TrackId t : extent.tracks) out.PutU32(t);
  }
  return out.Take();
}

Result<Catalog> Catalog::Deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  GS_ASSIGN_OR_RETURN(std::uint32_t count, in.GetU32());
  Catalog catalog;
  for (std::uint32_t i = 0; i < count; ++i) {
    GS_ASSIGN_OR_RETURN(std::uint64_t oid, in.GetU64());
    Extent extent;
    GS_ASSIGN_OR_RETURN(extent.byte_len, in.GetU32());
    GS_ASSIGN_OR_RETURN(extent.checksum, in.GetU64());
    GS_ASSIGN_OR_RETURN(std::uint32_t num_tracks, in.GetU32());
    extent.tracks.reserve(num_tracks);
    for (std::uint32_t t = 0; t < num_tracks; ++t) {
      GS_ASSIGN_OR_RETURN(TrackId track, in.GetU32());
      extent.tracks.push_back(track);
    }
    catalog.Put(Oid(oid), std::move(extent));
  }
  if (in.remaining() != 0) {
    return Status::Corruption("trailing bytes after catalog");
  }
  return catalog;
}

Linker::LinkResult Linker::Link(
    const Catalog& current,
    const std::vector<std::pair<Oid, Extent>>& changed) {
  LinkResult result;
  result.next = current;
  for (const auto& [oid, extent] : changed) {
    if (const Extent* old = result.next.Find(oid)) {
      result.superseded_tracks.insert(result.superseded_tracks.end(),
                                      old->tracks.begin(), old->tracks.end());
    }
    result.next.Put(oid, extent);
  }
  return result;
}

}  // namespace gemstone::storage
