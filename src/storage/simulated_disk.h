#ifndef GEMSTONE_STORAGE_SIMULATED_DISK_H_
#define GEMSTONE_STORAGE_SIMULATED_DISK_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/annotations.h"
#include "core/result.h"
#include "core/status.h"
#include "core/sync.h"
#include "storage/heatmap.h"
#include "telemetry/metrics.h"

namespace gemstone::storage {

using TrackId = std::uint32_t;

/// I/O accounting for the simulated device. §6's design arguments are
/// about *structure* (track-granular transfer, clustering, safe group
/// writes); these counters are what the arguments quantify over. A thin
/// snapshot of the device's telemetry counters (`disk.*` in the registry).
///
/// Snapshots are relaxed-atomic reads taken without the device lock: each
/// field is individually monotonic, but no cross-field consistency is
/// promised while I/O is in flight (e.g. `seeks` may momentarily lag the
/// `tracks_read` that caused it).
struct DiskStats {
  std::uint64_t tracks_read = 0;
  std::uint64_t tracks_written = 0;
  std::uint64_t seeks = 0;           // accesses not adjacent to the last
  std::uint64_t seek_distance = 0;   // total |Δtrack|
};

/// Substitute for GemStone's special-purpose disk hardware: a fixed array
/// of tracks accessed only as whole tracks ("disk access will always be by
/// entire tracks, as a track is the natural unit of physical access",
/// §6), with fault injection for crash-recovery testing.
///
/// Thread-safe; a "crash" in tests is modeled by abandoning all in-memory
/// state and re-opening a StorageEngine over the same SimulatedDisk.
class SimulatedDisk {
 public:
  /// `heatmap_half_life_ns` tunes the access-heat decay (0 = the heatmap
  /// default) — gemstone_serve plumbs --heatmap-half-life-ms down here so
  /// compaction tuning experiments don't need rebuilds.
  SimulatedDisk(TrackId num_tracks, std::size_t track_capacity,
                std::uint64_t heatmap_half_life_ns = 0);
  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  TrackId num_tracks() const { return num_tracks_; }
  std::size_t track_capacity() const { return track_capacity_; }

  /// Reads the whole track (shorter than capacity if less was written).
  Result<std::vector<std::uint8_t>> ReadTrack(TrackId track) const;

  /// Replaces the track's contents. OutOfRange for a bad id,
  /// InvalidArgument when `data` exceeds track capacity, IoError when an
  /// injected fault fires (the write does NOT reach the platter).
  Status WriteTrack(TrackId track, std::vector<std::uint8_t> data);

  /// After `writes_until_failure` more successful writes, every subsequent
  /// write fails with IoError until ClearFault(). Models a crash mid
  /// commit group: nothing from the failed write reaches the platter.
  void InjectWriteFailureAfter(std::uint64_t writes_until_failure);

  /// After `writes_until_tear` more successful writes, the next write is
  /// *torn*: only its first `keep_bytes` bytes reach the platter and the
  /// call reports IoError. Every write after the tear fails outright, as
  /// after `InjectWriteFailureAfter` — the device has crashed. Models
  /// power loss mid-track, the case checksummed recovery must survive.
  void InjectTornWriteAfter(std::uint64_t writes_until_tear,
                            std::size_t keep_bytes);

  /// Reads of `track` fail with IoError until ClearFault(). Models an
  /// unreadable sector discovered at recovery time.
  void InjectReadFault(TrackId track);

  /// Clears every injected fault (write failures, tears, read faults).
  void ClearFault();

  /// XORs `mask` into the platter byte at `offset` of `track` — silent
  /// bit rot, detectable only by checksum. OutOfRange when the track or
  /// offset does not exist.
  Status CorruptTrack(TrackId track, std::size_t offset, std::uint8_t mask);

  /// Discards the platter contents of `track` beyond `new_size` — a torn
  /// write observed after the fact. OutOfRange for a bad id or a
  /// `new_size` beyond the track's current length.
  Status TruncateTrack(TrackId track, std::size_t new_size);

  DiskStats stats() const;
  void ResetStats();

  /// Per-track access heat (reads/writes/seeks with exponential decay,
  /// current vs. historical split). Thread-safe; the /heatmap admin route
  /// and the compaction policy both read it.
  const TrackHeatmap& heatmap() const { return heatmap_; }
  TrackHeatmap& heatmap() { return heatmap_; }

 private:
  const TrackId num_tracks_;
  const std::size_t track_capacity_;

  /// What an armed write fault does when its countdown reaches zero.
  enum class WriteFault : std::uint8_t { kNone, kFail, kTear };

  mutable Mutex mu_{LockRank::kStorageDevice, "storage.disk_mu"};
  std::vector<std::vector<std::uint8_t>> tracks_ GS_GUARDED_BY(mu_);
  mutable TrackId last_track_ GS_GUARDED_BY(mu_) = 0;
  WriteFault write_fault_ GS_GUARDED_BY(mu_) = WriteFault::kNone;
  std::uint64_t writes_until_failure_ GS_GUARDED_BY(mu_) = 0;
  std::size_t tear_keep_bytes_ GS_GUARDED_BY(mu_) = 0;
  std::unordered_set<TrackId> read_faults_ GS_GUARDED_BY(mu_);

  mutable TrackHeatmap heatmap_;

  mutable telemetry::Counter tracks_read_;
  mutable telemetry::Counter tracks_written_;
  mutable telemetry::Counter seeks_;
  mutable telemetry::Counter seek_distance_;
  telemetry::Registration telemetry_;  // after the counters it samples

  void AccountSeek(TrackId track) const GS_REQUIRES(mu_);
};

}  // namespace gemstone::storage

#endif  // GEMSTONE_STORAGE_SIMULATED_DISK_H_
