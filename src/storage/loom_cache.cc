#include "storage/loom_cache.h"

#include <algorithm>

#include "storage/serializer.h"

namespace gemstone::storage {

LoomObjectMemory::LoomObjectMemory(StorageEngine* engine,
                                   SymbolTable* symbols,
                                   std::size_t cache_capacity)
    : engine_(engine),
      symbols_(symbols),
      capacity_(std::min(cache_capacity, kMaxResidentObjects)),
      telemetry_(telemetry::MetricsRegistry::Global().Register(
          [this](telemetry::SampleSink* sink) {
            sink->Counter("loom.hits", hits_.value());
            sink->Counter("loom.faults", faults_.value());
            sink->Counter("loom.evictions", evictions_.value());
            sink->Counter("loom.write_backs", write_backs_.value());
            sink->Gauge("loom.resident_objects",
                        static_cast<std::int64_t>(residents_.size()));
          })) {}

LoomStats LoomObjectMemory::stats() const {
  LoomStats stats;
  stats.hits = hits_.value();
  stats.faults = faults_.value();
  stats.evictions = evictions_.value();
  stats.write_backs = write_backs_.value();
  return stats;
}

Result<GsObject*> LoomObjectMemory::Fetch(Oid oid) {
  auto it = residents_.find(oid.raw);
  if (it != residents_.end()) {
    hits_.Increment();
    lru_.erase(it->second.lru_position);
    lru_.push_front(oid.raw);
    it->second.lru_position = lru_.begin();
    return &it->second.object;
  }
  faults_.Increment();
  // Whole-object fault: LOOM's standard representation cannot bring in a
  // fragment, so the entire history-bearing image crosses the boundary.
  GS_ASSIGN_OR_RETURN(GsObject object, engine_->LoadObject(oid, symbols_));
  const std::size_t image_size =
      SerializeObject(object, *symbols_).size();
  if (image_size > kMaxObjectBytes) {
    return Status::InvalidArgument(
        "object exceeds LOOM's 64KB representation ceiling (" +
        std::to_string(image_size) + " bytes)");
  }
  while (residents_.size() >= capacity_) {
    GS_RETURN_IF_ERROR(EvictOne());
  }
  lru_.push_front(oid.raw);
  Resident resident{std::move(object), false, lru_.begin()};
  auto [inserted, ok] = residents_.emplace(oid.raw, std::move(resident));
  return &inserted->second.object;
}

Status LoomObjectMemory::MarkDirty(Oid oid) {
  auto it = residents_.find(oid.raw);
  if (it == residents_.end()) {
    return Status::NotFound("object not resident: " + oid.ToString());
  }
  it->second.dirty = true;
  return Status::OK();
}

Status LoomObjectMemory::EvictOne() {
  if (lru_.empty()) return Status::Internal("evict from empty cache");
  const std::uint64_t victim = lru_.back();
  auto it = residents_.find(victim);
  if (it->second.dirty) {
    const std::size_t image_size =
        SerializeObject(it->second.object, *symbols_).size();
    if (image_size > kMaxObjectBytes) {
      return Status::InvalidArgument(
          "dirty object grew past LOOM's 64KB ceiling");
    }
    GS_RETURN_IF_ERROR(
        engine_->CommitObjects({&it->second.object}, *symbols_));
    write_backs_.Increment();
  }
  lru_.pop_back();
  residents_.erase(it);
  evictions_.Increment();
  return Status::OK();
}

Status LoomObjectMemory::Flush() {
  std::vector<const GsObject*> dirty;
  for (auto& [raw, resident] : residents_) {
    if (!resident.dirty) continue;
    const std::size_t image_size =
        SerializeObject(resident.object, *symbols_).size();
    if (image_size > kMaxObjectBytes) {
      return Status::InvalidArgument(
          "dirty object grew past LOOM's 64KB ceiling");
    }
    dirty.push_back(&resident.object);
  }
  if (!dirty.empty()) {
    GS_RETURN_IF_ERROR(engine_->CommitObjects(dirty, *symbols_));
    write_backs_.Increment(dirty.size());
  }
  for (auto& [raw, resident] : residents_) resident.dirty = false;
  return Status::OK();
}

}  // namespace gemstone::storage
