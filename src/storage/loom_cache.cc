#include "storage/loom_cache.h"

#include <algorithm>

#include "storage/serializer.h"

namespace gemstone::storage {

LoomObjectMemory::LoomObjectMemory(StorageEngine* engine,
                                   SymbolTable* symbols,
                                   std::size_t cache_capacity)
    : engine_(engine),
      symbols_(symbols),
      capacity_(std::min(cache_capacity, kMaxResidentObjects)) {}

Result<GsObject*> LoomObjectMemory::Fetch(Oid oid) {
  auto it = residents_.find(oid.raw);
  if (it != residents_.end()) {
    ++stats_.hits;
    lru_.erase(it->second.lru_position);
    lru_.push_front(oid.raw);
    it->second.lru_position = lru_.begin();
    return &it->second.object;
  }
  ++stats_.faults;
  // Whole-object fault: LOOM's standard representation cannot bring in a
  // fragment, so the entire history-bearing image crosses the boundary.
  GS_ASSIGN_OR_RETURN(GsObject object, engine_->LoadObject(oid, symbols_));
  const std::size_t image_size =
      SerializeObject(object, *symbols_).size();
  if (image_size > kMaxObjectBytes) {
    return Status::InvalidArgument(
        "object exceeds LOOM's 64KB representation ceiling (" +
        std::to_string(image_size) + " bytes)");
  }
  while (residents_.size() >= capacity_) {
    GS_RETURN_IF_ERROR(EvictOne());
  }
  lru_.push_front(oid.raw);
  Resident resident{std::move(object), false, lru_.begin()};
  auto [inserted, ok] = residents_.emplace(oid.raw, std::move(resident));
  return &inserted->second.object;
}

Status LoomObjectMemory::MarkDirty(Oid oid) {
  auto it = residents_.find(oid.raw);
  if (it == residents_.end()) {
    return Status::NotFound("object not resident: " + oid.ToString());
  }
  it->second.dirty = true;
  return Status::OK();
}

Status LoomObjectMemory::EvictOne() {
  if (lru_.empty()) return Status::Internal("evict from empty cache");
  const std::uint64_t victim = lru_.back();
  auto it = residents_.find(victim);
  if (it->second.dirty) {
    const std::size_t image_size =
        SerializeObject(it->second.object, *symbols_).size();
    if (image_size > kMaxObjectBytes) {
      return Status::InvalidArgument(
          "dirty object grew past LOOM's 64KB ceiling");
    }
    GS_RETURN_IF_ERROR(
        engine_->CommitObjects({&it->second.object}, *symbols_));
    ++stats_.write_backs;
  }
  lru_.pop_back();
  residents_.erase(it);
  ++stats_.evictions;
  return Status::OK();
}

Status LoomObjectMemory::Flush() {
  std::vector<const GsObject*> dirty;
  for (auto& [raw, resident] : residents_) {
    if (!resident.dirty) continue;
    const std::size_t image_size =
        SerializeObject(resident.object, *symbols_).size();
    if (image_size > kMaxObjectBytes) {
      return Status::InvalidArgument(
          "dirty object grew past LOOM's 64KB ceiling");
    }
    dirty.push_back(&resident.object);
  }
  if (!dirty.empty()) {
    GS_RETURN_IF_ERROR(engine_->CommitObjects(dirty, *symbols_));
    stats_.write_backs += dirty.size();
  }
  for (auto& [raw, resident] : residents_) resident.dirty = false;
  return Status::OK();
}

}  // namespace gemstone::storage
