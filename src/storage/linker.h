#ifndef GEMSTONE_STORAGE_LINKER_H_
#define GEMSTONE_STORAGE_LINKER_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/ids.h"
#include "core/result.h"
#include "storage/simulated_disk.h"

namespace gemstone::storage {

/// Where one object's serialized image lives on disk.
struct Extent {
  std::vector<TrackId> tracks;  // tracks holding fragments, read in order
  std::uint32_t byte_len = 0;   // size of the serialized image
  std::uint64_t checksum = 0;   // FNV-1a of the image
};

/// The durable global object table: oid -> extent. This is the disk face
/// of §6's "global object table" through which GOOPs resolve.
class Catalog {
 public:
  void Put(Oid oid, Extent extent) { entries_[oid.raw] = std::move(extent); }
  const Extent* Find(Oid oid) const {
    auto it = entries_.find(oid.raw);
    return it == entries_.end() ? nullptr : &it->second;
  }
  bool Contains(Oid oid) const { return entries_.count(oid.raw) != 0; }
  std::size_t size() const { return entries_.size(); }
  const std::unordered_map<std::uint64_t, Extent>& entries() const {
    return entries_;
  }

  /// Serializes to a flat byte stream (chunked into tracks by the commit
  /// manager).
  std::vector<std::uint8_t> Serialize() const;
  static Result<Catalog> Deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::unordered_map<std::uint64_t, Extent> entries_;
};

/// The Linker (§6): "incorporates updates made by a transaction in the
/// permanent database at commit time." Given the pre-commit catalog and
/// the extents the Boxer produced for this commit's changed objects, it
/// yields the next catalog version and reports which tracks the commit
/// supersedes (reusable once the new root is durable — the object's
/// *history* lives inside its image, so superseded track versions carry
/// no information the new image lacks).
class Linker {
 public:
  struct LinkResult {
    Catalog next;
    std::vector<TrackId> superseded_tracks;
  };

  static LinkResult Link(const Catalog& current,
                         const std::vector<std::pair<Oid, Extent>>& changed);
};

}  // namespace gemstone::storage

#endif  // GEMSTONE_STORAGE_LINKER_H_
