#include "storage/commit_manager.h"

#include <algorithm>

#include "storage/serializer.h"
#include "telemetry/trace.h"

namespace gemstone::storage {

namespace {
constexpr std::uint32_t kRootMagic = 0x47535254;  // "GSRT"
}  // namespace

Status CommitManager::WriteRoot(const RootState& root) {
  ByteWriter out;
  out.PutU32(kRootMagic);
  out.PutU64(root.epoch);
  out.PutU32(root.catalog_len);
  out.PutU64(root.catalog_checksum);
  out.PutU32(static_cast<std::uint32_t>(root.catalog_tracks.size()));
  for (TrackId t : root.catalog_tracks) out.PutU32(t);
  const std::uint64_t checksum = Fnv1a(out.bytes());
  out.PutU64(checksum);
  const TrackId slot =
      (root.epoch % 2 == 0) ? kRootSlotA : kRootSlotB;
  return disk_->WriteTrack(slot, out.Take());
}

Status CommitManager::Format() {
  // Both slots receive a valid empty root. Slot B (epoch 1) is written
  // last, so recovery — which prefers the highest epoch — starts from an
  // empty catalog at epoch 1 and the first commit flips epoch 2 into
  // slot A, preserving the even/odd slot alternation.
  RootState empty;
  empty.epoch = 0;
  GS_RETURN_IF_ERROR(WriteRoot(empty));
  RootState second = empty;
  second.epoch = 1;
  return WriteRoot(second);
}

Result<RootState> CommitManager::RecoverRoot() const {
  std::vector<RootState> candidates = RecoverRootCandidates();
  if (candidates.empty()) {
    return Status::Corruption("no valid root block on device");
  }
  return std::move(candidates.front());
}

std::vector<RootState> CommitManager::RecoverRootCandidates() const {
  std::vector<RootState> candidates;
  for (TrackId slot : {kRootSlotA, kRootSlotB}) {
    auto bytes_result = disk_->ReadTrack(slot);
    if (!bytes_result.ok()) continue;
    const std::vector<std::uint8_t>& bytes = bytes_result.value();
    if (bytes.size() < 8) continue;
    const auto body = std::span<const std::uint8_t>(bytes).first(
        bytes.size() - 8);
    ByteReader tail(std::span<const std::uint8_t>(bytes).subspan(
        bytes.size() - 8));
    auto stored = tail.GetU64();
    if (!stored.ok() || Fnv1a(body) != stored.value()) continue;

    ByteReader in(body);
    auto magic = in.GetU32();
    if (!magic.ok() || magic.value() != kRootMagic) continue;
    RootState root;
    auto epoch = in.GetU64();
    auto len = in.GetU32();
    auto csum = in.GetU64();
    auto ntracks = in.GetU32();
    if (!epoch.ok() || !len.ok() || !csum.ok() || !ntracks.ok()) continue;
    root.epoch = epoch.value();
    root.catalog_len = len.value();
    root.catalog_checksum = csum.value();
    bool ok = true;
    for (std::uint32_t i = 0; i < ntracks.value(); ++i) {
      auto t = in.GetU32();
      if (!t.ok()) {
        ok = false;
        break;
      }
      root.catalog_tracks.push_back(t.value());
    }
    if (!ok || in.remaining() != 0) continue;
    candidates.push_back(std::move(root));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const RootState& a, const RootState& b) {
              return a.epoch > b.epoch;
            });
  return candidates;
}

Status CommitManager::CommitGroup(
    const std::vector<std::pair<TrackId, std::vector<std::uint8_t>>>&
        data_tracks,
    const std::vector<TrackId>& catalog_tracks,
    const std::vector<std::uint8_t>& catalog_bytes,
    std::uint64_t next_epoch) {
  const std::size_t chunk = disk_->track_capacity();
  const std::size_t needed = (catalog_bytes.size() + chunk - 1) / chunk;
  // Validate before any track is written: a doomed commit performs zero
  // I/O, so nothing needs undoing.
  if (needed > catalog_tracks.size()) {
    return Status::InvalidArgument("catalog does not fit allotted tracks");
  }
  {
    TELEM_SPAN("commit.write_group");
    // Phase 1: shadow writes of the data group. A failure here leaves the
    // previous root pointing exclusively at old tracks.
    for (const auto& [track, bytes] : data_tracks) {
      GS_RETURN_IF_ERROR(disk_->WriteTrack(track, bytes));
    }
    // Phase 2: the catalog stream, chunked by track capacity.
    for (std::size_t i = 0; i < needed; ++i) {
      const std::size_t begin = i * chunk;
      const std::size_t end =
          std::min(catalog_bytes.size(), begin + chunk);
      GS_RETURN_IF_ERROR(disk_->WriteTrack(
          catalog_tracks[i],
          std::vector<std::uint8_t>(catalog_bytes.begin() + begin,
                                    catalog_bytes.begin() + end)));
    }
  }
  // Phase 3: the atomicity point — one root-track write.
  TELEM_SPAN("commit.flip_root");
  RootState root;
  root.epoch = next_epoch;
  root.catalog_len = static_cast<std::uint32_t>(catalog_bytes.size());
  root.catalog_checksum =
      Fnv1a(std::span<const std::uint8_t>(catalog_bytes));
  root.catalog_tracks.assign(catalog_tracks.begin(),
                             catalog_tracks.begin() +
                                 static_cast<std::ptrdiff_t>(needed));
  GS_RETURN_IF_ERROR(WriteRoot(root));
  ++commits_;
  return Status::OK();
}

Result<std::vector<std::uint8_t>> CommitManager::ReadCatalogBytes(
    const RootState& root) const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(root.catalog_len);
  for (TrackId t : root.catalog_tracks) {
    GS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> track, disk_->ReadTrack(t));
    bytes.insert(bytes.end(), track.begin(), track.end());
  }
  if (bytes.size() < root.catalog_len) {
    return Status::Corruption("catalog stream shorter than root records");
  }
  bytes.resize(root.catalog_len);
  if (Fnv1a(std::span<const std::uint8_t>(bytes)) != root.catalog_checksum) {
    return Status::Corruption("catalog checksum mismatch");
  }
  return bytes;
}

}  // namespace gemstone::storage
