#ifndef GEMSTONE_TXN_TRANSACTION_H_
#define GEMSTONE_TXN_TRANSACTION_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "core/access_control.h"
#include "core/ids.h"
#include "object/gs_object.h"

namespace gemstone::txn {

enum class TxnState : std::uint8_t { kActive, kCommitted, kAborted };

/// One optimistic transaction: a private workspace of object copies plus
/// the recorded access sets the Transaction Manager validates at commit
/// (§6: "It records accesses to the database for each session, and
/// validates them for consistency when a transaction commits").
///
/// Writes inside the workspace bind at the provisional time kTimeNow; the
/// Linker re-stamps dirty elements with the real commit time when folding
/// them into the permanent store, so each element gains at most one
/// association per commit.
class Transaction {
 public:
  Transaction(SessionId session, TxnTime start_time,
              UserId user = kDbaUser)
      : session_(session), start_time_(start_time), user_(user) {}
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  SessionId session() const { return session_; }
  TxnTime start_time() const { return start_time_; }
  UserId user() const { return user_; }
  TxnState state() const { return state_; }
  bool active() const { return state_ == TxnState::kActive; }

  std::size_t read_set_size() const { return read_set_.size(); }
  std::size_t dirty_object_count() const { return dirty_.size(); }
  std::size_t created_count() const { return created_.size(); }
  /// Private copies still held; zero once the transaction finishes.
  std::size_t workspace_size() const { return working_.size(); }

 private:
  friend class TransactionManager;

  /// Per-object record of which elements this transaction wrote.
  struct DirtyMarks {
    std::unordered_set<SymbolId> named;
    std::unordered_set<std::size_t> indexed;
  };

  SessionId session_;
  TxnTime start_time_;
  UserId user_;
  TxnState state_ = TxnState::kActive;

  std::unordered_map<std::uint64_t, GsObject> working_;  // private copies
  std::unordered_set<std::uint64_t> read_set_;
  std::unordered_set<std::uint64_t> created_;
  std::unordered_map<std::uint64_t, DirtyMarks> dirty_;
};

}  // namespace gemstone::txn

#endif  // GEMSTONE_TXN_TRANSACTION_H_
