#include "txn/session.h"

#ifdef GS_THREAD_SAFETY
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#endif

namespace gemstone::txn {

#ifdef GS_THREAD_SAFETY

namespace {

/// A nonzero token identifying the calling thread.
std::size_t ThreadToken() {
  const std::size_t token =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return token == 0 ? 1 : token;
}

[[noreturn]] void DieConcurrentUse(SessionId id, const char* what) {
  std::fprintf(stderr,
               "gemstone: session %u %s — sessions are single-threaded; "
               "a worker pool must serialize per-session dispatch\n",
               id, what);
  std::abort();
}

}  // namespace

Session::OwnerGuard::OwnerGuard(const Session* session) : session_(session) {
  const std::size_t me = ThreadToken();
  std::size_t expected = 0;
  if (!session_->owner_.compare_exchange_strong(
          expected, me, std::memory_order_acq_rel,
          std::memory_order_acquire) &&
      expected != me) {
    DieConcurrentUse(session_->id_, "used from two threads concurrently");
  }
  session_->owner_depth_.fetch_add(1, std::memory_order_relaxed);
}

Session::OwnerGuard::~OwnerGuard() {
  if (session_->owner_depth_.fetch_sub(1, std::memory_order_relaxed) == 1 &&
      !session_->owner_bound_.load(std::memory_order_relaxed)) {
    session_->owner_.store(0, std::memory_order_release);
  }
}

void Session::BindOwnerToCurrentThread() const {
  const std::size_t me = ThreadToken();
  std::size_t expected = 0;
  if (!owner_.compare_exchange_strong(expected, me,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire) &&
      expected != me) {
    DieConcurrentUse(id_, "bound while owned by another thread");
  }
  owner_bound_.store(true, std::memory_order_relaxed);
}

void Session::ReleaseOwner() const {
  owner_bound_.store(false, std::memory_order_relaxed);
  if (owner_depth_.load(std::memory_order_relaxed) == 0) {
    owner_.store(0, std::memory_order_release);
  }
}

#else

void Session::BindOwnerToCurrentThread() const {}
void Session::ReleaseOwner() const {}

#endif  // GS_THREAD_SAFETY

Status Session::Begin() {
  OwnerGuard guard(this);
  if (InTransaction()) {
    return Status::TransactionState("transaction already active");
  }
  txn_ = manager_->Begin(id_, user_);
  return Status::OK();
}

Status Session::Commit() {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireActive());
  Status s = manager_->Commit(txn_.get());
  txn_.reset();
  return s;
}

Status Session::Abort() {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireActive());
  Status s = manager_->Abort(txn_.get());
  txn_.reset();
  return s;
}

Status Session::RequireActive() const {
  if (txn_ == nullptr || !txn_->active()) {
    return Status::TransactionState("no active transaction");
  }
  return Status::OK();
}

Status Session::RequireWritable() const {
  GS_RETURN_IF_ERROR(RequireActive());
  if (dial_.has_value()) {
    return Status::TransactionState(
        "cannot write while the time dial is set to a past state");
  }
  if (snapshot_.has_value()) {
    return Status::ReadOnlyRetry(
        "write attempted on the snapshot read path");
  }
  return Status::OK();
}

Result<Oid> Session::Create(Oid class_oid) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireWritable());
  return manager_->CreateObject(txn_.get(), class_oid);
}

Result<Value> Session::ReadNamed(Oid oid, SymbolId name) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->ReadNamed(txn_.get(), oid, name, EffectiveTime());
}

Result<Value> Session::ReadNamedAt(Oid oid, SymbolId name, TxnTime at) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->ReadNamed(txn_.get(), oid, name, at);
}

Status Session::WriteNamed(Oid oid, SymbolId name, Value value) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireWritable());
  return manager_->WriteNamed(txn_.get(), oid, name, std::move(value));
}

Result<Value> Session::ReadIndexed(Oid oid, std::size_t index) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->ReadIndexed(txn_.get(), oid, index, EffectiveTime());
}

Result<Value> Session::ReadIndexedAt(Oid oid, std::size_t index, TxnTime at) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->ReadIndexed(txn_.get(), oid, index, at);
}

Status Session::WriteIndexed(Oid oid, std::size_t index, Value value) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireWritable());
  return manager_->WriteIndexed(txn_.get(), oid, index, std::move(value));
}

Result<std::size_t> Session::AppendIndexed(Oid oid, Value value) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireWritable());
  return manager_->AppendIndexed(txn_.get(), oid, std::move(value));
}

Result<std::size_t> Session::IndexedSize(Oid oid) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->IndexedSize(txn_.get(), oid, EffectiveTime());
}

Result<Oid> Session::ClassOfObject(Oid oid) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->ClassOfObject(txn_.get(), oid);
}

Result<std::vector<std::pair<SymbolId, Value>>> Session::ListNamed(
    Oid oid, bool skip_unbound) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->ListNamed(txn_.get(), oid, EffectiveTime(), skip_unbound);
}

Result<std::vector<Association>> Session::History(Oid oid, SymbolId name) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->History(txn_.get(), oid, name);
}

Result<bool> Session::DeepEquals(const Value& a, const Value& b) {
  OwnerGuard guard(this);
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->DeepEquals(txn_.get(), a, b, EffectiveTime());
}

}  // namespace gemstone::txn
