#include "txn/session.h"

namespace gemstone::txn {

Status Session::Begin() {
  if (InTransaction()) {
    return Status::TransactionState("transaction already active");
  }
  txn_ = manager_->Begin(id_, user_);
  return Status::OK();
}

Status Session::Commit() {
  GS_RETURN_IF_ERROR(RequireActive());
  Status s = manager_->Commit(txn_.get());
  txn_.reset();
  return s;
}

Status Session::Abort() {
  GS_RETURN_IF_ERROR(RequireActive());
  Status s = manager_->Abort(txn_.get());
  txn_.reset();
  return s;
}

Status Session::RequireActive() const {
  if (txn_ == nullptr || !txn_->active()) {
    return Status::TransactionState("no active transaction");
  }
  return Status::OK();
}

Status Session::RequireWritable() const {
  GS_RETURN_IF_ERROR(RequireActive());
  if (dial_.has_value()) {
    return Status::TransactionState(
        "cannot write while the time dial is set to a past state");
  }
  return Status::OK();
}

Result<Oid> Session::Create(Oid class_oid) {
  GS_RETURN_IF_ERROR(RequireWritable());
  return manager_->CreateObject(txn_.get(), class_oid);
}

Result<Value> Session::ReadNamed(Oid oid, SymbolId name) {
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->ReadNamed(txn_.get(), oid, name, EffectiveTime());
}

Result<Value> Session::ReadNamedAt(Oid oid, SymbolId name, TxnTime at) {
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->ReadNamed(txn_.get(), oid, name, at);
}

Status Session::WriteNamed(Oid oid, SymbolId name, Value value) {
  GS_RETURN_IF_ERROR(RequireWritable());
  return manager_->WriteNamed(txn_.get(), oid, name, std::move(value));
}

Result<Value> Session::ReadIndexed(Oid oid, std::size_t index) {
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->ReadIndexed(txn_.get(), oid, index, EffectiveTime());
}

Result<Value> Session::ReadIndexedAt(Oid oid, std::size_t index, TxnTime at) {
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->ReadIndexed(txn_.get(), oid, index, at);
}

Status Session::WriteIndexed(Oid oid, std::size_t index, Value value) {
  GS_RETURN_IF_ERROR(RequireWritable());
  return manager_->WriteIndexed(txn_.get(), oid, index, std::move(value));
}

Result<std::size_t> Session::AppendIndexed(Oid oid, Value value) {
  GS_RETURN_IF_ERROR(RequireWritable());
  return manager_->AppendIndexed(txn_.get(), oid, std::move(value));
}

Result<std::size_t> Session::IndexedSize(Oid oid) {
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->IndexedSize(txn_.get(), oid, EffectiveTime());
}

Result<Oid> Session::ClassOfObject(Oid oid) {
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->ClassOfObject(txn_.get(), oid);
}

Result<std::vector<std::pair<SymbolId, Value>>> Session::ListNamed(
    Oid oid, bool skip_unbound) {
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->ListNamed(txn_.get(), oid, EffectiveTime(), skip_unbound);
}

Result<std::vector<Association>> Session::History(Oid oid, SymbolId name) {
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->History(txn_.get(), oid, name);
}

Result<bool> Session::DeepEquals(const Value& a, const Value& b) {
  GS_RETURN_IF_ERROR(RequireActive());
  return manager_->DeepEquals(txn_.get(), a, b, EffectiveTime());
}

}  // namespace gemstone::txn
