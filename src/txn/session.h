#ifndef GEMSTONE_TXN_SESSION_H_
#define GEMSTONE_TXN_SESSION_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>

#include "core/result.h"
#include "txn/transaction_manager.h"

namespace gemstone::txn {

/// One user session (§6: "Each user session ... has its own invocation of
/// the Interpreter, and its own Object Manager with a private object
/// space. Sessions have shared access to the permanent database through
/// transactions.")
///
/// The session carries the *time dial* of §5.4: when set to T, every read
/// resolves @T, as if "@T" were appended to each path component. Writes
/// are rejected while the dial is set — the past is immutable. SafeTime
/// pins the dial to "the most recent state for which no currently running
/// transaction can make changes."
class Session {
 public:
  /// A Session is deliberately unsynchronized: it belongs to one thread
  /// at a time (DESIGN.md §8, "session-confined"). In GS_THREAD_SAFETY
  /// builds every transaction-control and data-access call runs a cheap
  /// owner check — two relaxed atomic ops — and the process aborts with a
  /// diagnostic if two threads are ever inside the session concurrently,
  /// or if a call arrives from a thread other than a bound owner. A
  /// mis-wired worker pool therefore fails loudly instead of silently
  /// corrupting the transaction workspace.
  Session(TransactionManager* manager, SessionId id, UserId user = kDbaUser)
      : manager_(manager), id_(id), user_(user) {}

  SessionId id() const { return id_; }
  UserId user() const { return user_; }
  TransactionManager& manager() { return *manager_; }

  // --- Transaction control ---------------------------------------------------

  Status Begin();
  Status Commit();
  Status Abort();
  bool InTransaction() const { return txn_ != nullptr && txn_->active(); }
  Transaction* transaction() { return txn_.get(); }

  // --- Time dial -------------------------------------------------------------

  void SetTimeDial(TxnTime t) { dial_ = t; }
  void ClearTimeDial() { dial_.reset(); }
  void SetTimeDialToSafeTime() { dial_ = manager_->SafeTime(); }
  bool DialSet() const { return dial_.has_value(); }

  /// The time every read resolves at: the dial if set, else now.
  TxnTime EffectiveTime() const { return dial_.value_or(kTimeNow); }

  // --- Data access (forwarders applying the time dial) ------------------------

  Result<Oid> Create(Oid class_oid);
  Result<Value> ReadNamed(Oid oid, SymbolId name);
  /// Explicit-time read: the `@T` path qualifier, overriding the dial.
  Result<Value> ReadNamedAt(Oid oid, SymbolId name, TxnTime at);
  Status WriteNamed(Oid oid, SymbolId name, Value value);
  Result<Value> ReadIndexed(Oid oid, std::size_t index);
  Result<Value> ReadIndexedAt(Oid oid, std::size_t index, TxnTime at);
  Status WriteIndexed(Oid oid, std::size_t index, Value value);
  Result<std::size_t> AppendIndexed(Oid oid, Value value);
  Result<std::size_t> IndexedSize(Oid oid);
  Result<Oid> ClassOfObject(Oid oid);
  Result<std::vector<std::pair<SymbolId, Value>>> ListNamed(
      Oid oid, bool skip_unbound = true);
  Result<std::vector<Association>> History(Oid oid, SymbolId name);
  /// Structural equivalence at the session's effective time (§4.2).
  Result<bool> DeepEquals(const Value& a, const Value& b);

  // --- Owning-thread assertion (GS_THREAD_SAFETY builds) ----------------------

  /// Pins the session to the calling thread until ReleaseOwner(): any
  /// call from another thread aborts. The network gateway binds a worker
  /// before dispatching a request and releases it after, so ownership may
  /// legally migrate between requests but never mid-request. No-op (and
  /// zero cost) when GS_THREAD_SAFETY is off.
  void BindOwnerToCurrentThread() const;
  void ReleaseOwner() const;

 private:
  Status RequireActive() const;
  Status RequireWritable() const;

#ifdef GS_THREAD_SAFETY
  /// RAII reentrancy detector entered by every fallible public method.
  /// Entry CASes owner_ from 0 to this thread's token; a CAS loss against
  /// a *different* thread means two threads are inside concurrently →
  /// abort. Exit clears owner_ when the outermost guard leaves, unless an
  /// explicit bind holds it.
  class OwnerGuard {
   public:
    explicit OwnerGuard(const Session* session);
    ~OwnerGuard();
    OwnerGuard(const OwnerGuard&) = delete;
    OwnerGuard& operator=(const OwnerGuard&) = delete;

   private:
    const Session* session_;
  };
#else
  class OwnerGuard {
   public:
    explicit OwnerGuard(const Session*) {}
  };
#endif

  TransactionManager* manager_;
  SessionId id_;
  UserId user_;
  std::unique_ptr<Transaction> txn_;
  std::optional<TxnTime> dial_;

#ifdef GS_THREAD_SAFETY
  mutable std::atomic<std::size_t> owner_{0};  // thread token; 0 = unowned
  mutable std::atomic<std::uint32_t> owner_depth_{0};
  mutable std::atomic<bool> owner_bound_{false};
#endif
};

}  // namespace gemstone::txn

#endif  // GEMSTONE_TXN_SESSION_H_
