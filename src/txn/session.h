#ifndef GEMSTONE_TXN_SESSION_H_
#define GEMSTONE_TXN_SESSION_H_

#include <memory>
#include <optional>

#include "core/result.h"
#include "txn/transaction_manager.h"

namespace gemstone::txn {

/// One user session (§6: "Each user session ... has its own invocation of
/// the Interpreter, and its own Object Manager with a private object
/// space. Sessions have shared access to the permanent database through
/// transactions.")
///
/// The session carries the *time dial* of §5.4: when set to T, every read
/// resolves @T, as if "@T" were appended to each path component. Writes
/// are rejected while the dial is set — the past is immutable. SafeTime
/// pins the dial to "the most recent state for which no currently running
/// transaction can make changes."
class Session {
 public:
  Session(TransactionManager* manager, SessionId id, UserId user = kDbaUser)
      : manager_(manager), id_(id), user_(user) {}

  SessionId id() const { return id_; }
  UserId user() const { return user_; }
  TransactionManager& manager() { return *manager_; }

  // --- Transaction control ---------------------------------------------------

  Status Begin();
  Status Commit();
  Status Abort();
  bool InTransaction() const { return txn_ != nullptr && txn_->active(); }
  Transaction* transaction() { return txn_.get(); }

  // --- Time dial -------------------------------------------------------------

  void SetTimeDial(TxnTime t) { dial_ = t; }
  void ClearTimeDial() { dial_.reset(); }
  void SetTimeDialToSafeTime() { dial_ = manager_->SafeTime(); }
  bool DialSet() const { return dial_.has_value(); }

  /// The time every read resolves at: the dial if set, else now.
  TxnTime EffectiveTime() const { return dial_.value_or(kTimeNow); }

  // --- Data access (forwarders applying the time dial) ------------------------

  Result<Oid> Create(Oid class_oid);
  Result<Value> ReadNamed(Oid oid, SymbolId name);
  /// Explicit-time read: the `@T` path qualifier, overriding the dial.
  Result<Value> ReadNamedAt(Oid oid, SymbolId name, TxnTime at);
  Status WriteNamed(Oid oid, SymbolId name, Value value);
  Result<Value> ReadIndexed(Oid oid, std::size_t index);
  Result<Value> ReadIndexedAt(Oid oid, std::size_t index, TxnTime at);
  Status WriteIndexed(Oid oid, std::size_t index, Value value);
  Result<std::size_t> AppendIndexed(Oid oid, Value value);
  Result<std::size_t> IndexedSize(Oid oid);
  Result<Oid> ClassOfObject(Oid oid);
  Result<std::vector<std::pair<SymbolId, Value>>> ListNamed(
      Oid oid, bool skip_unbound = true);
  Result<std::vector<Association>> History(Oid oid, SymbolId name);
  /// Structural equivalence at the session's effective time (§4.2).
  Result<bool> DeepEquals(const Value& a, const Value& b);

 private:
  Status RequireActive() const;
  Status RequireWritable() const;

  TransactionManager* manager_;
  SessionId id_;
  UserId user_;
  std::unique_ptr<Transaction> txn_;
  std::optional<TxnTime> dial_;
};

}  // namespace gemstone::txn

#endif  // GEMSTONE_TXN_SESSION_H_
