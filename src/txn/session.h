#ifndef GEMSTONE_TXN_SESSION_H_
#define GEMSTONE_TXN_SESSION_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>

#include "core/result.h"
#include "txn/transaction_manager.h"

namespace gemstone::txn {

/// One user session (§6: "Each user session ... has its own invocation of
/// the Interpreter, and its own Object Manager with a private object
/// space. Sessions have shared access to the permanent database through
/// transactions.")
///
/// The session carries the *time dial* of §5.4: when set to T, every read
/// resolves @T, as if "@T" were appended to each path component. Writes
/// are rejected while the dial is set — the past is immutable. SafeTime
/// pins the dial to "the most recent state for which no currently running
/// transaction can make changes."
class Session {
 public:
  /// A Session is deliberately unsynchronized: it belongs to one thread
  /// at a time (DESIGN.md §8, "session-confined"). In GS_THREAD_SAFETY
  /// builds every transaction-control and data-access call runs a cheap
  /// owner check — two relaxed atomic ops — and the process aborts with a
  /// diagnostic if two threads are ever inside the session concurrently,
  /// or if a call arrives from a thread other than a bound owner. A
  /// mis-wired worker pool therefore fails loudly instead of silently
  /// corrupting the transaction workspace.
  Session(TransactionManager* manager, SessionId id, UserId user = kDbaUser)
      : manager_(manager), id_(id), user_(user) {}

  SessionId id() const { return id_; }
  UserId user() const { return user_; }
  TransactionManager& manager() { return *manager_; }

  // --- Transaction control ---------------------------------------------------

  Status Begin();
  Status Commit();
  Status Abort();
  bool InTransaction() const { return txn_ != nullptr && txn_->active(); }
  Transaction* transaction() { return txn_.get(); }

  // --- Time dial -------------------------------------------------------------

  void SetTimeDial(TxnTime t) { dial_ = t; }
  void ClearTimeDial() { dial_.reset(); }
  void SetTimeDialToSafeTime() { dial_ = manager_->SafeTime(); }
  bool DialSet() const { return dial_.has_value(); }

  /// The time every read resolves at: the dial if set, else the snapshot
  /// pin if one is active, else now.
  TxnTime EffectiveTime() const {
    if (dial_.has_value()) return *dial_;
    return snapshot_.value_or(kTimeNow);
  }

  // --- Snapshot pin (the gateway's lock-free read path) -----------------------
  //
  // Pinning behaves like a transient time dial at SafeTime: every read
  // resolves against the pinned committed state (so it records nothing in
  // the read set and never consults the workspace), and every side effect
  // — object writes, creates, global assignment, schema or directory
  // mutation — fails with kReadOnlyRetry instead of executing. The
  // gateway pins before running a request optimistically outside the
  // executor lock; a retry status means "this block writes after all",
  // and the request reruns on the exclusive path.
  //
  // Only pin a session whose transaction is fresh (nothing read at now,
  // nothing written or created): pinned reads escape commit-time
  // validation, which is only serializable when the transaction has no
  // writes that could depend on them.

  void PinSnapshot(TxnTime t) { snapshot_ = t; }
  void UnpinSnapshot() { snapshot_.reset(); }
  bool SnapshotPinned() const { return snapshot_.has_value(); }

  /// True when the session can serve a request on the snapshot read path:
  /// the dial already fixes an immutable view, there is no active
  /// transaction (reads will fail identically on either path), or the
  /// transaction has recorded no accesses yet.
  bool SnapshotReadEligible() const {
    if (dial_.has_value()) return true;
    if (txn_ == nullptr || !txn_->active()) return true;
    return txn_->read_set_size() == 0 && txn_->dirty_object_count() == 0 &&
           txn_->created_count() == 0 && txn_->workspace_size() == 0;
  }

  // --- Data access (forwarders applying the time dial) ------------------------

  Result<Oid> Create(Oid class_oid);
  Result<Value> ReadNamed(Oid oid, SymbolId name);
  /// Explicit-time read: the `@T` path qualifier, overriding the dial.
  Result<Value> ReadNamedAt(Oid oid, SymbolId name, TxnTime at);
  Status WriteNamed(Oid oid, SymbolId name, Value value);
  Result<Value> ReadIndexed(Oid oid, std::size_t index);
  Result<Value> ReadIndexedAt(Oid oid, std::size_t index, TxnTime at);
  Status WriteIndexed(Oid oid, std::size_t index, Value value);
  Result<std::size_t> AppendIndexed(Oid oid, Value value);
  Result<std::size_t> IndexedSize(Oid oid);
  Result<Oid> ClassOfObject(Oid oid);
  Result<std::vector<std::pair<SymbolId, Value>>> ListNamed(
      Oid oid, bool skip_unbound = true);
  Result<std::vector<Association>> History(Oid oid, SymbolId name);
  /// Structural equivalence at the session's effective time (§4.2).
  Result<bool> DeepEquals(const Value& a, const Value& b);

  // --- Owning-thread assertion (GS_THREAD_SAFETY builds) ----------------------

  /// Pins the session to the calling thread until ReleaseOwner(): any
  /// call from another thread aborts. The network gateway binds a worker
  /// before dispatching a request and releases it after, so ownership may
  /// legally migrate between requests but never mid-request. No-op (and
  /// zero cost) when GS_THREAD_SAFETY is off.
  void BindOwnerToCurrentThread() const;
  void ReleaseOwner() const;

 private:
  Status RequireActive() const;
  Status RequireWritable() const;

#ifdef GS_THREAD_SAFETY
  /// RAII reentrancy detector entered by every fallible public method.
  /// Entry CASes owner_ from 0 to this thread's token; a CAS loss against
  /// a *different* thread means two threads are inside concurrently →
  /// abort. Exit clears owner_ when the outermost guard leaves, unless an
  /// explicit bind holds it.
  class OwnerGuard {
   public:
    explicit OwnerGuard(const Session* session);
    ~OwnerGuard();
    OwnerGuard(const OwnerGuard&) = delete;
    OwnerGuard& operator=(const OwnerGuard&) = delete;

   private:
    const Session* session_;
  };
#else
  class OwnerGuard {
   public:
    explicit OwnerGuard(const Session*) {}
  };
#endif

  TransactionManager* manager_;
  SessionId id_;
  UserId user_;
  std::unique_ptr<Transaction> txn_;
  std::optional<TxnTime> dial_;
  std::optional<TxnTime> snapshot_;

#ifdef GS_THREAD_SAFETY
  mutable std::atomic<std::size_t> owner_{0};  // thread token; 0 = unowned
  mutable std::atomic<std::uint32_t> owner_depth_{0};
  mutable std::atomic<bool> owner_bound_{false};
#endif
};

/// RAII snapshot pin: pins on entry, unpins on scope exit. The gateway
/// wraps each optimistic read-path dispatch in one of these so a retry
/// (or an early return) can never leave the session pinned.
class SnapshotPin {
 public:
  SnapshotPin(Session* session, TxnTime t) : session_(session) {
    session_->PinSnapshot(t);
  }
  ~SnapshotPin() { session_->UnpinSnapshot(); }
  SnapshotPin(const SnapshotPin&) = delete;
  SnapshotPin& operator=(const SnapshotPin&) = delete;

 private:
  Session* session_;
};

}  // namespace gemstone::txn

#endif  // GEMSTONE_TXN_SESSION_H_
