#include "txn/transaction_manager.h"

#include <algorithm>
#include <chrono>

#include "telemetry/flight_recorder.h"
#include "telemetry/io_attribution.h"
#include "telemetry/profiler.h"
#include "telemetry/trace.h"

namespace gemstone::txn {

TransactionManager::TransactionManager(ObjectMemory* memory,
                                       storage::StorageEngine* engine)
    : memory_(memory),
      engine_(engine),
      commit_latency_us_(telemetry::MetricsRegistry::Global().GetHistogram(
          "txn.commit_latency_us")),
      telemetry_(telemetry::MetricsRegistry::Global().Register(
          [this](telemetry::SampleSink* sink) {
            sink->Counter("txn.begun", begun_.value());
            sink->Counter("txn.committed", committed_.value());
            sink->Counter("txn.aborted", aborted_.value());
            sink->Counter("txn.conflicts", conflicts_.value());
            sink->Counter("txn.commit_storage_failures",
                          commit_storage_failures_.value());
            sink->Counter("txn.historical_reads", historical_reads_.value());
            sink->Gauge("txn.read_set_peak",
                        static_cast<std::int64_t>(read_set_peak_.load(
                            std::memory_order_relaxed)));
          })) {}

void TransactionManager::NoteHistoricalRead(Oid oid) {
  historical_reads_.Increment();
  if (engine_ != nullptr) {
    // Marks the access historical for any device I/O this read causes
    // *and* heats the extent tracks directly for the in-memory case.
    telemetry::HistoricalAccessScope historical;
    engine_->NoteHistoricalObjectAccess(oid);
  }
}

void TransactionManager::NoteReadRecorded(const Transaction& txn) {
  const std::uint64_t n = txn.read_set_.size();
  std::uint64_t peak = read_set_peak_.load(std::memory_order_relaxed);
  while (n > peak &&
         !read_set_peak_.compare_exchange_weak(peak, n,
                                               std::memory_order_relaxed)) {
  }
}

std::unique_ptr<Transaction> TransactionManager::Begin(SessionId session,
                                                       UserId user) {
  WriterMutexLock lock(store_mu_);
  begun_.Increment();
  auto txn = std::make_unique<Transaction>(session, clock_.load(), user);
  telemetry::FlightRecorder::Global().Record(
      telemetry::FlightEventKind::kTxnBegin, session, txn->start_time(), 0,
      "");
  return txn;
}

Status TransactionManager::CheckReadAccess(const Transaction* txn,
                                           Oid oid) const {
  if (access_ == nullptr || txn->created_.count(oid.raw) != 0) {
    return Status::OK();
  }
  return access_->CheckRead(txn->user(), oid);
}

Status TransactionManager::CheckWriteAccess(const Transaction* txn,
                                            Oid oid) const {
  if (access_ == nullptr || txn->created_.count(oid.raw) != 0) {
    return Status::OK();
  }
  return access_->CheckWrite(txn->user(), oid);
}

Status TransactionManager::Abort(Transaction* txn) {
  WriterMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("abort of a finished transaction");
  }
  txn->state_ = TxnState::kAborted;
  txn->working_.clear();
  aborted_.Increment(1, std::memory_order_release);
  telemetry::FlightRecorder::Global().Record(
      telemetry::FlightEventKind::kTxnAbort, txn->session(),
      txn->start_time(), 0, "explicit abort");
  return Status::OK();
}

bool TransactionManager::HasConflictLocked(const Transaction& txn,
                                           std::uint64_t raw) const {
  if (txn.created_.count(raw) != 0) return false;
  auto it = last_commit_.find(raw);
  return it != last_commit_.end() && it->second > txn.start_time();
}

Status TransactionManager::AbortConflictedLocked(Transaction* txn,
                                                 std::uint64_t raw,
                                                 const char* what) {
  // Counter order (aborted, then the cause with release) upholds the
  // TxnStats snapshot invariants.
  txn->state_ = TxnState::kAborted;
  txn->working_.clear();
  aborted_.Increment(1, std::memory_order_release);
  conflicts_.Increment(1, std::memory_order_release);
  // Per-object contention evidence (ConflictHotspots); store_mu_ is held
  // exclusively here.
  auto hot = conflict_by_oid_.find(raw);
  if (hot != conflict_by_oid_.end()) {
    ++hot->second;
  } else if (conflict_by_oid_.size() < kConflictHotspotCap) {
    conflict_by_oid_.emplace(raw, 1);
  } else {
    static telemetry::Counter* dropped =
        telemetry::MetricsRegistry::Global().GetCounter(
            "txn.conflict_oids_dropped");
    dropped->Increment();
  }
  telemetry::FlightRecorder::Global().Record(
      telemetry::FlightEventKind::kTxnConflict, txn->session(), raw, 0,
      std::string(what) + " object " + Oid(raw).ToString() +
          " changed since start");
  return Status::TransactionConflict(std::string(what) + " object " +
                                     Oid(raw).ToString() +
                                     " changed since start");
}

Status TransactionManager::Commit(Transaction* txn) {
  TELEM_SPAN("txn.commit");
  const auto commit_start = std::chrono::steady_clock::now();
  auto observe_latency = [&] {
    commit_latency_us_->Observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - commit_start)
            .count()));
  };
  // Transaction state is session-confined; no lock needed to inspect it.
  if (!txn->active()) {
    return Status::TransactionState("commit of a finished transaction");
  }

  auto release_read_only = [&] {
    txn->state_ = TxnState::kCommitted;
    txn->working_.clear();
    committed_.Increment(1, std::memory_order_release);
    observe_latency();
    return Status::OK();
  };

  // A transaction that recorded nothing (the gateway's snapshot read path
  // resolves every read at a pinned past time) releases without touching
  // the store lock at all — there is nothing to validate or publish.
  if (txn->read_set_.empty() && txn->dirty_.empty() &&
      txn->created_.empty()) {
    return release_read_only();
  }

  // Read-only with a recorded read set: validation only compares
  // `last_commit_` stamps, so the shared lock suffices — concurrent
  // readers and other read-only commits proceed, only writers exclude us.
  // If a writer commits after we validate, we simply serialize before it.
  if (txn->dirty_.empty() && txn->created_.empty()) {
    bool conflict = false;
    std::uint64_t conflicted = 0;
    {
      ReaderMutexLock lock(store_mu_);
      for (std::uint64_t raw : txn->read_set_) {
        if (HasConflictLocked(*txn, raw)) {
          conflict = true;
          conflicted = raw;
          break;
        }
      }
    }
    if (!conflict) return release_read_only();
    // Conflicts are the rare path: re-acquire exclusively for the abort
    // bookkeeping (the hotspot tally mutates shared state).
    WriterMutexLock lock(store_mu_);
    return AbortConflictedLocked(txn, conflicted, "read");
  }

  WriterMutexLock lock(store_mu_);

  // Backward validation: any accessed object committed after our start is
  // a conflict ("validates them for consistency when a transaction
  // commits", §6).
  for (std::uint64_t raw : txn->read_set_) {
    if (HasConflictLocked(*txn, raw)) {
      return AbortConflictedLocked(txn, raw, "read");
    }
  }
  for (const auto& [raw, marks] : txn->dirty_) {
    if (HasConflictLocked(*txn, raw)) {
      return AbortConflictedLocked(txn, raw, "written");
    }
  }

  const TxnTime commit_time = clock_.load() + 1;

  // Any failure from here on aborts cleanly: the store, last_commit_, and
  // the clock are untouched until the publish phase, which cannot fail.
  auto abort_cleanly = [&](Status status) {
    txn->state_ = TxnState::kAborted;
    txn->working_.clear();
    aborted_.Increment(1, std::memory_order_release);
    telemetry::FlightRecorder::Global().Record(
        telemetry::FlightEventKind::kTxnAbort, txn->session(),
        txn->start_time(), 0, status.message());
    return status;
  };

  // Stage phase: build each dirty object's post-commit image beside the
  // store, re-stamping the provisional (kTimeNow) workspace bindings with
  // the commit time.
  struct Staged {
    std::uint64_t raw;
    GsObject image;
    GsObject* permanent;  // destination; nullptr for a created object
  };
  std::vector<Staged> staged;
  staged.reserve(txn->dirty_.size());
  for (auto& [raw, marks] : txn->dirty_) {
    const Oid oid{raw};
    auto working_it = txn->working_.find(raw);
    if (working_it == txn->working_.end()) {
      return abort_cleanly(
          Status::Internal("dirty object lacks a workspace copy"));
    }
    const GsObject& copy = working_it->second;
    if (txn->created_.count(raw) != 0) {
      // New object: materialize with every provisional binding re-stamped.
      if (memory_->Find(oid) != nullptr) {
        return abort_cleanly(
            Status::Internal("created oid already in permanent store"));
      }
      GsObject fresh(copy.oid(), copy.class_oid());
      for (const NamedElement& element : copy.named_elements()) {
        for (const Association& a : element.table.entries()) {
          fresh.WriteNamed(element.name,
                           a.time == kTimeNow ? commit_time : a.time,
                           a.value);
        }
      }
      for (std::size_t i = 0; i < copy.indexed_capacity(); ++i) {
        for (const Association& a : copy.IndexedHistory(i)->entries()) {
          fresh.WriteIndexed(i, a.time == kTimeNow ? commit_time : a.time,
                             a.value);
        }
      }
      staged.push_back({raw, std::move(fresh), nullptr});
    } else {
      GsObject* permanent = memory_->FindMutable(oid);
      if (permanent == nullptr) {
        return abort_cleanly(
            Status::Internal("dirty object vanished from permanent store"));
      }
      GsObject image = *permanent;
      for (SymbolId name : marks.named) {
        const Value* v = copy.ReadNamed(name, kTimeNow);
        image.WriteNamed(name, commit_time, v ? *v : Value::Nil());
      }
      // Ascending order so appends extend the image correctly.
      std::vector<std::size_t> indexed(marks.indexed.begin(),
                                       marks.indexed.end());
      std::sort(indexed.begin(), indexed.end());
      for (std::size_t index : indexed) {
        const Value* v = copy.ReadIndexed(index, kTimeNow);
        image.WriteIndexed(index, commit_time, v ? *v : Value::Nil());
      }
      staged.push_back({raw, std::move(image), permanent});
    }
  }

  // Persist phase: the safe group write (Boxer/Linker/CommitManager) makes
  // the staged images durable before any becomes visible. On failure the
  // disk still recovers to the previous root and memory is unchanged, so a
  // retry of the same writes sees no phantom conflicts.
  if (engine_ != nullptr) {
    std::vector<const GsObject*> changed;
    changed.reserve(staged.size());
    for (const Staged& s : staged) changed.push_back(&s.image);
    Status persisted = engine_->CommitObjects(changed, memory_->symbols());
    if (!persisted.ok()) {
      // Abort (aborted_) before the cause counter: a stats() snapshot
      // that observes the storage failure has already observed the abort.
      Status status = abort_cleanly(persisted);
      commit_storage_failures_.Increment(1, std::memory_order_release);
      return status;
    }
  }

  // Publish phase: durability achieved; fold the staged images into the
  // permanent store and advance the logical state. Nothing fallible left
  // (ObjectMemory pointers are stable and created oids were verified
  // absent under this same exclusive lock).
  for (Staged& s : staged) {
    if (s.permanent == nullptr) {
      (void)memory_->Insert(std::move(s.image));
    } else {
      *s.permanent = std::move(s.image);
    }
    last_commit_[s.raw] = commit_time;
  }
  clock_.store(commit_time);
  txn->state_ = TxnState::kCommitted;
  txn->working_.clear();
  committed_.Increment(1, std::memory_order_release);
  const std::uint64_t latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - commit_start)
          .count());
  telemetry::FlightRecorder::Global().Record(
      telemetry::FlightEventKind::kTxnCommit, txn->session(), commit_time,
      latency_us, "");
  observe_latency();
  return Status::OK();
}

TxnStats TransactionManager::stats() const {
  // Load order is the reverse of the writers' increment order: abort
  // causes first (acquire), then outcomes (acquire), then begun — see the
  // TxnStats invariants. Writers release the last counter they touch, so
  // each acquire load publishes everything incremented before it.
  TxnStats stats;
  stats.conflicts = conflicts_.value(std::memory_order_acquire);
  stats.commit_storage_failures =
      commit_storage_failures_.value(std::memory_order_acquire);
  stats.aborted = aborted_.value(std::memory_order_acquire);
  stats.committed = committed_.value(std::memory_order_acquire);
  stats.begun = begun_.value();
  return stats;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
TransactionManager::ConflictHotspots(std::size_t top_n) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  {
    ReaderMutexLock lock(store_mu_);
    out.assign(conflict_by_oid_.begin(), conflict_by_oid_.end());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

Result<Oid> TransactionManager::CreateObject(Transaction* txn, Oid class_oid) {
  WriterMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("create outside an active transaction");
  }
  if (memory_->classes().Get(class_oid) == nullptr) {
    return Status::NotFound("no such class: " + class_oid.ToString());
  }
  const Oid oid = memory_->AllocateOid();
  txn->working_.emplace(oid.raw, GsObject(oid, class_oid));
  txn->created_.insert(oid.raw);
  txn->dirty_[oid.raw];  // ensure the object publishes even if never written
  telemetry::Profiler::CountAlloc();
  return oid;
}

Result<const GsObject*> TransactionManager::ViewLocked(Transaction* txn,
                                                       Oid oid,
                                                       TxnTime at) const {
  if (at == kTimeNow) {
    auto it = txn->working_.find(oid.raw);
    if (it != txn->working_.end()) return &it->second;
  }
  const GsObject* object = memory_->Find(oid);
  if (object == nullptr) {
    if (memory_->IsArchived(oid)) {
      return Status::Unavailable("object migrated to archival media: " +
                                 oid.ToString());
    }
    return Status::NotFound("no such object: " + oid.ToString());
  }
  return object;
}

Result<GsObject*> TransactionManager::WorkingCopyLocked(Transaction* txn,
                                                        Oid oid) {
  auto it = txn->working_.find(oid.raw);
  if (it != txn->working_.end()) return &it->second;
  const GsObject* permanent = memory_->Find(oid);
  if (permanent == nullptr) {
    if (memory_->IsArchived(oid)) {
      return Status::Unavailable("object migrated to archival media: " +
                                 oid.ToString());
    }
    return Status::NotFound("no such object: " + oid.ToString());
  }
  auto [inserted, ok] = txn->working_.emplace(oid.raw, *permanent);
  return &inserted->second;
}

Result<Value> TransactionManager::ReadNamed(Transaction* txn, Oid oid,
                                            SymbolId name, TxnTime at) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckReadAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(const GsObject* object, ViewLocked(txn, oid, at));
  if (at == kTimeNow) {
    txn->read_set_.insert(oid.raw);
    NoteReadRecorded(*txn);
  } else {
    NoteHistoricalRead(oid);
  }
  const Value* value = object->ReadNamed(name, at);
  return value ? *value : Value::Nil();
}

Status TransactionManager::WriteNamed(Transaction* txn, Oid oid, SymbolId name,
                                      Value value) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("write outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckWriteAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(GsObject* copy, WorkingCopyLocked(txn, oid));
  copy->WriteNamed(name, kTimeNow, std::move(value));
  txn->dirty_[oid.raw].named.insert(name);
  return Status::OK();
}

Result<Value> TransactionManager::ReadIndexed(Transaction* txn, Oid oid,
                                              std::size_t index, TxnTime at) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckReadAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(const GsObject* object, ViewLocked(txn, oid, at));
  if (at == kTimeNow) {
    txn->read_set_.insert(oid.raw);
    NoteReadRecorded(*txn);
  } else {
    NoteHistoricalRead(oid);
  }
  if (index >= object->IndexedSizeAt(at)) {
    return Status::OutOfRange("index " + std::to_string(index) +
                              " beyond size " +
                              std::to_string(object->IndexedSizeAt(at)));
  }
  const Value* value = object->ReadIndexed(index, at);
  return value ? *value : Value::Nil();
}

Status TransactionManager::WriteIndexed(Transaction* txn, Oid oid,
                                        std::size_t index, Value value) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("write outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckWriteAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(GsObject* copy, WorkingCopyLocked(txn, oid));
  copy->WriteIndexed(index, kTimeNow, std::move(value));
  // Gap slots materialized by an over-the-end write re-materialize on the
  // permanent object at commit (WriteIndexed grows with nil bindings), so
  // only the written slot needs a dirty mark.
  txn->dirty_[oid.raw].indexed.insert(index);
  return Status::OK();
}

Result<std::size_t> TransactionManager::AppendIndexed(Transaction* txn,
                                                      Oid oid, Value value) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("write outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckWriteAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(GsObject* copy, WorkingCopyLocked(txn, oid));
  const std::size_t index = copy->AppendIndexed(kTimeNow, std::move(value));
  txn->dirty_[oid.raw].indexed.insert(index);
  return index;
}

Result<std::size_t> TransactionManager::IndexedSize(Transaction* txn, Oid oid,
                                                    TxnTime at) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckReadAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(const GsObject* object, ViewLocked(txn, oid, at));
  if (at == kTimeNow) {
    txn->read_set_.insert(oid.raw);
    NoteReadRecorded(*txn);
  } else {
    NoteHistoricalRead(oid);
  }
  return object->IndexedSizeAt(at);
}

Result<Oid> TransactionManager::ClassOfObject(Transaction* txn, Oid oid) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  GS_ASSIGN_OR_RETURN(const GsObject* object, ViewLocked(txn, oid, kTimeNow));
  return object->class_oid();
}

Result<std::vector<std::pair<SymbolId, Value>>> TransactionManager::ListNamed(
    Transaction* txn, Oid oid, TxnTime at, bool skip_unbound) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckReadAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(const GsObject* object, ViewLocked(txn, oid, at));
  if (at == kTimeNow) {
    txn->read_set_.insert(oid.raw);
    NoteReadRecorded(*txn);
  } else {
    NoteHistoricalRead(oid);
  }
  std::vector<std::pair<SymbolId, Value>> out;
  for (const NamedElement& element : object->named_elements()) {
    const Value* value = element.table.ValueAt(at);
    if (value == nullptr) continue;
    if (skip_unbound && value->IsNil()) continue;
    out.emplace_back(element.name, *value);
  }
  return out;
}

Result<std::vector<Association>> TransactionManager::History(Transaction* txn,
                                                             Oid oid,
                                                             SymbolId name) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  const GsObject* object = memory_->Find(oid);
  if (object == nullptr) {
    return Status::NotFound("no such object: " + oid.ToString());
  }
  const AssociationTable* table = object->NamedHistory(name);
  if (table == nullptr) {
    return Status::NotFound("element never bound");
  }
  NoteHistoricalRead(oid);  // a history walk is time-dial traffic
  return table->entries();
}

Result<bool> TransactionManager::DeepEquals(Transaction* txn, const Value& a,
                                            const Value& b, TxnTime at) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  std::unordered_map<std::uint64_t, std::uint64_t> assumed;
  return DeepEqualsLocked(txn, a, b, at, &assumed);
}

bool TransactionManager::DeepEqualsLocked(
    Transaction* txn, const Value& a, const Value& b, TxnTime at,
    std::unordered_map<std::uint64_t, std::uint64_t>* assumed) const {
  if (!a.IsRef() || !b.IsRef()) return a == b;
  if (a.ref() == b.ref()) return true;
  auto it = assumed->find(a.ref().raw);
  if (it != assumed->end() && it->second == b.ref().raw) return true;

  // The transaction's own view: workspace copies shadow permanent state.
  auto view = [&](Oid oid) -> const GsObject* {
    if (at == kTimeNow) {
      auto w = txn->working_.find(oid.raw);
      if (w != txn->working_.end()) return &w->second;
    }
    return memory_->Find(oid);
  };
  const GsObject* oa = view(a.ref());
  const GsObject* ob = view(b.ref());
  if (oa == nullptr || ob == nullptr) return false;
  if (oa->class_oid() != ob->class_oid()) return false;

  (*assumed)[a.ref().raw] = b.ref().raw;
  bool equal = true;

  const GsClass* cls = memory_->classes().Get(oa->class_oid());
  const bool is_set = cls != nullptr && cls->format() == ObjectFormat::kSet;
  if (is_set) {
    if (oa->CountBoundNamedAt(at) != ob->CountBoundNamedAt(at)) {
      equal = false;
    } else {
      for (const NamedElement& ea : oa->named_elements()) {
        const Value* va = ea.table.ValueAt(at);
        if (va == nullptr || va->IsNil()) continue;
        bool found = false;
        for (const NamedElement& eb : ob->named_elements()) {
          const Value* vb = eb.table.ValueAt(at);
          if (vb == nullptr || vb->IsNil()) continue;
          if (DeepEqualsLocked(txn, *va, *vb, at, assumed)) {
            found = true;
            break;
          }
        }
        if (!found) {
          equal = false;
          break;
        }
      }
    }
  } else {
    auto bound_matches = [&](const GsObject& x, const GsObject& y) {
      for (const NamedElement& ex : x.named_elements()) {
        const Value* vx = ex.table.ValueAt(at);
        if (vx == nullptr || vx->IsNil()) continue;
        const Value* vy = y.ReadNamed(ex.name, at);
        Value nil;
        if (vy == nullptr) vy = &nil;
        if (!DeepEqualsLocked(txn, *vx, *vy, at, assumed)) return false;
      }
      return true;
    };
    equal = bound_matches(*oa, *ob) && bound_matches(*ob, *oa);
  }

  if (equal) {
    const std::size_t na = oa->IndexedSizeAt(at);
    const std::size_t nb = ob->IndexedSizeAt(at);
    if (na != nb) {
      equal = false;
    } else {
      for (std::size_t i = 0; i < na && equal; ++i) {
        const Value* va = oa->ReadIndexed(i, at);
        const Value* vb = ob->ReadIndexed(i, at);
        Value nil;
        if (va == nullptr) va = &nil;
        if (vb == nullptr) vb = &nil;
        equal = DeepEqualsLocked(txn, *va, *vb, at, assumed);
      }
    }
  }
  assumed->erase(a.ref().raw);
  return equal;
}

}  // namespace gemstone::txn
