#include "txn/transaction_manager.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "storage/tier/tier_store.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/io_attribution.h"
#include "telemetry/profiler.h"
#include "telemetry/trace.h"

namespace gemstone::txn {

TransactionManager::TransactionManager(ObjectMemory* memory,
                                       storage::StorageEngine* engine)
    : memory_(memory),
      engine_(engine),
      commit_latency_us_(telemetry::MetricsRegistry::Global().GetHistogram(
          "txn.commit_latency_us")),
      telemetry_(telemetry::MetricsRegistry::Global().Register(
          [this](telemetry::SampleSink* sink) {
            sink->Counter("txn.begun", begun_.value());
            sink->Counter("txn.committed", committed_.value());
            sink->Counter("txn.aborted", aborted_.value());
            sink->Counter("txn.conflicts", conflicts_.value());
            sink->Counter("txn.commit_storage_failures",
                          commit_storage_failures_.value());
            sink->Counter("txn.historical_reads", historical_reads_.value());
            sink->Counter("txn.tier_routed_reads",
                          tier_routed_reads_.value());
            sink->Gauge("txn.read_set_peak",
                        static_cast<std::int64_t>(read_set_peak_.load(
                            std::memory_order_relaxed)));
          })) {}

void TransactionManager::NoteHistoricalRead(Oid oid) {
  historical_reads_.Increment();
  if (engine_ != nullptr) {
    // Marks the access historical for any device I/O this read causes
    // *and* heats the extent tracks directly for the in-memory case.
    telemetry::HistoricalAccessScope historical;
    engine_->NoteHistoricalObjectAccess(oid);
  }
}

void TransactionManager::NoteReadRecorded(const Transaction& txn) {
  const std::uint64_t n = txn.read_set_.size();
  std::uint64_t peak = read_set_peak_.load(std::memory_order_relaxed);
  while (n > peak &&
         !read_set_peak_.compare_exchange_weak(peak, n,
                                               std::memory_order_relaxed)) {
  }
}

std::unique_ptr<Transaction> TransactionManager::Begin(SessionId session,
                                                       UserId user) {
  WriterMutexLock lock(store_mu_);
  begun_.Increment();
  auto txn = std::make_unique<Transaction>(session, clock_.load(), user);
  telemetry::FlightRecorder::Global().Record(
      telemetry::FlightEventKind::kTxnBegin, session, txn->start_time(), 0,
      "");
  return txn;
}

Status TransactionManager::CheckReadAccess(const Transaction* txn,
                                           Oid oid) const {
  if (access_ == nullptr || txn->created_.count(oid.raw) != 0) {
    return Status::OK();
  }
  return access_->CheckRead(txn->user(), oid);
}

Status TransactionManager::CheckWriteAccess(const Transaction* txn,
                                            Oid oid) const {
  if (access_ == nullptr || txn->created_.count(oid.raw) != 0) {
    return Status::OK();
  }
  return access_->CheckWrite(txn->user(), oid);
}

Status TransactionManager::Abort(Transaction* txn) {
  WriterMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("abort of a finished transaction");
  }
  txn->state_ = TxnState::kAborted;
  txn->working_.clear();
  aborted_.Increment(1, std::memory_order_release);
  telemetry::FlightRecorder::Global().Record(
      telemetry::FlightEventKind::kTxnAbort, txn->session(),
      txn->start_time(), 0, "explicit abort");
  return Status::OK();
}

bool TransactionManager::HasConflictLocked(const Transaction& txn,
                                           std::uint64_t raw) const {
  if (txn.created_.count(raw) != 0) return false;
  auto it = last_commit_.find(raw);
  return it != last_commit_.end() && it->second > txn.start_time();
}

Status TransactionManager::AbortConflictedLocked(Transaction* txn,
                                                 std::uint64_t raw,
                                                 const char* what) {
  // Counter order (aborted, then the cause with release) upholds the
  // TxnStats snapshot invariants.
  txn->state_ = TxnState::kAborted;
  txn->working_.clear();
  aborted_.Increment(1, std::memory_order_release);
  conflicts_.Increment(1, std::memory_order_release);
  // Per-object contention evidence (ConflictHotspots); store_mu_ is held
  // exclusively here.
  auto hot = conflict_by_oid_.find(raw);
  if (hot != conflict_by_oid_.end()) {
    ++hot->second;
  } else if (conflict_by_oid_.size() < kConflictHotspotCap) {
    conflict_by_oid_.emplace(raw, 1);
  } else {
    static telemetry::Counter* dropped =
        telemetry::MetricsRegistry::Global().GetCounter(
            "txn.conflict_oids_dropped");
    dropped->Increment();
  }
  telemetry::FlightRecorder::Global().Record(
      telemetry::FlightEventKind::kTxnConflict, txn->session(), raw, 0,
      std::string(what) + " object " + Oid(raw).ToString() +
          " changed since start");
  return Status::TransactionConflict(std::string(what) + " object " +
                                     Oid(raw).ToString() +
                                     " changed since start");
}

Status TransactionManager::Commit(Transaction* txn) {
  TELEM_SPAN("txn.commit");
  const auto commit_start = std::chrono::steady_clock::now();
  auto observe_latency = [&] {
    commit_latency_us_->Observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - commit_start)
            .count()));
  };
  // Transaction state is session-confined; no lock needed to inspect it.
  if (!txn->active()) {
    return Status::TransactionState("commit of a finished transaction");
  }

  auto release_read_only = [&] {
    txn->state_ = TxnState::kCommitted;
    txn->working_.clear();
    committed_.Increment(1, std::memory_order_release);
    observe_latency();
    return Status::OK();
  };

  // A transaction that recorded nothing (the gateway's snapshot read path
  // resolves every read at a pinned past time) releases without touching
  // the store lock at all — there is nothing to validate or publish.
  if (txn->read_set_.empty() && txn->dirty_.empty() &&
      txn->created_.empty()) {
    return release_read_only();
  }

  // Read-only with a recorded read set: validation only compares
  // `last_commit_` stamps, so the shared lock suffices — concurrent
  // readers and other read-only commits proceed, only writers exclude us.
  // If a writer commits after we validate, we simply serialize before it.
  if (txn->dirty_.empty() && txn->created_.empty()) {
    bool conflict = false;
    std::uint64_t conflicted = 0;
    {
      ReaderMutexLock lock(store_mu_);
      for (std::uint64_t raw : txn->read_set_) {
        if (HasConflictLocked(*txn, raw)) {
          conflict = true;
          conflicted = raw;
          break;
        }
      }
    }
    if (!conflict) return release_read_only();
    // Conflicts are the rare path: re-acquire exclusively for the abort
    // bookkeeping (the hotspot tally mutates shared state).
    WriterMutexLock lock(store_mu_);
    return AbortConflictedLocked(txn, conflicted, "read");
  }

  WriterMutexLock lock(store_mu_);

  // Backward validation: any accessed object committed after our start is
  // a conflict ("validates them for consistency when a transaction
  // commits", §6).
  for (std::uint64_t raw : txn->read_set_) {
    if (HasConflictLocked(*txn, raw)) {
      return AbortConflictedLocked(txn, raw, "read");
    }
  }
  for (const auto& [raw, marks] : txn->dirty_) {
    if (HasConflictLocked(*txn, raw)) {
      return AbortConflictedLocked(txn, raw, "written");
    }
  }

  const TxnTime commit_time = clock_.load() + 1;

  // Any failure from here on aborts cleanly: the store, last_commit_, and
  // the clock are untouched until the publish phase, which cannot fail.
  auto abort_cleanly = [&](Status status) {
    txn->state_ = TxnState::kAborted;
    txn->working_.clear();
    aborted_.Increment(1, std::memory_order_release);
    telemetry::FlightRecorder::Global().Record(
        telemetry::FlightEventKind::kTxnAbort, txn->session(),
        txn->start_time(), 0, status.message());
    return status;
  };

  // Stage phase: build each dirty object's post-commit image beside the
  // store, re-stamping the provisional (kTimeNow) workspace bindings with
  // the commit time.
  struct Staged {
    std::uint64_t raw;
    GsObject image;
    GsObject* permanent;  // destination; nullptr for a created object
  };
  std::vector<Staged> staged;
  staged.reserve(txn->dirty_.size());
  for (auto& [raw, marks] : txn->dirty_) {
    const Oid oid{raw};
    auto working_it = txn->working_.find(raw);
    if (working_it == txn->working_.end()) {
      return abort_cleanly(
          Status::Internal("dirty object lacks a workspace copy"));
    }
    const GsObject& copy = working_it->second;
    if (txn->created_.count(raw) != 0) {
      // New object: materialize with every provisional binding re-stamped.
      if (memory_->Find(oid) != nullptr) {
        return abort_cleanly(
            Status::Internal("created oid already in permanent store"));
      }
      GsObject fresh(copy.oid(), copy.class_oid());
      for (const NamedElement& element : copy.named_elements()) {
        for (const Association& a : element.table.entries()) {
          fresh.WriteNamed(element.name,
                           a.time == kTimeNow ? commit_time : a.time,
                           a.value);
        }
      }
      for (std::size_t i = 0; i < copy.indexed_capacity(); ++i) {
        for (const Association& a : copy.IndexedHistory(i)->entries()) {
          fresh.WriteIndexed(i, a.time == kTimeNow ? commit_time : a.time,
                             a.value);
        }
      }
      staged.push_back({raw, std::move(fresh), nullptr});
    } else {
      GsObject* permanent = memory_->FindMutable(oid);
      if (permanent == nullptr) {
        return abort_cleanly(
            Status::Internal("dirty object vanished from permanent store"));
      }
      GsObject image = *permanent;
      for (SymbolId name : marks.named) {
        const Value* v = copy.ReadNamed(name, kTimeNow);
        image.WriteNamed(name, commit_time, v ? *v : Value::Nil());
      }
      // Ascending order so appends extend the image correctly.
      std::vector<std::size_t> indexed(marks.indexed.begin(),
                                       marks.indexed.end());
      std::sort(indexed.begin(), indexed.end());
      for (std::size_t index : indexed) {
        const Value* v = copy.ReadIndexed(index, kTimeNow);
        image.WriteIndexed(index, commit_time, v ? *v : Value::Nil());
      }
      staged.push_back({raw, std::move(image), permanent});
    }
  }

  // Persist phase: the safe group write (Boxer/Linker/CommitManager) makes
  // the staged images durable before any becomes visible. On failure the
  // disk still recovers to the previous root and memory is unchanged, so a
  // retry of the same writes sees no phantom conflicts.
  if (engine_ != nullptr) {
    std::vector<const GsObject*> changed;
    changed.reserve(staged.size());
    for (const Staged& s : staged) changed.push_back(&s.image);
    Status persisted = engine_->CommitObjects(changed, memory_->symbols());
    if (!persisted.ok()) {
      // Abort (aborted_) before the cause counter: a stats() snapshot
      // that observes the storage failure has already observed the abort.
      Status status = abort_cleanly(persisted);
      commit_storage_failures_.Increment(1, std::memory_order_release);
      return status;
    }
  }

  // Publish phase: durability achieved; fold the staged images into the
  // permanent store and advance the logical state. Nothing fallible left
  // (ObjectMemory pointers are stable and created oids were verified
  // absent under this same exclusive lock).
  for (Staged& s : staged) {
    if (s.permanent == nullptr) {
      (void)memory_->Insert(std::move(s.image));
    } else {
      *s.permanent = std::move(s.image);
    }
    last_commit_[s.raw] = commit_time;
  }
  clock_.store(commit_time);
  txn->state_ = TxnState::kCommitted;
  txn->working_.clear();
  committed_.Increment(1, std::memory_order_release);
  const std::uint64_t latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - commit_start)
          .count());
  telemetry::FlightRecorder::Global().Record(
      telemetry::FlightEventKind::kTxnCommit, txn->session(), commit_time,
      latency_us, "");
  observe_latency();
  return Status::OK();
}

TxnStats TransactionManager::stats() const {
  // Load order is the reverse of the writers' increment order: abort
  // causes first (acquire), then outcomes (acquire), then begun — see the
  // TxnStats invariants. Writers release the last counter they touch, so
  // each acquire load publishes everything incremented before it.
  TxnStats stats;
  stats.conflicts = conflicts_.value(std::memory_order_acquire);
  stats.commit_storage_failures =
      commit_storage_failures_.value(std::memory_order_acquire);
  stats.aborted = aborted_.value(std::memory_order_acquire);
  stats.committed = committed_.value(std::memory_order_acquire);
  stats.begun = begun_.value();
  return stats;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
TransactionManager::ConflictHotspots(std::size_t top_n) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  {
    ReaderMutexLock lock(store_mu_);
    out.assign(conflict_by_oid_.begin(), conflict_by_oid_.end());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

Result<Oid> TransactionManager::CreateObject(Transaction* txn, Oid class_oid) {
  WriterMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("create outside an active transaction");
  }
  if (memory_->classes().Get(class_oid) == nullptr) {
    return Status::NotFound("no such class: " + class_oid.ToString());
  }
  const Oid oid = memory_->AllocateOid();
  txn->working_.emplace(oid.raw, GsObject(oid, class_oid));
  txn->created_.insert(oid.raw);
  txn->dirty_[oid.raw];  // ensure the object publishes even if never written
  telemetry::Profiler::CountAlloc();
  return oid;
}

Result<const GsObject*> TransactionManager::ViewLocked(Transaction* txn,
                                                       Oid oid,
                                                       TxnTime at) const {
  if (at == kTimeNow) {
    auto it = txn->working_.find(oid.raw);
    if (it != txn->working_.end()) return &it->second;
  }
  const GsObject* object = memory_->Find(oid);
  if (object == nullptr) {
    if (memory_->IsArchived(oid)) {
      return Status::Unavailable("object migrated to archival media: " +
                                 oid.ToString());
    }
    return Status::NotFound("no such object: " + oid.ToString());
  }
  return object;
}

Result<GsObject*> TransactionManager::WorkingCopyLocked(Transaction* txn,
                                                        Oid oid) {
  auto it = txn->working_.find(oid.raw);
  if (it != txn->working_.end()) return &it->second;
  const GsObject* permanent = memory_->Find(oid);
  if (permanent == nullptr) {
    if (memory_->IsArchived(oid)) {
      return Status::Unavailable("object migrated to archival media: " +
                                 oid.ToString());
    }
    return Status::NotFound("no such object: " + oid.ToString());
  }
  auto [inserted, ok] = txn->working_.emplace(oid.raw, *permanent);
  return &inserted->second;
}

Result<Value> TransactionManager::ReadNamed(Transaction* txn, Oid oid,
                                            SymbolId name, TxnTime at) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckReadAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(const GsObject* object, ViewLocked(txn, oid, at));
  if (at == kTimeNow) {
    txn->read_set_.insert(oid.raw);
    NoteReadRecorded(*txn);
  } else {
    NoteHistoricalRead(oid);
  }
  if (RoutesToTierLocked(*object, at)) {
    // Below the floor the resident table holds only the creation marker
    // and carry-forward; the cold runs hold every binding <= the floor,
    // so the level resolver's answer is authoritative here.
    tier_routed_reads_.Increment();
    GS_ASSIGN_OR_RETURN(
        std::optional<Association> binding,
        tiers_->ResolveNamed(oid, memory_->symbols().Name(name), at));
    return binding.has_value() ? std::move(binding->value) : Value::Nil();
  }
  const Value* value = object->ReadNamed(name, at);
  return value ? *value : Value::Nil();
}

Status TransactionManager::WriteNamed(Transaction* txn, Oid oid, SymbolId name,
                                      Value value) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("write outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckWriteAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(GsObject* copy, WorkingCopyLocked(txn, oid));
  copy->WriteNamed(name, kTimeNow, std::move(value));
  txn->dirty_[oid.raw].named.insert(name);
  return Status::OK();
}

Result<Value> TransactionManager::ReadIndexed(Transaction* txn, Oid oid,
                                              std::size_t index, TxnTime at) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckReadAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(const GsObject* object, ViewLocked(txn, oid, at));
  if (at == kTimeNow) {
    txn->read_set_.insert(oid.raw);
    NoteReadRecorded(*txn);
  } else {
    NoteHistoricalRead(oid);
  }
  // The bounds check needs no tier trip: slot creation markers survive
  // truncation, so IndexedSizeAt stays exact at every time.
  if (index >= object->IndexedSizeAt(at)) {
    return Status::OutOfRange("index " + std::to_string(index) +
                              " beyond size " +
                              std::to_string(object->IndexedSizeAt(at)));
  }
  if (RoutesToTierLocked(*object, at)) {
    tier_routed_reads_.Increment();
    GS_ASSIGN_OR_RETURN(std::optional<Association> binding,
                        tiers_->ResolveIndexed(oid, index, at));
    return binding.has_value() ? std::move(binding->value) : Value::Nil();
  }
  const Value* value = object->ReadIndexed(index, at);
  return value ? *value : Value::Nil();
}

Status TransactionManager::WriteIndexed(Transaction* txn, Oid oid,
                                        std::size_t index, Value value) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("write outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckWriteAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(GsObject* copy, WorkingCopyLocked(txn, oid));
  copy->WriteIndexed(index, kTimeNow, std::move(value));
  // Gap slots materialized by an over-the-end write re-materialize on the
  // permanent object at commit (WriteIndexed grows with nil bindings), so
  // only the written slot needs a dirty mark.
  txn->dirty_[oid.raw].indexed.insert(index);
  return Status::OK();
}

Result<std::size_t> TransactionManager::AppendIndexed(Transaction* txn,
                                                      Oid oid, Value value) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("write outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckWriteAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(GsObject* copy, WorkingCopyLocked(txn, oid));
  const std::size_t index = copy->AppendIndexed(kTimeNow, std::move(value));
  txn->dirty_[oid.raw].indexed.insert(index);
  return index;
}

Result<std::size_t> TransactionManager::IndexedSize(Transaction* txn, Oid oid,
                                                    TxnTime at) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckReadAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(const GsObject* object, ViewLocked(txn, oid, at));
  if (at == kTimeNow) {
    txn->read_set_.insert(oid.raw);
    NoteReadRecorded(*txn);
  } else {
    NoteHistoricalRead(oid);
  }
  return object->IndexedSizeAt(at);
}

Result<Oid> TransactionManager::ClassOfObject(Transaction* txn, Oid oid) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  GS_ASSIGN_OR_RETURN(const GsObject* object, ViewLocked(txn, oid, kTimeNow));
  return object->class_oid();
}

Result<std::vector<std::pair<SymbolId, Value>>> TransactionManager::ListNamed(
    Transaction* txn, Oid oid, TxnTime at, bool skip_unbound) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  GS_RETURN_IF_ERROR(CheckReadAccess(txn, oid));
  GS_ASSIGN_OR_RETURN(const GsObject* object, ViewLocked(txn, oid, at));
  if (at == kTimeNow) {
    txn->read_set_.insert(oid.raw);
    NoteReadRecorded(*txn);
  } else {
    NoteHistoricalRead(oid);
  }
  std::vector<std::pair<SymbolId, Value>> out;
  if (RoutesToTierLocked(*object, at)) {
    // Element existence is resident (names are never truncated); each
    // element's sub-floor value comes from the level resolver.
    tier_routed_reads_.Increment();
    for (const NamedElement& element : object->named_elements()) {
      GS_ASSIGN_OR_RETURN(
          std::optional<Association> binding,
          tiers_->ResolveNamed(oid, memory_->symbols().Name(element.name),
                               at));
      if (!binding.has_value()) continue;
      if (skip_unbound && binding->value.IsNil()) continue;
      out.emplace_back(element.name, std::move(binding->value));
    }
    return out;
  }
  for (const NamedElement& element : object->named_elements()) {
    const Value* value = element.table.ValueAt(at);
    if (value == nullptr) continue;
    if (skip_unbound && value->IsNil()) continue;
    out.emplace_back(element.name, *value);
  }
  return out;
}

Result<std::vector<Association>> TransactionManager::History(Transaction* txn,
                                                             Oid oid,
                                                             SymbolId name) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  const GsObject* object = memory_->Find(oid);
  if (object == nullptr) {
    return Status::NotFound("no such object: " + oid.ToString());
  }
  const AssociationTable* table = object->NamedHistory(name);
  if (table == nullptr) {
    return Status::NotFound("element never bound");
  }
  NoteHistoricalRead(oid);  // a history walk is time-dial traffic
  if (tiers_ != nullptr && object->history_floor() > kTimeOrigin) {
    // Merge the demoted prefix back in. Cold runs re-emit the creation
    // marker and carry-forward the resident table also keeps, so fold by
    // time — the duplicates are identical bindings by construction.
    tier_routed_reads_.Increment();
    GS_ASSIGN_OR_RETURN(
        std::vector<Association> cold,
        tiers_->NamedHistoryOf(oid, memory_->symbols().Name(name)));
    std::map<TxnTime, Value> merged;
    for (Association& a : cold) merged[a.time] = std::move(a.value);
    for (const Association& a : table->entries()) merged[a.time] = a.value;
    std::vector<Association> out;
    out.reserve(merged.size());
    for (auto& [time, value] : merged) {
      out.push_back(Association{time, std::move(value)});
    }
    return out;
  }
  return table->entries();
}

Result<bool> TransactionManager::DeepEquals(Transaction* txn, const Value& a,
                                            const Value& b, TxnTime at) {
  ReaderMutexLock lock(store_mu_);
  if (!txn->active()) {
    return Status::TransactionState("read outside an active transaction");
  }
  std::unordered_map<std::uint64_t, std::uint64_t> assumed;
  return DeepEqualsLocked(txn, a, b, at, &assumed);
}

bool TransactionManager::DeepEqualsLocked(
    Transaction* txn, const Value& a, const Value& b, TxnTime at,
    std::unordered_map<std::uint64_t, std::uint64_t>* assumed) const {
  if (!a.IsRef() || !b.IsRef()) return a == b;
  if (a.ref() == b.ref()) return true;
  auto it = assumed->find(a.ref().raw);
  if (it != assumed->end() && it->second == b.ref().raw) return true;

  // The transaction's own view: workspace copies shadow permanent state.
  auto view = [&](Oid oid) -> const GsObject* {
    if (at == kTimeNow) {
      auto w = txn->working_.find(oid.raw);
      if (w != txn->working_.end()) return &w->second;
    }
    return memory_->Find(oid);
  };
  const GsObject* oa = view(a.ref());
  const GsObject* ob = view(b.ref());
  if (oa == nullptr || ob == nullptr) return false;
  if (oa->class_oid() != ob->class_oid()) return false;

  (*assumed)[a.ref().raw] = b.ref().raw;
  bool equal = true;

  // Element values resolve through the tier store below an object's
  // history floor (Resolved*Locked); at other times they read the
  // resident tables exactly as before.
  const GsClass* cls = memory_->classes().Get(oa->class_oid());
  const bool is_set = cls != nullptr && cls->format() == ObjectFormat::kSet;
  if (is_set) {
    if (CountBoundNamedResolvedLocked(*oa, at) !=
        CountBoundNamedResolvedLocked(*ob, at)) {
      equal = false;
    } else {
      for (const NamedElement& ea : oa->named_elements()) {
        const std::optional<Value> va = ResolvedNamedLocked(*oa, ea.name, at);
        if (!va.has_value() || va->IsNil()) continue;
        bool found = false;
        for (const NamedElement& eb : ob->named_elements()) {
          const std::optional<Value> vb =
              ResolvedNamedLocked(*ob, eb.name, at);
          if (!vb.has_value() || vb->IsNil()) continue;
          if (DeepEqualsLocked(txn, *va, *vb, at, assumed)) {
            found = true;
            break;
          }
        }
        if (!found) {
          equal = false;
          break;
        }
      }
    }
  } else {
    auto bound_matches = [&](const GsObject& x, const GsObject& y) {
      for (const NamedElement& ex : x.named_elements()) {
        const std::optional<Value> vx = ResolvedNamedLocked(x, ex.name, at);
        if (!vx.has_value() || vx->IsNil()) continue;
        std::optional<Value> vy = ResolvedNamedLocked(y, ex.name, at);
        if (!vy.has_value()) vy = Value::Nil();
        if (!DeepEqualsLocked(txn, *vx, *vy, at, assumed)) return false;
      }
      return true;
    };
    equal = bound_matches(*oa, *ob) && bound_matches(*ob, *oa);
  }

  if (equal) {
    const std::size_t na = oa->IndexedSizeAt(at);
    const std::size_t nb = ob->IndexedSizeAt(at);
    if (na != nb) {
      equal = false;
    } else {
      for (std::size_t i = 0; i < na && equal; ++i) {
        std::optional<Value> va = ResolvedIndexedLocked(*oa, i, at);
        std::optional<Value> vb = ResolvedIndexedLocked(*ob, i, at);
        if (!va.has_value()) va = Value::Nil();
        if (!vb.has_value()) vb = Value::Nil();
        equal = DeepEqualsLocked(txn, *va, *vb, at, assumed);
      }
    }
  }
  assumed->erase(a.ref().raw);
  return equal;
}

std::optional<Value> TransactionManager::ResolvedNamedLocked(
    const GsObject& object, SymbolId name, TxnTime at) const {
  if (tiers_ != nullptr && at != kTimeNow && at < object.history_floor()) {
    auto resolved =
        tiers_->ResolveNamed(object.oid(), memory_->symbols().Name(name), at);
    if (!resolved.ok()) return std::nullopt;  // degrade: treat as unbound
    std::optional<Association> binding = std::move(resolved).value();
    if (!binding.has_value()) return std::nullopt;
    return std::move(binding->value);
  }
  const Value* value = object.ReadNamed(name, at);
  if (value == nullptr) return std::nullopt;
  return *value;
}

std::optional<Value> TransactionManager::ResolvedIndexedLocked(
    const GsObject& object, std::size_t index, TxnTime at) const {
  if (tiers_ != nullptr && at != kTimeNow && at < object.history_floor()) {
    auto resolved = tiers_->ResolveIndexed(object.oid(), index, at);
    if (!resolved.ok()) return std::nullopt;
    std::optional<Association> binding = std::move(resolved).value();
    if (!binding.has_value()) return std::nullopt;
    return std::move(binding->value);
  }
  const Value* value = object.ReadIndexed(index, at);
  if (value == nullptr) return std::nullopt;
  return *value;
}

std::size_t TransactionManager::CountBoundNamedResolvedLocked(
    const GsObject& object, TxnTime at) const {
  if (tiers_ == nullptr || at == kTimeNow || at >= object.history_floor()) {
    return object.CountBoundNamedAt(at);
  }
  std::size_t count = 0;
  for (const NamedElement& element : object.named_elements()) {
    const std::optional<Value> value =
        ResolvedNamedLocked(object, element.name, at);
    if (value.has_value() && !value->IsNil()) ++count;
  }
  return count;
}

std::vector<storage::tier::HistorySource::Candidate>
TransactionManager::DemotionCandidates(TxnTime boundary, std::size_t limit,
                                       std::uint64_t min_truncatable) {
  ReaderMutexLock lock(store_mu_);
  std::vector<Candidate> out;
  for (Oid oid : memory_->AllOids()) {
    const GsObject* object = memory_->Find(oid);
    if (object == nullptr) continue;
    const std::uint64_t truncatable = object->CountTruncatableBelow(boundary);
    if (truncatable == 0 || truncatable < min_truncatable) continue;
    Candidate candidate;
    candidate.oid = oid;
    candidate.truncatable = truncatable;
    candidate.historical_heat =
        engine_ != nullptr ? engine_->HistoricalHeatOf(oid) : 0.0;
    out.push_back(candidate);
  }
  // Coldest first — the compactor wants the history the time dial is NOT
  // visiting; ties break toward the biggest space win.
  std::sort(out.begin(), out.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.historical_heat != b.historical_heat) {
                return a.historical_heat < b.historical_heat;
              }
              if (a.truncatable != b.truncatable) {
                return a.truncatable > b.truncatable;
              }
              return a.oid < b.oid;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

Result<std::vector<storage::tier::VersionRecord>>
TransactionManager::CollectHistory(Oid oid, TxnTime boundary) {
  ReaderMutexLock lock(store_mu_);
  const GsObject* object = memory_->Find(oid);
  if (object == nullptr) {
    return Status::NotFound("no such object: " + oid.ToString());
  }
  // Emit the bindings in (history_floor, boundary] — everything at or
  // below the floor is already durable in the tier (ApplyDemotion raises
  // the floor only after AppendRun committed), so re-emitting the kept
  // creation marker and carry-forward would give every run min_time ~=
  // the object's birth and defeat the store's time-range run pruning.
  // After a crash between the run flip and the truncation the floor is
  // still old, so the next pass re-emits the window — duplicates, never
  // a gap; resolution takes the max time <= T and compaction folds them.
  const TxnTime floor = object->history_floor();
  std::vector<storage::tier::VersionRecord> records;
  const SymbolTable& symbols = memory_->symbols();
  for (const NamedElement& element : object->named_elements()) {
    const std::string& name = symbols.Name(element.name);
    const bool alias = symbols.IsAlias(element.name);
    for (const Association& a : element.table.entries()) {
      if (a.time > boundary) break;
      if (a.time <= floor) continue;  // already cold
      storage::tier::VersionRecord record;
      record.oid = oid;
      record.kind = storage::tier::VersionRecord::kNamed;
      record.alias = alias;
      record.name = name;
      record.time = a.time;
      record.value = a.value;
      records.push_back(std::move(record));
    }
  }
  for (std::size_t i = 0; i < object->indexed_capacity(); ++i) {
    for (const Association& a : object->IndexedHistory(i)->entries()) {
      if (a.time > boundary) break;
      if (a.time <= floor) continue;  // already cold
      storage::tier::VersionRecord record;
      record.oid = oid;
      record.kind = storage::tier::VersionRecord::kIndexed;
      record.index = i;
      record.time = a.time;
      record.value = a.value;
      records.push_back(std::move(record));
    }
  }
  std::stable_sort(records.begin(), records.end(),
                   storage::tier::RecordOrder);
  return records;
}

Status TransactionManager::ApplyDemotion(Oid oid, TxnTime boundary) {
  WriterMutexLock lock(store_mu_);
  GsObject* permanent = memory_->FindMutable(oid);
  if (permanent == nullptr) {
    return Status::NotFound("no such object: " + oid.ToString());
  }
  if (boundary <= permanent->history_floor() &&
      permanent->CountTruncatableBelow(boundary) == 0) {
    return Status::OK();
  }
  // Durability order: the truncated image reaches the primary device
  // before the resident copy changes. A crash on either side of the write
  // recovers to pre- or post-truncation — the demoted bindings are
  // already in the tier store either way, so reads never see a gap.
  GsObject truncated = *permanent;
  truncated.TruncateHistoryBelow(boundary);
  if (engine_ != nullptr) {
    GS_RETURN_IF_ERROR(
        engine_->CommitObjects({&truncated}, memory_->symbols()));
  }
  *permanent = std::move(truncated);
  // last_commit_ stays untouched: truncation changes no logical content,
  // so in-flight transactions must not see phantom conflicts from it.
  return Status::OK();
}

}  // namespace gemstone::txn
