#ifndef GEMSTONE_TXN_TRANSACTION_MANAGER_H_
#define GEMSTONE_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/annotations.h"
#include "core/result.h"
#include "core/sync.h"
#include "object/object_memory.h"
#include "storage/storage_engine.h"
#include "storage/tier/history_source.h"
#include "telemetry/metrics.h"
#include "txn/transaction.h"

namespace gemstone::storage::tier {
class TierStore;
}  // namespace gemstone::storage::tier

namespace gemstone::txn {

/// Thin snapshot of the manager's telemetry counters (`txn.*`). Commit
/// latency percentiles live in the registry histogram
/// `txn.commit_latency_us`.
///
/// Concurrency: stats() is lock-free and may run while commits are in
/// flight. Each field is individually monotonic, and these cross-field
/// invariants hold in every snapshot, however it interleaves with
/// writers:
///
///   conflicts + commit_storage_failures <= aborted
///   aborted + committed                 <= begun
///
/// The guarantee comes from an explicit ordering discipline rather than a
/// lock: writers (already serialized by the manager's store lock)
/// increment the implied counter first (begun, then aborted/committed,
/// then the abort-cause counter) and give the *last* increment release
/// order; stats() loads in the reverse order, cause counters first with
/// acquire. Observing a cause therefore implies observing its abort, and
/// observing an outcome implies observing its begin.
struct TxnStats {
  std::uint64_t begun = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t conflicts = 0;  // aborts caused by validation failure
  std::uint64_t commit_storage_failures = 0;  // aborts from the safe write
};

/// The shared Transaction Manager (§6): "handles concurrent use of the
/// permanent database in an optimistic manner", plus the per-session data
/// access interface of the Object Manager.
///
/// Concurrency model: readers hold a shared lock per operation; Commit
/// holds the unique lock while it validates (backward validation at
/// object granularity: any object read or written whose last commit time
/// exceeds the transaction's start time is a conflict), stages each dirty
/// object's post-commit image beside the store, and — when a
/// StorageEngine is attached — performs the safe group write *before*
/// publishing anything: the staged images fold into the permanent store,
/// and `last_commit_` / the clock advance, only after the root flip
/// succeeds. Every failure path leaves the transaction aborted and
/// ObjectMemory, `last_commit_`, and the clock exactly as they were.
///
/// All element access from sessions goes through this class so that no
/// raw object pointer outlives its lock scope.
///
/// As the storage::tier::HistorySource it is also the compaction thread's
/// window onto live history: candidates are ranked by the engine's
/// historical-channel heat, CollectHistory emits an object's cold prefix,
/// and ApplyDemotion truncates the resident copy — durably — after the
/// tier store has the records. Once an object's history floor rises,
/// time-dial reads below it route through the attached TierStore (the
/// tier mutex ranks directly inside store_mu_, so resolution nests
/// cleanly under the reader lock).
class TransactionManager : public storage::tier::HistorySource {
 public:
  /// `engine`, when non-null, must be open; every commit then also writes
  /// the changed objects durably before publishing them.
  explicit TransactionManager(ObjectMemory* memory,
                              storage::StorageEngine* engine = nullptr);

  ObjectMemory& memory() { return *memory_; }

  /// Installs an authorization policy; every subsequent read and write is
  /// checked against the transaction's user. Null disables checks.
  void set_access_controller(const AccessController* access) {
    access_ = access;
  }

  /// Attaches the levelled history store: reads at times below an
  /// object's history floor resolve through it, and the compactor's
  /// HistorySource calls start demoting into it. Wire before sessions
  /// start; null detaches (only safe while no object has a raised floor).
  void AttachTierStore(storage::tier::TierStore* tiers) { tiers_ = tiers; }
  storage::tier::TierStore* tier_store() const { return tiers_; }

  // --- HistorySource (the compaction thread's view of live history) --------

  /// SafeTime: every binding at or below it is final.
  TxnTime SafeDemotionBoundary() const override { return clock_.load(); }

  std::vector<Candidate> DemotionCandidates(
      TxnTime boundary, std::size_t limit,
      std::uint64_t min_truncatable) override;

  Result<std::vector<storage::tier::VersionRecord>> CollectHistory(
      Oid oid, TxnTime boundary) override;

  Status ApplyDemotion(Oid oid, TxnTime boundary) override;

  // --- Lifecycle -------------------------------------------------------------

  std::unique_ptr<Transaction> Begin(SessionId session,
                                     UserId user = kDbaUser);

  /// Validates and publishes. On kTransactionConflict the transaction is
  /// aborted (workspace discarded) — the caller retries with a new Begin.
  Status Commit(Transaction* txn);

  Status Abort(Transaction* txn);

  /// The logical clock: time of the latest commit.
  TxnTime Now() const { return clock_.load(); }

  /// §5.4: "the most recent state for which no currently running
  /// transaction can make changes." Commits are atomic under the store
  /// lock and always stamp a time greater than the current clock, so the
  /// clock itself is safe: a read-only transaction pinned at SafeTime can
  /// never be invalidated.
  TxnTime SafeTime() const { return clock_.load(); }

  TxnStats stats() const;

  /// The objects that caused the most validation conflicts, hottest
  /// first: (raw oid, conflict count) pairs, at most `top_n`. This is the
  /// per-object contention evidence the MVCC plan (ROADMAP item 1) needs
  /// — which objects would still serialize under finer concurrency
  /// control. Bounded: only the first kConflictHotspotCap distinct
  /// objects are tracked (`txn.conflict_oids_dropped` counts the rest).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ConflictHotspots(
      std::size_t top_n = 10) const;

  /// Recovery support: restores the logical clock to the largest commit
  /// time found in a recovered image. Call before any Begin.
  void RestoreClock(TxnTime t) { clock_.store(t); }

  // --- Object Manager data interface ----------------------------------------

  /// Creates a new object in the workspace; it becomes visible to others
  /// only at commit. The identity is permanent from this moment (§5.4).
  Result<Oid> CreateObject(Transaction* txn, Oid class_oid);

  /// Reads `oid`'s element `name` at `at` (kTimeNow = the transaction's
  /// own view: workspace first, then the committed current state). Reads
  /// of past states are not recorded in the read set — history is
  /// immutable and cannot conflict.
  Result<Value> ReadNamed(Transaction* txn, Oid oid, SymbolId name,
                          TxnTime at = kTimeNow);

  Status WriteNamed(Transaction* txn, Oid oid, SymbolId name, Value value);

  Result<Value> ReadIndexed(Transaction* txn, Oid oid, std::size_t index,
                            TxnTime at = kTimeNow);
  Status WriteIndexed(Transaction* txn, Oid oid, std::size_t index,
                      Value value);
  Result<std::size_t> AppendIndexed(Transaction* txn, Oid oid, Value value);
  Result<std::size_t> IndexedSize(Transaction* txn, Oid oid,
                                  TxnTime at = kTimeNow);

  /// The object's class (identity-stable over time).
  Result<Oid> ClassOfObject(Transaction* txn, Oid oid);

  /// Snapshot of all named elements visible at `at`. When `skip_unbound`
  /// is true, elements whose value is nil are omitted (set iteration).
  Result<std::vector<std::pair<SymbolId, Value>>> ListNamed(
      Transaction* txn, Oid oid, TxnTime at = kTimeNow,
      bool skip_unbound = true);

  /// Full history of one element (committed state only).
  Result<std::vector<Association>> History(Transaction* txn, Oid oid,
                                           SymbolId name);

  /// Structural equivalence of two values at `at` (committed state).
  Result<bool> DeepEquals(Transaction* txn, const Value& a, const Value& b,
                          TxnTime at = kTimeNow);

 private:
  /// The transaction's readable view of `oid` (workspace copy if present,
  /// else permanent). Caller must hold store_mu_ (at least shared).
  Result<const GsObject*> ViewLocked(Transaction* txn, Oid oid, TxnTime at)
      const GS_REQUIRES_SHARED(store_mu_);

  /// Copy-on-first-write into the workspace. Caller holds store_mu_.
  Result<GsObject*> WorkingCopyLocked(Transaction* txn, Oid oid)
      GS_REQUIRES_SHARED(store_mu_);

  bool DeepEqualsLocked(
      Transaction* txn, const Value& a, const Value& b, TxnTime at,
      std::unordered_map<std::uint64_t, std::uint64_t>* assumed) const
      GS_REQUIRES_SHARED(store_mu_);

  /// One element's committed value at `at`, consulting the tier store
  /// when `at` lies below the object's history floor (where the resident
  /// table keeps only the creation marker and carry-forward). nullopt =
  /// not bound at `at`. Tier resolution errors degrade to nullopt here —
  /// the fallible entry points route and surface errors themselves.
  std::optional<Value> ResolvedNamedLocked(const GsObject& object,
                                           SymbolId name, TxnTime at) const
      GS_REQUIRES_SHARED(store_mu_);
  std::optional<Value> ResolvedIndexedLocked(const GsObject& object,
                                             std::size_t index,
                                             TxnTime at) const
      GS_REQUIRES_SHARED(store_mu_);

  /// CountBoundNamedAt with sub-floor times routed through the tier.
  std::size_t CountBoundNamedResolvedLocked(const GsObject& object,
                                            TxnTime at) const
      GS_REQUIRES_SHARED(store_mu_);

  /// True when a read of `object` at `at` must consult the level
  /// resolver instead of the resident association tables.
  bool RoutesToTierLocked(const GsObject& object, TxnTime at) const
      GS_REQUIRES_SHARED(store_mu_) {
    return tiers_ != nullptr && at != kTimeNow && at < object.history_floor();
  }

  /// Backward validation for one accessed object: true when it committed
  /// after `txn` started (created objects are invisible to others and
  /// never conflict). Commit-path only; validation only reads
  /// `last_commit_`, so a read-only commit may run it under the shared
  /// lock.
  bool HasConflictLocked(const Transaction& txn, std::uint64_t raw) const
      GS_REQUIRES_SHARED(store_mu_);

  /// Aborts `txn` because `raw` changed since it started: flips state,
  /// bumps the abort/conflict counters, tallies the hotspot, records the
  /// flight event, and returns the conflict status.
  Status AbortConflictedLocked(Transaction* txn, std::uint64_t raw,
                               const char* what) GS_REQUIRES(store_mu_);

  /// Tracks the high-water mark of any transaction's read set
  /// (`txn.read_set_peak`): evidence for how much validation state
  /// long-lived mutating sessions accumulate. Snapshot-pinned reads
  /// resolve at a past time and record nothing, so they never move this.
  void NoteReadRecorded(const Transaction& txn);

  /// Accounts one time-dial read: bumps `txn.historical_reads` and, when
  /// an engine is attached, deposits historical heat on `oid`'s extent
  /// tracks (see StorageEngine::NoteHistoricalObjectAccess) — history
  /// served from memory still shows up on the heatmap's time-dial side.
  void NoteHistoricalRead(Oid oid) GS_REQUIRES_SHARED(store_mu_);

  /// Authorization hooks: a transaction's own created objects are always
  /// accessible (they join a segment only after publication).
  Status CheckReadAccess(const Transaction* txn, Oid oid) const;
  Status CheckWriteAccess(const Transaction* txn, Oid oid) const;

  ObjectMemory* memory_;
  storage::StorageEngine* engine_;
  storage::tier::TierStore* tiers_ = nullptr;
  const AccessController* access_ = nullptr;

  mutable SharedMutex store_mu_{LockRank::kTxnStore, "txn.store_mu"};
  std::atomic<TxnTime> clock_{0};
  std::unordered_map<std::uint64_t, TxnTime> last_commit_
      GS_GUARDED_BY(store_mu_);

  /// Per-object conflict tally, maintained on the (already exclusive)
  /// commit validation path. Bounded so a pathological workload cannot
  /// grow it without limit.
  static constexpr std::size_t kConflictHotspotCap = 4096;
  std::unordered_map<std::uint64_t, std::uint64_t> conflict_by_oid_
      GS_GUARDED_BY(store_mu_);

  /// Largest read set any transaction has accumulated (relaxed max).
  std::atomic<std::uint64_t> read_set_peak_{0};

  telemetry::Counter begun_;
  telemetry::Counter committed_;
  telemetry::Counter aborted_;
  telemetry::Counter conflicts_;
  telemetry::Counter commit_storage_failures_;
  telemetry::Counter historical_reads_;
  telemetry::Counter tier_routed_reads_;  // time-dial reads below a floor
  telemetry::Histogram* commit_latency_us_;  // registry-owned
  telemetry::Registration telemetry_;  // after the counters it samples
};

}  // namespace gemstone::txn

#endif  // GEMSTONE_TXN_TRANSACTION_MANAGER_H_
