#ifndef GEMSTONE_ADMIN_REPLICATION_H_
#define GEMSTONE_ADMIN_REPLICATION_H_

#include <cstdint>
#include <vector>

#include "core/result.h"
#include "storage/storage_engine.h"
#include "telemetry/metrics.h"

namespace gemstone::admin {

/// Thin snapshot of the store's telemetry counters (`replication.*`).
struct ReplicationStats {
  std::uint64_t writes = 0;
  std::uint64_t degraded_writes = 0;  // committed with >=1 replica down
  std::uint64_t failovers = 0;        // reads served by a non-primary
  std::uint64_t repaired_objects = 0;
};

/// DBA-controlled replication (§4.3/§6: "database administrator control
/// over replication"). Writes mirror the commit group to every replica
/// engine; reads fail over down the replica list; a recovered replica is
/// resynchronized object-by-object from a healthy peer.
///
/// A commit succeeds if at least one replica accepts it (degraded mode is
/// counted); readers therefore always see the newest accepted state on
/// some replica.
class ReplicatedStore {
 public:
  explicit ReplicatedStore(std::vector<storage::StorageEngine*> replicas);

  std::size_t replica_count() const { return replicas_.size(); }

  /// Mirrors the commit to every replica. Fails only if *all* replicas
  /// reject it.
  Status CommitObjects(const std::vector<const GsObject*>& objects,
                       const SymbolTable& symbols);

  /// Reads from the first replica that can serve the object.
  Result<GsObject> LoadObject(Oid oid, SymbolTable* symbols);

  /// Copies every object present on a healthy replica but missing or
  /// stale on `replica_index` (after the replica's device recovers).
  Status RepairReplica(std::size_t replica_index, SymbolTable* symbols);

  ReplicationStats stats() const;

 private:
  std::vector<storage::StorageEngine*> replicas_;

  telemetry::Counter writes_;
  telemetry::Counter degraded_writes_;
  telemetry::Counter failovers_;
  telemetry::Counter repaired_objects_;
  telemetry::Registration telemetry_;  // after the counters it samples
};

}  // namespace gemstone::admin

#endif  // GEMSTONE_ADMIN_REPLICATION_H_
