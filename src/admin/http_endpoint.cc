#include "admin/http_endpoint.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <map>
#include <system_error>
#include <vector>

namespace gemstone::admin {

namespace {

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::system_category().message(errno);
}

std::string HttpResponse(int code, const std::string& reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// One in-flight scrape. The endpoint never trusts the peer: reads are
/// bounded, writes are best-effort, everything closes after one exchange.
struct HttpConn {
  int fd = -1;
  std::string in;
  std::string out;
  bool responding = false;  // head parsed; draining `out`
  std::uint64_t deadline_ms = 0;
};

std::uint64_t MonotonicMs() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000'000;
}

}  // namespace

HttpEndpoint::HttpEndpoint(HttpEndpointOptions options)
    : options_(options) {}

HttpEndpoint::~HttpEndpoint() { Stop(); }

void HttpEndpoint::AddRoute(const std::string& path,
                            const std::string& content_type,
                            Handler handler) {
  AddRoute(path, content_type,
           QueryHandler([handler = std::move(handler)](
                            const QueryParams&) { return handler(); }));
}

void HttpEndpoint::AddRoute(const std::string& path,
                            const std::string& content_type,
                            QueryHandler handler) {
  routes_[path] = Route{content_type, std::move(handler)};
}

std::size_t HttpEndpoint::UintParam(const QueryParams& params,
                                    const std::string& name,
                                    std::size_t fallback, std::size_t max) {
  const auto it = params.find(name);
  if (it == params.end() || it->second.empty()) return fallback;
  std::size_t value = 0;
  for (char c : it->second) {
    if (c < '0' || c > '9') return fallback;
    value = value * 10 + static_cast<std::size_t>(c - '0');
    if (value > max) return max;
  }
  return value;
}

Status HttpEndpoint::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("http endpoint already running");
  }
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IoError(ErrnoText("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IoError(ErrnoText("bind"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd_, 16) < 0) {
    Status s = Status::IoError(ErrnoText("listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  int wake[2] = {-1, -1};
  if (::pipe2(wake, O_NONBLOCK | O_CLOEXEC) < 0) {
    Status s = Status::IoError(ErrnoText("pipe2"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  wake_read_fd_ = wake[0];
  wake_write_fd_ = wake[1];

  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void HttpEndpoint::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
  thread_.join();
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
}

bool HttpEndpoint::BuildResponse(const std::string& in,
                                 std::string* out) const {
  const std::size_t head_end = in.find("\r\n\r\n");
  const std::size_t line_end = in.find("\r\n");
  if (head_end == std::string::npos) {
    // An admin GET has no body, so a bare request line is enough to act
    // on — but only once the *line* is complete.
    if (line_end == std::string::npos) return false;
  }

  // Request line: METHOD SP target SP version. Anything else is a 400 —
  // the endpoint does not guess.
  const std::string line = in.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos) {
    *out = HttpResponse(400, "Bad Request", "text/plain",
                        "malformed request line\n");
    return true;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/", 0) != 0) {
    *out = HttpResponse(400, "Bad Request", "text/plain",
                        "malformed request line\n");
    return true;
  }
  if (method != "GET") {
    *out = HttpResponse(405, "Method Not Allowed", "text/plain",
                        "only GET is served here\n");
    return true;
  }
  QueryParams params;
  const std::size_t query = target.find('?');
  if (query != std::string::npos) {
    std::size_t pos = query + 1;
    while (pos <= target.size()) {
      std::size_t amp = target.find('&', pos);
      if (amp == std::string::npos) amp = target.size();
      const std::string pair = target.substr(pos, amp - pos);
      if (!pair.empty()) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          params[pair] = "";
        } else {
          params[pair.substr(0, eq)] = pair.substr(eq + 1);
        }
      }
      pos = amp + 1;
    }
    target.resize(query);
  }

  const auto route = routes_.find(target);
  if (route == routes_.end()) {
    std::string body = "no such route: " + target + "\nroutes:\n";
    for (const auto& [path, unused] : routes_) body += "  " + path + "\n";
    *out = HttpResponse(404, "Not Found", "text/plain", body);
    return true;
  }
  *out = HttpResponse(200, "OK", route->second.content_type,
                      route->second.handler(params));
  return true;
}

void HttpEndpoint::Serve() {
  std::vector<HttpConn> conns;
  std::vector<pollfd> fds;

  const auto close_conn = [](HttpConn& conn) {
    if (conn.fd >= 0) ::close(conn.fd);
    conn.fd = -1;
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});
    for (const HttpConn& conn : conns) {
      short events = conn.responding ? POLLOUT : POLLIN;
      fds.push_back({conn.fd, events, 0});
    }

    const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 1000);
    if (n < 0 && errno != EINTR) break;

    if (fds[1].revents & POLLIN) {
      char buf[64];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }

    // Only the connections that were present when poll() ran have pollfd
    // entries; ones accepted below wait for the next iteration.
    const std::size_t polled = conns.size();

    if (fds[0].revents & POLLIN) {
      while (true) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        HttpConn conn;
        conn.fd = fd;
        conn.deadline_ms = MonotonicMs() + options_.idle_timeout_ms;
        conns.push_back(std::move(conn));
      }
    }

    for (std::size_t i = 0; i < polled; ++i) {
      HttpConn& conn = conns[i];
      const pollfd& pfd = fds[i + 2];
      if (pfd.revents & (POLLERR | POLLNVAL)) {
        close_conn(conn);
        continue;
      }
      // POLLHUP still drains: a peer that shut down its write side after
      // sending the request is owed its response.
      if (!conn.responding && (pfd.revents & (POLLIN | POLLHUP))) {
        char buf[4096];
        const ssize_t r = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR)) {
          close_conn(conn);
          continue;
        }
        if (r > 0) {
          conn.in.append(buf, static_cast<std::size_t>(r));
          if (conn.in.size() > options_.max_request_bytes) {
            conn.out = HttpResponse(431, "Request Header Fields Too Large",
                                    "text/plain", "request too large\n");
            conn.responding = true;
          } else if (BuildResponse(conn.in, &conn.out)) {
            conn.responding = true;
          }
        }
      }
      if (conn.fd >= 0 && conn.responding && !conn.out.empty()) {
        const ssize_t w =
            ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
        if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR) {
          close_conn(conn);
          continue;
        }
        if (w > 0) {
          conn.out.erase(0, static_cast<std::size_t>(w));
          if (conn.out.empty()) close_conn(conn);  // one exchange, done
        }
      }
    }

    // Sweep closed and overdue connections.
    const std::uint64_t now = MonotonicMs();
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->fd >= 0 && now >= it->deadline_ms) close_conn(*it);
      it = it->fd < 0 ? conns.erase(it) : ++it;
    }
  }

  for (HttpConn& conn : conns) close_conn(conn);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace gemstone::admin
