#include "admin/authorization.h"

namespace gemstone::admin {

AuthorizationManager::AuthorizationManager() {
  Segment default_segment;
  default_segment.name = "default";
  default_segment.owner = 0;  // the DBA
  default_segment.world = AccessRight::kWrite;
  segments_.emplace(0, std::move(default_segment));
}

SegmentId AuthorizationManager::CreateSegment(UserId owner,
                                              std::string name) {
  MutexLock lock(mu_);
  const SegmentId id = next_segment_++;
  Segment segment;
  segment.name = std::move(name);
  segment.owner = owner;
  segment.acl[owner] = AccessRight::kWrite;
  segments_.emplace(id, std::move(segment));
  return id;
}

Status AuthorizationManager::Grant(UserId grantor, SegmentId segment,
                                   UserId user, AccessRight right) {
  MutexLock lock(mu_);
  auto it = segments_.find(segment);
  if (it == segments_.end()) return Status::NotFound("no such segment");
  if (it->second.owner != grantor) {
    return Status::AuthorizationDenied("only the segment owner may grant");
  }
  it->second.acl[user] = right;
  return Status::OK();
}

Status AuthorizationManager::Revoke(UserId grantor, SegmentId segment,
                                    UserId user) {
  MutexLock lock(mu_);
  auto it = segments_.find(segment);
  if (it == segments_.end()) return Status::NotFound("no such segment");
  if (it->second.owner != grantor) {
    return Status::AuthorizationDenied("only the segment owner may revoke");
  }
  it->second.acl.erase(user);
  return Status::OK();
}

Status AuthorizationManager::AssignObject(UserId actor, Oid oid,
                                          SegmentId segment) {
  MutexLock lock(mu_);
  auto it = segments_.find(segment);
  if (it == segments_.end()) return Status::NotFound("no such segment");
  if (it->second.owner != actor) {
    return Status::AuthorizationDenied(
        "only the segment owner may assign objects into it");
  }
  object_segment_[oid.raw] = segment;
  return Status::OK();
}

SegmentId AuthorizationManager::SegmentOf(Oid oid) const {
  MutexLock lock(mu_);
  auto it = object_segment_.find(oid.raw);
  return it == object_segment_.end() ? 0 : it->second;
}

AccessRight AuthorizationManager::RightOf(const Segment& segment,
                                          UserId user) const {
  if (segment.owner == user) return AccessRight::kWrite;
  auto it = segment.acl.find(user);
  if (it != segment.acl.end()) return it->second;
  return segment.world;
}

Status AuthorizationManager::CheckRead(UserId user, Oid oid) const {
  MutexLock lock(mu_);
  auto seg_it = object_segment_.find(oid.raw);
  const SegmentId seg = seg_it == object_segment_.end() ? 0 : seg_it->second;
  const Segment& segment = segments_.at(seg);
  if (RightOf(segment, user) == AccessRight::kNone) {
    return Status::AuthorizationDenied("user " + std::to_string(user) +
                                       " may not read segment '" +
                                       segment.name + "'");
  }
  return Status::OK();
}

Status AuthorizationManager::CheckWrite(UserId user, Oid oid) const {
  MutexLock lock(mu_);
  auto seg_it = object_segment_.find(oid.raw);
  const SegmentId seg = seg_it == object_segment_.end() ? 0 : seg_it->second;
  const Segment& segment = segments_.at(seg);
  if (RightOf(segment, user) != AccessRight::kWrite) {
    return Status::AuthorizationDenied("user " + std::to_string(user) +
                                       " may not write segment '" +
                                       segment.name + "'");
  }
  return Status::OK();
}

void AuthorizationManager::SetDefaultSegmentWorldAccess(AccessRight right) {
  MutexLock lock(mu_);
  segments_.at(0).world = right;
}

std::size_t AuthorizationManager::segment_count() const {
  MutexLock lock(mu_);
  return segments_.size();
}

}  // namespace gemstone::admin
