#ifndef GEMSTONE_ADMIN_HTTP_ENDPOINT_H_
#define GEMSTONE_ADMIN_HTTP_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "core/status.h"

namespace gemstone::admin {

/// Knobs for the admin listener. Bounded on purpose: this endpoint must
/// survive a confused or hostile scraper without ever touching the data
/// path.
struct HttpEndpointOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (port() reports it).
  std::uint16_t port = 0;

  /// Request heads larger than this are answered 431 and closed — an
  /// admin GET has no business sending kilobytes of headers.
  std::size_t max_request_bytes = 4096;

  /// Connections idle longer than this are dropped.
  std::uint64_t idle_timeout_ms = 5000;
};

/// A deliberately minimal HTTP/1.0 responder for live observability:
/// GET-only, exact-path routes, `Connection: close` on every response, no
/// keep-alive, no TLS, loopback only. Handlers run on the endpoint's own
/// thread and must be callable from any thread (they read telemetry
/// snapshots, never the data path). One poll(2) loop serves concurrent
/// scrapes without blocking on any single slow client.
///
/// The intended wiring (tools/gemstone_serve.cc):
///   GET /metrics   → telemetry::ToPrometheus(registry snapshot)
///   GET /statusz   → net::Server::StatusJson()
///   GET /flightrec → telemetry::FlightRecorder::DumpJson()
///   GET /slowlog   → DumpJsonOfKind(kSlowRequest)
///   GET /healthz   → "ok"
class HttpEndpoint {
 public:
  using Handler = std::function<std::string()>;

  /// Decoded `?key=value&...` pairs of the request target. Keys without
  /// '=' map to "". No percent-decoding: admin params are numbers and
  /// identifiers by contract.
  using QueryParams = std::map<std::string, std::string>;
  using QueryHandler = std::function<std::string(const QueryParams&)>;

  explicit HttpEndpoint(HttpEndpointOptions options = {});
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Registers `handler` for exact-match GETs of `path` (e.g. "/metrics").
  /// Query strings are stripped before matching. Must be called before
  /// Start(); the route table is immutable while the endpoint runs.
  void AddRoute(const std::string& path, const std::string& content_type,
                Handler handler);

  /// Same, for handlers that read query params (`/timeseries?window=30`).
  void AddRoute(const std::string& path, const std::string& content_type,
                QueryHandler handler);

  /// `params[name]` parsed as a non-negative integer, clamped to
  /// [0, max]; `fallback` when absent or unparsable. The shared idiom for
  /// the bounded `?limit=`/`?window=` knobs.
  static std::size_t UintParam(const QueryParams& params,
                               const std::string& name, std::size_t fallback,
                               std::size_t max);

  /// Binds 127.0.0.1:port, starts the serving thread.
  Status Start();

  /// Stops serving, closes every socket, joins the thread. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  struct Route {
    std::string content_type;
    QueryHandler handler;  // plain Handlers are wrapped at AddRoute
  };

  void Serve();
  /// Parses the buffered request head and builds the full response, or
  /// returns false if more bytes are needed.
  bool BuildResponse(const std::string& in, std::string* out) const;

  HttpEndpointOptions options_;
  std::map<std::string, Route> routes_;

  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace gemstone::admin

#endif  // GEMSTONE_ADMIN_HTTP_ENDPOINT_H_
