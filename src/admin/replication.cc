#include "admin/replication.h"

namespace gemstone::admin {

ReplicatedStore::ReplicatedStore(std::vector<storage::StorageEngine*> replicas)
    : replicas_(std::move(replicas)),
      telemetry_(telemetry::MetricsRegistry::Global().Register(
          [this](telemetry::SampleSink* sink) {
            sink->Counter("replication.writes", writes_.value());
            sink->Counter("replication.degraded_writes",
                          degraded_writes_.value());
            sink->Counter("replication.failovers", failovers_.value());
            sink->Counter("replication.repaired_objects",
                          repaired_objects_.value());
          })) {}

ReplicationStats ReplicatedStore::stats() const {
  ReplicationStats stats;
  stats.writes = writes_.value();
  stats.degraded_writes = degraded_writes_.value();
  stats.failovers = failovers_.value();
  stats.repaired_objects = repaired_objects_.value();
  return stats;
}

Status ReplicatedStore::CommitObjects(
    const std::vector<const GsObject*>& objects, const SymbolTable& symbols) {
  std::size_t accepted = 0;
  Status last_error;
  for (storage::StorageEngine* replica : replicas_) {
    Status s = replica->CommitObjects(objects, symbols);
    if (s.ok()) {
      ++accepted;
    } else {
      last_error = s;
    }
  }
  if (accepted == 0) {
    return last_error.ok()
               ? Status::IoError("no replicas configured")
               : last_error;
  }
  writes_.Increment();
  if (accepted < replicas_.size()) degraded_writes_.Increment();
  return Status::OK();
}

Result<GsObject> ReplicatedStore::LoadObject(Oid oid, SymbolTable* symbols) {
  Status last_error = Status::NotFound("no replicas configured");
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    auto result = replicas_[i]->LoadObject(oid, symbols);
    if (result.ok()) {
      if (i != 0) failovers_.Increment();
      return result;
    }
    last_error = result.status();
  }
  return last_error;
}

Status ReplicatedStore::RepairReplica(std::size_t replica_index,
                                      SymbolTable* symbols) {
  if (replica_index >= replicas_.size()) {
    return Status::OutOfRange("no such replica");
  }
  storage::StorageEngine* target = replicas_[replica_index];
  // Union of every healthy replica's catalog.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == replica_index) continue;
    storage::StorageEngine* source = replicas_[i];
    std::vector<const GsObject*> batch;
    std::vector<GsObject> storage_for_batch;
    storage_for_batch.reserve(source->CatalogOids().size());
    for (Oid oid : source->CatalogOids()) {
      const storage::Extent* have = target->catalog().Find(oid);
      const storage::Extent* want = source->catalog().Find(oid);
      if (have != nullptr && have->checksum == want->checksum) continue;
      auto object = source->LoadObject(oid, symbols);
      if (!object.ok()) continue;  // try another source replica
      storage_for_batch.push_back(std::move(object).value());
      repaired_objects_.Increment();
    }
    for (const GsObject& object : storage_for_batch) {
      batch.push_back(&object);
    }
    if (!batch.empty()) {
      GS_RETURN_IF_ERROR(target->CommitObjects(batch, *symbols));
    }
  }
  return Status::OK();
}

}  // namespace gemstone::admin
