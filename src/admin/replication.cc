#include "admin/replication.h"

namespace gemstone::admin {

Status ReplicatedStore::CommitObjects(
    const std::vector<const GsObject*>& objects, const SymbolTable& symbols) {
  std::size_t accepted = 0;
  Status last_error;
  for (storage::StorageEngine* replica : replicas_) {
    Status s = replica->CommitObjects(objects, symbols);
    if (s.ok()) {
      ++accepted;
    } else {
      last_error = s;
    }
  }
  if (accepted == 0) {
    return last_error.ok()
               ? Status::IoError("no replicas configured")
               : last_error;
  }
  ++stats_.writes;
  if (accepted < replicas_.size()) ++stats_.degraded_writes;
  return Status::OK();
}

Result<GsObject> ReplicatedStore::LoadObject(Oid oid, SymbolTable* symbols) {
  Status last_error = Status::NotFound("no replicas configured");
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    auto result = replicas_[i]->LoadObject(oid, symbols);
    if (result.ok()) {
      if (i != 0) ++stats_.failovers;
      return result;
    }
    last_error = result.status();
  }
  return last_error;
}

Status ReplicatedStore::RepairReplica(std::size_t replica_index,
                                      SymbolTable* symbols) {
  if (replica_index >= replicas_.size()) {
    return Status::OutOfRange("no such replica");
  }
  storage::StorageEngine* target = replicas_[replica_index];
  // Union of every healthy replica's catalog.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == replica_index) continue;
    storage::StorageEngine* source = replicas_[i];
    std::vector<const GsObject*> batch;
    std::vector<GsObject> storage_for_batch;
    storage_for_batch.reserve(source->CatalogOids().size());
    for (Oid oid : source->CatalogOids()) {
      const storage::Extent* have = target->catalog().Find(oid);
      const storage::Extent* want = source->catalog().Find(oid);
      if (have != nullptr && have->checksum == want->checksum) continue;
      auto object = source->LoadObject(oid, symbols);
      if (!object.ok()) continue;  // try another source replica
      storage_for_batch.push_back(std::move(object).value());
      ++stats_.repaired_objects;
    }
    for (const GsObject& object : storage_for_batch) {
      batch.push_back(&object);
    }
    if (!batch.empty()) {
      GS_RETURN_IF_ERROR(target->CommitObjects(batch, *symbols));
    }
  }
  return Status::OK();
}

}  // namespace gemstone::admin
