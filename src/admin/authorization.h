#ifndef GEMSTONE_ADMIN_AUTHORIZATION_H_
#define GEMSTONE_ADMIN_AUTHORIZATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/access_control.h"
#include "core/annotations.h"
#include "core/sync.h"
#include "core/ids.h"
#include "core/result.h"
#include "core/status.h"

namespace gemstone::admin {

using gemstone::UserId;
using SegmentId = std::uint32_t;

enum class AccessRight : std::uint8_t { kNone = 0, kRead = 1, kWrite = 2 };

/// Database-administrator authorization control (§6 lists authorization
/// among the Object Manager's responsibilities; §4.3 notes ST80 "lacks
/// ... database administrator control over replication, authorization").
///
/// Objects are grouped into *segments*; each segment carries an owner and
/// an ACL of (user -> right). The TransactionManager consults the
/// AuthorizationManager through a session adapter; unassigned objects
/// fall into the world-readable default segment 0.
class AuthorizationManager : public AccessController {
 public:
  AuthorizationManager();

  /// Creates a segment owned by `owner` (owner gets write).
  SegmentId CreateSegment(UserId owner, std::string name);

  /// Grants `right` on `segment` to `user`. Only the owner may grant.
  Status Grant(UserId grantor, SegmentId segment, UserId user,
               AccessRight right);

  /// Revokes all access of `user` on `segment`.
  Status Revoke(UserId grantor, SegmentId segment, UserId user);

  /// Assigns an object to a segment (DBA/owner operation).
  Status AssignObject(UserId actor, Oid oid, SegmentId segment);

  /// The segment an object belongs to (default 0).
  SegmentId SegmentOf(Oid oid) const;

  /// Checks that `user` may read/write `oid` (AccessController hooks).
  Status CheckRead(UserId user, Oid oid) const override;
  Status CheckWrite(UserId user, Oid oid) const override;

  /// World access on the default segment (on by default; a locked-down
  /// deployment turns it off).
  void SetDefaultSegmentWorldAccess(AccessRight right);

  std::size_t segment_count() const;

 private:
  struct Segment {
    std::string name;
    UserId owner;
    AccessRight world = AccessRight::kNone;
    std::unordered_map<UserId, AccessRight> acl;
  };

  /// ACL resolution over guarded segment state; commit-path callers
  /// already hold mu_.
  AccessRight RightOf(const Segment& segment, UserId user) const
      GS_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kAuthorization, "admin.authorization_mu"};
  std::unordered_map<SegmentId, Segment> segments_ GS_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, SegmentId> object_segment_
      GS_GUARDED_BY(mu_);
  SegmentId next_segment_ GS_GUARDED_BY(mu_) = 1;
};

}  // namespace gemstone::admin

#endif  // GEMSTONE_ADMIN_AUTHORIZATION_H_
