#ifndef GEMSTONE_TELEMETRY_IO_ATTRIBUTION_H_
#define GEMSTONE_TELEMETRY_IO_ATTRIBUTION_H_

#include <cstdint>

namespace gemstone::telemetry {

/// Per-thread running totals of device work, maintained by the storage
/// layer (SimulatedDisk bumps them alongside its process-wide counters).
/// Consumers — EXPLAIN ANALYZE, the profiler — snapshot the tally before
/// and after an operation and attribute the delta to it. Because the
/// counters are thread-local the attribution is exact for single-threaded
/// work (one query, one commit) with no locking at all.
struct IoTally {
  std::uint64_t tracks_read = 0;
  std::uint64_t tracks_written = 0;
  std::uint64_t seeks = 0;
};

/// This thread's monotonic I/O tally. Never resets; take deltas.
IoTally& ThreadIoTally();

/// True while the calling thread is serving a time-dial read — a view of
/// the past, not of current state. The storage layer reads this flag to
/// classify each track access into the heatmap's current/historical
/// split, which is what lets compaction (ROADMAP item 4) distinguish
/// "hot because the workload lives here" from "hot because someone is
/// auditing last week".
bool ThreadAccessIsHistorical();

/// RAII: marks the calling thread's storage accesses historical for the
/// scope's lifetime. Nests; the previous classification is restored.
class HistoricalAccessScope {
 public:
  HistoricalAccessScope();
  ~HistoricalAccessScope();
  HistoricalAccessScope(const HistoricalAccessScope&) = delete;
  HistoricalAccessScope& operator=(const HistoricalAccessScope&) = delete;

 private:
  bool saved_;
};

/// `after - before`, field-wise.
inline IoTally IoDelta(const IoTally& before, const IoTally& after) {
  IoTally d;
  d.tracks_read = after.tracks_read - before.tracks_read;
  d.tracks_written = after.tracks_written - before.tracks_written;
  d.seeks = after.seeks - before.seeks;
  return d;
}

}  // namespace gemstone::telemetry

#endif  // GEMSTONE_TELEMETRY_IO_ATTRIBUTION_H_
