#ifndef GEMSTONE_TELEMETRY_TRACE_H_
#define GEMSTONE_TELEMETRY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/annotations.h"
#include "core/sync.h"
#include "telemetry/metrics.h"

namespace gemstone::telemetry {

/// One completed scoped span. `depth` is the nesting level on the
/// recording thread at the time the span opened (0 = outermost).
/// `trace_id` names the wire request the span served (0 = none bound).
///
/// Spans are parent-linked: every live ScopedSpan gets a process-unique
/// `span_id`, and `parent_span_id` is the id of the span that was
/// innermost on the same thread when this one opened (0 = a root). A
/// drained buffer therefore reassembles the exact call tree of one
/// request — across the threads its trace id visited — without guessing
/// from depths or timestamps (telemetry/trace_export.h).
struct SpanRecord {
  const char* name = "";  // must point at a string literal
  std::uint32_t depth = 0;
  std::uint64_t start_ns = 0;  // since process trace epoch (steady clock)
  std::uint64_t duration_ns = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;         // process-unique, never 0 once recorded
  std::uint64_t parent_span_id = 0;  // 0 = root of its thread's tree
  std::uint32_t thread_id = 0;       // small per-thread ordinal (tid in
                                     // the Chrome trace-event export)
};

/// Bounded ring of recently completed spans. When full, the oldest record
/// is overwritten — tracing never blocks or grows without bound.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  static TraceBuffer& Global();

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  void Record(const SpanRecord& span);

  /// Oldest-to-newest copy of the retained records.
  std::vector<SpanRecord> Snapshot() const;

  void Clear();

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  /// Spans ever recorded, including those already overwritten.
  std::uint64_t total_recorded() const;
  /// Spans overwritten because the ring wrapped. Mirrored into the
  /// registry counter `telemetry.dropped_spans` so exporters see it too.
  std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  mutable Mutex mu_{LockRank::kTelemetryTrace, "telemetry.trace_mu"};
  std::vector<SpanRecord> ring_ GS_GUARDED_BY(mu_);
  std::size_t next_ GS_GUARDED_BY(mu_) = 0;  // slot the next record lands in
  std::uint64_t recorded_ GS_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ GS_GUARDED_BY(mu_) = 0;
};

/// RAII span: records wall time from construction to destruction into the
/// global TraceBuffer (with the thread's current nesting depth) and, when
/// `latency_us` is non-null, observes the duration in microseconds there.
/// Use via TELEM_SPAN, which wires the histogram automatically.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* latency_us = nullptr);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Histogram* latency_us_;
  std::uint32_t depth_;
  std::uint64_t span_id_;
  std::uint64_t parent_span_id_;
  std::uint64_t start_ns_;  // TraceNowNs at construction
};

/// Nanoseconds since the process trace epoch (first use of the clock).
std::uint64_t TraceNowNs();

/// The span id of the innermost live ScopedSpan on this thread (0 = none).
/// Lets non-span records (disk I/O attribution, flight events) point at
/// the span tree node they happened under.
std::uint64_t CurrentSpanId();

/// Small dense ordinal for the calling thread (assigned on first use).
/// Stable for the thread's lifetime; used as the `tid` of exported trace
/// events so Perfetto lays each thread out on its own row.
std::uint32_t CurrentThreadOrdinal();

// --- Request trace context ---------------------------------------------------
//
// The wire layer binds the 64-bit trace id of the request it is serving
// into a thread-local for the duration of dispatch. Everything recorded
// on that thread while the scope is live — spans, flight-recorder
// events, slow-op captures — picks the id up implicitly, so existing
// call sites need no plumbing to become request-attributed.

/// The trace id bound on this thread, or 0 when no request is in scope.
std::uint64_t CurrentTraceId();

/// RAII binding of a trace id to the current thread. Nests: the previous
/// id is restored on destruction, so re-entrant dispatch keeps the
/// innermost (most specific) request attribution.
class TraceContextScope {
 public:
  explicit TraceContextScope(std::uint64_t trace_id);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  std::uint64_t saved_;
};

}  // namespace gemstone::telemetry

#define GS_TELEM_CONCAT_INNER(a, b) a##b
#define GS_TELEM_CONCAT(a, b) GS_TELEM_CONCAT_INNER(a, b)

/// Opens a scoped trace span named by a string literal. Timings land in
/// the global TraceBuffer and in the registry histogram `span.<name>`
/// (microseconds), so every instrumented phase gets p50/p95/p99 for free.
///
///   TELEM_SPAN("commit.flip_root");
#define TELEM_SPAN(name)                                                     \
  static ::gemstone::telemetry::Histogram* GS_TELEM_CONCAT(                  \
      gs_telem_hist_, __LINE__) =                                            \
      ::gemstone::telemetry::MetricsRegistry::Global().GetHistogram(         \
          std::string("span.") + (name));                                    \
  ::gemstone::telemetry::ScopedSpan GS_TELEM_CONCAT(gs_telem_span_,          \
                                                    __LINE__)(               \
      (name), GS_TELEM_CONCAT(gs_telem_hist_, __LINE__))

#endif  // GEMSTONE_TELEMETRY_TRACE_H_
