#include "telemetry/trace.h"

#include <atomic>

#include "telemetry/flight_recorder.h"

namespace gemstone::telemetry {

namespace {
thread_local std::uint32_t tls_span_depth = 0;
thread_local std::uint64_t tls_trace_id = 0;
// Innermost live span on this thread — the parent of the next span (or of
// any non-span record, e.g. disk I/O) opened here. 0 = at top level.
thread_local std::uint64_t tls_span_id = 0;

// Span ids are process-unique and monotone; 0 is reserved for "no span".
std::atomic<std::uint64_t> next_span_id{1};
// Dense thread ordinals so trace exports get small stable tids instead of
// opaque pthread handles.
std::atomic<std::uint32_t> next_thread_ordinal{1};
thread_local std::uint32_t tls_thread_ordinal = 0;

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}
}  // namespace

std::uint64_t CurrentSpanId() { return tls_span_id; }

std::uint32_t CurrentThreadOrdinal() {
  if (tls_thread_ordinal == 0) {
    tls_thread_ordinal =
        next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_ordinal;
}

std::uint64_t TraceNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

std::uint64_t CurrentTraceId() { return tls_trace_id; }

TraceContextScope::TraceContextScope(std::uint64_t trace_id)
    : saved_(tls_trace_id) {
  tls_trace_id = trace_id;
}

TraceContextScope::~TraceContextScope() { tls_trace_id = saved_; }

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();  // never dies
  return *buffer;
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void TraceBuffer::Record(const SpanRecord& span) {
  // Registry pointer resolved outside mu_ (GetCounter takes its own lock).
  static Counter* dropped_counter =
      MetricsRegistry::Global().GetCounter("telemetry.dropped_spans");
  bool wrapped = false;
  {
    MutexLock lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(span);
    } else {
      ring_[next_] = span;
      ++dropped_;
      wrapped = true;
    }
    next_ = (next_ + 1) % capacity_;
    ++recorded_;
  }
  if (wrapped) dropped_counter->Increment();
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // `next_` is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

void TraceBuffer::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

std::size_t TraceBuffer::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

std::uint64_t TraceBuffer::total_recorded() const {
  MutexLock lock(mu_);
  return recorded_;
}

std::uint64_t TraceBuffer::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

ScopedSpan::ScopedSpan(const char* name, Histogram* latency_us)
    : name_(name),
      latency_us_(latency_us),
      depth_(tls_span_depth++),
      span_id_(next_span_id.fetch_add(1, std::memory_order_relaxed)),
      parent_span_id_(tls_span_id),
      // TraceNowNs (not a raw clock read) so the very first span pins the
      // trace epoch and still gets a well-ordered start.
      start_ns_(TraceNowNs()) {
  tls_span_id = span_id_;
}

ScopedSpan::~ScopedSpan() {
  const std::uint64_t end_ns = TraceNowNs();
  --tls_span_depth;
  tls_span_id = parent_span_id_;
  SpanRecord span;
  span.name = name_;
  span.depth = depth_;
  span.trace_id = tls_trace_id;
  span.span_id = span_id_;
  span.parent_span_id = parent_span_id_;
  span.thread_id = CurrentThreadOrdinal();
  span.start_ns = start_ns_;
  const std::uint64_t duration_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  span.duration_ns = duration_ns;
  TraceBuffer::Global().Record(span);
  if (latency_us_ != nullptr) latency_us_->Observe(duration_ns / 1000);
  // Slow-op capture: spans past the flight-recorder threshold are worth
  // remembering even after the trace ring has long since wrapped.
  FlightRecorder& recorder = FlightRecorder::Global();
  const std::uint64_t threshold = recorder.slow_op_threshold_ns();
  if (threshold != 0 && duration_ns >= threshold) {
    recorder.Record(FlightEventKind::kSlowOp, 0, duration_ns, depth_, name_);
  }
}

}  // namespace gemstone::telemetry
