#include "telemetry/trace.h"

#include "telemetry/flight_recorder.h"

namespace gemstone::telemetry {

namespace {
thread_local std::uint32_t tls_span_depth = 0;
thread_local std::uint64_t tls_trace_id = 0;

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}
}  // namespace

std::uint64_t TraceNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

std::uint64_t CurrentTraceId() { return tls_trace_id; }

TraceContextScope::TraceContextScope(std::uint64_t trace_id)
    : saved_(tls_trace_id) {
  tls_trace_id = trace_id;
}

TraceContextScope::~TraceContextScope() { tls_trace_id = saved_; }

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();  // never dies
  return *buffer;
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void TraceBuffer::Record(const SpanRecord& span) {
  // Registry pointer resolved outside mu_ (GetCounter takes its own lock).
  static Counter* dropped_counter =
      MetricsRegistry::Global().GetCounter("telemetry.dropped_spans");
  bool wrapped = false;
  {
    MutexLock lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(span);
    } else {
      ring_[next_] = span;
      ++dropped_;
      wrapped = true;
    }
    next_ = (next_ + 1) % capacity_;
    ++recorded_;
  }
  if (wrapped) dropped_counter->Increment();
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // `next_` is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

void TraceBuffer::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

std::size_t TraceBuffer::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

std::uint64_t TraceBuffer::total_recorded() const {
  MutexLock lock(mu_);
  return recorded_;
}

std::uint64_t TraceBuffer::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

ScopedSpan::ScopedSpan(const char* name, Histogram* latency_us)
    : name_(name),
      latency_us_(latency_us),
      depth_(tls_span_depth++),
      start_(std::chrono::steady_clock::now()) {}

ScopedSpan::~ScopedSpan() {
  const auto end = std::chrono::steady_clock::now();
  --tls_span_depth;
  SpanRecord span;
  span.name = name_;
  span.depth = depth_;
  span.trace_id = tls_trace_id;
  // The epoch initializes lazily, so the very first span can start a hair
  // before it; clamp instead of wrapping the unsigned subtraction.
  const auto start_rel = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             start_ - TraceEpoch())
                             .count();
  span.start_ns = start_rel > 0 ? static_cast<std::uint64_t>(start_rel) : 0;
  const std::uint64_t duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count());
  span.duration_ns = duration_ns;
  TraceBuffer::Global().Record(span);
  if (latency_us_ != nullptr) latency_us_->Observe(duration_ns / 1000);
  // Slow-op capture: spans past the flight-recorder threshold are worth
  // remembering even after the trace ring has long since wrapped.
  FlightRecorder& recorder = FlightRecorder::Global();
  const std::uint64_t threshold = recorder.slow_op_threshold_ns();
  if (threshold != 0 && duration_ns >= threshold) {
    recorder.Record(FlightEventKind::kSlowOp, 0, duration_ns, depth_, name_);
  }
}

}  // namespace gemstone::telemetry
