#ifndef GEMSTONE_TELEMETRY_EXPORT_H_
#define GEMSTONE_TELEMETRY_EXPORT_H_

#include <string>

#include "telemetry/metrics.h"

namespace gemstone::telemetry {

/// Human-readable report: one aligned line per counter/gauge, and a
/// count/sum/p50/p95/p99 line per histogram. This is what `:stats` in the
/// REPL and `System stats` in OPAL print.
std::string ToText(const Snapshot& snapshot);

/// One JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
/// {"count":..,"sum":..,"p50":..,"p95":..,"p99":..,"buckets":[[le,n],..]}}}.
/// Bucket counts are per-bucket (not cumulative); `le` of -1 marks the
/// overflow bucket.
std::string ToJson(const Snapshot& snapshot);

/// Prometheus text exposition format (version 0.0.4). Metric names are
/// sanitized ('.' and other non-[a-zA-Z0-9_] become '_') and prefixed
/// with "gemstone_"; histogram buckets are cumulative with an +Inf le.
std::string ToPrometheus(const Snapshot& snapshot);

/// JSON string escaping (shared with the bench emitters).
std::string JsonEscape(const std::string& in);

/// Prometheus label-value escaping: `\` -> `\\`, `"` -> `\"`, newline ->
/// `\n` (the three escapes the exposition format defines). Every label
/// value ToPrometheus emits goes through this.
std::string PromLabelEscape(const std::string& in);

}  // namespace gemstone::telemetry

#endif  // GEMSTONE_TELEMETRY_EXPORT_H_
