#ifndef GEMSTONE_TELEMETRY_PROFILER_H_
#define GEMSTONE_TELEMETRY_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/annotations.h"
#include "core/sync.h"

namespace gemstone::telemetry {

/// Aggregated cost of one call edge: `caller` is the selector whose
/// activation issued the send, "" at top level; `callee` is the selector
/// sent. Times are wall-clock; `exclusive_ns` excludes time spent in
/// nested profiled scopes (so exclusive times sum to total runtime).
struct ProfileEdge {
  std::string caller;
  std::string callee;
  std::uint64_t calls = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;
  std::uint64_t allocations = 0;  // objects created while this scope was top
};

/// Per-selector rollup of every edge with that callee.
struct ProfileSelector {
  std::string selector;
  std::uint64_t calls = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;
  std::uint64_t allocations = 0;
};

/// The OPAL execution profiler: attributes wall time, send counts and
/// allocation counts per selector and per call edge. Sampling-free —
/// every profiled send opens a ProfileScope — and toggleable at runtime.
///
/// Cost model: when disabled, opening a scope is one relaxed atomic load
/// and nothing else (no clock read, no name lookup — callers gate the
/// name lookup on `Enabled()` too). When enabled, a scope costs two clock
/// reads plus one short critical section on close. The disabled path is
/// bounded by a guard test (tests/telemetry/profiler_test.cc).
///
/// Thread model: scopes nest per thread (a thread-local stack carries the
/// caller chain); the edge table is shared under a mutex, touched only on
/// scope close while enabled. Enable/Disable may race scopes on other
/// threads: a scope records only if profiling was on when it *opened*.
class Profiler {
 public:
  static Profiler& Global();

  /// The runtime toggle, readable without synchronization.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Discards every recorded edge (open scopes on other threads may still
  /// land after the reset; callers quiesce first for exact numbers).
  void Reset();

  /// Attributes one object allocation to the innermost open scope of this
  /// thread, if any. No-op (one relaxed load) when disabled.
  static void CountAlloc();

  std::vector<ProfileEdge> Edges() const;
  /// Edges rolled up by callee, sorted by descending exclusive time.
  std::vector<ProfileSelector> BySelector() const;

  /// Human-readable table: per-selector rollup, then the hottest call
  /// edges. `limit` rows per section (0 = all).
  std::string ReportText(std::size_t limit = 20) const;
  /// {"selectors":[...],"edges":[...]} with the same fields.
  std::string ReportJson() const;

 private:
  friend class ProfileScope;

  struct Cell {
    std::uint64_t calls = 0;
    std::uint64_t inclusive_ns = 0;
    std::uint64_t exclusive_ns = 0;
    std::uint64_t allocations = 0;
  };

  void RecordEdge(std::string_view caller, std::string_view callee,
                  std::uint64_t inclusive_ns, std::uint64_t exclusive_ns,
                  std::uint64_t allocations);

  static std::atomic<bool> enabled_;

  mutable Mutex mu_{LockRank::kTelemetryProfiler,
                    "telemetry.profiler_mu"};
  // Keyed "caller\x1f callee": selectors never contain \x1f.
  std::map<std::string, Cell> edges_ GS_GUARDED_BY(mu_);
};

/// RAII attribution scope for one profiled send. Construct with the
/// callee's selector name; the characters must stay valid for the scope's
/// lifetime (interned symbol names qualify). An empty name, or profiling
/// being off at construction, makes the scope inert.
class ProfileScope {
 public:
  explicit ProfileScope(std::string_view callee);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  friend class Profiler;  // CountAlloc bumps the open scope's tally

  bool active_;
  std::string_view callee_;
  std::string_view caller_;      // top of the thread stack at open
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;   // filled by nested scopes on close
  std::uint64_t allocations_ = 0;
  ProfileScope* parent_ = nullptr;
};

}  // namespace gemstone::telemetry

#endif  // GEMSTONE_TELEMETRY_PROFILER_H_
