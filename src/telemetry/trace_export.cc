#include "telemetry/trace_export.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "telemetry/export.h"

namespace gemstone::telemetry {

namespace {

/// Spans of one trace (or all spans when trace_id == 0), start-ordered.
std::vector<SpanRecord> FilterSorted(const std::vector<SpanRecord>& spans,
                                     std::uint64_t trace_id) {
  std::vector<SpanRecord> out;
  for (const SpanRecord& span : spans) {
    if (trace_id == 0 || span.trace_id == trace_id) out.push_back(span);
  }
  // span_id tie-break: ids are allocated in open order, so simultaneous
  // starts (coarse clocks) still sort parents before their children.
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns != b.start_ns
                                ? a.start_ns < b.start_ns
                                : a.span_id < b.span_id;
                   });
  return out;
}

void AppendEvent(std::ostringstream& os, const SpanRecord& span, bool first) {
  if (!first) os << ',';
  os << "{\"name\":\"" << JsonEscape(span.name)
     << "\",\"cat\":\"gemstone\",\"ph\":\"X\",\"ts\":" << span.start_ns / 1000
     << '.' << (span.start_ns % 1000) / 100
     << ",\"dur\":" << span.duration_ns / 1000 << '.'
     << (span.duration_ns % 1000) / 100 << ",\"pid\":1,\"tid\":"
     << span.thread_id << ",\"args\":{\"span_id\":" << span.span_id
     << ",\"parent_span_id\":" << span.parent_span_id
     << ",\"trace_id\":" << span.trace_id << ",\"depth\":" << span.depth
     << "}}";
}

}  // namespace

std::vector<TraceTreeNode> AssembleTraceTree(
    const std::vector<SpanRecord>& spans, std::uint64_t trace_id) {
  const std::vector<SpanRecord> selected = FilterSorted(spans, trace_id);
  std::vector<TraceTreeNode> nodes;
  nodes.reserve(selected.size());
  std::map<std::uint64_t, std::size_t> by_id;
  for (const SpanRecord& span : selected) {
    by_id[span.span_id] = nodes.size();
    nodes.push_back(TraceTreeNode{span, {}});
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::uint64_t parent = nodes[i].span.parent_span_id;
    if (parent == 0) continue;
    const auto it = by_id.find(parent);
    // A parent that already rotated out of the ring leaves this node a
    // root; the partial subtree still exports.
    if (it != by_id.end() && it->second != i) {
      nodes[it->second].children.push_back(i);
    }
  }
  return nodes;
}

std::string TraceEventsJson(const std::vector<SpanRecord>& spans,
                            std::uint64_t trace_id, std::size_t max_events) {
  std::vector<SpanRecord> selected = FilterSorted(spans, trace_id);
  if (max_events != 0 && selected.size() > max_events) {
    // Keep the newest complete window — the tail is what an operator
    // dumping a live server is after.
    selected.erase(selected.begin(),
                   selected.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : selected) {
    AppendEvent(os, span, first);
    first = false;
  }
  os << "],\"displayTimeUnit\":\"ns\"}";
  return os.str();
}

std::string TraceIndexJson(const std::vector<SpanRecord>& spans,
                           std::size_t limit) {
  struct Summary {
    std::size_t spans = 0;
    const char* root = nullptr;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint64_t last_seen = 0;  // newest start in the trace, for ordering
  };
  std::map<std::uint64_t, Summary> by_trace;
  for (const SpanRecord& span : spans) {
    if (span.trace_id == 0) continue;
    Summary& s = by_trace[span.trace_id];
    if (s.spans == 0 || span.start_ns < s.start_ns) s.start_ns = span.start_ns;
    const std::uint64_t end = span.start_ns + span.duration_ns;
    if (end > s.end_ns) s.end_ns = end;
    if (span.start_ns >= s.last_seen) s.last_seen = span.start_ns;
    if (span.depth == 0) s.root = span.name;
    ++s.spans;
  }
  std::vector<std::pair<std::uint64_t, Summary>> ordered(by_trace.begin(),
                                                         by_trace.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              return a.second.last_seen > b.second.last_seen;
            });
  if (limit != 0 && ordered.size() > limit) ordered.resize(limit);
  std::ostringstream os;
  os << "{\"traces\":[";
  bool first = true;
  for (const auto& [id, s] : ordered) {
    if (!first) os << ',';
    first = false;
    os << "{\"id\":" << id << ",\"spans\":" << s.spans << ",\"root\":\""
       << JsonEscape(s.root != nullptr ? s.root : "")
       << "\",\"start_ns\":" << s.start_ns
       << ",\"duration_ns\":" << (s.end_ns - s.start_ns) << "}";
  }
  os << "],\"total\":" << by_trace.size() << "}";
  return os.str();
}

}  // namespace gemstone::telemetry
