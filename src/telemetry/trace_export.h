#ifndef GEMSTONE_TELEMETRY_TRACE_EXPORT_H_
#define GEMSTONE_TELEMETRY_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/trace.h"

namespace gemstone::telemetry {

/// Assembly + export of the parent-linked span records in a TraceBuffer
/// snapshot. The output format is Chrome trace-event JSON ("X" complete
/// events), which chrome://tracing and ui.perfetto.dev load directly, so
/// one dumped request opens as a flame chart with net -> executor -> txn
/// -> disk spans nested exactly as they ran.

/// One node of an assembled trace tree. `children` are indices into the
/// vector AssembleTraceTree returned, ordered by start time.
struct TraceTreeNode {
  SpanRecord span;
  std::vector<std::size_t> children;
};

/// Spans of `trace_id` (every span when `trace_id` is 0) as a
/// parent-linked forest, ordered by start time. A node whose recorded
/// parent fell out of the ring (or finished before the ring was drained)
/// becomes a root rather than being dropped — partial trees still render.
std::vector<TraceTreeNode> AssembleTraceTree(
    const std::vector<SpanRecord>& spans, std::uint64_t trace_id);

/// Chrome trace-event JSON for `trace_id` (all spans when 0):
/// {"traceEvents":[{"name","cat","ph":"X","ts","dur","pid","tid","args":
/// {"span_id","parent_span_id","trace_id"}},...],"displayTimeUnit":"ns"}.
/// `ts`/`dur` are microseconds since the process trace epoch, `tid` is
/// the recording thread's dense ordinal. `max_events` caps output size
/// (0 = no cap); newest events win when the cap bites.
std::string TraceEventsJson(const std::vector<SpanRecord>& spans,
                            std::uint64_t trace_id,
                            std::size_t max_events = 0);

/// Bounded index of the distinct trace ids in `spans`, newest first:
/// {"traces":[{"id","spans","root","start_ns","duration_ns"},...]}.
/// `root` is the name of the id's outermost span (depth 0) when the ring
/// still holds it. Untraced spans (id 0) are excluded.
std::string TraceIndexJson(const std::vector<SpanRecord>& spans,
                           std::size_t limit);

}  // namespace gemstone::telemetry

#endif  // GEMSTONE_TELEMETRY_TRACE_EXPORT_H_
