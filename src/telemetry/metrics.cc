#include "telemetry/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "core/lock_rank.h"

namespace gemstone::telemetry {

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target observation (1-based), then walk buckets.
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t next = seen + counts[i];
    if (static_cast<double>(next) >= rank) {
      // Observations in the overflow bucket have no finite upper edge;
      // report the largest finite bound (the histogram's ceiling).
      if (i >= bounds.size()) {
        return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
      }
      const double hi = static_cast<double>(bounds[i]);
      const double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double into =
          (rank - static_cast<double>(seen)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    seen = next;
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

const std::vector<std::uint64_t>& Histogram::DefaultLatencyBounds() {
  static const std::vector<std::uint64_t> kBounds = {
      1,    2,    5,    10,    25,    50,    100,    250,    500,    1000,
      2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000, 1000000};
  return kBounds;
}

const std::vector<std::uint64_t>& Histogram::MicroLatencyBounds() {
  static const std::vector<std::uint64_t> kBounds = {
      1,    2,    3,    4,     5,     6,      7,      8,      9,     10,
      15,   20,   25,   35,    50,    75,     100,    150,    250,   500,
      1000, 2500, 5000, 10000, 25000, 50000,  100000, 250000, 500000,
      1000000};
  return kBounds;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    snap.counts.push_back(b.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registration& Registration::operator=(Registration&& other) noexcept {
  if (this != &other) {
    if (registry_ != nullptr) registry_->Unregister(id_);
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

Registration::~Registration() {
  if (registry_ != nullptr) registry_->Unregister(id_);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  const char first = name.front();
  const bool first_ok = (first >= 'a' && first <= 'z') ||
                        (first >= 'A' && first <= 'Z') || first == '_';
  if (!first_ok) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

std::string SanitizeMetricName(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.';
    out.push_back(ok ? c : '_');
  }
  const char first = out.front();
  if (!((first >= 'a' && first <= 'z') || (first >= 'A' && first <= 'Z') ||
        first == '_')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

namespace {
// Debug builds abort on an invalid registration — a bad literal is a bug
// at the call site, and sanitize-and-continue would hide it until an
// operator greps for the metric and finds the mangled spelling. Release
// builds keep the forgiving behavior: never crash production telemetry.
// Tests flip this off to exercise the sanitize path itself.
#if defined(NDEBUG)
std::atomic<bool> abort_on_invalid_name{false};
#else
std::atomic<bool> abort_on_invalid_name{true};
#endif
}  // namespace

bool SetAbortOnInvalidMetricName(bool value) {
  return abort_on_invalid_name.exchange(value, std::memory_order_relaxed);
}

std::string MetricsRegistry::AdmitNameLocked(const std::string& name) {
  if (IsValidMetricName(name)) return name;
  if (abort_on_invalid_name.load(std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "invalid metric name \"%s\" (want [a-zA-Z_][a-zA-Z0-9_.]*); "
                 "fix the registration site\n",
                 name.c_str());
    std::fflush(stderr);
    std::abort();
  }
  // Rejected: the instrument registers under the sanitized spelling and
  // the rejection itself is observable (telemetry.invalid_metric_names).
  auto& rejected = counters_["telemetry.invalid_metric_names"];
  if (rejected == nullptr) rejected = std::make_unique<Counter>();
  rejected->Increment();
  return SanitizeMetricName(name);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[AdmitNameLocked(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[AdmitNameLocked(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::DefaultLatencyBounds());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<std::uint64_t> bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[AdmitNameLocked(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

Registration MetricsRegistry::Register(CollectFn fn) {
  MutexLock lock(mu_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return Registration(this, id);
}

namespace {

/// Accumulates collector samples into a Snapshot, merging by name.
class SnapshotSink : public SampleSink {
 public:
  explicit SnapshotSink(Snapshot* out) : out_(out) {}
  void Counter(const std::string& name, std::uint64_t value) override {
    out_->counters[name] += value;
  }
  void Gauge(const std::string& name, std::int64_t value) override {
    out_->gauges[name] += value;
  }

 private:
  Snapshot* out_;
};

/// Folds a retiring collector's counter samples into the retained totals.
class RetireSink : public SampleSink {
 public:
  explicit RetireSink(std::map<std::string, std::uint64_t>* retired)
      : retired_(retired) {}
  void Counter(const std::string& name, std::uint64_t value) override {
    (*retired_)[name] += value;
  }
  void Gauge(const std::string&, std::int64_t) override {}

 private:
  std::map<std::string, std::uint64_t>* retired_;
};

}  // namespace

void MetricsRegistry::Unregister(std::uint64_t id) {
  MutexLock lock(mu_);
  auto it = collectors_.find(id);
  if (it == collectors_.end()) return;
  RetireSink sink(&retired_counters_);
  it->second(&sink);
  collectors_.erase(it);
}

telemetry::Snapshot MetricsRegistry::Snapshot() const {
  telemetry::Snapshot snap;
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] += counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] += gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  for (const auto& [name, total] : retired_counters_) {
    snap.counters[name] += total;
  }
  SnapshotSink sink(&snap);
  for (const auto& [id, fn] : collectors_) fn(&sink);
  // The lock-order validator's observed-acquisition graph (DESIGN.md
  // §13): distinct rank->rank edges, total acquisitions noted, and
  // out-of-order acquisitions survived (only possible with aborting
  // off). All three read relaxed atomics; all three are zero in release
  // builds, where validation is compiled out.
  snap.gauges["sync.lock_edges"] +=
      static_cast<std::int64_t>(lock_order::EdgeCount());
  snap.counters["sync.lock_acquisitions"] += lock_order::AcquisitionCount();
  snap.counters["sync.lock_order_violations"] += lock_order::ViolationCount();
  return snap;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  retired_counters_.clear();
}

}  // namespace gemstone::telemetry
