#ifndef GEMSTONE_TELEMETRY_OBSERVATORY_H_
#define GEMSTONE_TELEMETRY_OBSERVATORY_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.h"
#include "core/sync.h"
#include "telemetry/metrics.h"

namespace gemstone::telemetry {

/// The workload observatory (DESIGN.md §14): a background sampler thread
/// snapshots the whole MetricsRegistry every `interval` (default 1 s)
/// into a fixed ring, so every cumulative-since-boot counter gains a
/// recent history — windowed per-second rates, gauge trajectories, and
/// percentile-over-time for histograms — without any instrument changing
/// how it records. The admin `/timeseries` route and the `/statusz`
/// sparkline column are both views over this ring.
///
/// Locking: `mu_` (rank telemetry.observatory) guards only the ring.
/// Sampling takes the registry snapshot *before* acquiring `mu_`, so the
/// registry lock and the ring lock are never held together and recording
/// threads are never behind the sampler. Start/Stop serialize on a raw
/// std::mutex + condvar pair (outside the rank lattice, like the server's
/// work queue) because the sampler sleeps on it.

/// The derived view of one histogram at one sampling instant. Percentiles
/// are of the cumulative distribution at that instant; the *trajectory*
/// across samples is what the time-series view charts.
struct SampledHistogram {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// One ring entry: everything the registry knew at `ts_ns`.
struct ObservatorySample {
  std::uint64_t ts_ns = 0;  // TraceNowNs() at snapshot time
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, SampledHistogram> histograms;
};

class Observatory {
 public:
  /// ~10 minutes of history at the default 1 s cadence. Sizing rationale
  /// in DESIGN.md §14 — long enough to see a workload shift, small enough
  /// (a few MB at a few hundred metrics) to forget about.
  static constexpr std::size_t kDefaultCapacity = 600;
  static constexpr std::chrono::milliseconds kDefaultInterval{1000};

  /// Admin-facing payload caps (satellite: bounded admin responses).
  static constexpr std::size_t kDefaultWindow = 60;
  static constexpr std::size_t kMaxWindow = kDefaultCapacity;
  static constexpr std::size_t kDefaultSeriesLimit = 200;
  static constexpr std::size_t kMaxSeriesLimit = 2000;

  static Observatory& Global();

  explicit Observatory(std::size_t capacity = kDefaultCapacity);
  ~Observatory();
  Observatory(const Observatory&) = delete;
  Observatory& operator=(const Observatory&) = delete;

  /// Launches the sampler thread. Idempotent while running; after Stop()
  /// a new Start() relaunches (restart-safe). Thread-safe.
  void Start(std::chrono::milliseconds interval = kDefaultInterval);

  /// Stops and joins the sampler. Idempotent. The ring is retained, so a
  /// stopped observatory still serves its recorded history.
  void Stop();

  bool running() const;
  std::chrono::milliseconds interval() const;

  /// Takes one sample synchronously on the calling thread — what the
  /// sampler thread does each tick. Public so tests (and the REPL, which
  /// has no background thread) can drive deterministic histories.
  void SampleNow();

  /// Oldest-to-newest copy of the newest `limit` ring entries (0 = all).
  std::vector<ObservatorySample> Ring(std::size_t limit = 0) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t total_samples() const;

  /// Per-second rates of counter `name` across the newest `window`
  /// sampling intervals, oldest first. Uses each interval's measured
  /// elapsed time, not the nominal cadence. Missing counters and
  /// single-sample rings yield an empty vector.
  std::vector<double> RateSeries(const std::string& name,
                                 std::size_t window) const;

  /// The newest interval's per-second rate of counter `name` (0 when the
  /// ring holds fewer than two samples).
  double LatestRate(const std::string& name) const;

  /// ASCII sparkline (one char per point, ladder " .:-=+*#@") scaled to
  /// the series max — embeds into JSON/terminal output without quoting
  /// issues.
  static std::string Sparkline(const std::vector<double>& series);

  /// The `/timeseries` document: windowed counter rates, gauge values,
  /// and histogram percentile trajectories over the newest `window`
  /// intervals, at most `series_limit` series per section (alphabetical;
  /// "truncated" flags when the cap bit). Counters that never moved in
  /// the window are elided — rate columns stay about the live workload.
  std::string TimeSeriesJson(std::size_t window = kDefaultWindow,
                             std::size_t series_limit = kDefaultSeriesLimit)
      const;

  /// The `/statusz` sparkline section: rate series + sparkline for the
  /// counters matching any prefix in `prefixes`, as a JSON object.
  std::string SparklineJson(const std::vector<std::string>& prefixes,
                            std::size_t window = kDefaultWindow) const;

 private:
  void SamplerLoop();

  const std::size_t capacity_;

  mutable Mutex mu_{LockRank::kTelemetryObservatory,
                    "telemetry.observatory_mu"};
  std::vector<ObservatorySample> ring_ GS_GUARDED_BY(mu_);
  std::size_t next_ GS_GUARDED_BY(mu_) = 0;
  std::uint64_t total_samples_ GS_GUARDED_BY(mu_) = 0;

  // Sampler thread lifecycle. Raw primitives: the sampler *sleeps* on
  // cv_, and gs::Mutex deliberately has no condvar support (§13).
  mutable std::mutex thread_mu_;  // gs_lint: allow(raw-mutex)
  std::condition_variable cv_;
  std::thread sampler_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::chrono::milliseconds interval_{kDefaultInterval};

  // Self-accounting (resolved once; instruments are process-lifetime).
  Counter* samples_counter_;
  Histogram* sample_cost_us_;
};

}  // namespace gemstone::telemetry

#endif  // GEMSTONE_TELEMETRY_OBSERVATORY_H_
