#include "telemetry/export.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace gemstone::telemetry {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string Sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string PromLabelEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string ToText(const Snapshot& snapshot) {
  std::ostringstream out;
  std::size_t width = 0;
  for (const auto& [name, v] : snapshot.counters) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, v] : snapshot.gauges) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, v] : snapshot.histograms) {
    width = std::max(width, name.size());
  }
  if (!snapshot.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      out << "  " << name << std::string(width - name.size() + 2, ' ')
          << value << "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out << "  " << name << std::string(width - name.size() + 2, ' ')
          << value << "\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "histograms (us):\n";
    for (const auto& [name, h] : snapshot.histograms) {
      out << "  " << name << std::string(width - name.size() + 2, ' ')
          << "count=" << h.count << " sum=" << h.sum
          << " p50=" << FormatDouble(h.p50())
          << " p95=" << FormatDouble(h.p95())
          << " p99=" << FormatDouble(h.p99()) << "\n";
    }
  }
  if (out.str().empty()) return "no metrics recorded\n";
  return out.str();
}

std::string ToJson(const Snapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << h.sum << ",\"p50\":" << FormatDouble(h.p50())
        << ",\"p95\":" << FormatDouble(h.p95())
        << ",\"p99\":" << FormatDouble(h.p99()) << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out << ",";
      // le of -1 marks the overflow (+Inf) bucket.
      const long long le =
          i < h.bounds.size() ? static_cast<long long>(h.bounds[i]) : -1;
      out << "[" << le << "," << h.counts[i] << "]";
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

std::string ToPrometheus(const Snapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = "gemstone_" + Sanitize(name);
    out << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = "gemstone_" + Sanitize(name);
    out << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = "gemstone_" + Sanitize(name);
    out << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.bounds.size() ? std::to_string(h.bounds[i]) : "+Inf";
      out << prom << "_bucket{le=\"" << PromLabelEscape(le) << "\"} "
          << cumulative << "\n";
    }
    out << prom << "_sum " << h.sum << "\n"
        << prom << "_count " << h.count << "\n";
  }
  return out.str();
}

}  // namespace gemstone::telemetry
