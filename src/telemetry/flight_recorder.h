#ifndef GEMSTONE_TELEMETRY_FLIGHT_RECORDER_H_
#define GEMSTONE_TELEMETRY_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/annotations.h"
#include "core/sync.h"

namespace gemstone::telemetry {

/// What happened. Kinds are stable identifiers — the dump format is part
/// of the post-mortem contract (DESIGN.md §9).
enum class FlightEventKind : std::uint8_t {
  kTxnBegin,          // a = start time
  kTxnCommit,         // a = commit time, b = latency us
  kTxnAbort,          // explicit or failure-path abort; detail = reason
  kTxnConflict,       // validation failure; detail = conflicting access
  kStorageFault,      // device error surfaced; detail = status message
  kRecoveryFallback,  // Open abandoned a root slot; detail = why
  kSlowOp,            // a span exceeded the slow-op threshold; a = ns
  kNetConnOpen,       // gateway accepted a connection; a = connection id
  kNetConnClose,      // a = bytes in, b = bytes out; detail = reason
  kSlowRequest,       // a wire request exceeded the slow-request
                      // threshold; a = total us, b = seq; detail = the
                      // per-stage breakdown (queue/lock_wait/execute/
                      // serialize/flush) plus I/O tally
  kArchive,           // object moved to archival media; a = raw oid,
                      // b = image bytes
  kRestore,           // object restored from archival media; a = raw oid,
                      // b = image bytes
  kTierMigration,     // versions demoted to a cold run; a = raw oid,
                      // b = records moved; detail = boundary time
  kTierCompaction,    // cold runs merged downward; a = source level,
                      // b = records merged; detail = destination
};

std::string_view FlightEventKindName(FlightEventKind kind);

/// One structured event. `seq` is a global 1-based sequence number; gaps
/// at the start of a dump mean the ring wrapped and older events were
/// overwritten (the dump reports how many).
struct FlightEvent {
  std::uint64_t seq = 0;
  std::uint64_t ts_ns = 0;  // TraceNowNs at record time
  FlightEventKind kind = FlightEventKind::kTxnBegin;
  std::uint64_t session = 0;   // 0 when not session-scoped
  std::uint64_t trace_id = 0;  // owning wire request (0 = none bound);
                               // filled from the thread-local trace
                               // context at record time
  std::uint64_t a = 0;         // kind-specific, see FlightEventKind
  std::uint64_t b = 0;
  std::string detail;
};

/// The always-on flight recorder: a fixed-size ring of recent structured
/// events that can be dumped as JSON on demand and dumps itself when
/// something goes wrong (abort, conflict, storage fault) if an auto-dump
/// path is armed. Think aviation FDR: cheap enough to leave running,
/// self-describing when the crash matrix bites.
///
/// Concurrency: writers claim a slot with one wait-free fetch_add, then
/// fill it under that slot's own mutex — two writers contend only when
/// the ring wraps onto itself, and never with writers of other slots.
/// Readers lock each slot briefly while copying. TSan-clean by
/// construction (tests/concurrency/flight_recorder_stress_test.cc).
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;
  static constexpr std::uint64_t kDefaultSlowOpNs = 100'000'000;  // 100 ms

  static FlightRecorder& Global();

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void Record(FlightEventKind kind, std::uint64_t session, std::uint64_t a,
              std::uint64_t b, std::string_view detail);

  /// Retained events in sequence order.
  std::vector<FlightEvent> Snapshot() const;

  /// {"capacity":..,"recorded":..,"dropped":..,"events":[{..},..]}.
  /// `limit` keeps only the newest events (0 = all retained); the
  /// /flightrec admin route passes its `?limit=` through here.
  std::string DumpJson(std::size_t limit = 0) const;

  /// DumpJson restricted to one event kind — the `:slowlog` dump is
  /// DumpJsonOfKind(kSlowRequest). `limit` as in DumpJson.
  std::string DumpJsonOfKind(FlightEventKind kind, std::size_t limit = 0)
      const;

  /// Writes DumpJson() to `path` (truncating). Returns false on I/O error
  /// — callers on failure paths cannot do much about it, but tests can.
  bool DumpToFile(const std::string& path) const;

  /// Arms automatic dumps: every subsequent abort/conflict/storage-fault
  /// event rewrites `path` with the current ring contents, so the file
  /// always holds the recorder's view at the *last* failure. Empty
  /// disarms. The write happens on the recording thread.
  void SetAutoDumpPath(std::string path);
  std::string auto_dump_path() const;

  /// Spans at least this long are recorded as kSlowOp events (see
  /// ScopedSpan). 0 disables slow-op capture.
  void set_slow_op_threshold_ns(std::uint64_t ns) {
    slow_op_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  std::uint64_t slow_op_threshold_ns() const {
    return slow_op_threshold_ns_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return capacity_; }
  /// Events ever recorded, including those already overwritten.
  std::uint64_t total_recorded() const {
    return next_seq_.load(std::memory_order_relaxed) - 1;
  }

  /// Testing hook: forgets every event (sequence numbering continues).
  void ClearForTest();

 private:
  struct Slot {
    mutable Mutex mu{LockRank::kFlightRecorderSlot,
                     "telemetry.flightrec_slot_mu"};
    FlightEvent event GS_GUARDED_BY(mu);  // seq 0 = never written
  };

  const std::size_t capacity_;
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> slow_op_threshold_ns_{kDefaultSlowOpNs};
  std::unique_ptr<Slot[]> slots_;

  mutable Mutex config_mu_{LockRank::kFlightRecorderConfig,
                           "telemetry.flightrec_config_mu"};
  std::string auto_dump_path_ GS_GUARDED_BY(config_mu_);
};

}  // namespace gemstone::telemetry

#endif  // GEMSTONE_TELEMETRY_FLIGHT_RECORDER_H_
