#include "telemetry/observatory.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "telemetry/export.h"
#include "telemetry/trace.h"

namespace gemstone::telemetry {

namespace {

/// Rate points per window are derived pairwise, so `window` intervals
/// need `window + 1` samples.
std::size_t ClampWindow(std::size_t window) {
  if (window == 0) window = Observatory::kDefaultWindow;
  return std::min(window, Observatory::kMaxWindow);
}

void AppendDouble(std::ostringstream& os, double v) {
  // Emit with limited precision; rates don't need 17 digits and the
  // payload is size-bounded by contract.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  os << buf;
}

}  // namespace

Observatory& Observatory::Global() {
  static Observatory* instance = new Observatory();  // never dies
  return *instance;
}

Observatory::Observatory(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      samples_counter_(
          MetricsRegistry::Global().GetCounter("observatory.samples")),
      sample_cost_us_(MetricsRegistry::Global().GetHistogram(
          "observatory.sample_cost_us")) {
  ring_.reserve(capacity_);
}

Observatory::~Observatory() { Stop(); }

void Observatory::Start(std::chrono::milliseconds interval) {
  std::unique_lock<std::mutex> lock(thread_mu_);
  if (interval.count() <= 0) interval = kDefaultInterval;
  interval_ = interval;
  if (running_) return;
  // A previous sampler that was asked to stop may not be joined yet.
  if (sampler_.joinable()) sampler_.join();
  stop_requested_ = false;
  running_ = true;
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void Observatory::Stop() {
  std::thread to_join;
  {
    std::unique_lock<std::mutex> lock(thread_mu_);
    // Only the sampler clears running_ (on its way out). Setting it here
    // would stomp a Start() that raced in between this unlock and the
    // join below and launched a fresh sampler.
    if (sampler_.joinable()) {
      stop_requested_ = true;
      cv_.notify_all();
      to_join = std::move(sampler_);
    }
  }
  if (to_join.joinable()) to_join.join();
}

bool Observatory::running() const {
  std::unique_lock<std::mutex> lock(thread_mu_);
  return running_ && !stop_requested_;
}

std::chrono::milliseconds Observatory::interval() const {
  std::unique_lock<std::mutex> lock(thread_mu_);
  return interval_;
}

void Observatory::SamplerLoop() {
  for (;;) {
    SampleNow();
    std::unique_lock<std::mutex> lock(thread_mu_);
    cv_.wait_for(lock, interval_, [this] { return stop_requested_; });
    if (stop_requested_) {
      running_ = false;
      return;
    }
  }
}

void Observatory::SampleNow() {
  const std::uint64_t begin_ns = TraceNowNs();
  // Registry snapshot first, ring lock second — never both at once, so
  // the sampler can never stall a recording thread behind the ring.
  const telemetry::Snapshot snap = MetricsRegistry::Global().Snapshot();
  ObservatorySample sample;
  sample.ts_ns = begin_ns;
  sample.counters = snap.counters;
  sample.gauges = snap.gauges;
  for (const auto& [name, hist] : snap.histograms) {
    SampledHistogram s;
    s.count = hist.count;
    s.sum = hist.sum;
    s.p50 = hist.p50();
    s.p95 = hist.p95();
    s.p99 = hist.p99();
    sample.histograms.emplace(name, s);
  }
  {
    MutexLock lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(sample));
    } else {
      ring_[next_] = std::move(sample);
    }
    next_ = (next_ + 1) % capacity_;
    ++total_samples_;
  }
  samples_counter_->Increment();
  sample_cost_us_->Observe((TraceNowNs() - begin_ns) / 1000);
}

std::vector<ObservatorySample> Observatory::Ring(std::size_t limit) const {
  std::vector<ObservatorySample> out;
  MutexLock lock(mu_);
  const std::size_t n = ring_.size();
  const std::size_t want = (limit == 0 || limit > n) ? n : limit;
  out.reserve(want);
  if (n < capacity_) {
    out.assign(ring_.end() - static_cast<std::ptrdiff_t>(want), ring_.end());
  } else {
    // next_ is the oldest slot once wrapped; take the newest `want`.
    for (std::size_t i = n - want; i < n; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::size_t Observatory::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

std::uint64_t Observatory::total_samples() const {
  MutexLock lock(mu_);
  return total_samples_;
}

std::vector<double> Observatory::RateSeries(const std::string& name,
                                            std::size_t window) const {
  const std::vector<ObservatorySample> samples =
      Ring(ClampWindow(window) + 1);
  std::vector<double> rates;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const auto prev = samples[i - 1].counters.find(name);
    const auto cur = samples[i].counters.find(name);
    if (prev == samples[i - 1].counters.end() ||
        cur == samples[i].counters.end()) {
      rates.push_back(0.0);
      continue;
    }
    const std::uint64_t elapsed_ns = samples[i].ts_ns - samples[i - 1].ts_ns;
    if (elapsed_ns == 0 || cur->second < prev->second) {
      rates.push_back(0.0);  // clock hiccup or counter reset (tests)
      continue;
    }
    rates.push_back(static_cast<double>(cur->second - prev->second) * 1e9 /
                    static_cast<double>(elapsed_ns));
  }
  return rates;
}

double Observatory::LatestRate(const std::string& name) const {
  const std::vector<double> rates = RateSeries(name, 1);
  return rates.empty() ? 0.0 : rates.back();
}

std::string Observatory::Sparkline(const std::vector<double>& series) {
  static constexpr char kLadder[] = " .:-=+*#@";
  static constexpr std::size_t kLevels = sizeof(kLadder) - 2;  // top index
  double max = 0;
  for (double v : series) max = std::max(max, v);
  std::string out;
  out.reserve(series.size());
  for (double v : series) {
    if (max <= 0 || v <= 0) {
      out.push_back(kLadder[0]);
    } else {
      const std::size_t level = 1 + static_cast<std::size_t>(
                                        (v / max) * (kLevels - 1) + 0.5);
      out.push_back(kLadder[std::min(level, kLevels)]);
    }
  }
  return out;
}

std::string Observatory::TimeSeriesJson(std::size_t window,
                                        std::size_t series_limit) const {
  window = ClampWindow(window);
  if (series_limit == 0) series_limit = kDefaultSeriesLimit;
  series_limit = std::min(series_limit, kMaxSeriesLimit);

  const std::vector<ObservatorySample> samples = Ring(window + 1);
  std::ostringstream os;
  os << "{\"interval_ms\":" << interval().count()
     << ",\"samples\":" << samples.size() << ",\"window\":" << window;
  if (samples.empty()) {
    os << ",\"counters\":{},\"gauges\":{},\"histograms\":{}}";
    return os.str();
  }
  os << ",\"start_ts_ns\":" << samples.front().ts_ns
     << ",\"end_ts_ns\":" << samples.back().ts_ns;

  const ObservatorySample& newest = samples.back();

  // Counters: windowed per-second rates, oldest interval first. A series
  // that never moved inside the window is elided — the document is about
  // the live workload, and this is the main payload bound.
  os << ",\"counters\":{";
  std::size_t emitted = 0;
  bool truncated = false;
  bool first = true;
  for (const auto& [name, total] : newest.counters) {
    std::vector<double> rates;
    bool moved = false;
    for (std::size_t i = 1; i < samples.size(); ++i) {
      const auto prev = samples[i - 1].counters.find(name);
      const auto cur = samples[i].counters.find(name);
      double rate = 0.0;
      if (prev != samples[i - 1].counters.end() &&
          cur != samples[i].counters.end() && cur->second > prev->second) {
        const std::uint64_t elapsed = samples[i].ts_ns - samples[i - 1].ts_ns;
        if (elapsed > 0) {
          rate = static_cast<double>(cur->second - prev->second) * 1e9 /
                 static_cast<double>(elapsed);
          moved = true;
        }
      }
      rates.push_back(rate);
    }
    if (!moved) continue;
    if (emitted >= series_limit) {
      truncated = true;
      break;
    }
    if (!first) os << ',';
    first = false;
    ++emitted;
    os << '"' << JsonEscape(name) << "\":{\"total\":" << total
       << ",\"rates\":[";
    for (std::size_t i = 0; i < rates.size(); ++i) {
      if (i > 0) os << ',';
      AppendDouble(os, rates[i]);
    }
    os << "]}";
  }
  os << '}';

  // Gauges: raw value trajectory (levels, not rates).
  os << ",\"gauges\":{";
  emitted = 0;
  first = true;
  for (const auto& [name, value] : newest.gauges) {
    if (emitted >= series_limit) {
      truncated = true;
      break;
    }
    if (!first) os << ',';
    first = false;
    ++emitted;
    os << '"' << JsonEscape(name) << "\":{\"value\":" << value
       << ",\"values\":[";
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (i > 0) os << ',';
      const auto it = samples[i].gauges.find(name);
      os << (it != samples[i].gauges.end() ? it->second : 0);
    }
    os << "]}";
  }
  os << '}';

  // Histograms: percentile trajectories. Only series that observed
  // something inside the window (count moved) are emitted.
  os << ",\"histograms\":{";
  emitted = 0;
  first = true;
  for (const auto& [name, hist] : newest.histograms) {
    const auto oldest = samples.front().histograms.find(name);
    const std::uint64_t old_count =
        oldest != samples.front().histograms.end() ? oldest->second.count : 0;
    if (hist.count == old_count && samples.size() > 1) continue;
    if (emitted >= series_limit) {
      truncated = true;
      break;
    }
    if (!first) os << ',';
    first = false;
    ++emitted;
    os << '"' << JsonEscape(name) << "\":{\"count\":" << hist.count
       << ",\"p50\":[";
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (i > 0) os << ',';
      const auto it = samples[i].histograms.find(name);
      AppendDouble(os, it != samples[i].histograms.end() ? it->second.p50 : 0);
    }
    os << "],\"p95\":[";
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (i > 0) os << ',';
      const auto it = samples[i].histograms.find(name);
      AppendDouble(os, it != samples[i].histograms.end() ? it->second.p95 : 0);
    }
    os << "],\"p99\":[";
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (i > 0) os << ',';
      const auto it = samples[i].histograms.find(name);
      AppendDouble(os, it != samples[i].histograms.end() ? it->second.p99 : 0);
    }
    os << "]}";
  }
  os << '}';
  os << ",\"truncated\":" << (truncated ? "true" : "false") << '}';
  return os.str();
}

std::string Observatory::SparklineJson(
    const std::vector<std::string>& prefixes, std::size_t window) const {
  window = ClampWindow(window);
  const std::vector<ObservatorySample> samples = Ring(window + 1);
  std::ostringstream os;
  os << '{';
  bool first = true;
  if (!samples.empty()) {
    for (const auto& [name, total] : samples.back().counters) {
      bool wanted = false;
      for (const std::string& prefix : prefixes) {
        if (name.compare(0, prefix.size(), prefix) == 0) {
          wanted = true;
          break;
        }
      }
      if (!wanted) continue;
      const std::vector<double> rates = RateSeries(name, window);
      bool moved = false;
      for (double r : rates) {
        if (r > 0) {
          moved = true;
          break;
        }
      }
      if (!moved) continue;
      if (!first) os << ',';
      first = false;
      os << '"' << JsonEscape(name) << "\":{\"rate\":";
      AppendDouble(os, rates.empty() ? 0.0 : rates.back());
      os << ",\"spark\":\"" << Sparkline(rates) << "\"}";
    }
  }
  os << '}';
  return os.str();
}

}  // namespace gemstone::telemetry
