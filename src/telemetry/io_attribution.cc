#include "telemetry/io_attribution.h"

namespace gemstone::telemetry {

IoTally& ThreadIoTally() {
  thread_local IoTally tally;
  return tally;
}

}  // namespace gemstone::telemetry
