#include "telemetry/io_attribution.h"

namespace gemstone::telemetry {

IoTally& ThreadIoTally() {
  thread_local IoTally tally;
  return tally;
}

namespace {
thread_local bool tls_historical_access = false;
}  // namespace

bool ThreadAccessIsHistorical() { return tls_historical_access; }

HistoricalAccessScope::HistoricalAccessScope()
    : saved_(tls_historical_access) {
  tls_historical_access = true;
}

HistoricalAccessScope::~HistoricalAccessScope() {
  tls_historical_access = saved_;
}

}  // namespace gemstone::telemetry
