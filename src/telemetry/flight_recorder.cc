#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gemstone::telemetry {

std::string_view FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kTxnBegin: return "txn_begin";
    case FlightEventKind::kTxnCommit: return "txn_commit";
    case FlightEventKind::kTxnAbort: return "txn_abort";
    case FlightEventKind::kTxnConflict: return "txn_conflict";
    case FlightEventKind::kStorageFault: return "storage_fault";
    case FlightEventKind::kRecoveryFallback: return "recovery_fallback";
    case FlightEventKind::kSlowOp: return "slow_op";
    case FlightEventKind::kNetConnOpen: return "net_conn_open";
    case FlightEventKind::kNetConnClose: return "net_conn_close";
    case FlightEventKind::kSlowRequest: return "slow_request";
    case FlightEventKind::kArchive: return "archive";
    case FlightEventKind::kRestore: return "restore";
    case FlightEventKind::kTierMigration: return "tier_migration";
    case FlightEventKind::kTierCompaction: return "tier_compaction";
  }
  return "unknown";
}

namespace {

bool IsFailureKind(FlightEventKind kind) {
  return kind == FlightEventKind::kTxnAbort ||
         kind == FlightEventKind::kTxnConflict ||
         kind == FlightEventKind::kStorageFault;
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never dies
  return *recorder;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

void FlightRecorder::Record(FlightEventKind kind, std::uint64_t session,
                            std::uint64_t a, std::uint64_t b,
                            std::string_view detail) {
  const std::uint64_t seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  {
    MutexLock lock(slot.mu);
    slot.event.seq = seq;
    slot.event.ts_ns = TraceNowNs();
    slot.event.kind = kind;
    slot.event.session = session;
    // Request attribution for free: whatever wire request this thread is
    // currently serving (0 when recording outside any dispatch).
    slot.event.trace_id = CurrentTraceId();
    slot.event.a = a;
    slot.event.b = b;
    slot.event.detail.assign(detail);
  }
  // Registry view of the event flow (exporters pick this up for free).
  static Counter* recorded =
      MetricsRegistry::Global().GetCounter("flightrec.events");
  recorded->Increment();
  if (IsFailureKind(kind)) {
    std::string path;
    {
      MutexLock lock(config_mu_);
      path = auto_dump_path_;
    }
    if (!path.empty()) {
      static Counter* dumps =
          MetricsRegistry::Global().GetCounter("flightrec.auto_dumps");
      dumps->Increment();
      (void)DumpToFile(path);
    }
  }
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    MutexLock lock(slot.mu);
    if (slot.event.seq != 0) out.push_back(slot.event);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

namespace {

std::string DumpEventsJson(std::size_t capacity, std::uint64_t recorded,
                           std::uint64_t dropped,
                           const std::vector<FlightEvent>& events) {
  std::ostringstream out;
  out << "{\"capacity\":" << capacity << ",\"recorded\":" << recorded
      << ",\"dropped\":" << dropped << ",\"events\":[";
  bool first = true;
  for (const FlightEvent& event : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"seq\":" << event.seq << ",\"ts_ns\":" << event.ts_ns
        << ",\"kind\":\"" << FlightEventKindName(event.kind)
        << "\",\"session\":" << event.session
        << ",\"trace_id\":" << event.trace_id << ",\"a\":" << event.a
        << ",\"b\":" << event.b << ",\"detail\":\""
        << JsonEscape(event.detail) << "\"}";
  }
  out << "]}";
  return out.str();
}

}  // namespace

namespace {
/// Keeps the newest `limit` events (Snapshot is sequence-ordered).
void TrimToNewest(std::vector<FlightEvent>* events, std::size_t limit) {
  if (limit != 0 && events->size() > limit) {
    events->erase(events->begin(),
                  events->end() - static_cast<std::ptrdiff_t>(limit));
  }
}
}  // namespace

std::string FlightRecorder::DumpJson(std::size_t limit) const {
  std::vector<FlightEvent> events = Snapshot();
  const std::uint64_t recorded = total_recorded();
  const std::uint64_t dropped = recorded - events.size();
  TrimToNewest(&events, limit);
  return DumpEventsJson(capacity_, recorded, dropped, events);
}

std::string FlightRecorder::DumpJsonOfKind(FlightEventKind kind,
                                           std::size_t limit) const {
  std::vector<FlightEvent> events = Snapshot();
  const std::uint64_t recorded = total_recorded();
  const std::uint64_t dropped = recorded - events.size();
  events.erase(std::remove_if(events.begin(), events.end(),
                              [kind](const FlightEvent& e) {
                                return e.kind != kind;
                              }),
               events.end());
  TrimToNewest(&events, limit);
  return DumpEventsJson(capacity_, recorded, dropped, events);
}

bool FlightRecorder::DumpToFile(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << DumpJson() << "\n";
  return static_cast<bool>(file);
}

void FlightRecorder::SetAutoDumpPath(std::string path) {
  MutexLock lock(config_mu_);
  auto_dump_path_ = std::move(path);
}

std::string FlightRecorder::auto_dump_path() const {
  MutexLock lock(config_mu_);
  return auto_dump_path_;
}

void FlightRecorder::ClearForTest() {
  for (std::size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    MutexLock lock(slot.mu);
    slot.event = FlightEvent{};
  }
}

}  // namespace gemstone::telemetry
