#include "telemetry/profiler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "telemetry/export.h"
#include "telemetry/trace.h"

namespace gemstone::telemetry {

namespace {

// The innermost open scope on this thread (caller chain for attribution).
thread_local ProfileScope* tls_top_scope = nullptr;

// Accessor so ProfileScope methods can touch the TLS without exposing it.
ProfileScope*& TopScope() { return tls_top_scope; }

std::string FormatUs(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1000.0);
  return buf;
}

}  // namespace

std::atomic<bool> Profiler::enabled_{false};

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // never dies
  return *profiler;
}

void Profiler::Reset() {
  MutexLock lock(mu_);
  edges_.clear();
}

void Profiler::RecordEdge(std::string_view caller, std::string_view callee,
                          std::uint64_t inclusive_ns,
                          std::uint64_t exclusive_ns,
                          std::uint64_t allocations) {
  std::string key;
  key.reserve(caller.size() + callee.size() + 1);
  key.append(caller);
  key.push_back('\x1f');
  key.append(callee);
  MutexLock lock(mu_);
  Cell& cell = edges_[key];
  cell.calls += 1;
  cell.inclusive_ns += inclusive_ns;
  cell.exclusive_ns += exclusive_ns;
  cell.allocations += allocations;
}

void Profiler::CountAlloc() {
  if (!Enabled()) return;
  ProfileScope* top = TopScope();
  if (top != nullptr) {
    // Private to this thread; ProfileScope grants the friendship.
    ++top->allocations_;
  }
}

std::vector<ProfileEdge> Profiler::Edges() const {
  std::vector<ProfileEdge> out;
  MutexLock lock(mu_);
  out.reserve(edges_.size());
  for (const auto& [key, cell] : edges_) {
    const std::size_t sep = key.find('\x1f');
    ProfileEdge edge;
    edge.caller = key.substr(0, sep);
    edge.callee = key.substr(sep + 1);
    edge.calls = cell.calls;
    edge.inclusive_ns = cell.inclusive_ns;
    edge.exclusive_ns = cell.exclusive_ns;
    edge.allocations = cell.allocations;
    out.push_back(std::move(edge));
  }
  return out;
}

std::vector<ProfileSelector> Profiler::BySelector() const {
  std::map<std::string, ProfileSelector> rollup;
  for (const ProfileEdge& edge : Edges()) {
    ProfileSelector& row = rollup[edge.callee];
    row.selector = edge.callee;
    row.calls += edge.calls;
    row.inclusive_ns += edge.inclusive_ns;
    row.exclusive_ns += edge.exclusive_ns;
    row.allocations += edge.allocations;
  }
  std::vector<ProfileSelector> out;
  out.reserve(rollup.size());
  for (auto& [name, row] : rollup) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(),
            [](const ProfileSelector& a, const ProfileSelector& b) {
              return a.exclusive_ns > b.exclusive_ns;
            });
  return out;
}

std::string Profiler::ReportText(std::size_t limit) const {
  std::vector<ProfileSelector> selectors = BySelector();
  std::vector<ProfileEdge> edges = Edges();
  std::sort(edges.begin(), edges.end(),
            [](const ProfileEdge& a, const ProfileEdge& b) {
              return a.exclusive_ns > b.exclusive_ns;
            });
  if (selectors.empty()) {
    return Enabled() ? "profiler: no sends recorded yet\n"
                     : "profiler: off (use :profile on)\n";
  }
  std::ostringstream out;
  out << "selector                         calls   excl_us   incl_us  allocs\n";
  std::size_t shown = 0;
  for (const ProfileSelector& row : selectors) {
    if (limit != 0 && shown++ >= limit) break;
    char line[160];
    std::snprintf(line, sizeof(line), "%-30s %7llu %9s %9s %7llu\n",
                  row.selector.c_str(),
                  static_cast<unsigned long long>(row.calls),
                  FormatUs(row.exclusive_ns).c_str(),
                  FormatUs(row.inclusive_ns).c_str(),
                  static_cast<unsigned long long>(row.allocations));
    out << line;
  }
  out << "call edges (caller -> callee):\n";
  shown = 0;
  for (const ProfileEdge& edge : edges) {
    if (limit != 0 && shown++ >= limit) break;
    const std::string site =
        (edge.caller.empty() ? std::string("<top>") : edge.caller) + " -> " +
        edge.callee;
    char line[200];
    std::snprintf(line, sizeof(line), "  %-40s %7llu %9s %9s %7llu\n",
                  site.c_str(), static_cast<unsigned long long>(edge.calls),
                  FormatUs(edge.exclusive_ns).c_str(),
                  FormatUs(edge.inclusive_ns).c_str(),
                  static_cast<unsigned long long>(edge.allocations));
    out << line;
  }
  return out.str();
}

std::string Profiler::ReportJson() const {
  std::ostringstream out;
  out << "{\"enabled\":" << (Enabled() ? "true" : "false")
      << ",\"selectors\":[";
  bool first = true;
  for (const ProfileSelector& row : BySelector()) {
    if (!first) out << ",";
    first = false;
    out << "{\"selector\":\"" << JsonEscape(row.selector)
        << "\",\"calls\":" << row.calls
        << ",\"inclusive_ns\":" << row.inclusive_ns
        << ",\"exclusive_ns\":" << row.exclusive_ns
        << ",\"allocations\":" << row.allocations << "}";
  }
  out << "],\"edges\":[";
  first = true;
  for (const ProfileEdge& edge : Edges()) {
    if (!first) out << ",";
    first = false;
    out << "{\"caller\":\"" << JsonEscape(edge.caller) << "\",\"callee\":\""
        << JsonEscape(edge.callee) << "\",\"calls\":" << edge.calls
        << ",\"inclusive_ns\":" << edge.inclusive_ns
        << ",\"exclusive_ns\":" << edge.exclusive_ns
        << ",\"allocations\":" << edge.allocations << "}";
  }
  out << "]}";
  return out.str();
}

ProfileScope::ProfileScope(std::string_view callee)
    : active_(!callee.empty() && Profiler::Enabled()), callee_(callee) {
  if (!active_) return;
  ProfileScope*& top = TopScope();
  parent_ = top;
  caller_ = top != nullptr ? top->callee_ : std::string_view();
  top = this;
  start_ns_ = TraceNowNs();
}

ProfileScope::~ProfileScope() {
  if (!active_) return;
  const std::uint64_t inclusive = TraceNowNs() - start_ns_;
  const std::uint64_t exclusive =
      inclusive > child_ns_ ? inclusive - child_ns_ : 0;
  TopScope() = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += inclusive;
  Profiler::Global().RecordEdge(caller_, callee_, inclusive, exclusive,
                                allocations_);
}

}  // namespace gemstone::telemetry
