#ifndef GEMSTONE_TELEMETRY_METRICS_H_
#define GEMSTONE_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/annotations.h"
#include "core/sync.h"

namespace gemstone::telemetry {

/// Metric names follow `subsystem.metric` (e.g. "disk.tracks_read",
/// "txn.commits"). Span histograms are auto-named `span.<span name>`.
///
/// Ownership model: process-wide instruments (histograms, global counters)
/// live in the MetricsRegistry and are never deallocated, so pointers from
/// GetCounter/GetHistogram stay valid for the process lifetime. Components
/// that exist many times (disks, caches, interpreters) own their counters
/// and publish them through a registered collector; Snapshot() sums
/// same-named samples across live instances and the retained totals of
/// instances that have since been destroyed, so process totals stay
/// monotonic across sessions logging in and out.

/// A monotonically increasing event count. Increment is a single relaxed
/// atomic add by default — safe from any thread, never takes a lock.
///
/// Snapshot discipline: `value()` is an explicitly relaxed read, so each
/// counter is individually monotonic but a multi-counter snapshot taken
/// while writers run carries no cross-counter guarantee. Where a snapshot
/// invariant *is* promised (see txn::TxnStats), the writer increments the
/// implied counter first and the implying counter with release order, and
/// the reader loads the implying counter with acquire order first — the
/// release/acquire pair on one counter publishes the other.
class Counter {
 public:
  void Increment(std::uint64_t n = 1,
                 std::memory_order order = std::memory_order_relaxed) {
    value_.fetch_add(n, order);
  }
  std::uint64_t value(
      std::memory_order order = std::memory_order_relaxed) const {
    return value_.load(order);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A point-in-time level (resident objects, free tracks, open sessions).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Immutable view of a histogram: per-bucket counts plus derived
/// percentiles (linear interpolation inside the winning bucket).
struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;  // inclusive upper bounds; implicit +inf
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Value at percentile `p` in [0, 100]; 0 when empty. Values in the
  /// overflow bucket report the largest finite bound.
  double Percentile(double p) const;
  double p50() const { return Percentile(50.0); }
  double p95() const { return Percentile(95.0); }
  double p99() const { return Percentile(99.0); }
};

/// Fixed-bucket latency histogram. Observe is lock-free: one relaxed add
/// into the bucket, one into the running sum. The default bounds cover
/// 1 µs .. 1 s, which suits every latency this system produces; pass
/// custom bounds for non-latency distributions.
class Histogram {
 public:
  /// Microsecond-scale latency bounds: 1,2,5,... decades up to 1e6.
  static const std::vector<std::uint64_t>& DefaultLatencyBounds();

  /// Dense sub-millisecond bounds for distributions whose p50 sits in the
  /// single-digit microseconds (loopback request stages). The default
  /// 1/2/5 decade ladder puts a ~5 µs median inside a 2.5 µs-wide bucket
  /// whose interpolation error is ~half the median itself; these bounds
  /// keep sub-10 µs buckets ≤ 1 µs wide while still reaching 1 s.
  static const std::vector<std::uint64_t>& MicroLatencyBounds();

  Histogram() : Histogram(DefaultLatencyBounds()) {}
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void Observe(std::uint64_t value);
  HistogramSnapshot Snapshot() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One coherent view of every metric in the process: registry-owned
/// instruments, live collector samples, and retained totals of retired
/// collectors, merged by name.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Receives one component's samples during Snapshot(). Same-named counter
/// samples from different components sum.
class SampleSink {
 public:
  virtual ~SampleSink() = default;
  virtual void Counter(const std::string& name, std::uint64_t value) = 0;
  virtual void Gauge(const std::string& name, std::int64_t value) = 0;
};

using CollectFn = std::function<void(SampleSink*)>;

class MetricsRegistry;

/// RAII handle for a registered collector. Destroying it unregisters the
/// collector and folds its final counter samples into the registry's
/// retained totals. Declare it *after* the counters it samples so it is
/// destroyed first.
class Registration {
 public:
  Registration() = default;
  Registration(Registration&& other) noexcept { *this = std::move(other); }
  Registration& operator=(Registration&& other) noexcept;
  Registration(const Registration&) = delete;
  Registration& operator=(const Registration&) = delete;
  ~Registration();

 private:
  friend class MetricsRegistry;
  Registration(MetricsRegistry* registry, std::uint64_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

/// A legal metric name: `[a-zA-Z_][a-zA-Z0-9_.]*` — everything the text,
/// JSON, and Prometheus exporters can emit without quoting surprises.
bool IsValidMetricName(std::string_view name);

/// `name` with every illegal character replaced by '_' (prefixed with '_'
/// when the first character cannot start a name).
std::string SanitizeMetricName(std::string_view name);

/// Registration fail-fast policy. Debug builds default to true: asking
/// the registry for an invalid name prints the offending spelling and
/// aborts, so a bad literal dies in the first test run instead of
/// shipping as a silently sanitized metric. Release builds default to
/// false (sanitize, count `telemetry.invalid_metric_names`, continue).
/// Returns the previous setting; tests flip it off to exercise the
/// sanitize path.
bool SetAbortOnInvalidMetricName(bool abort_on_invalid);

/// The process-wide metric namespace. Thread-safe.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Named instruments owned by the registry; created on first use, never
  /// deallocated, so the returned pointer may be cached indefinitely.
  /// Invalid names (see IsValidMetricName) are rejected at registration:
  /// the instrument registers under the sanitized spelling instead and
  /// `telemetry.invalid_metric_names` counts the rejection.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<std::uint64_t> bounds);

  /// Registers a per-instance collector; `fn` must stay callable until the
  /// returned Registration dies and must only read atomics (it runs under
  /// the registry lock).
  Registration Register(CollectFn fn);

  /// One coherent view of everything. Counter/gauge samples merge by name
  /// across instruments, live collectors, and retired totals.
  telemetry::Snapshot Snapshot() const;

  /// Testing hook: zeroes every registry-owned instrument and forgets
  /// retired totals (live collectors are untouched).
  void ResetForTest();

 private:
  friend class Registration;
  void Unregister(std::uint64_t id);

  /// Validates (and when invalid, sanitizes + counts) a requested name.
  std::string AdmitNameLocked(const std::string& name) GS_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kTelemetryMetrics,
                    "telemetry.metrics_registry_mu"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GS_GUARDED_BY(mu_);
  std::map<std::uint64_t, CollectFn> collectors_ GS_GUARDED_BY(mu_);
  std::map<std::string, std::uint64_t> retired_counters_ GS_GUARDED_BY(mu_);
  std::uint64_t next_collector_id_ GS_GUARDED_BY(mu_) = 1;
};

}  // namespace gemstone::telemetry

#endif  // GEMSTONE_TELEMETRY_METRICS_H_
