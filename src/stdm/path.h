#ifndef GEMSTONE_STDM_PATH_H_
#define GEMSTONE_STDM_PATH_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/ids.h"
#include "core/result.h"
#include "stdm/stdm_value.h"

namespace gemstone::stdm {

/// One `!name` component of a path, optionally time-qualified with `@T`
/// (§5.3.2: `E!Salary@T` is the value E!Salary had at database state T).
struct PathStep {
  std::string name;
  std::optional<TxnTime> at;  // @T qualifier, temporal extension only

  friend bool operator==(const PathStep&, const PathStep&) = default;
};

/// A parsed path expression `Root!step!step@T!step` (§5.1).
struct Path {
  std::string root;  // leading variable, e.g. "X" or "World"
  std::vector<PathStep> steps;

  std::string ToString() const;
  friend bool operator==(const Path&, const Path&) = default;
};

/// Parses the paper's path syntax. Components are identifiers
/// (`Departments`), quoted names (`'Acme Corp'`), or integers used as
/// element names (`1`); each may carry an `@<integer>` time qualifier.
Result<Path> ParsePath(std::string_view text);

/// Navigates `root` along `path.steps` (the root variable is assumed
/// already resolved to `root`). Fails with NotFound on a missing element,
/// TypeMismatch when descending into a simple value, and InvalidArgument
/// on an `@` qualifier — plain STDM has no time; temporal paths resolve
/// against the GSDM object layer instead.
Result<StdmValue> EvalPath(const StdmValue& root, const Path& path);

/// Assignment through a path (§4.3: "allow assignments to path
/// expressions"): sets the element named by the final step, creating it
/// if absent; all earlier steps must resolve to existing sets.
Status AssignPath(StdmValue* root, const Path& path, StdmValue value);

}  // namespace gemstone::stdm

#endif  // GEMSTONE_STDM_PATH_H_
