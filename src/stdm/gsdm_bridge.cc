#include "stdm/gsdm_bridge.h"

#include <unordered_set>

namespace gemstone::stdm {

namespace {

Result<StdmValue> ExportRec(txn::Session* session, ObjectMemory* memory,
                            const Value& value,
                            std::unordered_set<std::uint64_t>* on_path) {
  switch (value.tag()) {
    case ValueTag::kNil:
      return StdmValue::Nil();
    case ValueTag::kBoolean:
      return StdmValue::Boolean(value.boolean());
    case ValueTag::kInteger:
      return StdmValue::Integer(value.integer());
    case ValueTag::kFloat:
      return StdmValue::Float(value.real());
    case ValueTag::kString:
      return StdmValue::String(value.string());
    case ValueTag::kSymbol:
      return StdmValue::String(memory->symbols().Name(value.symbol()));
    case ValueTag::kHandle:
      return Status::TypeMismatch("blocks have no STDM representation");
    case ValueTag::kRef:
      break;
  }
  const Oid oid = value.ref();
  if (on_path->count(oid.raw) != 0) {
    return Status::InvalidArgument(
        "cyclic object graph has no STDM (tree) representation: " +
        oid.ToString());
  }
  on_path->insert(oid.raw);
  StdmValue set = StdmValue::Set();

  GS_ASSIGN_OR_RETURN(auto named, session->ListNamed(oid));
  for (const auto& [name, element_value] : named) {
    GS_ASSIGN_OR_RETURN(StdmValue exported,
                        ExportRec(session, memory, element_value, on_path));
    if (memory->symbols().IsAlias(name)) {
      set.Add(std::move(exported));
    } else {
      GS_RETURN_IF_ERROR(
          set.Put(memory->symbols().Name(name), std::move(exported)));
    }
  }
  GS_ASSIGN_OR_RETURN(std::size_t n, session->IndexedSize(oid));
  for (std::size_t i = 0; i < n; ++i) {
    GS_ASSIGN_OR_RETURN(Value slot, session->ReadIndexed(oid, i));
    GS_ASSIGN_OR_RETURN(StdmValue exported,
                        ExportRec(session, memory, slot, on_path));
    GS_RETURN_IF_ERROR(
        set.Put(std::to_string(i + 1), std::move(exported)));
  }
  on_path->erase(oid.raw);
  return set;
}

}  // namespace

Result<Value> ImportStdm(txn::Session* session, ObjectMemory* memory,
                         const StdmValue& value) {
  switch (value.kind()) {
    case StdmValue::Kind::kNil:
      return Value::Nil();
    case StdmValue::Kind::kBoolean:
      return Value::Boolean(value.boolean());
    case StdmValue::Kind::kInteger:
      return Value::Integer(value.integer());
    case StdmValue::Kind::kFloat:
      return Value::Float(value.real());
    case StdmValue::Kind::kString:
      return Value::String(value.string());
    case StdmValue::Kind::kSet:
      break;
  }
  bool all_aliased = !value.elements().empty();
  for (const StdmValue::Element& element : value.elements()) {
    all_aliased = all_aliased && element.alias;
  }
  GS_ASSIGN_OR_RETURN(Oid oid,
                      session->Create(all_aliased ? memory->kernel().set
                                                  : memory->kernel().object));
  for (const StdmValue::Element& element : value.elements()) {
    GS_ASSIGN_OR_RETURN(Value imported,
                        ImportStdm(session, memory, element.value));
    const SymbolId name = element.alias
                              ? memory->symbols().GenerateAlias()
                              : memory->symbols().Intern(element.name);
    GS_RETURN_IF_ERROR(session->WriteNamed(oid, name, imported));
  }
  return Value::Ref(oid);
}

Result<StdmValue> ExportStdm(txn::Session* session, ObjectMemory* memory,
                             const Value& value) {
  std::unordered_set<std::uint64_t> on_path;
  return ExportRec(session, memory, value, &on_path);
}

}  // namespace gemstone::stdm
