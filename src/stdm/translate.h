#ifndef GEMSTONE_STDM_TRANSLATE_H_
#define GEMSTONE_STDM_TRANSLATE_H_

#include <memory>

#include "core/result.h"
#include "stdm/algebra.h"
#include "stdm/calculus.h"

namespace gemstone::stdm {

/// Translates a set-calculus query into a set-algebra plan (§3/§5.1: "We
/// have developed a set algebra, and an algorithm to translate a
/// set-calculus expression to a set-algebra expression").
///
/// Strategy (left-deep):
///  1. The condition is flattened into conjuncts.
///  2. Ranges are planned in order. Independent ranges become Scans;
///     correlated ranges (sources referencing earlier range variables)
///     become DependentScans over the plan so far.
///  3. When joining an independent Scan to the plan, an unused equality
///     conjunct linking an already-bound term to a term over only the new
///     variable turns the step into a HashJoin; otherwise Product.
///  4. Every conjunct is attached as a Filter at the lowest point where
///     all its range variables are bound (selection pushdown).
///
/// Fails with InvalidArgument if a range's source references a range
/// variable bound later (ranges must be in dependency order).
Result<AlgebraPlan> TranslateToAlgebra(const CalculusQuery& query);

}  // namespace gemstone::stdm

#endif  // GEMSTONE_STDM_TRANSLATE_H_
