#ifndef GEMSTONE_STDM_EXPLAIN_H_
#define GEMSTONE_STDM_EXPLAIN_H_

#include <cstdint>
#include <map>

#include "telemetry/io_attribution.h"

namespace gemstone::stdm {

class PlanNode;

/// Per-operator measurements from one EXPLAIN ANALYZE execution. Times
/// and I/O tallies are *inclusive* (the node plus its subtree); renderers
/// subtract children to show exclusive figures, and input cardinality is
/// the sum of the children's output cardinalities.
struct PlanNodeStats {
  std::uint64_t calls = 0;
  std::uint64_t rows_out = 0;
  std::uint64_t elapsed_ns = 0;
  telemetry::IoTally io;
};

/// Collects PlanNodeStats keyed by operator identity during one plan
/// execution. Not thread-safe: one context per executing query, on the
/// executing thread (which is also what makes the thread-local I/O tally
/// attribution exact).
class ExplainContext {
 public:
  PlanNodeStats& StatsFor(const PlanNode* node) { return stats_[node]; }
  const PlanNodeStats* Find(const PlanNode* node) const {
    auto it = stats_.find(node);
    return it == stats_.end() ? nullptr : &it->second;
  }
  bool empty() const { return stats_.empty(); }

 private:
  std::map<const PlanNode*, PlanNodeStats> stats_;
};

}  // namespace gemstone::stdm

#endif  // GEMSTONE_STDM_EXPLAIN_H_
