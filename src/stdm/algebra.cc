#include "stdm/algebra.h"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gemstone::stdm {

namespace {

std::vector<std::size_t> Union(const std::vector<std::size_t>& a,
                               const std::vector<std::size_t>& b) {
  std::vector<std::size_t> out = a;
  for (std::size_t s : b) {
    bool present = false;
    for (std::size_t t : out) present = present || (t == s);
    if (!present) out.push_back(s);
  }
  return out;
}

std::vector<std::size_t> Intersect(const std::vector<std::size_t>& a,
                                   const std::vector<std::size_t>& b) {
  std::vector<std::size_t> out;
  for (std::size_t s : a) {
    for (std::size_t t : b) {
      if (s == t) {
        out.push_back(s);
        break;
      }
    }
  }
  return out;
}

std::vector<std::size_t> WithSlot(const std::vector<std::size_t>& a,
                                  std::size_t slot) {
  std::vector<std::size_t> out = a;
  out.push_back(slot);
  return out;
}

void Indent(int indent, std::string* out) {
  out->append(static_cast<std::size_t>(indent) * 2, ' ');
}

/// Per-collection cardinality accounting (ROADMAP item 5): each scan
/// publishes the observed member count of its range source as
/// `stdm.cardinality.<source>` and counts executions in
/// `stdm.scans.<source>`. Source spellings carry `!` and friends, so
/// they are sanitized *before* registration — debug builds abort on an
/// invalid spelling reaching the registry.
void NoteScanCardinality(const Term& source, std::size_t members) {
  auto& registry = telemetry::MetricsRegistry::Global();
  const std::string suffix =
      telemetry::SanitizeMetricName(source.ToString());
  registry.GetGauge("stdm.cardinality." + suffix)
      ->Set(static_cast<std::int64_t>(members));
  registry.GetCounter("stdm.scans." + suffix)->Increment();
}

std::string FormatMs(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

Bindings RowEnv(const std::vector<std::string>& vars, const Bindings& free,
                const Row& row, const std::vector<std::size_t>& filled) {
  Bindings env = free;
  for (std::size_t slot : filled) env.Push(vars[slot], &row[slot]);
  return env;
}

// --- PlanNode (measurement + rendering) -------------------------------------

Result<std::vector<Row>> PlanNode::Run(const std::vector<std::string>& vars,
                                       const Bindings& free,
                                       AlgebraStats* stats,
                                       ExplainContext* ctx) const {
  if (ctx == nullptr) return Execute(vars, free, stats, ctx);
  const std::uint64_t start_ns = telemetry::TraceNowNs();
  const telemetry::IoTally io_before = telemetry::ThreadIoTally();
  Result<std::vector<Row>> rows = Execute(vars, free, stats, ctx);
  const telemetry::IoTally io_delta =
      telemetry::IoDelta(io_before, telemetry::ThreadIoTally());
  const std::uint64_t elapsed_ns = telemetry::TraceNowNs() - start_ns;
  PlanNodeStats& node = ctx->StatsFor(this);
  node.calls += 1;
  node.elapsed_ns += elapsed_ns;
  node.io.tracks_read += io_delta.tracks_read;
  node.io.tracks_written += io_delta.tracks_written;
  node.io.seeks += io_delta.seeks;
  if (rows.ok()) node.rows_out += rows.value().size();
  return rows;
}

void PlanNode::Render(int indent, std::string* out,
                      const ExplainContext* ctx) const {
  Indent(indent, out);
  out->append(Label());
  const std::vector<const PlanNode*> kids = children();
  const PlanNodeStats* node = ctx != nullptr ? ctx->Find(this) : nullptr;
  if (node != nullptr) {
    // Input cardinality = sum of child outputs; time and I/O shown are
    // exclusive (this operator minus its subtrees), so the per-line I/O
    // figures sum to the whole execution's device work.
    std::uint64_t rows_in = 0;
    std::uint64_t child_ns = 0;
    telemetry::IoTally child_io;
    for (const PlanNode* kid : kids) {
      if (const PlanNodeStats* k = ctx->Find(kid); k != nullptr) {
        rows_in += k->rows_out;
        child_ns += k->elapsed_ns;
        child_io.tracks_read += k->io.tracks_read;
        child_io.tracks_written += k->io.tracks_written;
        child_io.seeks += k->io.seeks;
      }
    }
    const std::uint64_t excl_ns =
        node->elapsed_ns > child_ns ? node->elapsed_ns - child_ns : 0;
    const telemetry::IoTally excl_io = telemetry::IoDelta(child_io, node->io);
    out->append(" (in=" + std::to_string(rows_in) +
                " out=" + std::to_string(node->rows_out) + " time=" +
                FormatMs(excl_ns) + "ms reads=" +
                std::to_string(excl_io.tracks_read) + " writes=" +
                std::to_string(excl_io.tracks_written) + " seeks=" +
                std::to_string(excl_io.seeks) + ")");
  }
  out->append("\n");
  for (const PlanNode* kid : kids) kid->Render(indent + 1, out, ctx);
}

// --- UnitNode ---------------------------------------------------------------

Result<std::vector<Row>> UnitNode::Execute(const std::vector<std::string>&,
                                           const Bindings&, AlgebraStats*,
                                           ExplainContext*) const {
  return std::vector<Row>{Row(width_)};
}

// --- ScanNode ---------------------------------------------------------------

ScanNode::ScanNode(std::size_t width, std::size_t slot, Term source)
    : width_(width), slot_(slot), source_(std::move(source)), filled_{slot} {}

Result<std::vector<Row>> ScanNode::Execute(const std::vector<std::string>&,
                                           const Bindings& free,
                                           AlgebraStats* stats,
                                           ExplainContext*) const {
  GS_ASSIGN_OR_RETURN(StdmValue source, EvalTerm(source_, free));
  if (!source.IsSet()) {
    return Status::TypeMismatch("scan source is not a set: " +
                                source_.ToString());
  }
  std::vector<Row> rows;
  rows.reserve(source.size());
  for (const StdmValue::Element& element : source.elements()) {
    Row row(width_);
    row[slot_] = element.value;
    rows.push_back(std::move(row));
  }
  if (stats != nullptr) stats->rows_scanned += rows.size();
  NoteScanCardinality(source_, source.size());
  return rows;
}

// --- DependentScanNode ------------------------------------------------------

DependentScanNode::DependentScanNode(std::unique_ptr<PlanNode> child,
                                     std::size_t slot, Term source)
    : child_(std::move(child)),
      slot_(slot),
      source_(std::move(source)),
      filled_(WithSlot(child_->filled_slots(), slot)) {}

Result<std::vector<Row>> DependentScanNode::Execute(
    const std::vector<std::string>& vars, const Bindings& free,
    AlgebraStats* stats, ExplainContext* ctx) const {
  GS_ASSIGN_OR_RETURN(std::vector<Row> input,
                      child_->Run(vars, free, stats, ctx));
  std::vector<Row> rows;
  for (Row& row : input) {
    if (stats != nullptr) ++stats->rows_examined;
    Bindings env = RowEnv(vars, free, row, child_->filled_slots());
    GS_ASSIGN_OR_RETURN(StdmValue source, EvalTerm(source_, env));
    if (!source.IsSet()) {
      return Status::TypeMismatch("dependent scan source is not a set: " +
                                  source_.ToString());
    }
    for (const StdmValue::Element& element : source.elements()) {
      Row extended = row;
      extended[slot_] = element.value;
      rows.push_back(std::move(extended));
    }
  }
  if (stats != nullptr) stats->rows_scanned += rows.size();
  // For a dependent range the observable is total fanout per execution —
  // the join-cardinality input the cost model wants.
  NoteScanCardinality(source_, rows.size());
  return rows;
}

// --- FilterNode -------------------------------------------------------------

FilterNode::FilterNode(std::unique_ptr<PlanNode> child, Predicate predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Result<std::vector<Row>> FilterNode::Execute(
    const std::vector<std::string>& vars, const Bindings& free,
    AlgebraStats* stats, ExplainContext* ctx) const {
  GS_ASSIGN_OR_RETURN(std::vector<Row> input,
                      child_->Run(vars, free, stats, ctx));
  std::vector<Row> rows;
  for (Row& row : input) {
    if (stats != nullptr) ++stats->rows_examined;
    Bindings env = RowEnv(vars, free, row, child_->filled_slots());
    EvalStats sub;
    GS_ASSIGN_OR_RETURN(bool keep, EvalPredicate(predicate_, env, &sub));
    if (stats != nullptr) stats->predicate_evals += sub.predicate_evals;
    if (keep) rows.push_back(std::move(row));
  }
  // Observed selectivity in percent — the distribution the optimizer's
  // future cost model (ROADMAP item 5) reads back out of telemetry.
  if (!input.empty()) {
    static telemetry::Histogram* selectivity =
        telemetry::MetricsRegistry::Global().GetHistogram(
            "stdm.filter_selectivity_pct",
            {1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
    selectivity->Observe(rows.size() * 100 / input.size());
  }
  return rows;
}

// --- HashJoinNode -----------------------------------------------------------

HashJoinNode::HashJoinNode(std::unique_ptr<PlanNode> left,
                           std::unique_ptr<PlanNode> right, Term left_key,
                           Term right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      filled_(Union(left_->filled_slots(), right_->filled_slots())) {}

Result<std::vector<Row>> HashJoinNode::Execute(
    const std::vector<std::string>& vars, const Bindings& free,
    AlgebraStats* stats, ExplainContext* ctx) const {
  GS_ASSIGN_OR_RETURN(std::vector<Row> build_rows,
                      right_->Run(vars, free, stats, ctx));
  // The hash key is the canonical rendering of the evaluated key term;
  // consistent with StdmValue equality for simple values (equi-joins on
  // set-valued keys fall back to a residual equality check below).
  std::unordered_map<std::string, std::vector<const Row*>> table;
  std::vector<StdmValue> build_keys(build_rows.size());
  for (std::size_t i = 0; i < build_rows.size(); ++i) {
    if (stats != nullptr) ++stats->rows_examined;
    Bindings env = RowEnv(vars, free, build_rows[i], right_->filled_slots());
    GS_ASSIGN_OR_RETURN(build_keys[i], EvalTerm(right_key_, env));
    table[build_keys[i].ToString()].push_back(&build_rows[i]);
  }
  GS_ASSIGN_OR_RETURN(std::vector<Row> probe_rows,
                      left_->Run(vars, free, stats, ctx));
  std::vector<Row> rows;
  for (Row& probe : probe_rows) {
    if (stats != nullptr) {
      ++stats->rows_examined;
      ++stats->hash_probes;
    }
    Bindings env = RowEnv(vars, free, probe, left_->filled_slots());
    GS_ASSIGN_OR_RETURN(StdmValue key, EvalTerm(left_key_, env));
    auto it = table.find(key.ToString());
    if (it == table.end()) continue;
    for (const Row* build : it->second) {
      Row merged = probe;
      for (std::size_t slot : right_->filled_slots()) {
        merged[slot] = (*build)[slot];
      }
      rows.push_back(std::move(merged));
    }
  }
  return rows;
}

// --- ProductNode ------------------------------------------------------------

ProductNode::ProductNode(std::unique_ptr<PlanNode> left,
                         std::unique_ptr<PlanNode> right)
    : left_(std::move(left)),
      right_(std::move(right)),
      filled_(Union(left_->filled_slots(), right_->filled_slots())) {}

Result<std::vector<Row>> ProductNode::Execute(
    const std::vector<std::string>& vars, const Bindings& free,
    AlgebraStats* stats, ExplainContext* ctx) const {
  GS_ASSIGN_OR_RETURN(std::vector<Row> left_rows,
                      left_->Run(vars, free, stats, ctx));
  GS_ASSIGN_OR_RETURN(std::vector<Row> right_rows,
                      right_->Run(vars, free, stats, ctx));
  std::vector<Row> rows;
  rows.reserve(left_rows.size() * right_rows.size());
  for (const Row& l : left_rows) {
    for (const Row& r : right_rows) {
      if (stats != nullptr) ++stats->rows_examined;
      Row merged = l;
      for (std::size_t slot : right_->filled_slots()) merged[slot] = r[slot];
      rows.push_back(std::move(merged));
    }
  }
  return rows;
}

// --- UnionNode --------------------------------------------------------------

UnionNode::UnionNode(std::unique_ptr<PlanNode> left,
                     std::unique_ptr<PlanNode> right)
    : left_(std::move(left)),
      right_(std::move(right)),
      filled_(Intersect(left_->filled_slots(), right_->filled_slots())) {}

Result<std::vector<Row>> UnionNode::Execute(
    const std::vector<std::string>& vars, const Bindings& free,
    AlgebraStats* stats, ExplainContext* ctx) const {
  GS_ASSIGN_OR_RETURN(std::vector<Row> rows,
                      left_->Run(vars, free, stats, ctx));
  GS_ASSIGN_OR_RETURN(std::vector<Row> right_rows,
                      right_->Run(vars, free, stats, ctx));
  rows.reserve(rows.size() + right_rows.size());
  for (Row& row : right_rows) rows.push_back(std::move(row));
  return rows;
}

// --- AlgebraPlan ------------------------------------------------------------

namespace {

/// Scoped fold of one plan execution's stat deltas into the process-wide
/// `algebra.*` counters (survives early returns).
class AlgebraStatsFold {
 public:
  explicit AlgebraStatsFold(AlgebraStats* caller)
      : stats_(caller != nullptr ? caller : &local_), before_(*stats_) {}
  ~AlgebraStatsFold() {
    auto& registry = telemetry::MetricsRegistry::Global();
    static telemetry::Counter* plans = registry.GetCounter("algebra.plans");
    static telemetry::Counter* scanned =
        registry.GetCounter("algebra.rows_scanned");
    static telemetry::Counter* examined =
        registry.GetCounter("algebra.rows_examined");
    static telemetry::Counter* probes =
        registry.GetCounter("algebra.hash_probes");
    static telemetry::Counter* evals =
        registry.GetCounter("algebra.predicate_evals");
    plans->Increment();
    scanned->Increment(stats_->rows_scanned - before_.rows_scanned);
    examined->Increment(stats_->rows_examined - before_.rows_examined);
    probes->Increment(stats_->hash_probes - before_.hash_probes);
    evals->Increment(stats_->predicate_evals - before_.predicate_evals);
  }

  AlgebraStats* stats() { return stats_; }

 private:
  AlgebraStats local_;
  AlgebraStats* stats_;
  AlgebraStats before_;
};

}  // namespace

Result<StdmValue> AlgebraPlan::Execute(const Bindings& free,
                                       AlgebraStats* stats,
                                       ExplainContext* ctx) const {
  TELEM_SPAN("algebra.execute");
  AlgebraStatsFold fold(stats);
  stats = fold.stats();
  GS_ASSIGN_OR_RETURN(std::vector<Row> rows,
                      root_->Run(vars_, free, stats, ctx));
  StdmValue result = StdmValue::Set();
  std::unordered_set<std::string> seen;
  for (const Row& row : rows) {
    Bindings env = RowEnv(vars_, free, row, root_->filled_slots());
    StdmValue tuple = StdmValue::Set();
    for (const auto& [label, term] : target_) {
      GS_ASSIGN_OR_RETURN(StdmValue v, EvalTerm(term, env));
      GS_RETURN_IF_ERROR(tuple.Put(label, std::move(v)));
    }
    const std::string key = tuple.ToString();
    if (seen.insert(key).second) result.Add(std::move(tuple));
  }
  return result;
}

std::string AlgebraPlan::ToString(const ExplainContext* ctx) const {
  std::string out = "Project[";
  for (std::size_t i = 0; i < target_.size(); ++i) {
    if (i != 0) out += ", ";
    out += target_[i].first;
  }
  out += "]\n";
  root_->Render(1, &out, ctx);
  return out;
}

}  // namespace gemstone::stdm
