#ifndef GEMSTONE_STDM_STDM_VALUE_H_
#define GEMSTONE_STDM_STDM_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/result.h"
#include "core/status.h"

namespace gemstone::stdm {

/// The Set-Theoretic Data Model (§5.1), standalone: "labeled sets of
/// heterogeneous values, which themselves can be sets or simple values."
///
/// An StdmValue is either a simple value (nil / boolean / integer / float /
/// string) or a set of *elements*, each an element-name/value pair; "no two
/// elements in a set may have the same element name", and unlabeled members
/// receive generated aliases. STDM deliberately has **no entity identity**
/// (§5.4): sets are trees, so StdmValue is a plain value type with deep
/// copies and structural equality — exactly the deficiency GSDM fixes.
struct StdmElement;

class StdmValue {
 public:
  enum class Kind : std::uint8_t {
    kNil = 0,
    kBoolean,
    kInteger,
    kFloat,
    kString,
    kSet,
  };

  /// One labeled element of a set (defined after the class; it embeds an
  /// StdmValue by value).
  using Element = StdmElement;

  /// Default-constructed value is nil.
  StdmValue() = default;

  static StdmValue Nil() { return StdmValue(); }
  static StdmValue Boolean(bool b);
  static StdmValue Integer(std::int64_t i);
  static StdmValue Float(double d);
  static StdmValue String(std::string s);
  /// An empty set.
  static StdmValue Set();
  /// A set of unlabeled simple members, e.g. {'Nathen', 'Roberts'}.
  static StdmValue SetOf(std::vector<StdmValue> members);

  Kind kind() const;
  bool IsNil() const { return kind() == Kind::kNil; }
  bool IsSet() const { return kind() == Kind::kSet; }
  bool IsSimple() const { return !IsSet(); }
  bool IsNumber() const {
    return kind() == Kind::kInteger || kind() == Kind::kFloat;
  }

  bool boolean() const { return std::get<bool>(repr_); }
  std::int64_t integer() const { return std::get<std::int64_t>(repr_); }
  double real() const { return std::get<double>(repr_); }
  const std::string& string() const { return std::get<std::string>(repr_); }
  double AsDouble() const {
    return kind() == Kind::kInteger ? static_cast<double>(integer()) : real();
  }

  // --- Set operations (valid only when IsSet()) -----------------------------

  /// Adds element `name` -> `value`; AlreadyExists if the name is taken.
  Status Put(std::string name, StdmValue value);

  /// Adds an unlabeled member under a fresh alias ("_1", "_2", ...);
  /// returns the alias chosen.
  std::string Add(StdmValue value);

  /// Replaces the value of an existing element, or creates it.
  void PutOrReplace(std::string name, StdmValue value);

  /// Removes an element by name (true if it existed). Note: plain STDM has
  /// destructive delete; history arrives only with the temporal extension,
  /// which lives in the GSDM object layer.
  bool Remove(std::string_view name);

  /// The element value for `name`, nullptr if absent (or not a set).
  const StdmValue* Get(std::string_view name) const;
  StdmValue* GetMutable(std::string_view name);

  const std::vector<Element>& elements() const;
  std::size_t size() const;

  /// Membership by structural equality: v ∈ this.
  bool Contains(const StdmValue& v) const;

  /// this ⊆ other (both must be sets), by structural equality of members.
  bool SubsetOf(const StdmValue& other) const;

  /// Structural equality. Sets compare as *labeled* sets: same element
  /// names with equal values; alias-named members compare as an unordered
  /// bag (the alias spelling is not semantically meaningful).
  friend bool operator==(const StdmValue& a, const StdmValue& b);
  friend bool operator!=(const StdmValue& a, const StdmValue& b) {
    return !(a == b);
  }

  /// §5.1 notation: {Name: 'Sales', Managers: {'Nathen', 'Roberts'}}.
  /// Aliased element names are elided.
  std::string ToString() const;

 private:
  struct SetRep;  // defined in stdm_value.cc

  using Repr = std::variant<std::monostate, bool, std::int64_t, double,
                            std::string, std::shared_ptr<SetRep>>;

  explicit StdmValue(Repr repr) : repr_(std::move(repr)) {}

  /// Sets use copy-on-write: mutation through a shared rep clones first.
  SetRep& MutableSet();
  const SetRep* set_rep() const;

  Repr repr_;
};

/// One labeled element of a set.
struct StdmElement {
  std::string name;
  StdmValue value;
  bool alias = false;  // name was generated, not user-supplied
};

}  // namespace gemstone::stdm

#endif  // GEMSTONE_STDM_STDM_VALUE_H_
