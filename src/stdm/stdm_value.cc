#include "stdm/stdm_value.h"

#include <algorithm>

namespace gemstone::stdm {

struct StdmValue::SetRep {
  std::vector<Element> elements;
  std::uint64_t next_alias = 1;
};

StdmValue StdmValue::Boolean(bool b) { return StdmValue(Repr(b)); }
StdmValue StdmValue::Integer(std::int64_t i) { return StdmValue(Repr(i)); }
StdmValue StdmValue::Float(double d) { return StdmValue(Repr(d)); }
StdmValue StdmValue::String(std::string s) {
  return StdmValue(Repr(std::move(s)));
}
StdmValue StdmValue::Set() {
  return StdmValue(Repr(std::make_shared<SetRep>()));
}

StdmValue StdmValue::SetOf(std::vector<StdmValue> members) {
  StdmValue set = Set();
  for (StdmValue& m : members) set.Add(std::move(m));
  return set;
}

StdmValue::Kind StdmValue::kind() const {
  return static_cast<Kind>(repr_.index());
}

StdmValue::SetRep& StdmValue::MutableSet() {
  auto& rep = std::get<std::shared_ptr<SetRep>>(repr_);
  if (rep.use_count() > 1) rep = std::make_shared<SetRep>(*rep);
  return *rep;
}

const StdmValue::SetRep* StdmValue::set_rep() const {
  if (!IsSet()) return nullptr;
  return std::get<std::shared_ptr<SetRep>>(repr_).get();
}

Status StdmValue::Put(std::string name, StdmValue value) {
  if (!IsSet()) return Status::TypeMismatch("Put on non-set STDM value");
  if (Get(name) != nullptr) {
    return Status::AlreadyExists("duplicate element name: " + name);
  }
  MutableSet().elements.push_back(
      Element{std::move(name), std::move(value), false});
  return Status::OK();
}

std::string StdmValue::Add(StdmValue value) {
  SetRep& rep = MutableSet();
  std::string alias;
  do {
    alias = "_" + std::to_string(rep.next_alias++);
  } while (Get(alias) != nullptr);
  rep.elements.push_back(Element{alias, std::move(value), true});
  return alias;
}

void StdmValue::PutOrReplace(std::string name, StdmValue value) {
  if (StdmValue* existing = GetMutable(name)) {
    *existing = std::move(value);
    return;
  }
  MutableSet().elements.push_back(
      Element{std::move(name), std::move(value), false});
}

bool StdmValue::Remove(std::string_view name) {
  if (!IsSet()) return false;
  SetRep& rep = MutableSet();
  auto it = std::find_if(rep.elements.begin(), rep.elements.end(),
                         [&](const Element& e) { return e.name == name; });
  if (it == rep.elements.end()) return false;
  rep.elements.erase(it);
  return true;
}

const StdmValue* StdmValue::Get(std::string_view name) const {
  const SetRep* rep = set_rep();
  if (rep == nullptr) return nullptr;
  for (const Element& e : rep->elements) {
    if (e.name == name) return &e.value;
  }
  return nullptr;
}

StdmValue* StdmValue::GetMutable(std::string_view name) {
  if (!IsSet()) return nullptr;
  for (Element& e : MutableSet().elements) {
    if (e.name == name) return &e.value;
  }
  return nullptr;
}

namespace {
const std::vector<StdmValue::Element>& EmptyElements() {
  static const auto* kEmpty = new std::vector<StdmValue::Element>();
  return *kEmpty;
}
}  // namespace

const std::vector<StdmValue::Element>& StdmValue::elements() const {
  const SetRep* rep = set_rep();
  return rep ? rep->elements : EmptyElements();
}

std::size_t StdmValue::size() const { return elements().size(); }

bool StdmValue::Contains(const StdmValue& v) const {
  for (const Element& e : elements()) {
    if (e.value == v) return true;
  }
  return false;
}

bool StdmValue::SubsetOf(const StdmValue& other) const {
  if (!IsSet() || !other.IsSet()) return false;
  for (const Element& e : elements()) {
    if (!other.Contains(e.value)) return false;
  }
  return true;
}

bool operator==(const StdmValue& a, const StdmValue& b) {
  if (a.IsNumber() && b.IsNumber()) return a.AsDouble() == b.AsDouble();
  if (a.kind() != b.kind()) return false;
  if (!a.IsSet()) return a.repr_ == b.repr_;

  const auto& ea = a.elements();
  const auto& eb = b.elements();
  if (ea.size() != eb.size()) return false;
  // Labeled elements must match by name; aliased ones as an unordered bag.
  std::vector<const StdmValue*> alias_b;
  for (const auto& e : eb) {
    if (e.alias) alias_b.push_back(&e.value);
  }
  std::vector<bool> used(alias_b.size(), false);
  for (const auto& e : ea) {
    if (!e.alias) {
      const StdmValue* other = b.Get(e.name);
      if (other == nullptr) return false;
      // A labeled element in `a` must be labeled in `b` too.
      bool other_alias = true;
      for (const auto& be : eb) {
        if (be.name == e.name) {
          other_alias = be.alias;
          break;
        }
      }
      if (other_alias) return false;
      if (!(e.value == *other)) return false;
    } else {
      bool found = false;
      for (std::size_t i = 0; i < alias_b.size(); ++i) {
        if (!used[i] && e.value == *alias_b[i]) {
          used[i] = true;
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

std::string StdmValue::ToString() const {
  switch (kind()) {
    case Kind::kNil:
      return "nil";
    case Kind::kBoolean:
      return boolean() ? "true" : "false";
    case Kind::kInteger:
      return std::to_string(integer());
    case Kind::kFloat: {
      std::string s = std::to_string(real());
      return s;
    }
    case Kind::kString:
      return "'" + string() + "'";
    case Kind::kSet: {
      std::string out = "{";
      bool first = true;
      for (const Element& e : elements()) {
        if (!first) out += ", ";
        first = false;
        if (!e.alias) out += e.name + ": ";
        out += e.value.ToString();
      }
      return out + "}";
    }
  }
  return "?";
}

}  // namespace gemstone::stdm
