#include "stdm/path.h"

#include <cctype>

namespace gemstone::stdm {

namespace {

// Names that are not bare identifiers or integers re-quote on rendering.
bool NeedsQuoting(const std::string& name) {
  if (name.empty()) return true;
  bool all_digits = true;
  for (char c : name) {
    all_digits = all_digits && std::isdigit(static_cast<unsigned char>(c));
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return true;
  }
  // Identifiers must not start with a digit unless fully numeric.
  if (!all_digits && std::isdigit(static_cast<unsigned char>(name[0]))) {
    return true;
  }
  return false;
}

}  // namespace

std::string Path::ToString() const {
  std::string out = root;
  for (const PathStep& step : steps) {
    out += "!";
    out += NeedsQuoting(step.name) ? "'" + step.name + "'" : step.name;
    if (step.at.has_value()) out += "@" + std::to_string(*step.at);
  }
  return out;
}

namespace {

class PathLexer {
 public:
  explicit PathLexer(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// An identifier, quoted name, or bare integer.
  Result<std::string> Component() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("path ends where a name was expected");
    }
    char c = text_[pos_];
    if (c == '\'') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != '\'') out += text_[pos_++];
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated quoted path component");
      }
      ++pos_;  // closing quote
      return out;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string out;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        out += text_[pos_++];
      }
      return out;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string out;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        out += text_[pos_++];
      }
      return out;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in path");
  }

  Result<TxnTime> Time() {
    SkipSpace();
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Status::InvalidArgument("@ must be followed by an integer time");
    }
    TxnTime t = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      t = t * 10 + static_cast<TxnTime>(text_[pos_++] - '0');
    }
    return t;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Path> ParsePath(std::string_view text) {
  PathLexer lex(text);
  Path path;
  GS_ASSIGN_OR_RETURN(path.root, lex.Component());
  while (lex.Consume('!')) {
    PathStep step;
    GS_ASSIGN_OR_RETURN(step.name, lex.Component());
    if (lex.Consume('@')) {
      GS_ASSIGN_OR_RETURN(TxnTime t, lex.Time());
      step.at = t;
    }
    path.steps.push_back(std::move(step));
  }
  if (!lex.AtEnd()) {
    return Status::InvalidArgument("trailing characters after path: " +
                                   std::string(text));
  }
  return path;
}

Result<StdmValue> EvalPath(const StdmValue& root, const Path& path) {
  const StdmValue* current = &root;
  for (const PathStep& step : path.steps) {
    if (step.at.has_value()) {
      return Status::InvalidArgument(
          "time-qualified path (@" + std::to_string(*step.at) +
          ") is not meaningful in plain STDM; use the GSDM object layer");
    }
    if (!current->IsSet()) {
      return Status::TypeMismatch("path descends into simple value at !" +
                                  step.name);
    }
    const StdmValue* next = current->Get(step.name);
    if (next == nullptr) {
      return Status::NotFound("no element '" + step.name + "' in " +
                              path.ToString());
    }
    current = next;
  }
  return *current;
}

Status AssignPath(StdmValue* root, const Path& path, StdmValue value) {
  if (path.steps.empty()) {
    return Status::InvalidArgument("cannot assign to the path root");
  }
  StdmValue* current = root;
  for (std::size_t i = 0; i + 1 < path.steps.size(); ++i) {
    const PathStep& step = path.steps[i];
    if (step.at.has_value()) {
      return Status::InvalidArgument("cannot assign through @time");
    }
    if (!current->IsSet()) {
      return Status::TypeMismatch("path descends into simple value at !" +
                                  step.name);
    }
    StdmValue* next = current->GetMutable(step.name);
    if (next == nullptr) {
      return Status::NotFound("no element '" + step.name + "' in " +
                              path.ToString());
    }
    current = next;
  }
  const PathStep& last = path.steps.back();
  if (last.at.has_value()) {
    return Status::InvalidArgument("cannot assign into the past");
  }
  if (!current->IsSet()) {
    return Status::TypeMismatch("assignment target parent is not a set");
  }
  current->PutOrReplace(last.name, std::move(value));
  return Status::OK();
}

}  // namespace gemstone::stdm
