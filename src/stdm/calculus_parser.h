#ifndef GEMSTONE_STDM_CALCULUS_PARSER_H_
#define GEMSTONE_STDM_CALCULUS_PARSER_H_

#include <string_view>

#include "core/result.h"
#include "stdm/calculus.h"

namespace gemstone::stdm {

/// Parses the paper's textual set-calculus notation (§5.1) into a
/// CalculusQuery. The accepted grammar mirrors the paper's example:
///
///   {{Emp: e, Mgr: m} where
///     (e in X!Employees) and
///     (d in X!Departments) [(m in d!Managers) and
///     (d!Name in e!Depts) and (e!Salary > 0.10 * d!Budget)]}
///
/// query      := '{' target 'where' rangeList [ '[' condition ']' ] '}'
/// target     := '{' label ':' term (',' label ':' term)* '}'
/// rangeList  := range ('and' range)*   — plus ranges inside the bracket
/// range      := '(' var 'in' term ')'
/// condition  := disjunct ('or' disjunct)*
/// disjunct   := conjunct ('and' conjunct)*
/// conjunct   := '(' condition ')' | 'not' conjunct | comparison
/// comparison := term op term       op ∈ { =, !=, <, <=, >, >=, in,
///                                         subsetOf }
/// term       := factor (('+'|'-') factor)*
/// factor     := atom (('*'|'/') atom)*
/// atom       := number | 'string' | true | false | nil
///             | var('!' name)*      — a variable with a path suffix
///             | '(' term ')'
///
/// The Unicode '∈' is accepted as a synonym for 'in'. Inside the bracket,
/// a membership whose left side is an as-yet-unbound bare variable is
/// promoted to a correlated *range* (the paper binds `m ∈ d!Managers`
/// that way); every other membership stays a condition.
Result<CalculusQuery> ParseCalculus(std::string_view text);

}  // namespace gemstone::stdm

#endif  // GEMSTONE_STDM_CALCULUS_PARSER_H_
