#include "stdm/translate.h"

#include <algorithm>
#include <unordered_set>

namespace gemstone::stdm {

namespace {

// Splits nested ANDs into a flat conjunct list; kTrue disappears.
void FlattenConjuncts(const Predicate& p, std::vector<Predicate>* out) {
  if (p.kind == Predicate::Kind::kTrue) return;
  if (p.kind == Predicate::Kind::kAnd) {
    for (const Predicate& child : p.children) FlattenConjuncts(child, out);
    return;
  }
  out->push_back(p);
}

// Range variables referenced by `term`, restricted to `range_vars`.
std::unordered_set<std::string> RangeVarsOfTerm(
    const Term& term, const std::unordered_set<std::string>& range_vars) {
  std::vector<std::string> vars;
  term.CollectVars(&vars);
  std::unordered_set<std::string> out;
  for (std::string& v : vars) {
    if (range_vars.count(v) != 0) out.insert(std::move(v));
  }
  return out;
}

std::unordered_set<std::string> RangeVarsOfPredicate(
    const Predicate& pred, const std::unordered_set<std::string>& range_vars) {
  std::vector<std::string> vars;
  pred.CollectVars(&vars);
  std::unordered_set<std::string> out;
  for (std::string& v : vars) {
    if (range_vars.count(v) != 0) out.insert(std::move(v));
  }
  return out;
}

bool IsSubset(const std::unordered_set<std::string>& a,
              const std::unordered_set<std::string>& b) {
  return std::all_of(a.begin(), a.end(),
                     [&](const std::string& v) { return b.count(v) != 0; });
}

// Builds the operator tree for the query's ranges under one conjunctive
// condition: scans joined left-deep (equi-join where a usable conjunct
// exists, product otherwise) with selections pushed as low as their
// variable sets allow.
Result<std::unique_ptr<PlanNode>> BuildBranch(
    const CalculusQuery& query, const Predicate& condition,
    const std::unordered_set<std::string>& range_vars) {
  const std::size_t width = query.ranges.size();
  std::vector<Predicate> conjuncts;
  FlattenConjuncts(condition, &conjuncts);
  std::vector<bool> used(conjuncts.size(), false);

  std::unique_ptr<PlanNode> plan;
  std::unordered_set<std::string> bound;

  for (std::size_t i = 0; i < query.ranges.size(); ++i) {
    const Range& range = query.ranges[i];
    const auto deps = RangeVarsOfTerm(range.source, range_vars);
    if (!IsSubset(deps, bound)) {
      return Status::InvalidArgument(
          "range source for '" + range.var +
          "' references a variable bound later; reorder ranges");
    }

    if (!deps.empty()) {
      // Correlated range: unnest over the plan so far.
      if (plan == nullptr) plan = std::make_unique<UnitNode>(width);
      plan = std::make_unique<DependentScanNode>(std::move(plan), i,
                                                 range.source);
    } else if (plan == nullptr) {
      plan = std::make_unique<ScanNode>(width, i, range.source);
    } else {
      // Independent scan joining an existing plan: look for an equi-join
      // conjunct `bound-term = new-var-term` (either orientation).
      auto right = std::make_unique<ScanNode>(width, i, range.source);
      std::unique_ptr<PlanNode> joined;
      for (std::size_t c = 0; c < conjuncts.size() && joined == nullptr; ++c) {
        if (used[c]) continue;
        const Predicate& p = conjuncts[c];
        const bool usable_kinds =
            (p.kind == Predicate::Kind::kCompare &&
             p.cmp == Predicate::CmpOp::kEq) ||
            p.kind == Predicate::Kind::kMember;
        if (!usable_kinds || p.kind == Predicate::Kind::kMember) {
          // Membership could become a set-membership join; we keep it as
          // a filter (hash keys must be scalar-equality based).
          continue;
        }
        const auto lv = RangeVarsOfTerm(*p.lhs, range_vars);
        const auto rv = RangeVarsOfTerm(*p.rhs, range_vars);
        const std::unordered_set<std::string> only_new = {range.var};
        if (lv == only_new && IsSubset(rv, bound) && !rv.empty()) {
          joined = std::make_unique<HashJoinNode>(std::move(plan),
                                                  std::move(right), *p.rhs,
                                                  *p.lhs);
          used[c] = true;
        } else if (rv == only_new && IsSubset(lv, bound) && !lv.empty()) {
          joined = std::make_unique<HashJoinNode>(std::move(plan),
                                                  std::move(right), *p.lhs,
                                                  *p.rhs);
          used[c] = true;
        }
      }
      plan = joined != nullptr
                 ? std::move(joined)
                 : std::make_unique<ProductNode>(std::move(plan),
                                                 std::move(right));
    }
    bound.insert(range.var);

    // Selection pushdown: attach every conjunct whose variables are now
    // all bound.
    for (std::size_t c = 0; c < conjuncts.size(); ++c) {
      if (used[c]) continue;
      const auto pv = RangeVarsOfPredicate(conjuncts[c], range_vars);
      if (IsSubset(pv, bound)) {
        plan = std::make_unique<FilterNode>(std::move(plan), conjuncts[c]);
        used[c] = true;
      }
    }
  }

  if (plan == nullptr) plan = std::make_unique<UnitNode>(width);
  // Conjuncts referencing no range variables at all (constant or
  // free-variable-only conditions) attach at the top.
  for (std::size_t c = 0; c < conjuncts.size(); ++c) {
    if (!used[c]) {
      plan = std::make_unique<FilterNode>(std::move(plan), conjuncts[c]);
      used[c] = true;
    }
  }
  return plan;
}

}  // namespace

Result<AlgebraPlan> TranslateToAlgebra(const CalculusQuery& query) {
  std::vector<std::string> vars;
  std::unordered_set<std::string> range_vars;
  for (const Range& r : query.ranges) {
    if (range_vars.count(r.var) != 0) {
      return Status::InvalidArgument("duplicate range variable: " + r.var);
    }
    vars.push_back(r.var);
    range_vars.insert(r.var);
  }

  // A top-level disjunction becomes a union of per-disjunct branches, each
  // planned independently so selection pushdown and join selection see a
  // purely conjunctive condition. Duplicates across branches collapse at
  // projection, matching the calculus evaluator's set semantics.
  std::unique_ptr<PlanNode> plan;
  if (query.condition.kind == Predicate::Kind::kOr) {
    for (const Predicate& disjunct : query.condition.children) {
      GS_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> branch,
                          BuildBranch(query, disjunct, range_vars));
      plan = plan == nullptr ? std::move(branch)
                             : std::make_unique<UnionNode>(std::move(plan),
                                                           std::move(branch));
    }
    if (plan == nullptr) {
      plan = std::make_unique<UnitNode>(query.ranges.size());
    }
  } else {
    GS_ASSIGN_OR_RETURN(plan, BuildBranch(query, query.condition, range_vars));
  }

  return AlgebraPlan(std::move(vars), std::move(plan), query.target);
}

}  // namespace gemstone::stdm
