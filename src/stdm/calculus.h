#ifndef GEMSTONE_STDM_CALCULUS_H_
#define GEMSTONE_STDM_CALCULUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/result.h"
#include "stdm/stdm_value.h"

namespace gemstone::stdm {

/// A term of the set calculus: a constant, a variable with an optional
/// path suffix (`e!Salary`), or an arithmetic combination
/// (`0.10 * d!Budget`). §5.2 highlights that "variables can be bound to
/// functions of other variables, rather than only to fixed database
/// objects" — terms are those functions.
struct Term {
  enum class Kind : std::uint8_t { kConst, kVarPath, kArith };
  enum class ArithOp : std::uint8_t { kAdd, kSub, kMul, kDiv };

  Kind kind = Kind::kConst;
  StdmValue constant;                      // kConst
  std::string var;                         // kVarPath
  std::vector<std::string> path;           // kVarPath: !-steps after var
  ArithOp op = ArithOp::kAdd;              // kArith
  std::shared_ptr<const Term> lhs, rhs;    // kArith

  static Term Const(StdmValue v);
  /// `var` alone, e.g. the `e` in the target list.
  static Term Var(std::string var);
  /// `var!a!b`, e.g. `d!Managers`.
  static Term VarPath(std::string var, std::vector<std::string> path);
  static Term Arith(ArithOp op, Term lhs, Term rhs);
  static Term Add(Term a, Term b) { return Arith(ArithOp::kAdd, std::move(a), std::move(b)); }
  static Term Sub(Term a, Term b) { return Arith(ArithOp::kSub, std::move(a), std::move(b)); }
  static Term Mul(Term a, Term b) { return Arith(ArithOp::kMul, std::move(a), std::move(b)); }
  static Term Div(Term a, Term b) { return Arith(ArithOp::kDiv, std::move(a), std::move(b)); }

  /// Range variables mentioned (free variables of the enclosing query are
  /// included too; callers filter).
  void CollectVars(std::vector<std::string>* out) const;

  std::string ToString() const;
};

/// A predicate of the set calculus: comparisons, membership (∈), subset
/// (⊆) and boolean connectives.
struct Predicate {
  enum class Kind : std::uint8_t {
    kTrue,
    kCompare,
    kMember,
    kSubset,
    kAnd,
    kOr,
    kNot,
  };
  enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

  Kind kind = Kind::kTrue;
  CmpOp cmp = CmpOp::kEq;
  std::shared_ptr<const Term> lhs, rhs;  // kCompare / kMember / kSubset
  std::vector<Predicate> children;       // kAnd / kOr / kNot

  static Predicate True();
  static Predicate Compare(CmpOp op, Term lhs, Term rhs);
  static Predicate Eq(Term a, Term b) { return Compare(CmpOp::kEq, std::move(a), std::move(b)); }
  static Predicate Ne(Term a, Term b) { return Compare(CmpOp::kNe, std::move(a), std::move(b)); }
  static Predicate Lt(Term a, Term b) { return Compare(CmpOp::kLt, std::move(a), std::move(b)); }
  static Predicate Le(Term a, Term b) { return Compare(CmpOp::kLe, std::move(a), std::move(b)); }
  static Predicate Gt(Term a, Term b) { return Compare(CmpOp::kGt, std::move(a), std::move(b)); }
  static Predicate Ge(Term a, Term b) { return Compare(CmpOp::kGe, std::move(a), std::move(b)); }
  /// element ∈ set.
  static Predicate Member(Term element, Term set);
  /// a ⊆ b (§5.2 notes this needs two quantifiers in relational calculus;
  /// here it is primitive).
  static Predicate Subset(Term a, Term b);
  static Predicate And(std::vector<Predicate> ps);
  static Predicate Or(std::vector<Predicate> ps);
  static Predicate Not(Predicate p);

  void CollectVars(std::vector<std::string>* out) const;
  std::string ToString() const;
};

/// A range binding `var ∈ source`: `var` iterates over the member values
/// of the set denoted by `source`. Sources may reference earlier range
/// variables (correlated ranges, e.g. `m ∈ d!Managers`).
struct Range {
  std::string var;
  Term source;
};

/// A full set-calculus query (§5.1):
///   { {Emp: e, Mgr: m} where (e ∈ X!Employees) and ... [condition] }
struct CalculusQuery {
  /// Result-tuple constructor: element name -> term.
  std::vector<std::pair<std::string, Term>> target;
  /// Range bindings, in dependency order.
  std::vector<Range> ranges;
  Predicate condition = Predicate::True();

  std::string ToString() const;
};

/// Variable environment for term/predicate evaluation. Lookup is by most
/// recent binding; free variables (the database roots) sit at the bottom.
class Bindings {
 public:
  void Push(std::string name, const StdmValue* value) {
    frames_.emplace_back(std::move(name), value);
  }
  void Pop() { frames_.pop_back(); }
  const StdmValue* Lookup(std::string_view name) const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::pair<std::string, const StdmValue*>> frames_;
};

/// Counters exposed by both evaluators so tests and benches can compare
/// work done (tuples examined is the paper's implicit cost model for
/// "more access planning by the database system").
struct EvalStats {
  std::uint64_t tuples_examined = 0;
  std::uint64_t predicate_evals = 0;
};

/// Evaluates a term under `env`.
Result<StdmValue> EvalTerm(const Term& term, const Bindings& env);

/// Evaluates a predicate under `env`.
Result<bool> EvalPredicate(const Predicate& pred, const Bindings& env,
                           EvalStats* stats = nullptr);

/// Reference (naive) semantics: nested loops over ranges in order, testing
/// the full condition on every combination. The result is a set of labeled
/// tuples (duplicates collapse). `free` must bind every free variable the
/// query mentions (e.g. "X" -> the database).
Result<StdmValue> EvaluateCalculus(const CalculusQuery& query,
                                   const Bindings& free,
                                   EvalStats* stats = nullptr);

}  // namespace gemstone::stdm

#endif  // GEMSTONE_STDM_CALCULUS_H_
