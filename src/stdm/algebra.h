#ifndef GEMSTONE_STDM_ALGEBRA_H_
#define GEMSTONE_STDM_ALGEBRA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/result.h"
#include "stdm/calculus.h"
#include "stdm/explain.h"
#include "stdm/stdm_value.h"

namespace gemstone::stdm {

/// Work counters for algebra execution; comparable against the naive
/// calculus evaluator's EvalStats to demonstrate §5.2's claim that the
/// declarative form "allows much more access planning by the database
/// system than with an equivalent query specified procedurally".
struct AlgebraStats {
  std::uint64_t rows_scanned = 0;    // rows emitted by scans
  std::uint64_t rows_examined = 0;   // rows entering filters / joins
  std::uint64_t hash_probes = 0;
  std::uint64_t predicate_evals = 0;
};

/// A partially-bound result row: one value slot per range variable of the
/// originating query; slots a node has not filled yet hold nil.
using Row = std::vector<StdmValue>;

/// Base of the physical operator tree. Operators materialize their output
/// (sets here are CoW, so rows are cheap to copy).
///
/// Entry point is Run(): with a null ExplainContext it is exactly
/// Execute(); with one, it brackets Execute() with a clock read and a
/// thread-local I/O tally snapshot, attributing elapsed time, device
/// work, and output cardinality to this operator (EXPLAIN ANALYZE).
/// Operators recurse through their children via Run() so the context
/// sees every node.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  /// Executes the subtree. `vars` maps slot -> variable name; `free` binds
  /// the query's free variables (database roots). Measured when `ctx` is
  /// non-null.
  Result<std::vector<Row>> Run(const std::vector<std::string>& vars,
                               const Bindings& free, AlgebraStats* stats,
                               ExplainContext* ctx) const;

  /// Slots guaranteed filled in this node's output rows.
  virtual const std::vector<std::size_t>& filled_slots() const = 0;

  /// One-line operator description, e.g. "Scan[d!Employees]".
  virtual std::string Label() const = 0;

  /// Child operators, left to right (empty for leaves).
  virtual std::vector<const PlanNode*> children() const { return {}; }

  /// Indented operator-tree rendering for tests and EXPLAIN output. With
  /// `ctx`, every line is annotated with that execution's measurements
  /// (EXPLAIN ANALYZE): in/out cardinalities, exclusive time, and the
  /// operator's own attributed track reads/writes/seeks.
  void Render(int indent, std::string* out,
              const ExplainContext* ctx = nullptr) const;

  /// The unmeasured execution; operators call children via Run(). Public
  /// so hand-assembled plans and tests can drive a subtree directly.
  virtual Result<std::vector<Row>> Execute(
      const std::vector<std::string>& vars, const Bindings& free,
      AlgebraStats* stats, ExplainContext* ctx) const = 0;
};

/// Emits a single all-nil row; the identity for the first join step.
class UnitNode : public PlanNode {
 public:
  explicit UnitNode(std::size_t width) : width_(width) {}
  Result<std::vector<Row>> Execute(const std::vector<std::string>& vars,
                                   const Bindings& free, AlgebraStats* stats,
                                   ExplainContext* ctx) const override;
  const std::vector<std::size_t>& filled_slots() const override {
    return filled_;
  }
  std::string Label() const override { return "Unit"; }

 private:
  std::size_t width_;
  std::vector<std::size_t> filled_;
};

/// Enumerates the members of an *independent* range source (one whose
/// term references only free variables), filling `slot`.
class ScanNode : public PlanNode {
 public:
  ScanNode(std::size_t width, std::size_t slot, Term source);
  Result<std::vector<Row>> Execute(const std::vector<std::string>& vars,
                                   const Bindings& free, AlgebraStats* stats,
                                   ExplainContext* ctx) const override;
  const std::vector<std::size_t>& filled_slots() const override {
    return filled_;
  }
  std::string Label() const override {
    return "Scan[" + source_.ToString() + "]";
  }

  std::size_t slot() const { return slot_; }
  const Term& source() const { return source_; }

 private:
  std::size_t width_;
  std::size_t slot_;
  Term source_;
  std::vector<std::size_t> filled_;
};

/// Correlated range (`m ∈ d!Managers`): for every input row, evaluates the
/// source term under that row's bindings and emits one extended row per
/// member. The algebra realization of calculus variables "bound to
/// functions of other variables" (§5.2).
class DependentScanNode : public PlanNode {
 public:
  DependentScanNode(std::unique_ptr<PlanNode> child, std::size_t slot,
                    Term source);
  Result<std::vector<Row>> Execute(const std::vector<std::string>& vars,
                                   const Bindings& free, AlgebraStats* stats,
                                   ExplainContext* ctx) const override;
  const std::vector<std::size_t>& filled_slots() const override {
    return filled_;
  }
  std::string Label() const override {
    return "DependentScan[" + source_.ToString() + "]";
  }
  std::vector<const PlanNode*> children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<PlanNode> child_;
  std::size_t slot_;
  Term source_;
  std::vector<std::size_t> filled_;
};

/// Retains rows satisfying `predicate` (selection, pushed as low as its
/// variable set allows by the translator).
class FilterNode : public PlanNode {
 public:
  FilterNode(std::unique_ptr<PlanNode> child, Predicate predicate);
  Result<std::vector<Row>> Execute(const std::vector<std::string>& vars,
                                   const Bindings& free, AlgebraStats* stats,
                                   ExplainContext* ctx) const override;
  const std::vector<std::size_t>& filled_slots() const override {
    return child_->filled_slots();
  }
  std::string Label() const override {
    return "Filter[" + predicate_.ToString() + "]";
  }
  std::vector<const PlanNode*> children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<PlanNode> child_;
  Predicate predicate_;
};

/// Equi-join: builds a hash table over `right` keyed by `right_key`,
/// probes with `left_key` for each left row, merging filled slots.
class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(std::unique_ptr<PlanNode> left, std::unique_ptr<PlanNode> right,
               Term left_key, Term right_key);
  Result<std::vector<Row>> Execute(const std::vector<std::string>& vars,
                                   const Bindings& free, AlgebraStats* stats,
                                   ExplainContext* ctx) const override;
  const std::vector<std::size_t>& filled_slots() const override {
    return filled_;
  }
  std::string Label() const override {
    return "HashJoin[" + left_key_.ToString() + " = " + right_key_.ToString() +
           "]";
  }
  std::vector<const PlanNode*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  std::unique_ptr<PlanNode> left_, right_;
  Term left_key_, right_key_;
  std::vector<std::size_t> filled_;
};

/// Cross product (the fallback when no equi-join key exists).
class ProductNode : public PlanNode {
 public:
  ProductNode(std::unique_ptr<PlanNode> left, std::unique_ptr<PlanNode> right);
  Result<std::vector<Row>> Execute(const std::vector<std::string>& vars,
                                   const Bindings& free, AlgebraStats* stats,
                                   ExplainContext* ctx) const override;
  const std::vector<std::size_t>& filled_slots() const override {
    return filled_;
  }
  std::string Label() const override { return "Product"; }
  std::vector<const PlanNode*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  std::unique_ptr<PlanNode> left_, right_;
  std::vector<std::size_t> filled_;
};

/// Set union of two subplans over the same variable space: emits every
/// left row then every right row (duplicates collapse at projection, the
/// same place the calculus evaluator collapses them). The translator
/// builds this for top-level OR conditions — §5.2's disjunctive queries
/// become one branch per disjunct.
class UnionNode : public PlanNode {
 public:
  UnionNode(std::unique_ptr<PlanNode> left, std::unique_ptr<PlanNode> right);
  Result<std::vector<Row>> Execute(const std::vector<std::string>& vars,
                                   const Bindings& free, AlgebraStats* stats,
                                   ExplainContext* ctx) const override;
  const std::vector<std::size_t>& filled_slots() const override {
    return filled_;
  }
  std::string Label() const override { return "Union"; }
  std::vector<const PlanNode*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  std::unique_ptr<PlanNode> left_, right_;
  std::vector<std::size_t> filled_;  // slots filled by BOTH branches
};

/// A complete physical plan: operator tree plus the target-tuple
/// constructor. Produced by TranslateToAlgebra, or assembled by hand.
class AlgebraPlan {
 public:
  AlgebraPlan(std::vector<std::string> vars, std::unique_ptr<PlanNode> root,
              std::vector<std::pair<std::string, Term>> target)
      : vars_(std::move(vars)),
        root_(std::move(root)),
        target_(std::move(target)) {}

  /// Runs the plan and constructs the result set of labeled tuples
  /// (duplicates collapse, as in the calculus evaluator). A non-null
  /// `ctx` collects per-operator measurements for EXPLAIN ANALYZE.
  Result<StdmValue> Execute(const Bindings& free,
                            AlgebraStats* stats = nullptr,
                            ExplainContext* ctx = nullptr) const;

  /// EXPLAIN-style rendering of the operator tree; pass the context from
  /// an Execute() call for the ANALYZE form.
  std::string ToString(const ExplainContext* ctx = nullptr) const;

  const std::vector<std::string>& vars() const { return vars_; }
  const PlanNode* root() const { return root_.get(); }

 private:
  std::vector<std::string> vars_;
  std::unique_ptr<PlanNode> root_;
  std::vector<std::pair<std::string, Term>> target_;
};

/// Builds a Bindings environment exposing `free` plus every filled slot of
/// `row` under its variable name. Exposed for plan-node implementations.
Bindings RowEnv(const std::vector<std::string>& vars, const Bindings& free,
                const Row& row, const std::vector<std::size_t>& filled);

}  // namespace gemstone::stdm

#endif  // GEMSTONE_STDM_ALGEBRA_H_
