#ifndef GEMSTONE_STDM_GSDM_BRIDGE_H_
#define GEMSTONE_STDM_GSDM_BRIDGE_H_

#include "core/result.h"
#include "object/object_memory.h"
#include "stdm/stdm_value.h"
#include "txn/session.h"

namespace gemstone::stdm {

/// The §5.4 merger, made executable: "We can identify sets and simple
/// values in STDM with objects in ST80 and elements with instance
/// variable-value pairs."
///
/// Import materializes an STDM tree as GSDM objects inside the caller's
/// transaction: every STDM set becomes a fresh object (class Set when all
/// members are aliased, class Object otherwise), labeled elements become
/// named elements, aliased members get generated aliases — and, unlike
/// STDM, the result has entity identity.
Result<Value> ImportStdm(txn::Session* session, ObjectMemory* memory,
                         const StdmValue& value);

/// Export reads a GSDM object graph back into an STDM value at the
/// session's effective time (so a time-dialed session exports a past
/// state). Shared objects are *duplicated* and cycles are rejected with
/// InvalidArgument — exactly the expressiveness STDM lacks (§5.4: "any
/// set instance can be an element in at most one other set").
Result<StdmValue> ExportStdm(txn::Session* session, ObjectMemory* memory,
                             const Value& value);

}  // namespace gemstone::stdm

#endif  // GEMSTONE_STDM_GSDM_BRIDGE_H_
