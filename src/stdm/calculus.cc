#include "stdm/calculus.h"

#include <unordered_set>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gemstone::stdm {

// --- Term ---------------------------------------------------------------

Term Term::Const(StdmValue v) {
  Term t;
  t.kind = Kind::kConst;
  t.constant = std::move(v);
  return t;
}

Term Term::Var(std::string var) {
  Term t;
  t.kind = Kind::kVarPath;
  t.var = std::move(var);
  return t;
}

Term Term::VarPath(std::string var, std::vector<std::string> path) {
  Term t;
  t.kind = Kind::kVarPath;
  t.var = std::move(var);
  t.path = std::move(path);
  return t;
}

Term Term::Arith(ArithOp op, Term lhs, Term rhs) {
  Term t;
  t.kind = Kind::kArith;
  t.op = op;
  t.lhs = std::make_shared<const Term>(std::move(lhs));
  t.rhs = std::make_shared<const Term>(std::move(rhs));
  return t;
}

void Term::CollectVars(std::vector<std::string>* out) const {
  switch (kind) {
    case Kind::kConst:
      return;
    case Kind::kVarPath:
      out->push_back(var);
      return;
    case Kind::kArith:
      lhs->CollectVars(out);
      rhs->CollectVars(out);
      return;
  }
}

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return constant.ToString();
    case Kind::kVarPath: {
      std::string out = var;
      for (const std::string& step : path) out += "!" + step;
      return out;
    }
    case Kind::kArith: {
      const char* op_text = op == ArithOp::kAdd   ? " + "
                            : op == ArithOp::kSub ? " - "
                            : op == ArithOp::kMul ? " * "
                                                  : " / ";
      return "(" + lhs->ToString() + op_text + rhs->ToString() + ")";
    }
  }
  return "?";
}

// --- Predicate ------------------------------------------------------------

Predicate Predicate::True() { return Predicate{}; }

Predicate Predicate::Compare(CmpOp op, Term lhs, Term rhs) {
  Predicate p;
  p.kind = Kind::kCompare;
  p.cmp = op;
  p.lhs = std::make_shared<const Term>(std::move(lhs));
  p.rhs = std::make_shared<const Term>(std::move(rhs));
  return p;
}

Predicate Predicate::Member(Term element, Term set) {
  Predicate p;
  p.kind = Kind::kMember;
  p.lhs = std::make_shared<const Term>(std::move(element));
  p.rhs = std::make_shared<const Term>(std::move(set));
  return p;
}

Predicate Predicate::Subset(Term a, Term b) {
  Predicate p;
  p.kind = Kind::kSubset;
  p.lhs = std::make_shared<const Term>(std::move(a));
  p.rhs = std::make_shared<const Term>(std::move(b));
  return p;
}

Predicate Predicate::And(std::vector<Predicate> ps) {
  Predicate p;
  p.kind = Kind::kAnd;
  p.children = std::move(ps);
  return p;
}

Predicate Predicate::Or(std::vector<Predicate> ps) {
  Predicate p;
  p.kind = Kind::kOr;
  p.children = std::move(ps);
  return p;
}

Predicate Predicate::Not(Predicate inner) {
  Predicate p;
  p.kind = Kind::kNot;
  p.children.push_back(std::move(inner));
  return p;
}

void Predicate::CollectVars(std::vector<std::string>* out) const {
  if (lhs) lhs->CollectVars(out);
  if (rhs) rhs->CollectVars(out);
  for (const Predicate& child : children) child.CollectVars(out);
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kTrue:
      return "true";
    case Kind::kCompare: {
      const char* ops[] = {" = ", " != ", " < ", " <= ", " > ", " >= "};
      return "(" + lhs->ToString() + ops[static_cast<int>(cmp)] +
             rhs->ToString() + ")";
    }
    case Kind::kMember:
      return "(" + lhs->ToString() + " in " + rhs->ToString() + ")";
    case Kind::kSubset:
      return "(" + lhs->ToString() + " subsetOf " + rhs->ToString() + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = "(";
      const char* sep = kind == Kind::kAnd ? " and " : " or ";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i != 0) out += sep;
        out += children[i].ToString();
      }
      return out + ")";
    }
    case Kind::kNot:
      return "(not " + children[0].ToString() + ")";
  }
  return "?";
}

std::string CalculusQuery::ToString() const {
  std::string out = "{{";
  for (std::size_t i = 0; i < target.size(); ++i) {
    if (i != 0) out += ", ";
    out += target[i].first + ": " + target[i].second.ToString();
  }
  out += "} where ";
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (i != 0) out += " and ";
    out += "(" + ranges[i].var + " in " + ranges[i].source.ToString() + ")";
  }
  out += " [" + condition.ToString() + "]}";
  return out;
}

// --- Evaluation -----------------------------------------------------------

Result<StdmValue> EvalTerm(const Term& term, const Bindings& env) {
  switch (term.kind) {
    case Term::Kind::kConst:
      return term.constant;
    case Term::Kind::kVarPath: {
      const StdmValue* value = env.Lookup(term.var);
      if (value == nullptr) {
        return Status::NotFound("unbound variable: " + term.var);
      }
      const StdmValue* current = value;
      for (const std::string& step : term.path) {
        if (!current->IsSet()) {
          return Status::TypeMismatch("path into simple value at !" + step +
                                      " in " + term.ToString());
        }
        const StdmValue* next = current->Get(step);
        if (next == nullptr) {
          return Status::NotFound("no element '" + step + "' in " +
                                  term.ToString());
        }
        current = next;
      }
      return *current;
    }
    case Term::Kind::kArith: {
      GS_ASSIGN_OR_RETURN(StdmValue a, EvalTerm(*term.lhs, env));
      GS_ASSIGN_OR_RETURN(StdmValue b, EvalTerm(*term.rhs, env));
      if (!a.IsNumber() || !b.IsNumber()) {
        return Status::TypeMismatch("arithmetic on non-numbers in " +
                                    term.ToString());
      }
      if (a.kind() == StdmValue::Kind::kInteger &&
          b.kind() == StdmValue::Kind::kInteger &&
          term.op != Term::ArithOp::kDiv) {
        const std::int64_t x = a.integer();
        const std::int64_t y = b.integer();
        switch (term.op) {
          case Term::ArithOp::kAdd:
            return StdmValue::Integer(x + y);
          case Term::ArithOp::kSub:
            return StdmValue::Integer(x - y);
          case Term::ArithOp::kMul:
            return StdmValue::Integer(x * y);
          default:
            break;
        }
      }
      const double x = a.AsDouble();
      const double y = b.AsDouble();
      switch (term.op) {
        case Term::ArithOp::kAdd:
          return StdmValue::Float(x + y);
        case Term::ArithOp::kSub:
          return StdmValue::Float(x - y);
        case Term::ArithOp::kMul:
          return StdmValue::Float(x * y);
        case Term::ArithOp::kDiv:
          if (y == 0) return Status::InvalidArgument("division by zero");
          return StdmValue::Float(x / y);
      }
      return Status::Internal("unreachable arithmetic op");
    }
  }
  return Status::Internal("unreachable term kind");
}

namespace {

Result<bool> CompareValues(Predicate::CmpOp op, const StdmValue& a,
                           const StdmValue& b) {
  using CmpOp = Predicate::CmpOp;
  if (op == CmpOp::kEq) return a == b;
  if (op == CmpOp::kNe) return !(a == b);
  // Ordered comparisons require comparable kinds.
  if (a.IsNumber() && b.IsNumber()) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    switch (op) {
      case CmpOp::kLt:
        return x < y;
      case CmpOp::kLe:
        return x <= y;
      case CmpOp::kGt:
        return x > y;
      case CmpOp::kGe:
        return x >= y;
      default:
        break;
    }
  }
  if (a.kind() == StdmValue::Kind::kString &&
      b.kind() == StdmValue::Kind::kString) {
    const int c = a.string().compare(b.string());
    switch (op) {
      case CmpOp::kLt:
        return c < 0;
      case CmpOp::kLe:
        return c <= 0;
      case CmpOp::kGt:
        return c > 0;
      case CmpOp::kGe:
        return c >= 0;
      default:
        break;
    }
  }
  return Status::TypeMismatch("values are not order-comparable");
}

}  // namespace

Result<bool> EvalPredicate(const Predicate& pred, const Bindings& env,
                           EvalStats* stats) {
  if (stats != nullptr) ++stats->predicate_evals;
  switch (pred.kind) {
    case Predicate::Kind::kTrue:
      return true;
    case Predicate::Kind::kCompare: {
      GS_ASSIGN_OR_RETURN(StdmValue a, EvalTerm(*pred.lhs, env));
      GS_ASSIGN_OR_RETURN(StdmValue b, EvalTerm(*pred.rhs, env));
      return CompareValues(pred.cmp, a, b);
    }
    case Predicate::Kind::kMember: {
      GS_ASSIGN_OR_RETURN(StdmValue v, EvalTerm(*pred.lhs, env));
      GS_ASSIGN_OR_RETURN(StdmValue set, EvalTerm(*pred.rhs, env));
      if (!set.IsSet()) {
        return Status::TypeMismatch("right side of 'in' is not a set");
      }
      return set.Contains(v);
    }
    case Predicate::Kind::kSubset: {
      GS_ASSIGN_OR_RETURN(StdmValue a, EvalTerm(*pred.lhs, env));
      GS_ASSIGN_OR_RETURN(StdmValue b, EvalTerm(*pred.rhs, env));
      if (!a.IsSet() || !b.IsSet()) {
        return Status::TypeMismatch("subsetOf requires two sets");
      }
      return a.SubsetOf(b);
    }
    case Predicate::Kind::kAnd: {
      for (const Predicate& child : pred.children) {
        GS_ASSIGN_OR_RETURN(bool v, EvalPredicate(child, env, stats));
        if (!v) return false;
      }
      return true;
    }
    case Predicate::Kind::kOr: {
      for (const Predicate& child : pred.children) {
        GS_ASSIGN_OR_RETURN(bool v, EvalPredicate(child, env, stats));
        if (v) return true;
      }
      return false;
    }
    case Predicate::Kind::kNot: {
      GS_ASSIGN_OR_RETURN(bool v, EvalPredicate(pred.children[0], env, stats));
      return !v;
    }
  }
  return Status::Internal("unreachable predicate kind");
}

namespace {

Status RecurseRanges(const CalculusQuery& query, std::size_t depth,
                     Bindings* env, EvalStats* stats, StdmValue* result,
                     std::unordered_set<std::string>* seen) {
  if (depth == query.ranges.size()) {
    if (stats != nullptr) ++stats->tuples_examined;
    GS_ASSIGN_OR_RETURN(bool keep, EvalPredicate(query.condition, *env, stats));
    if (!keep) return Status::OK();
    StdmValue tuple = StdmValue::Set();
    for (const auto& [label, term] : query.target) {
      GS_ASSIGN_OR_RETURN(StdmValue v, EvalTerm(term, *env));
      GS_RETURN_IF_ERROR(tuple.Put(label, std::move(v)));
    }
    const std::string key = tuple.ToString();
    if (seen->insert(key).second) result->Add(std::move(tuple));
    return Status::OK();
  }
  const Range& range = query.ranges[depth];
  GS_ASSIGN_OR_RETURN(StdmValue source, EvalTerm(range.source, *env));
  if (!source.IsSet()) {
    return Status::TypeMismatch("range source is not a set: " +
                                range.source.ToString());
  }
  for (const StdmValue::Element& element : source.elements()) {
    env->Push(range.var, &element.value);
    Status s = RecurseRanges(query, depth + 1, env, stats, result, seen);
    env->Pop();
    GS_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

}  // namespace

namespace {

/// Scoped fold of one evaluation's stat deltas into the process-wide
/// `calculus.*` counters (survives early returns).
class EvalStatsFold {
 public:
  explicit EvalStatsFold(EvalStats* caller)
      : stats_(caller != nullptr ? caller : &local_), before_(*stats_) {}
  ~EvalStatsFold() {
    auto& registry = telemetry::MetricsRegistry::Global();
    static telemetry::Counter* queries =
        registry.GetCounter("calculus.queries");
    static telemetry::Counter* examined =
        registry.GetCounter("calculus.tuples_examined");
    static telemetry::Counter* evals =
        registry.GetCounter("calculus.predicate_evals");
    queries->Increment();
    examined->Increment(stats_->tuples_examined - before_.tuples_examined);
    evals->Increment(stats_->predicate_evals - before_.predicate_evals);
  }

  EvalStats* stats() { return stats_; }

 private:
  EvalStats local_;
  EvalStats* stats_;
  EvalStats before_;
};

}  // namespace

Result<StdmValue> EvaluateCalculus(const CalculusQuery& query,
                                   const Bindings& free, EvalStats* stats) {
  TELEM_SPAN("calculus.evaluate");
  EvalStatsFold fold(stats);
  stats = fold.stats();
  StdmValue result = StdmValue::Set();
  Bindings env = free;  // copy: query bindings stack on top of free ones
  std::unordered_set<std::string> seen;
  GS_RETURN_IF_ERROR(
      RecurseRanges(query, 0, &env, stats, &result, &seen));
  return result;
}

}  // namespace gemstone::stdm
