#include "stdm/calculus_parser.h"

#include <cctype>
#include <unordered_set>

namespace gemstone::stdm {

namespace {

enum class TokKind : std::uint8_t {
  kEnd,
  kIdent,    // variables, element names, keywords (where/and/or/...)
  kNumber,   // integer or float
  kString,   // 'text'
  kOp,       // = != < <= > >= + - * / in(∈) subsetOf
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kColon,
  kBang,
};

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0;
  bool is_float = false;
};

class CalcLexer {
 public:
  explicit CalcLexer(std::string_view text) : text_(text) {}

  Result<std::vector<Tok>> Tokenize() {
    std::vector<Tok> out;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size()) {
        out.push_back(Tok{});
        return out;
      }
      GS_ASSIGN_OR_RETURN(Tok tok, Next());
      out.push_back(std::move(tok));
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<Tok> Next() {
    const char c = text_[pos_];
    Tok tok;
    auto single = [&](TokKind kind) {
      ++pos_;
      tok.kind = kind;
      return tok;
    };
    switch (c) {
      case '{': return single(TokKind::kLBrace);
      case '}': return single(TokKind::kRBrace);
      case '(': return single(TokKind::kLParen);
      case ')': return single(TokKind::kRParen);
      case '[': return single(TokKind::kLBracket);
      case ']': return single(TokKind::kRBracket);
      case ',': return single(TokKind::kComma);
      case ':': return single(TokKind::kColon);
      case '!':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          pos_ += 2;
          tok.kind = TokKind::kOp;
          tok.text = "!=";
          return tok;
        }
        return single(TokKind::kBang);
      default:
        break;
    }
    if (c == '\'') {
      ++pos_;
      tok.kind = TokKind::kString;
      while (pos_ < text_.size() && text_[pos_] != '\'') {
        tok.text += text_[pos_++];
      }
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated string in calculus");
      }
      ++pos_;
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == ',')) {
        // The paper writes budgets as 142,000 — accept and drop commas
        // inside digit runs when followed by a digit.
        if (text_[pos_] == ',') {
          if (pos_ + 1 < text_.size() &&
              std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
            ++pos_;
            continue;
          }
          break;
        }
        if (text_[pos_] == '.') {
          if (pos_ + 1 >= text_.size() ||
              !std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
            break;
          }
          tok.is_float = true;
        }
        digits += text_[pos_++];
      }
      tok.kind = TokKind::kNumber;
      tok.number = std::stod(digits);
      return tok;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        tok.text += text_[pos_++];
      }
      if (tok.text == "in" || tok.text == "subsetOf") {
        tok.kind = TokKind::kOp;
      } else {
        tok.kind = TokKind::kIdent;
      }
      return tok;
    }
    // Operators, including the Unicode '∈' (E2 88 88).
    if (static_cast<unsigned char>(c) == 0xE2 && pos_ + 2 < text_.size() &&
        static_cast<unsigned char>(text_[pos_ + 1]) == 0x88 &&
        static_cast<unsigned char>(text_[pos_ + 2]) == 0x88) {
      pos_ += 3;
      tok.kind = TokKind::kOp;
      tok.text = "in";
      return tok;
    }
    auto two = text_.substr(pos_, 2);
    for (std::string_view op : {"<=", ">="}) {
      if (two == op) {
        pos_ += 2;
        tok.kind = TokKind::kOp;
        tok.text = op;
        return tok;
      }
    }
    for (char op : {'=', '<', '>', '+', '-', '*', '/'}) {
      if (c == op) {
        ++pos_;
        tok.kind = TokKind::kOp;
        tok.text = std::string(1, op);
        return tok;
      }
    }
    return Status::InvalidArgument(
        std::string("unexpected character in calculus: '") + c + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

class CalcParser {
 public:
  explicit CalcParser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<CalculusQuery> Parse() {
    CalculusQuery query;
    GS_RETURN_IF_ERROR(Expect(TokKind::kLBrace, "'{' to open the query"));
    GS_RETURN_IF_ERROR(ParseTarget(&query));
    GS_RETURN_IF_ERROR(ExpectIdent("where"));
    // Ranges: (v in term) and (v in term) ...
    GS_RETURN_IF_ERROR(ParseRange(&query));
    while (CheckIdent("and")) {
      // Lookahead: the next parenthesized unit may be a range or, after
      // the bracket begins, a condition — ranges only occur before '['.
      ++pos_;
      GS_RETURN_IF_ERROR(ParseRange(&query));
    }
    std::vector<Predicate> conjuncts;
    if (Check(TokKind::kLBracket)) {
      ++pos_;
      GS_ASSIGN_OR_RETURN(Predicate condition, ParseCondition(&query));
      FlattenAnds(std::move(condition), &conjuncts);
      GS_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
    }
    GS_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}' to close the query"));
    if (!Check(TokKind::kEnd)) {
      return Status::InvalidArgument("trailing input after calculus query");
    }

    // Promote memberships that *bind* a bare target variable into
    // correlated ranges, in order (the paper's `m ∈ d!Managers`).
    std::unordered_set<std::string> bound;
    for (const Range& r : query.ranges) bound.insert(r.var);
    std::unordered_set<std::string> target_vars;
    for (const auto& [label, term] : query.target) {
      std::vector<std::string> vars;
      term.CollectVars(&vars);
      target_vars.insert(vars.begin(), vars.end());
    }
    std::vector<Predicate> residual;
    for (Predicate& p : conjuncts) {
      const bool promotable =
          p.kind == Predicate::Kind::kMember &&
          p.lhs->kind == Term::Kind::kVarPath && p.lhs->path.empty() &&
          bound.count(p.lhs->var) == 0 &&
          target_vars.count(p.lhs->var) != 0;
      if (promotable) {
        bound.insert(p.lhs->var);
        query.ranges.push_back(Range{p.lhs->var, *p.rhs});
      } else {
        residual.push_back(std::move(p));
      }
    }
    if (residual.empty()) {
      query.condition = Predicate::True();
    } else if (residual.size() == 1) {
      query.condition = std::move(residual[0]);
    } else {
      query.condition = Predicate::And(std::move(residual));
    }
    return query;
  }

 private:
  const Tok& Peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool Check(TokKind kind) const { return Peek().kind == kind; }
  bool CheckIdent(std::string_view word) const {
    return Peek().kind == TokKind::kIdent && Peek().text == word;
  }
  bool CheckOp(std::string_view op) const {
    return Peek().kind == TokKind::kOp && Peek().text == op;
  }
  Status Expect(TokKind kind, const std::string& what) {
    if (!Check(kind)) {
      return Status::InvalidArgument("expected " + what +
                                     " in calculus query");
    }
    ++pos_;
    return Status::OK();
  }
  Status ExpectIdent(std::string_view word) {
    if (!CheckIdent(word)) {
      return Status::InvalidArgument("expected '" + std::string(word) + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseTarget(CalculusQuery* query) {
    GS_RETURN_IF_ERROR(Expect(TokKind::kLBrace, "'{' opening the target"));
    for (;;) {
      if (!Check(TokKind::kIdent)) {
        return Status::InvalidArgument("expected a target label");
      }
      std::string label = Peek().text;
      ++pos_;
      GS_RETURN_IF_ERROR(Expect(TokKind::kColon, "':' after target label"));
      GS_ASSIGN_OR_RETURN(Term term, ParseTerm());
      query->target.emplace_back(std::move(label), std::move(term));
      if (Check(TokKind::kComma)) {
        ++pos_;
        continue;
      }
      break;
    }
    return Expect(TokKind::kRBrace, "'}' closing the target");
  }

  Status ParseRange(CalculusQuery* query) {
    GS_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'(' opening a range"));
    if (!Check(TokKind::kIdent)) {
      return Status::InvalidArgument("expected a range variable");
    }
    std::string var = Peek().text;
    ++pos_;
    if (!CheckOp("in")) {
      return Status::InvalidArgument("expected 'in' in range binding");
    }
    ++pos_;
    GS_ASSIGN_OR_RETURN(Term source, ParseTerm());
    query->ranges.push_back(Range{std::move(var), std::move(source)});
    return Expect(TokKind::kRParen, "')' closing a range");
  }

  Result<Predicate> ParseCondition(CalculusQuery* query) {
    GS_ASSIGN_OR_RETURN(Predicate left, ParseDisjunct(query));
    while (CheckIdent("or")) {
      ++pos_;
      GS_ASSIGN_OR_RETURN(Predicate right, ParseDisjunct(query));
      std::vector<Predicate> children;
      children.push_back(std::move(left));
      children.push_back(std::move(right));
      left = Predicate::Or(std::move(children));
    }
    return left;
  }

  Result<Predicate> ParseDisjunct(CalculusQuery* query) {
    GS_ASSIGN_OR_RETURN(Predicate left, ParseConjunct(query));
    while (CheckIdent("and")) {
      ++pos_;
      GS_ASSIGN_OR_RETURN(Predicate right, ParseConjunct(query));
      std::vector<Predicate> children;
      children.push_back(std::move(left));
      children.push_back(std::move(right));
      left = Predicate::And(std::move(children));
    }
    return left;
  }

  Result<Predicate> ParseConjunct(CalculusQuery* query) {
    if (CheckIdent("not")) {
      ++pos_;
      GS_ASSIGN_OR_RETURN(Predicate inner, ParseConjunct(query));
      return Predicate::Not(std::move(inner));
    }
    if (Check(TokKind::kLParen)) {
      // Either a parenthesized boolean or a parenthesized comparison; we
      // parse a full condition and fall through.
      ++pos_;
      GS_ASSIGN_OR_RETURN(Predicate inner, ParseCondition(query));
      GS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return inner;
    }
    return ParseComparison();
  }

  Result<Predicate> ParseComparison() {
    GS_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (!Check(TokKind::kOp)) {
      return Status::InvalidArgument("expected a comparison operator");
    }
    const std::string op = Peek().text;
    ++pos_;
    GS_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    using CmpOp = Predicate::CmpOp;
    if (op == "=") return Predicate::Eq(std::move(lhs), std::move(rhs));
    if (op == "!=") return Predicate::Ne(std::move(lhs), std::move(rhs));
    if (op == "<") return Predicate::Lt(std::move(lhs), std::move(rhs));
    if (op == "<=") return Predicate::Le(std::move(lhs), std::move(rhs));
    if (op == ">") return Predicate::Gt(std::move(lhs), std::move(rhs));
    if (op == ">=") return Predicate::Ge(std::move(lhs), std::move(rhs));
    if (op == "in") return Predicate::Member(std::move(lhs), std::move(rhs));
    if (op == "subsetOf") {
      return Predicate::Subset(std::move(lhs), std::move(rhs));
    }
    (void)CmpOp::kEq;
    return Status::InvalidArgument("unknown comparison operator: " + op);
  }

  Result<Term> ParseTerm() {
    GS_ASSIGN_OR_RETURN(Term left, ParseFactor());
    while (CheckOp("+") || CheckOp("-")) {
      const bool add = Peek().text == "+";
      ++pos_;
      GS_ASSIGN_OR_RETURN(Term right, ParseFactor());
      left = add ? Term::Add(std::move(left), std::move(right))
                 : Term::Sub(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Term> ParseFactor() {
    GS_ASSIGN_OR_RETURN(Term left, ParseAtom());
    while (CheckOp("*") || CheckOp("/")) {
      const bool mul = Peek().text == "*";
      ++pos_;
      GS_ASSIGN_OR_RETURN(Term right, ParseAtom());
      left = mul ? Term::Mul(std::move(left), std::move(right))
                 : Term::Div(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Term> ParseAtom() {
    const Tok& tok = Peek();
    switch (tok.kind) {
      case TokKind::kNumber: {
        ++pos_;
        if (tok.is_float) return Term::Const(StdmValue::Float(tok.number));
        return Term::Const(
            StdmValue::Integer(static_cast<std::int64_t>(tok.number)));
      }
      case TokKind::kString: {
        ++pos_;
        return Term::Const(StdmValue::String(tok.text));
      }
      case TokKind::kIdent: {
        if (tok.text == "true" || tok.text == "false") {
          ++pos_;
          return Term::Const(StdmValue::Boolean(tok.text == "true"));
        }
        if (tok.text == "nil") {
          ++pos_;
          return Term::Const(StdmValue::Nil());
        }
        std::string var = tok.text;
        ++pos_;
        std::vector<std::string> path;
        while (Check(TokKind::kBang)) {
          ++pos_;
          if (Check(TokKind::kIdent) || Check(TokKind::kString) ||
              Check(TokKind::kNumber)) {
            const Tok& step = Peek();
            path.push_back(step.kind == TokKind::kNumber
                               ? std::to_string(
                                     static_cast<std::int64_t>(step.number))
                               : step.text);
            ++pos_;
          } else {
            return Status::InvalidArgument("expected a name after '!'");
          }
        }
        if (path.empty()) return Term::Var(std::move(var));
        return Term::VarPath(std::move(var), std::move(path));
      }
      case TokKind::kLParen: {
        ++pos_;
        GS_ASSIGN_OR_RETURN(Term inner, ParseTerm());
        GS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
        return inner;
      }
      default:
        return Status::InvalidArgument("expected a term");
    }
  }

  static void FlattenAnds(Predicate p, std::vector<Predicate>* out) {
    if (p.kind == Predicate::Kind::kAnd) {
      for (Predicate& child : p.children) {
        FlattenAnds(std::move(child), out);
      }
      return;
    }
    if (p.kind != Predicate::Kind::kTrue) out->push_back(std::move(p));
  }

  std::vector<Tok> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<CalculusQuery> ParseCalculus(std::string_view text) {
  CalcLexer lexer(text);
  GS_ASSIGN_OR_RETURN(std::vector<Tok> toks, lexer.Tokenize());
  CalcParser parser(std::move(toks));
  return parser.Parse();
}

}  // namespace gemstone::stdm
