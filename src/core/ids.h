#ifndef GEMSTONE_CORE_IDS_H_
#define GEMSTONE_CORE_IDS_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace gemstone {

/// A globally unique object identifier ("OOP" in the paper's terms).
///
/// §5.4: "When an object is instantiated, it is given a globally unique
/// identity. It lives forever with that identity." Oid equality is entity
/// identity; structural equivalence is a separate operation on objects.
struct Oid {
  std::uint64_t raw = 0;

  constexpr Oid() = default;
  constexpr explicit Oid(std::uint64_t value) : raw(value) {}

  constexpr bool IsNil() const { return raw == 0; }
  friend constexpr auto operator<=>(const Oid&, const Oid&) = default;

  std::string ToString() const { return "oid:" + std::to_string(raw); }
};

/// The distinguished identity of `nil` (class UndefinedObject).
inline constexpr Oid kNilOid{};

/// Transaction time: a monotonically increasing logical commit timestamp
/// assigned by the TransactionManager. §5.3.1 chooses transaction time
/// (not event time) as the system-maintained history dimension.
using TxnTime = std::uint64_t;

/// The pseudo-time denoting "the current state"; larger than any commit
/// time the system will ever assign.
inline constexpr TxnTime kTimeNow = ~static_cast<TxnTime>(0);

/// Time zero predates every commit; reading the database @0 sees nothing.
inline constexpr TxnTime kTimeOrigin = 0;

/// Identifies a user session (Executor-managed).
using SessionId = std::uint32_t;

/// Interned symbol identifier (see object/symbol_table.h).
using SymbolId = std::uint32_t;

inline constexpr SymbolId kInvalidSymbol = ~static_cast<SymbolId>(0);

}  // namespace gemstone

template <>
struct std::hash<gemstone::Oid> {
  std::size_t operator()(const gemstone::Oid& oid) const noexcept {
    // SplitMix64 finalizer: Oids are sequential, so scramble them before
    // they feed bucket selection.
    std::uint64_t x = oid.raw + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

#endif  // GEMSTONE_CORE_IDS_H_
