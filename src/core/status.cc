#include "core/status.h"

namespace gemstone {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kDoesNotUnderstand:
      return "DoesNotUnderstand";
    case StatusCode::kCompileError:
      return "CompileError";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kTransactionConflict:
      return "TransactionConflict";
    case StatusCode::kTransactionState:
      return "TransactionState";
    case StatusCode::kAuthorizationDenied:
      return "AuthorizationDenied";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kReadOnlyRetry:
      return "ReadOnlyRetry";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace gemstone
