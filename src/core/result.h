#ifndef GEMSTONE_CORE_RESULT_H_
#define GEMSTONE_CORE_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "core/status.h"

namespace gemstone {

/// A value-or-Status, modeled on arrow::Result. The invariant is that a
/// Result either holds a value (and `ok()` is true) or a non-OK Status.
/// [[nodiscard]] for the same reason Status is: dropping one on the
/// floor silently discards the error alternative.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a logic error and is downgraded to an
  /// Internal error so the invariant holds.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error (OK when the Result holds a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Accessors; must not be called unless `ok()`.
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or terminates the process if the Result is an
  /// error. Reserved for tests and examples where failure is a bug.
  T ValueOrDie() && {
    if (!ok()) {
      std::abort();
    }
    return std::get<T>(std::move(repr_));
  }

 private:
  std::variant<Status, T> repr_;
};

/// Evaluates `expr` (a Result<T>), propagating errors; on success binds
/// the value to `lhs`. Usage: GS_ASSIGN_OR_RETURN(auto v, Compute());
#define GS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

#define GS_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define GS_ASSIGN_OR_RETURN_CONCAT(x, y) GS_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define GS_ASSIGN_OR_RETURN(lhs, expr) \
  GS_ASSIGN_OR_RETURN_IMPL(            \
      GS_ASSIGN_OR_RETURN_CONCAT(gs_result_, __LINE__), lhs, expr)

}  // namespace gemstone

#endif  // GEMSTONE_CORE_RESULT_H_
