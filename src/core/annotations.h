#ifndef GEMSTONE_CORE_ANNOTATIONS_H_
#define GEMSTONE_CORE_ANNOTATIONS_H_

/// Clang thread-safety analysis attributes (DESIGN.md §8). Under Clang
/// with -Wthread-safety (the GS_THREAD_SAFETY CMake option turns findings
/// into errors) these annotations are statically checked; under other
/// compilers they expand to nothing and the code is unchanged.
///
/// Naming follows the capability vocabulary of the analysis:
///   GS_GUARDED_BY(mu)       data member readable/writable only with mu held
///   GS_REQUIRES(mu)         function needs mu held exclusively on entry
///   GS_REQUIRES_SHARED(mu)  function needs mu held at least shared
///   GS_ACQUIRE / GS_RELEASE lock/unlock functions of a capability type
///   GS_CAPABILITY           a lockable type the analysis tracks
///   GS_SCOPED_CAPABILITY    an RAII lock holder

#if defined(__clang__)
#define GS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define GS_CAPABILITY(x) GS_THREAD_ANNOTATION(capability(x))
#define GS_SCOPED_CAPABILITY GS_THREAD_ANNOTATION(scoped_lockable)
#define GS_GUARDED_BY(x) GS_THREAD_ANNOTATION(guarded_by(x))
#define GS_PT_GUARDED_BY(x) GS_THREAD_ANNOTATION(pt_guarded_by(x))
#define GS_REQUIRES(...) \
  GS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GS_REQUIRES_SHARED(...) \
  GS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define GS_ACQUIRE(...) \
  GS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GS_ACQUIRE_SHARED(...) \
  GS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define GS_RELEASE(...) \
  GS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GS_RELEASE_SHARED(...) \
  GS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define GS_EXCLUDES(...) GS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GS_RETURN_CAPABILITY(x) GS_THREAD_ANNOTATION(lock_returned(x))
#define GS_NO_THREAD_SAFETY_ANALYSIS \
  GS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // GEMSTONE_CORE_ANNOTATIONS_H_
