#ifndef GEMSTONE_CORE_ACCESS_CONTROL_H_
#define GEMSTONE_CORE_ACCESS_CONTROL_H_

#include <cstdint>

#include "core/ids.h"
#include "core/status.h"

namespace gemstone {

/// Identifies a database user (the DBA is user 0).
using UserId = std::uint32_t;

inline constexpr UserId kDbaUser = 0;

/// Authorization hook consulted by the TransactionManager on every object
/// access (§6 lists authorization among the Object Manager's duties).
/// The concrete policy — segments with ACLs — lives in gs_admin; the
/// transaction layer depends only on this interface.
class AccessController {
 public:
  virtual ~AccessController() = default;

  /// OK, or AuthorizationDenied.
  virtual Status CheckRead(UserId user, Oid oid) const = 0;
  virtual Status CheckWrite(UserId user, Oid oid) const = 0;
};

}  // namespace gemstone

#endif  // GEMSTONE_CORE_ACCESS_CONTROL_H_
