#include "core/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace gemstone {

std::string_view LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kNetConnTable: return "net.conn_table";
    case LockRank::kNetConnection: return "net.connection";
    case LockRank::kNetExecutor: return "net.executor";
    case LockRank::kExecutorSessions: return "executor.sessions";
    case LockRank::kOpalGlobals: return "opal.globals";
    case LockRank::kTxnStore: return "txn.store";
    case LockRank::kStorageTier: return "storage.tier";
    case LockRank::kClassRegistry: return "object.class_registry";
    case LockRank::kObjectMemory: return "object.memory";
    case LockRank::kSymbolTable: return "object.symbol_table";
    case LockRank::kDirectoryManager: return "index.directory_manager";
    case LockRank::kDirectory: return "index.directory";
    case LockRank::kAuthorization: return "admin.authorization";
    case LockRank::kStorageDevice: return "storage.device";
    case LockRank::kStorageHeatmap: return "storage.heatmap";
    case LockRank::kTelemetryObservatory: return "telemetry.observatory";
    case LockRank::kTelemetryMetrics: return "telemetry.metrics";
    case LockRank::kTelemetryTrace: return "telemetry.trace";
    case LockRank::kTelemetryProfiler: return "telemetry.profiler";
    case LockRank::kFlightRecorderSlot: return "telemetry.flightrec_slot";
    case LockRank::kFlightRecorderConfig: return "telemetry.flightrec_config";
    case LockRank::kLeaf: return "leaf";
    case LockRank::kRankCount: break;
  }
  return "unknown";
}

namespace lock_order {
namespace {

constexpr std::size_t kN = static_cast<std::size_t>(LockRank::kRankCount);

/// The observed-acquisition graph: edge_counts[holder][acquired]. Fixed
/// size and wait-free to update — NoteAcquire runs on every Lock() of a
/// validation build, including under the hottest leaf mutexes.
std::atomic<std::uint64_t> edge_counts[kN][kN];
std::atomic<std::uint64_t> distinct_edges{0};
std::atomic<std::uint64_t> acquisitions{0};
std::atomic<std::uint64_t> violations{0};
std::atomic<bool> abort_on_violation{true};

/// Per-thread held-lock stack. Deep enough for the longest legal chain
/// (conn_table -> conn -> executor -> ... -> telemetry is 8 deep; 32
/// leaves room for what the next PRs add).
constexpr std::size_t kMaxHeld = 32;
struct ThreadStack {
  Held held[kMaxHeld];
  std::size_t depth = 0;
};
thread_local ThreadStack tls_stack;

void RecordEdge(LockRank holder, LockRank acquired) {
  auto& cell = edge_counts[static_cast<std::size_t>(holder)]
                          [static_cast<std::size_t>(acquired)];
  if (cell.fetch_add(1, std::memory_order_relaxed) == 0) {
    distinct_edges.fetch_add(1, std::memory_order_relaxed);
  }
}

[[noreturn]] void AbortWithStack(LockRank rank, const char* name) {
  const ThreadStack& stack = tls_stack;
  std::fprintf(stderr,
               "lock-order violation: acquiring \"%s\" (rank %s) while "
               "holding \"%s\" (rank %s)\nheld stack (outermost first):\n",
               name, std::string(LockRankName(rank)).c_str(),
               stack.depth > 0 ? stack.held[stack.depth - 1].name : "?",
               stack.depth > 0
                   ? std::string(
                         LockRankName(stack.held[stack.depth - 1].rank))
                         .c_str()
                   : "?");
  for (std::size_t i = 0; i < stack.depth; ++i) {
    std::fprintf(stderr, "  %zu. \"%s\" (rank %s%s)\n", i + 1,
                 stack.held[i].name,
                 std::string(LockRankName(stack.held[i].rank)).c_str(),
                 stack.held[i].shared ? ", shared" : "");
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void NoteAcquire(LockRank rank, const char* name, bool shared) {
  acquisitions.fetch_add(1, std::memory_order_relaxed);
  ThreadStack& stack = tls_stack;
  if (stack.depth > 0) {
    const Held& innermost = stack.held[stack.depth - 1];
    RecordEdge(innermost.rank, rank);
    // Strictly inner only: equal ranks nested are a violation too — two
    // same-rank locks taken in both orders on two threads is the classic
    // ABBA deadlock the per-rank contract cannot see.
    if (rank <= innermost.rank) {
      violations.fetch_add(1, std::memory_order_relaxed);
      if (abort_on_violation.load(std::memory_order_relaxed)) {
        AbortWithStack(rank, name);
      }
    }
  }
  if (stack.depth < kMaxHeld) {
    stack.held[stack.depth] = Held{rank, name, shared};
  }
  ++stack.depth;
}

void NoteRelease(LockRank rank, const char* name) {
  (void)name;
  ThreadStack& stack = tls_stack;
  if (stack.depth == 0) return;  // release without record: overflow slot
  // Locks release LIFO in practice (every holder is scoped RAII), but
  // tolerate out-of-order release of a tracked rank gracefully.
  std::size_t i = stack.depth;
  while (i > 0) {
    --i;
    if (i < kMaxHeld && stack.held[i].rank == rank) break;
  }
  for (std::size_t j = i; j + 1 < stack.depth && j + 1 < kMaxHeld; ++j) {
    stack.held[j] = stack.held[j + 1];
  }
  --stack.depth;
}

std::vector<Held> HeldLocks() {
  const ThreadStack& stack = tls_stack;
  const std::size_t n = stack.depth < kMaxHeld ? stack.depth : kMaxHeld;
  return std::vector<Held>(stack.held, stack.held + n);
}

std::size_t HeldCount() { return tls_stack.depth; }

std::vector<Edge> AcquisitionEdges() {
  std::vector<Edge> edges;
  for (std::size_t from = 0; from < kN; ++from) {
    for (std::size_t to = 0; to < kN; ++to) {
      const std::uint64_t count =
          edge_counts[from][to].load(std::memory_order_relaxed);
      if (count > 0) {
        edges.push_back(Edge{static_cast<LockRank>(from),
                             static_cast<LockRank>(to), count});
      }
    }
  }
  return edges;
}

std::uint64_t EdgeCount() {
  return distinct_edges.load(std::memory_order_relaxed);
}

std::uint64_t AcquisitionCount() {
  return acquisitions.load(std::memory_order_relaxed);
}

namespace {

/// Three-color DFS over the observed graph. 0 = unvisited, 1 = on the
/// current path, 2 = done. Finding a gray node is the cycle.
bool DfsFindsCycle(std::size_t node, unsigned char* color,
                   std::string* cycle_out) {
  color[node] = 1;
  for (std::size_t next = 0; next < kN; ++next) {
    if (edge_counts[node][next].load(std::memory_order_relaxed) == 0) {
      continue;
    }
    if (color[next] == 1) {
      if (cycle_out != nullptr) {
        *cycle_out =
            std::string(LockRankName(static_cast<LockRank>(node))) + " -> " +
            std::string(LockRankName(static_cast<LockRank>(next))) + " -> " +
            std::string(LockRankName(static_cast<LockRank>(node)));
      }
      return true;
    }
    if (color[next] == 0 && DfsFindsCycle(next, color, cycle_out)) {
      return true;
    }
  }
  color[node] = 2;
  return false;
}

}  // namespace

bool GraphIsAcyclic(std::string* cycle_out) {
  unsigned char color[kN] = {0};
  for (std::size_t node = 0; node < kN; ++node) {
    if (color[node] == 0 && DfsFindsCycle(node, color, cycle_out)) {
      return false;
    }
  }
  return true;
}

std::uint64_t ViolationCount() {
  return violations.load(std::memory_order_relaxed);
}

bool SetAbortOnViolation(bool value) {
  return abort_on_violation.exchange(value, std::memory_order_relaxed);
}

void ResetGraphForTest() {
  for (std::size_t from = 0; from < kN; ++from) {
    for (std::size_t to = 0; to < kN; ++to) {
      edge_counts[from][to].store(0, std::memory_order_relaxed);
    }
  }
  distinct_edges.store(0, std::memory_order_relaxed);
  acquisitions.store(0, std::memory_order_relaxed);
  violations.store(0, std::memory_order_relaxed);
}

}  // namespace lock_order
}  // namespace gemstone
