#ifndef GEMSTONE_CORE_STATUS_H_
#define GEMSTONE_CORE_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace gemstone {

/// Error categories used across the GemStone/84 library. Mirrors the
/// Status idiom of Arrow/RocksDB: no exceptions cross a public API
/// boundary; every fallible call returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kNotFound,            // object / element / key absent
  kAlreadyExists,       // duplicate class name, element name, key
  kInvalidArgument,     // malformed input to an API
  kOutOfRange,          // index / time outside valid bounds
  kTypeMismatch,        // value has the wrong tag / class
  kDoesNotUnderstand,   // OPAL message not handled by receiver's class chain
  kCompileError,        // OPAL lexer/parser/compiler diagnostics
  kRuntimeError,        // OPAL interpreter failures (e.g. block arity)
  kTransactionConflict, // optimistic validation failed at commit
  kTransactionState,    // commit/abort without begin, nested begin, ...
  kAuthorizationDenied, // segment ACL check failed
  kIoError,             // simulated disk failure
  kCorruption,          // deserialization / checksum failure
  kUnavailable,         // object migrated to archival media
  kNotImplemented,
  kInternal,            // invariant violation inside the library
  kReadOnlyRetry,       // side effect on the snapshot read path; rerun
                        // the request on the exclusive write path
};

/// Returns a stable human-readable name, e.g. "TransactionConflict".
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// An OK status carries no allocation at all; error states hold a
/// heap-allocated code + message record shared across copies.
///
/// [[nodiscard]] at class scope: a dropped Status is a swallowed error,
/// so every call returning one must consume it (test, propagate with
/// GS_RETURN_IF_ERROR, or annotate a deliberate drop).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status DoesNotUnderstand(std::string msg) {
    return Status(StatusCode::kDoesNotUnderstand, std::move(msg));
  }
  static Status CompileError(std::string msg) {
    return Status(StatusCode::kCompileError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status TransactionConflict(std::string msg) {
    return Status(StatusCode::kTransactionConflict, std::move(msg));
  }
  static Status TransactionState(std::string msg) {
    return Status(StatusCode::kTransactionState, std::move(msg));
  }
  static Status AuthorizationDenied(std::string msg) {
    return Status(StatusCode::kAuthorizationDenied, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ReadOnlyRetry(std::string msg) {
    return Status(StatusCode::kReadOnlyRetry, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string* const kEmpty = new std::string;
    return rep_ ? rep_->message : *kEmpty;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsTransactionConflict() const {
    return code() == StatusCode::kTransactionConflict;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsReadOnlyRetry() const {
    return code() == StatusCode::kReadOnlyRetry;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code();
}

/// Propagates a non-OK Status out of the enclosing function.
#define GS_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::gemstone::Status gs_status_ = (expr);       \
    if (!gs_status_.ok()) return gs_status_;      \
  } while (0)

}  // namespace gemstone

#endif  // GEMSTONE_CORE_STATUS_H_
