#ifndef GEMSTONE_CORE_SYNC_H_
#define GEMSTONE_CORE_SYNC_H_

#include <mutex>
#include <shared_mutex>

#include "core/annotations.h"
#include "core/lock_rank.h"

namespace gemstone {

/// std::mutex with a capability annotation so Clang's thread-safety
/// analysis can pair it with GS_GUARDED_BY / GS_REQUIRES (DESIGN.md §8),
/// plus a mandatory LockRank + display name feeding the runtime
/// lock-order validator (DESIGN.md §13). Construction:
///   mutable Mutex mu_{LockRank::kTxnStore, "txn.store_mu"};
/// There is deliberately no default constructor — a mutex that does not
/// declare its place in the lattice does not compile, and gs_lint
/// rejects declarations whose initializer omits a LockRank.
class GS_CAPABILITY("mutex") Mutex {
 public:
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GS_ACQUIRE() {
#if GS_LOCK_ORDER_VALIDATION
    lock_order::NoteAcquire(rank_, name_, /*shared=*/false);
#endif
    mu_.lock();
  }
  void Unlock() GS_RELEASE() {
    mu_.unlock();
#if GS_LOCK_ORDER_VALIDATION
    lock_order::NoteRelease(rank_, name_);
#endif
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// std::shared_mutex with the same treatment: writers take it exclusive
/// (WriterMutexLock), readers shared (ReaderMutexLock). Shared and
/// exclusive holds rank identically — a reader-held lock constrains what
/// may be acquired beneath it exactly as a writer-held one does.
class GS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() GS_ACQUIRE() {
#if GS_LOCK_ORDER_VALIDATION
    lock_order::NoteAcquire(rank_, name_, /*shared=*/false);
#endif
    mu_.lock();
  }
  void Unlock() GS_RELEASE() {
    mu_.unlock();
#if GS_LOCK_ORDER_VALIDATION
    lock_order::NoteRelease(rank_, name_);
#endif
  }
  void LockShared() GS_ACQUIRE_SHARED() {
#if GS_LOCK_ORDER_VALIDATION
    lock_order::NoteAcquire(rank_, name_, /*shared=*/true);
#endif
    mu_.lock_shared();
  }
  void UnlockShared() GS_RELEASE_SHARED() {
    mu_.unlock_shared();
#if GS_LOCK_ORDER_VALIDATION
    lock_order::NoteRelease(rank_, name_);
#endif
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// Scoped exclusive hold of a Mutex.
class GS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() GS_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive hold of a SharedMutex (the writer side).
class GS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) GS_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() GS_RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared hold of a SharedMutex (the reader side).
class GS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) GS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() GS_RELEASE() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace gemstone

#endif  // GEMSTONE_CORE_SYNC_H_
