#ifndef GEMSTONE_CORE_LOCK_RANK_H_
#define GEMSTONE_CORE_LOCK_RANK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// The lock-rank lattice and its runtime validator (DESIGN.md §13).
///
/// Every gs::Mutex / gs::SharedMutex is constructed with a LockRank and a
/// stable display name. Ranks are declared outermost-first: a thread may
/// only acquire a lock whose rank is STRICTLY GREATER (more inner) than
/// the innermost lock it already holds. Acquiring upward — or sideways,
/// two locks of the same rank nested — is a lock-order violation: it is
/// the shape from which deadlocks are built, even if this particular
/// interleaving got away with it.
///
/// Enforcement is compiled in when GS_LOCK_ORDER_VALIDATION is 1 (set
/// below: debug builds and GS_THREAD_SAFETY builds) and compiled out of
/// release builds — Lock()/Unlock() collapse back to the bare primitive.
/// When active, the validator keeps
///   * a thread-local stack of held (rank, name, shared) entries that
///     aborts with both lock names on any out-of-order acquisition, and
///   * a process-wide observed-acquisition graph (rank -> rank edge
///     counts) with cycle detection, so *potential* inversions surface
///     from runs whose timing never actually deadlocked. The edge set is
///     exported as `sync.lock_edges` / `sync.lock_order_violations` and
///     rendered by the gateway's /statusz page.

#if !defined(GS_LOCK_ORDER_VALIDATION)
#if defined(GS_THREAD_SAFETY) || !defined(NDEBUG)
#define GS_LOCK_ORDER_VALIDATION 1
#else
#define GS_LOCK_ORDER_VALIDATION 0
#endif
#endif

namespace gemstone {

/// The global rank lattice, outermost (acquired first) to innermost.
/// Mirrors the DESIGN.md §12 contract
///   conn_table_mu_ -> conn->mu -> executor_mu_ / store_mu_ -> ...
/// extended downward through every module that owns shared state. The
/// full table — each rank, its owning mutex, and who may hold what
/// beneath it — lives in DESIGN.md §13; keep the two in sync (gs_lint
/// checks that every mutex declaration names a rank).
enum class LockRank : std::uint8_t {
  // -- Gateway (src/net) ----------------------------------------------------
  kNetConnTable = 0,   // net::Server::conn_table_mu_
  kNetConnection,      // net::Server::Connection::mu (one at a time)
  kNetExecutor,        // net::Server::executor_mu_ (the write path)
  // -- Executor / interpreter shared state ----------------------------------
  kExecutorSessions,   // executor::Executor::sessions_mu_
  kOpalGlobals,        // opal::GlobalEnv::mu_
  // -- Transaction & object layer -------------------------------------------
  kTxnStore,           // txn::TransactionManager::store_mu_
  kStorageTier,        // storage::tier::TierStore::mu_ (level catalogs;
                       // taken from under store_mu_ by the time-dial
                       // resolver, lock-free by the compactor; inner work
                       // touches the symbol table and tier devices, so it
                       // sits just inside txn.store)
  kClassRegistry,      // ClassRegistry::mu_ (interns symbols inside)
  kObjectMemory,       // ObjectMemory::mu_
  kSymbolTable,        // SymbolTable::mu_
  // -- Indexes, authorization, storage --------------------------------------
  kDirectoryManager,   // index::DirectoryManager::mu_
  kDirectory,          // index::Directory::mu_
  kAuthorization,      // admin::AuthorizationManager::mu_ (ACL checks run
                       // under store_mu_)
  kStorageDevice,      // storage::SimulatedDisk::mu_
  kStorageHeatmap,     // storage::TrackHeatmap::mu_ (recorded from under
                       // the device lock and from txn historical reads)
  // -- Telemetry leaves (recordable from under any lock above) --------------
  kTelemetryObservatory,  // telemetry::Observatory::mu_ (the ring; never
                          // held while sampling the registry)
  kTelemetryMetrics,   // telemetry::MetricsRegistry::mu_
  kTelemetryTrace,     // telemetry::TraceBuffer::mu_
  kTelemetryProfiler,  // telemetry::Profiler::mu_
  kFlightRecorderSlot,    // telemetry::FlightRecorder::Slot::mu
  kFlightRecorderConfig,  // telemetry::FlightRecorder::config_mu_
  // -- Unconstrained leaf ----------------------------------------------------
  // For mutexes with no lock-graph neighbors (test fixtures, tools). A
  // kLeaf section must not acquire anything, kLeaf included.
  kLeaf,

  kRankCount,  // sentinel — keep last
};

/// Stable display name, e.g. "txn.store".
std::string_view LockRankName(LockRank rank);

namespace lock_order {

/// One observed acquisition edge: while holding a lock of rank `holder`,
/// some thread acquired a lock of rank `acquired` `count` times.
struct Edge {
  LockRank holder;
  LockRank acquired;
  std::uint64_t count;
};

/// One entry of the calling thread's held-lock stack, outermost first.
struct Held {
  LockRank rank;
  const char* name;
  bool shared;
};

/// Called by gs::Mutex/SharedMutex before blocking on the acquisition.
/// Records the acquisition edge, then checks the thread-local stack: if
/// `rank` is not strictly inner to the innermost held rank, reports a
/// violation (by default: prints both lock names plus the held stack to
/// stderr and aborts) and finally pushes the new hold.
void NoteAcquire(LockRank rank, const char* name, bool shared);

/// Called on release. Pops the (normally innermost) matching hold.
void NoteRelease(LockRank rank, const char* name);

/// The calling thread's current held-lock stack, outermost first.
std::vector<Held> HeldLocks();
std::size_t HeldCount();

/// Process-wide observed-acquisition graph, edges with count > 0.
std::vector<Edge> AcquisitionEdges();
/// Distinct (holder, acquired) pairs ever observed.
std::uint64_t EdgeCount();
/// Total acquisitions noted (cheap liveness signal for telemetry).
std::uint64_t AcquisitionCount();

/// True when the observed graph has no cycle. A ranked system that never
/// violated stays acyclic by construction; a cycle is proof two code
/// paths disagree about order even if neither run deadlocked. On failure
/// `cycle_out` (when non-null) receives the cycle as "a -> b -> a".
bool GraphIsAcyclic(std::string* cycle_out);

/// Out-of-order acquisitions observed. Always 0 unless aborting was
/// turned off (tests) — a violation normally never returns.
std::uint64_t ViolationCount();

/// Test hook: when false, a violation counts and records its edge
/// instead of aborting, so detection itself is unit-testable. Returns
/// the previous setting.
bool SetAbortOnViolation(bool abort_on_violation);

/// Test hook: forgets observed edges and violations (held stacks are
/// live state and stay).
void ResetGraphForTest();

}  // namespace lock_order
}  // namespace gemstone

#endif  // GEMSTONE_CORE_LOCK_RANK_H_
